//! # multipod
//!
//! A Rust reproduction of *"Exploring the Limits of Concurrency in ML
//! Training on Google TPUs"* (Kumar et al., MLSys 2021).
//!
//! The paper scales MLPerf v0.7 workloads to a 4096-chip TPU-v3 "multipod".
//! Since the TPU/XLA stack is not portable, this workspace rebuilds every
//! substrate the paper depends on as a deterministic simulator plus real
//! algorithm implementations:
//!
//! * [`topology`] — the 128×32 2-D mesh with torus Y-links and cross-pod
//!   optical X-links, including the sparse row/column routing scheme.
//! * [`simnet`] — a discrete-event network simulator used to time transfers.
//! * [`collectives`] — ring reduce-scatter / all-gather / all-reduce,
//!   the paper's 2-D Y-then-X gradient summation, model-peer-hopping rings
//!   and halo exchange; all numerically real and timed on the network.
//! * [`hlo`] — a small XLA-like graph IR with an SPMD partitioner driven by
//!   sharding annotations (and an MPMD baseline).
//! * [`optim`] — SGD-momentum, LARS and LAMB, with replicated and
//!   weight-update-sharded step implementations.
//! * [`models`] — analytic workload descriptions of the six MLPerf models
//!   plus TPU-v3 and GPU-cluster machine models.
//! * [`input`], [`framework`], [`metrics`] — host input pipeline, TF/JAX
//!   control-plane and evaluation-metric substrates.
//! * [`core`] — the training executor that combines everything into
//!   step-time breakdowns and end-to-end benchmark times.
//! * [`trace`] — sim-time tracing: typed events, per-link utilization
//!   metrics and Chrome-trace (Perfetto) export of any simulated run.
//! * [`faults`] — deterministic fault campaigns: sim-time-scheduled link
//!   outages, chip loss and straggler windows replayed against the
//!   network, with graceful degradation (detours, replica drop with
//!   gradient renormalization, bounded-backoff retries) up the stack.
//! * [`ckpt`] — sharded checkpointing and elastic restart: host-aligned
//!   shard placement, ICI gather + PCIe streaming with content-hashed
//!   manifests, restore onto degraded survivor meshes, rollback recovery
//!   campaigns and Young/Daly optimal-interval analysis.
//!
//! ## Quickstart
//!
//! ```
//! use multipod::core::{Executor, presets};
//!
//! // Reproduce the paper's headline BERT row: 4096 TPU-v3 chips.
//! let preset = presets::bert(4096);
//! let report = Executor::new(preset).run().unwrap();
//! assert!(report.end_to_end_minutes() < 1.0); // paper: 0.39 min
//! ```

pub use multipod_ckpt as ckpt;
pub use multipod_collectives as collectives;
pub use multipod_core as core;
pub use multipod_faults as faults;
pub use multipod_framework as framework;
pub use multipod_hlo as hlo;
pub use multipod_input as input;
pub use multipod_metrics as metrics;
pub use multipod_models as models;
pub use multipod_optim as optim;
pub use multipod_simnet as simnet;
pub use multipod_tensor as tensor;
pub use multipod_topology as topology;
pub use multipod_trace as trace;
