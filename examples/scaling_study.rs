//! A §5-style scaling study: sweep a benchmark from 16 to 4096 chips and
//! print the speedup curve and step-time breakdown (Figures 5–8 for any
//! model).
//!
//! ```sh
//! cargo run --example scaling_study -- ResNet-50
//! cargo run --example scaling_study -- BERT
//! ```

use multipod::core::scaling::{standard_chip_counts, ScalingCurve};
use multipod::models::catalog;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ResNet-50".into());
    let workload = catalog::all()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark '{name}'; one of:");
            for w in catalog::all() {
                eprintln!("  {}", w.name);
            }
            std::process::exit(2);
        });

    let max = match workload.name {
        "MaskRCNN" => 512,
        "DLRM" => 256,
        _ => 4096,
    };
    let curve = ScalingCurve::sweep(&workload, &standard_chip_counts(max)).expect("sweep");

    println!("{name}: scaling 16 → {max} chips");
    println!("chips | batch | step(ms) | allreduce% | e2e(min) | speedup | ideal");
    let e2e = curve.end_to_end_speedups();
    let ideal = curve.ideal_speedups();
    for (i, p) in curve.points.iter().enumerate() {
        println!(
            "{:>5} | {:>6} | {:>8.2} | {:>9.1}% | {:>8.3} | {:>7.1} | {:>5.0}",
            p.chips,
            p.report.global_batch,
            1e3 * p.report.step.total(),
            100.0 * p.report.step.all_reduce_fraction(),
            p.report.end_to_end_minutes(),
            e2e[i].1,
            ideal[i].1,
        );
    }
}
