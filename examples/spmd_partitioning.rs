//! SPMD partitioning end to end (§3.1): annotate a graph, partition it
//! over a 4-core tile, execute the per-core program on the simulated
//! network, and verify against the unpartitioned reference.
//!
//! ```sh
//! cargo run --example spmd_partitioning
//! ```

use std::collections::HashMap;

use multipod::hlo::{HloBuilder, Sharding, SpmdPartitioner};
use multipod::simnet::{Network, NetworkConfig};
use multipod::tensor::{Shape, Tensor, TensorRng};
use multipod::topology::{ChipId, Multipod, MultipodConfig};

fn main() {
    // A feature-sharded feed-forward block (the Transformer pattern of
    // §4.3) followed by a spatially partitionable convolution would be a
    // different graph; both mechanisms are shown here.
    let parts = 4;

    // --- Feature sharding: y = relu(x·W1)·W2 with W1 split on output
    // features and W2 on input features → partial matmul + all-reduce.
    let mut b = HloBuilder::new();
    let x = b.parameter("x", Shape::of(&[8, 32]), Sharding::Replicated);
    let w1 = b.parameter("w1", Shape::of(&[32, 64]), Sharding::split(1, parts));
    let w2 = b.parameter("w2", Shape::of(&[64, 32]), Sharding::split(0, parts));
    let h = b.matmul(x, w1).unwrap();
    let h = b.relu(h).unwrap();
    let y = b.matmul(h, w2).unwrap();
    let graph = b.build(vec![y]).unwrap();

    let program = SpmdPartitioner::new(parts).partition(&graph).unwrap();
    let stats = program.comm_stats();
    println!("feature-sharded FFN over {parts} cores:");
    println!("  instructions      : {}", program.instrs().len());
    println!(
        "  inserted collectives: {} all-reduce, {} all-gather, {} halo",
        stats.all_reduces, stats.all_gathers, stats.halo_exchanges
    );
    println!("  per-core W1 shard : {}", program.value_shape(w1));
    println!("  per-core FLOPs    : {}", program.flops_per_core());

    // Execute on a simulated 4-chip tile and compare with the reference
    // interpreter.
    let mut rng = TensorRng::seed(11);
    let feeds: HashMap<String, Tensor> = [
        ("x", rng.uniform(Shape::of(&[8, 32]), -1.0, 1.0)),
        ("w1", rng.uniform(Shape::of(&[32, 64]), -1.0, 1.0)),
        ("w2", rng.uniform(Shape::of(&[64, 32]), -1.0, 1.0)),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();

    let mesh = Multipod::new(MultipodConfig::mesh(parts as u32, 1, false));
    let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
    let tile: Vec<ChipId> = net.mesh().chips().collect();
    let (outputs, comm_time) = program.execute(&mut net, &feeds, &tile).unwrap();
    let assembled = program.assemble_output(0, &outputs[0]);
    let reference = graph.evaluate(&feeds).unwrap();
    let err = assembled.max_abs_diff(&reference[0]);
    println!("  partitioned == reference? max |error| = {err:.2e}");
    println!(
        "  simulated tile communication: {:.2} µs",
        1e6 * comm_time.seconds()
    );
    assert!(err < 1e-3);

    // --- Spatial partitioning: a same-padded conv split along the image
    // height; the partitioner inserts a halo exchange.
    let mut b = HloBuilder::new();
    let img = b.parameter("img", Shape::of(&[32, 16]), Sharding::split(0, parts));
    let k = b.parameter("k", Shape::of(&[3, 3]), Sharding::Replicated);
    let c = b.conv2d_same(img, k).unwrap();
    let conv_graph = b.build(vec![c]).unwrap();
    let conv_program = SpmdPartitioner::new(parts).partition(&conv_graph).unwrap();
    println!("\nspatially partitioned conv over {parts} cores:");
    println!(
        "  halo exchanges inserted: {}",
        conv_program.comm_stats().halo_exchanges
    );
    let feeds: HashMap<String, Tensor> = [
        ("img", rng.uniform(Shape::of(&[32, 16]), -1.0, 1.0)),
        ("k", rng.uniform(Shape::of(&[3, 3]), -1.0, 1.0)),
    ]
    .into_iter()
    .map(|(kk, v)| (kk.to_string(), v))
    .collect();
    let mut net2 = Network::new(
        Multipod::new(MultipodConfig::mesh(parts as u32, 1, false)),
        NetworkConfig::tpu_v3(),
    );
    let (outputs, _) = conv_program.execute(&mut net2, &feeds, &tile).unwrap();
    let assembled = conv_program.assemble_output(0, &outputs[0]);
    let reference = conv_graph.evaluate(&feeds).unwrap();
    let err = assembled.max_abs_diff(&reference[0]);
    println!("  partitioned == reference? max |error| = {err:.2e}");
    assert!(err < 1e-3);
}
