//! Profiling a simulated run: attach a trace recorder to the network, run
//! the paper's 2-D gradient summation on the full 128×32 multipod, and
//! export a Perfetto-loadable Chrome trace with an embedded metrics
//! summary.
//!
//! ```sh
//! cargo run --release --example profiled_training
//! ```
//!
//! Writes `profiled_training.trace.json`; open it at
//! <https://ui.perfetto.dev> to see collective phases on the simulation
//! timeline and per-link transfer rows under the "network" process.

use multipod::collectives::twod::two_dim_all_reduce;
use multipod::collectives::Precision;
use multipod::simnet::{Network, NetworkConfig};
use multipod::tensor::{Shape, Tensor, TensorRng};
use multipod::topology::{Multipod, MultipodConfig};
use multipod::trace::{chrome_trace_with_metrics, write_json, Recorder, TraceEvent};

fn main() {
    // The full machine: 4 pods side by side = a 128x32 mesh with torus Y
    // links and optical cross-pod X links.
    let mesh = Multipod::new(MultipodConfig::multipod(4));
    let mut net = Network::new(mesh.clone(), NetworkConfig::tpu_v3());
    println!(
        "mesh: {}x{} chips ({} hosts)",
        mesh.x_len(),
        mesh.y_len(),
        mesh.num_hosts()
    );

    // Attach a recorder: every link transfer and collective phase from
    // here on is captured with its simulated time window.
    let recorder = Recorder::shared();
    net.set_trace_sink(recorder.clone());

    // One gradient tensor per chip (4096 elements, so the payload shards
    // evenly through both the 32-member Y rings and the 128-member X
    // lines).
    let mut rng = TensorRng::seed(42);
    let grads: Vec<Tensor> = (0..mesh.num_chips())
        .map(|_| rng.uniform(Shape::vector(4096), -1.0, 1.0))
        .collect();
    let out =
        two_dim_all_reduce(&mut net, &grads, Precision::F32, 1, None).expect("2-D all-reduce");
    println!(
        "summed {} gradients in {:.2} ms simulated ({} trace events)",
        grads.len(),
        1e3 * out.time.seconds(),
        recorder.len()
    );

    // Aggregate per-link utilization and per-phase totals.
    let summaries = recorder.link_summaries();
    let busiest = summaries
        .iter()
        .max_by(|a, b| a.busy_seconds.total_cmp(&b.busy_seconds))
        .expect("at least one link");
    println!(
        "busiest link: {}->{} ({}, {} transfers, {:.1}% utilized over the run)",
        busiest.src,
        busiest.dst,
        busiest.class.label(),
        busiest.transfers,
        100.0 * busiest.utilization(recorder.horizon_seconds())
    );
    println!("span totals:");
    for total in recorder.span_totals() {
        println!(
            "  {:>16} {:<18} {:>9.1} µs  x{}",
            total.category.label(),
            total.name,
            1e6 * total.total_seconds,
            total.count
        );
    }

    // Chrome trace: all collective spans, plus the link events among the
    // first 32 chips so the exported file stays small (the full machine
    // records hundreds of thousands of link transfers; the metrics summary
    // embedded under `otherData` covers all of them).
    let events = recorder.events();
    let kept: Vec<TraceEvent> = events
        .iter()
        .filter(|e| match e {
            TraceEvent::Span(_) => true,
            TraceEvent::Link(l) => l.src < 32 && l.dst < 32,
        })
        .cloned()
        .collect();
    let trace =
        chrome_trace_with_metrics(&kept, Some(&recorder.metrics())).expect("trace serializes");
    write_json("profiled_training.trace.json", &trace).expect("write trace");
    println!(
        "wrote profiled_training.trace.json ({} of {} events exported)",
        kept.len(),
        events.len()
    );
    println!("open it at https://ui.perfetto.dev");
}
