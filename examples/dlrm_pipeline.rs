//! A miniature DLRM training + evaluation pipeline (§4.6) built from the
//! real substrates: partitioned embedding tables with distributed lookups
//! on the simulated mesh, the masked feature self-interaction, on-device
//! eval accumulation, and the multithreaded AUC.
//!
//! ```sh
//! cargo run --example dlrm_pipeline
//! ```

use multipod::metrics::auc::auc_fast;
use multipod::simnet::{Network, NetworkConfig, SimTime};
use multipod::tensor::{Tensor, TensorRng};
use multipod::topology::{Multipod, MultipodConfig};
use multipod_embedding::{
    masked_self_interaction, EmbeddingSpec, EvalAccumulator, Placement, ShardedEmbedding,
};

fn main() {
    // A 16-chip slice with a mix of small (replicated) and large
    // (partitioned) tables.
    let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
    let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
    let specs = vec![
        EmbeddingSpec { rows: 64, dim: 4 },
        EmbeddingSpec { rows: 64, dim: 4 },
        EmbeddingSpec {
            rows: 100_000,
            dim: 4,
        },
        EmbeddingSpec {
            rows: 200_000,
            dim: 4,
        },
    ];
    let placement = Placement::plan(&specs, 16, 4 * 1024);
    println!("placement:");
    for (t, s) in specs.iter().enumerate() {
        println!(
            "  table {t}: {} rows -> {}",
            s.rows,
            if placement.is_replicated(t) {
                "replicated"
            } else {
                "row-partitioned"
            }
        );
    }
    println!(
        "per-chip storage: {:.1} MiB (fully replicated would be {:.1} MiB)",
        placement.bytes_per_chip() as f64 / (1 << 20) as f64,
        placement.bytes_fully_replicated() as f64 / (1 << 20) as f64,
    );

    let mut emb = ShardedEmbedding::init(placement, 42).expect("placement dims agree");
    let mut rng = TensorRng::seed(7);

    // Synthetic pCTR task: the label depends on a hidden weighting of the
    // (table 0, table 1) ids, so learning is possible.
    let make_batch = |rng: &mut TensorRng, n: usize| -> (Vec<Vec<usize>>, Vec<bool>) {
        let mut idx = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.index(64);
            let b = rng.index(64);
            idx.push(vec![a, b, rng.index(100_000), rng.index(200_000)]);
            // Clicks depend on each id's marginal propensity, so the
            // linear-over-embeddings surrogate can learn it.
            labels.push(a.is_multiple_of(3) || b.is_multiple_of(5));
        }
        (idx, labels)
    };

    // Train the embeddings with a logistic surrogate: the model's score
    // is the mean of all embedding entries plus the pairwise interactions.
    let score = |feats: &Tensor, sample: usize, width: usize| -> f32 {
        feats.data()[sample * width..(sample + 1) * width]
            .iter()
            .sum::<f32>()
    };
    let mut comm_time = 0.0f64;
    for step in 0..300 {
        let (idx, labels) = make_batch(&mut rng, 64);
        let out = emb.lookup(&mut net, &idx, SimTime::ZERO).unwrap();
        comm_time += out.time.seconds();
        net.reset();
        let width = out.embeddings.shape().dim(1);
        // dL/d(embedding entry) for logistic loss with the sum score.
        let grads: Vec<f32> = (0..64)
            .flat_map(|s| {
                let z = score(&out.embeddings, s, width);
                let p = 1.0 / (1.0 + (-z).exp());
                let g = p - if labels[s] { 1.0 } else { 0.0 };
                std::iter::repeat_n(g, width)
            })
            .collect();
        let g = Tensor::new(out.embeddings.shape().clone(), grads);
        emb.scatter_update(&idx, &g, 0.1)
            .expect("gradient shape matches");
        if step % 100 == 99 {
            println!(
                "step {:>3}: cumulative lookup comm {:.1} µs",
                step + 1,
                1e6 * comm_time
            );
        }
    }

    // Evaluate with on-device accumulation (one host transfer for the
    // whole eval, §4.6) and the fast AUC.
    let mut acc = EvalAccumulator::new();
    for _ in 0..32 {
        let (idx, labels) = make_batch(&mut rng, 128);
        let out = emb.lookup(&mut net, &idx, SimTime::ZERO).unwrap();
        net.reset();
        let width = out.embeddings.shape().dim(1);
        let preds: Vec<f32> = (0..128).map(|s| score(&out.embeddings, s, width)).collect();
        // Exercise the interaction layer too (its masked layout feeds the
        // top MLP in the full model).
        let _ = masked_self_interaction(&out.embeddings, 4).expect("width divides dim");
        acc.accumulate(&preds, &labels);
    }
    let (preds, labels) = acc.drain_to_host();
    println!(
        "eval: {} samples accumulated on device, {} host transfer(s)",
        preds.len(),
        acc.host_transfers()
    );
    let auc = auc_fast(&preds, &labels, 8);
    println!("AUC after training: {auc:.4} (random = 0.5)");
    assert!(auc > 0.65, "the toy model must learn: AUC={auc}");
}
