//! Quickstart: simulate the paper's headline BERT run on the 4096-chip
//! multipod and print where the time goes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use multipod::core::{presets, Executor};

fn main() {
    // The Table-1 configuration: BERT, 4096 TPU-v3 chips, TensorFlow.
    let preset = presets::bert(4096);
    let report = Executor::new(preset)
        .run()
        .expect("the quickstart preset is valid");

    println!("benchmark      : {}", report.name);
    println!("chips          : {}", report.chips);
    println!("global batch   : {}", report.global_batch);
    println!("steps to target: {}", report.steps);
    println!();
    println!("step breakdown:");
    println!("  compute          : {:.2} ms", 1e3 * report.step.compute);
    println!(
        "  gradient allreduce: {:.2} ms ({:.1}% of step)",
        1e3 * report.step.gradient_comm.total(),
        100.0 * report.step.all_reduce_fraction()
    );
    println!(
        "  weight update     : {:.3} ms (sharded)",
        1e3 * report.step.weight_update
    );
    println!();
    println!(
        "initialization : {:.0} s (excluded from MLPerf time)",
        report.init_seconds
    );
    println!("training       : {:.1} s", report.train_seconds);
    println!("evaluation     : {:.1} s", report.eval_seconds);
    println!(
        "END-TO-END     : {:.2} minutes (paper: 0.39)",
        report.end_to_end_minutes()
    );
}
