//! Model-parallel training end to end (§3.1 / §4.3): a feature-sharded
//! two-layer network whose forward *and backward* passes are produced by
//! the SPMD partitioner — partial matmuls + all-reduces on a simulated
//! 4-core tile — trained to convergence with scheduled SGD.
//!
//! ```sh
//! cargo run --example model_parallel_training
//! ```

use std::collections::HashMap;

use multipod::hlo::{gradients, HloBuilder, Sharding, SpmdPartitioner};
use multipod::optim::LrSchedule;
use multipod::simnet::{Network, NetworkConfig};
use multipod::tensor::{Shape, Tensor, TensorRng};
use multipod::topology::{ChipId, Multipod, MultipodConfig};

fn main() {
    let parts = 4usize;
    let (batch, d_in, d_ff, d_out) = (8usize, 16usize, 64usize, 16usize);

    // The Shazeer-style feed-forward block: W1 split on output features,
    // W2 on input features (§3.1's feature sharding).
    let mut b = HloBuilder::new();
    let x = b.parameter("x", Shape::of(&[batch, d_in]), Sharding::Replicated);
    let w1 = b.parameter("w1", Shape::of(&[d_in, d_ff]), Sharding::split(1, parts));
    let w2 = b.parameter("w2", Shape::of(&[d_ff, d_out]), Sharding::split(0, parts));
    let target = b.parameter("target", Shape::of(&[batch, d_out]), Sharding::Replicated);
    let h = b.matmul(x, w1).unwrap();
    let h = b.relu(h).unwrap();
    let y = b.matmul(h, w2).unwrap();
    let neg = b.constant(Tensor::fill(Shape::of(&[batch, d_out]), -1.0));
    let minus_t = b.mul(target, neg).unwrap();
    let resid = b.add(y, minus_t).unwrap();
    let sq = b.mul(resid, resid).unwrap();
    let s = b.reduce_sum(sq, 0).unwrap();
    let loss = b.reduce_sum(s, 0).unwrap();
    let forward = b.build(vec![loss]).unwrap();

    // Append the backward pass and partition the whole thing.
    let gg = gradients(&forward, loss, &[w1, w2]).expect("gradient graph");
    let program = SpmdPartitioner::new(parts)
        .partition(&gg.graph)
        .expect("partition");
    let stats = program.comm_stats();
    println!("partitioned forward+backward over {parts} cores:");
    println!("  instructions : {}", program.instrs().len());
    println!(
        "  collectives  : {} all-reduce, {} all-gather (the §3.1 backward
                 pass re-runs the forward all-reduce and adds its own)",
        stats.all_reduces, stats.all_gathers
    );
    println!("  per-core FLOPs: {}", program.flops_per_core());

    // Train on a fixed synthetic regression task.
    let mesh = Multipod::new(MultipodConfig::mesh(parts as u32, 1, false));
    let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
    let tile: Vec<ChipId> = net.mesh().chips().collect();
    let mut rng = TensorRng::seed(2024);
    let x_data = rng.uniform(Shape::of(&[batch, d_in]), -1.0, 1.0);
    let t_data = rng.uniform(Shape::of(&[batch, d_out]), -0.5, 0.5);
    let mut w1_data = rng.uniform(Shape::of(&[d_in, d_ff]), -0.2, 0.2);
    let mut w2_data = rng.uniform(Shape::of(&[d_ff, d_out]), -0.2, 0.2);

    let steps = 80u64;
    let schedule = LrSchedule::lars_resnet(0.05, 8, steps);
    let mut comm = 0.0f64;
    for step in 0..steps {
        let feeds: HashMap<String, Tensor> = [
            ("x".to_string(), x_data.clone()),
            ("w1".to_string(), w1_data.clone()),
            ("w2".to_string(), w2_data.clone()),
            ("target".to_string(), t_data.clone()),
        ]
        .into();
        let (outs, t) = program.execute(&mut net, &feeds, &tile).expect("step");
        net.reset();
        comm += t.seconds();
        let loss_now = program.assemble_output(0, &outs[0]).data()[0];
        let dw1 = program.assemble_output(1, &outs[1]);
        let dw2 = program.assemble_output(2, &outs[2]);
        let lr = schedule.at(step);
        w1_data.axpy(-lr, &dw1).unwrap();
        w2_data.axpy(-lr, &dw2).unwrap();
        if step % 20 == 19 {
            println!("step {:>2}: lr={lr:.4} loss={loss_now:.5}", step + 1);
        }
    }
    println!(
        "simulated tile communication across the run: {:.2} ms",
        1e3 * comm
    );

    // Final check.
    let feeds: HashMap<String, Tensor> = [
        ("x".to_string(), x_data),
        ("w1".to_string(), w1_data),
        ("w2".to_string(), w2_data),
        ("target".to_string(), t_data),
    ]
    .into();
    let final_loss = forward.evaluate(&feeds).unwrap()[0].data()[0];
    println!("final loss: {final_loss:.6}");
    assert!(final_loss < 0.05, "model-parallel training must converge");
}
