//! A complete data-parallel training loop on the simulated pod: per-chip
//! data shards, real local gradients, the 2-D gradient summation with a
//! weight-update-sharded LAMB step, and a warmup+decay schedule — the
//! whole §3.2/§3.3 stack working together until the model converges.
//!
//! The task is linear regression (so convergence is checkable), but every
//! distributed mechanism is exactly what a real model would use.
//!
//! ```sh
//! cargo run --example data_parallel_training
//! ```

use multipod::collectives::twod::two_dim_all_reduce;
use multipod::collectives::Precision;
use multipod::optim::{Lamb, LayerStats, LrSchedule, Optimizer, StateKey};
use multipod::simnet::{Network, NetworkConfig};
use multipod::tensor::{Shape, Tensor, TensorRng};
use multipod::topology::{Multipod, MultipodConfig};

fn main() {
    let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
    let mut net = Network::new(mesh.clone(), NetworkConfig::tpu_v3());
    let chips = mesh.num_chips();
    let dim = 64usize;
    let samples_per_chip = 8usize;

    // Ground truth and per-chip data shards.
    let mut rng = TensorRng::seed(1234);
    let w_true = rng.uniform(Shape::vector(dim), -1.0, 1.0);
    let shards: Vec<(Tensor, Tensor)> = (0..chips)
        .map(|_| {
            let x = rng.uniform(Shape::of(&[samples_per_chip, dim]), -1.0, 1.0);
            let y = x
                .matmul(
                    &w_true
                        .clone()
                        .reshape(Shape::of(&[dim, 1]))
                        .expect("column vector"),
                )
                .expect("matmul");
            (x, y)
        })
        .collect();

    // Replicated weights (identical on every chip) and a LAMB optimizer
    // with the BERT-style warmup + linear-decay schedule.
    let mut weights = Tensor::zeros(Shape::vector(dim));
    let steps = 120u64;
    let schedule = LrSchedule::lamb_bert(0.5, 10, steps);
    let mut optimizer = Lamb::new(1.0, 0.0); // lr applied via the schedule

    let loss = |w: &Tensor, shards: &[(Tensor, Tensor)]| -> f32 {
        let wm = w.clone().reshape(Shape::of(&[dim, 1])).expect("column");
        shards
            .iter()
            .map(|(x, y)| {
                let pred = x.matmul(&wm).expect("matmul");
                pred.sub(y).unwrap().norm2().powi(2)
            })
            .sum::<f32>()
            / (chips * samples_per_chip) as f32
    };

    let initial_loss = loss(&weights, &shards);
    let mut comm_seconds = 0.0f64;
    for step in 0..steps {
        // Local gradients: dL/dw = 2 Xᵀ(Xw − y) / n, per chip.
        let wm = weights
            .clone()
            .reshape(Shape::of(&[dim, 1]))
            .expect("column");
        let local_grads: Vec<Tensor> = shards
            .iter()
            .map(|(x, y)| {
                let resid = x.matmul(&wm).expect("matmul").sub(y).unwrap();
                // Xᵀ r computed as rᵀ X (keeps everything rank-2).
                let rt = resid
                    .clone()
                    .reshape(Shape::of(&[1, samples_per_chip]))
                    .unwrap();
                rt.matmul(x)
                    .expect("matmul")
                    .scale(2.0 / (chips * samples_per_chip) as f32)
                    .reshape(Shape::vector(dim))
                    .unwrap()
            })
            .collect();

        // 2-D gradient summation with the LAMB update applied at the
        // shard owners (weight-update sharding). LAMB's trust ratio needs
        // whole-layer norms, reconstructed from per-shard partials just
        // like `multipod::optim::wus` does.
        let lr = schedule.at(step);
        let grad_sum = Tensor::sum_all(&local_grads).expect("same-shape gradients");
        let n_shards = chips;
        let w_shards = weights.split(0, n_shards).unwrap();
        let g_shards = grad_sum.split(0, n_shards).unwrap();
        let mut probe = optimizer.clone();
        let mut global = LayerStats::default();
        let mut prepared = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let (u, st) = probe
                .prepare(StateKey { layer: 0, shard: s }, &w_shards[s], &g_shards[s])
                .expect("same-shape gradient shards");
            global = global.merge(st);
            prepared.push(u);
        }
        optimizer = probe; // keep the advanced Adam state
        let mut update = |_chip, shard: &mut Tensor| {
            let s = (0..n_shards)
                .find(|&s| shard.max_abs_diff(&g_shards[s]) < 1e-6)
                .expect("shard is a gradient slice");
            let mut w_shard = w_shards[s].clone();
            // Scale the trust-ratio step by the scheduled rate.
            let scaled = prepared[s].scale(lr);
            optimizer
                .apply(&mut w_shard, &scaled, global)
                .expect("same-shape update shards");
            *shard = w_shard;
        };
        let out = two_dim_all_reduce(&mut net, &local_grads, Precision::F32, 1, Some(&mut update))
            .expect("gradient summation");
        comm_seconds += out.time.seconds();
        net.reset();
        // All chips now hold the identical updated weights.
        weights = out.outputs[0].clone();
        for o in &out.outputs[1..] {
            assert!(o.max_abs_diff(&weights) < 1e-6, "replicas must agree");
        }
        if step % 30 == 29 {
            println!(
                "step {:>3}: lr={:.3} loss={:.5}",
                step + 1,
                lr,
                loss(&weights, &shards)
            );
        }
    }

    let final_loss = loss(&weights, &shards);
    println!();
    println!("initial loss : {initial_loss:.4}");
    println!("final loss   : {final_loss:.6}");
    println!(
        "‖w − w*‖     : {:.4}",
        weights.sub(&w_true).unwrap().norm2()
    );
    println!(
        "simulated gradient-summation time: {:.2} ms total",
        1e3 * comm_seconds
    );
    assert!(
        final_loss < 0.02 * initial_loss,
        "distributed training must converge"
    );
}
