//! The paper's 2-D gradient summation (§3.3), numerically, on a small
//! simulated pod — including weight-update sharding applied at the shard
//! owners between the reduce and broadcast halves.
//!
//! ```sh
//! cargo run --example gradient_summation
//! ```

use multipod::collectives::twod::two_dim_all_reduce;
use multipod::collectives::Precision;
use multipod::simnet::{Network, NetworkConfig};
use multipod::tensor::{Shape, Tensor, TensorRng};
use multipod::topology::{Multipod, MultipodConfig};

fn main() {
    // An 8x8 chip pod with torus Y links (a miniature of the 128x32
    // multipod).
    let mesh = Multipod::new(MultipodConfig::mesh(8, 8, true));
    let mut net = Network::new(mesh.clone(), NetworkConfig::tpu_v3());
    println!(
        "mesh: {}x{} chips, torus-Y={}, {} hosts",
        mesh.x_len(),
        mesh.y_len(),
        mesh.torus_y(),
        mesh.num_hosts()
    );

    // One gradient tensor per chip ("layer" of 4096 parameters).
    let mut rng = TensorRng::seed(7);
    let grads: Vec<Tensor> = (0..mesh.num_chips())
        .map(|_| rng.uniform(Shape::vector(4096), -1.0, 1.0))
        .collect();
    let reference = Tensor::sum_all(&grads).expect("same-shape gradients");

    // Weight-update sharding: each shard owner scales its slice by the
    // learning rate before the broadcast phases (a stand-in for the
    // LAMB/LARS math that `multipod::optim` implements in full).
    let lr = 0.1f32;
    let mut update = |_chip, shard: &mut Tensor| {
        *shard = shard.scale(-lr);
    };
    let out = two_dim_all_reduce(&mut net, &grads, Precision::F32, 1, Some(&mut update))
        .expect("2-D all-reduce");

    // Every chip ends with -lr * (sum of all gradients).
    let expect = reference.scale(-lr);
    let worst = out
        .outputs
        .iter()
        .map(|o| o.max_abs_diff(&expect))
        .fold(0.0f32, f32::max);
    println!(
        "numeric check: max |error| = {worst:.2e} over {} chips",
        out.outputs.len()
    );
    assert!(worst < 1e-3);

    println!("\nsimulated phase times:");
    println!(
        "  Y reduce-scatter : {:.1} µs",
        1e6 * out.breakdown.y_reduce_scatter
    );
    println!(
        "  X reduce-scatter : {:.1} µs (payload 1/{} of Y)",
        1e6 * out.breakdown.x_reduce_scatter,
        mesh.y_len()
    );
    println!(
        "  X all-gather     : {:.1} µs",
        1e6 * out.breakdown.x_all_gather
    );
    println!(
        "  Y all-gather     : {:.1} µs",
        1e6 * out.breakdown.y_all_gather
    );
    println!("  total            : {:.1} µs", 1e6 * out.breakdown.total());
}
