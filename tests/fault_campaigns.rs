//! Fault campaigns end-to-end: determinism of the trace export, healing
//! between collective phases, and the scripted acceptance campaign (wrap
//! outage + straggler, chip loss with replica drop and retry).

use std::sync::Arc;

use multipod::collectives::{ring, Precision};
use multipod::faults::{run_campaign, CampaignConfig, FaultPlan};
use multipod::simnet::{Network, NetworkConfig, SimTime};
use multipod::tensor::{Shape, Tensor, TensorRng};
use multipod::topology::{Coord, Multipod, MultipodConfig};
use multipod::trace::{Recorder, TraceSink};

fn demo_4x4() -> CampaignConfig {
    CampaignConfig::demo(MultipodConfig::mesh(4, 4, true))
}

fn chrome_export(recorder: &Recorder) -> String {
    serde_json::to_string(&recorder.chrome_trace().expect("chrome trace serializes"))
        .expect("chrome trace serializes")
}

/// Same `FaultPlan`, same config → byte-identical Chrome-trace export.
#[test]
fn same_plan_yields_byte_identical_trace_export() {
    let config = demo_4x4();
    let mesh = Multipod::new(config.mesh.clone());
    let plan = FaultPlan::wrap_outage_with_straggler(
        &mesh,
        0,
        SimTime::from_seconds(1e-3),
        SimTime::from_seconds(5e-3),
        1,
        2.0,
    );
    let export = || {
        let recorder = Recorder::shared();
        run_campaign(&config, &plan, Some(recorder.clone() as Arc<dyn TraceSink>))
            .expect("campaign completes");
        chrome_export(&recorder)
    };
    let first = export();
    let second = export();
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "fault campaigns must be reproducible experiments"
    );
}

/// A link fails before the reduce-scatter (which detours) and heals
/// before the all-gather; the reconstructed sum still matches
/// `Tensor::sum_all`, and the healed all-gather runs at healthy speed.
#[test]
fn link_heals_between_reduce_scatter_and_all_gather() {
    let build = || {
        Network::new(
            Multipod::new(MultipodConfig::mesh(2, 4, true)),
            NetworkConfig::tpu_v3(),
        )
    };
    let mut rng = TensorRng::seed(5);
    let inputs: Vec<Tensor> = (0..4)
        .map(|_| rng.uniform(Shape::vector(16), -1.0, 1.0))
        .collect();
    let reference = Tensor::sum_all(&inputs).unwrap();

    // Healthy baseline for phase times.
    let mut healthy_net = build();
    let ring_y = healthy_net.mesh().y_ring(0);
    let rs_healthy = ring::reduce_scatter(
        &mut healthy_net,
        &ring_y,
        &inputs,
        Precision::F32,
        ring::Direction::Forward,
        SimTime::ZERO,
    )
    .unwrap();
    let ag_healthy = ring::all_gather(
        &mut healthy_net,
        &ring_y,
        &rs_healthy.shards,
        Precision::F32,
        ring::Direction::Forward,
        rs_healthy.time,
    )
    .unwrap();

    // Faulty run: the wrap link is down for the reduce-scatter only.
    let mut net = build();
    let ring_y = net.mesh().y_ring(0);
    let top = net.mesh().chip_at(Coord::new(0, 3));
    let bottom = net.mesh().chip_at(Coord::new(0, 0));
    net.fail_link(top, bottom, SimTime::ZERO);
    let rs = ring::reduce_scatter(
        &mut net,
        &ring_y,
        &inputs,
        Precision::F32,
        ring::Direction::Forward,
        SimTime::ZERO,
    )
    .unwrap();
    assert!(
        rs.time > rs_healthy.time,
        "detoured reduce-scatter must be slower"
    );
    net.heal_link(top, bottom, rs.time);
    let ag = ring::all_gather(
        &mut net,
        &ring_y,
        &rs.shards,
        Precision::F32,
        ring::Direction::Forward,
        rs.time,
    )
    .unwrap();
    for out in &ag.outputs {
        assert!(
            out.max_abs_diff(&reference) < 1e-4,
            "heal-mid-collective must not change the sum"
        );
    }
    assert!(
        (ag.time - rs.time) - (ag_healthy.time - rs_healthy.time) < 1e-9,
        "healed all-gather must run at healthy speed"
    );
}

/// The acceptance campaign: a Y wrap link fails at T1 and heals at T2
/// while one host straggles. Training completes with the same final loss
/// as the fault-free run, degraded-window steps are strictly slower, and
/// the failure/heal spans land in the Chrome-trace export.
#[test]
fn scripted_wrap_outage_campaign_meets_acceptance() {
    let config = demo_4x4();
    let clean = run_campaign(&config, &FaultPlan::new(), None).unwrap();

    let mesh = Multipod::new(config.mesh.clone());
    let t1 = SimTime::from_seconds(clean.steps[1].start_seconds);
    let t2 = SimTime::from_seconds(clean.steps[5].start_seconds);
    let plan = FaultPlan::wrap_outage_with_straggler(&mesh, 0, t1, t2, 1, 2.0);
    let recorder = Recorder::shared();
    let faulty = run_campaign(&config, &plan, Some(recorder.clone() as Arc<dyn TraceSink>))
        .expect("campaign completes training");

    assert_eq!(
        faulty.final_loss, clean.final_loss,
        "timing faults must not change the final loss"
    );
    assert!(faulty.degraded_steps > 0, "the window must be observed");
    for (c, f) in clean.steps.iter().zip(&faulty.steps) {
        if f.degraded {
            assert!(
                f.step_seconds > c.step_seconds,
                "degraded step {} must be strictly slower: {} vs {}",
                f.step,
                f.step_seconds,
                c.step_seconds
            );
        } else {
            assert_eq!(f.step_seconds, c.step_seconds, "clean steps unaffected");
        }
    }
    assert!(faulty.total_seconds > clean.total_seconds);

    let chrome = chrome_export(&recorder);
    for needle in ["link-down", "link-up", "straggler-window", "campaign-step"] {
        assert!(
            chrome.contains(needle),
            "span {needle:?} missing from export"
        );
    }
}

/// Chip loss mid-campaign: the trainer retries with backoff, drops the
/// lost replica, renormalizes, and finishes training — with the
/// failure/retry spans visible in the export.
#[test]
fn chip_loss_campaign_retries_drops_replica_and_traces_it() {
    let config = demo_4x4();
    let clean = run_campaign(&config, &FaultPlan::new(), None).unwrap();

    let mesh = Multipod::new(config.mesh.clone());
    let victim = mesh.chip_at(Coord::new(1, 1));
    let plan =
        FaultPlan::new().chip_down(SimTime::from_seconds(clean.steps[2].start_seconds), victim);
    let recorder = Recorder::shared();
    let faulty = run_campaign(&config, &plan, Some(recorder.clone() as Arc<dyn TraceSink>))
        .expect("campaign survives the chip loss");

    assert_eq!(faulty.steps.last().unwrap().dead_replicas, 1);
    assert!(
        faulty.steps.iter().any(|s| s.retries > 0),
        "the step hit by the loss must retry"
    );
    assert!(
        faulty.final_loss.is_finite() && faulty.final_loss < faulty.steps[0].loss,
        "training must keep converging on the survivors"
    );

    let chrome = chrome_export(&recorder);
    for needle in ["chip-down", "replica-lost", "step-retry", "degraded-update"] {
        assert!(
            chrome.contains(needle),
            "span {needle:?} missing from export"
        );
    }
}
