//! Cross-validation of the two timing layers: the α–β closed forms must
//! track the event-driven numeric simulation across mesh shapes, payload
//! sizes and precisions — otherwise the 4096-chip numbers rest on a model
//! that disagrees with the machine.

use multipod::collectives::timing::RingCosts;
use multipod::collectives::twod::{two_dim_all_reduce, two_dim_all_reduce_time};
use multipod::collectives::{ring, Precision};
use multipod::simnet::{Network, NetworkConfig, SimTime};
use multipod::tensor::{Shape, Tensor, TensorRng};
use multipod::topology::{ChipId, Multipod, MultipodConfig};
use multipod::trace::{LinkClass, Recorder, SpanCategory};

fn net(x: u32, y: u32) -> Network {
    Network::new(
        Multipod::new(MultipodConfig::mesh(x, y, true)),
        NetworkConfig::tpu_v3(),
    )
}

fn inputs(n: usize, elems: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = TensorRng::seed(seed);
    (0..n)
        .map(|_| rng.uniform(Shape::vector(elems), -1.0, 1.0))
        .collect()
}

/// The α–β unidirectional ring model vs the barrier-stepped numeric
/// execution: within 2x across ring sizes and payloads (the numeric
/// barriers cost extra latency; the bandwidth term must agree).
#[test]
fn ring_alpha_beta_tracks_numeric_execution() {
    for (y, elems) in [(4u32, 1 << 12), (8, 1 << 14), (16, 1 << 16), (32, 1 << 18)] {
        let mut network = net(1, y);
        let ring_y = network.mesh().y_ring(0);
        let ins = inputs(y as usize, elems, y as u64);
        let numeric = ring::all_reduce_unidirectional(
            &mut network,
            &ring_y,
            &ins,
            Precision::F32,
            ring::Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap()
        .time
        .seconds();
        let fresh = net(1, y);
        let costs = RingCosts::from_ring(&fresh, &fresh.mesh().y_ring(0), 1).unwrap();
        let analytic = costs.all_reduce_time(elems, Precision::F32, false);
        let ratio = numeric / analytic;
        assert!(
            (0.5..2.0).contains(&ratio),
            "y={y} elems={elems}: numeric={numeric} analytic={analytic} ratio={ratio}"
        );
    }
}

/// Same cross-check for the full 2-D schedule, both precisions.
#[test]
fn two_dim_alpha_beta_tracks_numeric_execution() {
    for (x, y, elems) in [(4u32, 4u32, 1 << 12), (8, 8, 1 << 14), (16, 8, 1 << 14)] {
        for precision in [Precision::F32, Precision::Bf16] {
            let mut network = net(x, y);
            let n = network.mesh().num_chips();
            let ins = inputs(n, elems, (x + y) as u64);
            let numeric = two_dim_all_reduce(&mut network, &ins, precision, 1, None)
                .unwrap()
                .time
                .seconds();
            let fresh = net(x, y);
            let analytic = two_dim_all_reduce_time(&fresh, elems, precision, 1)
                .unwrap()
                .total();
            let ratio = numeric / analytic;
            assert!(
                (0.4..4.0).contains(&ratio),
                "{x}x{y} elems={elems} {precision:?}: ratio={ratio}"
            );
        }
    }
}

/// Both layers must rank configurations the same way: if the α–β model
/// says mesh A beats mesh B for the same payload, the numeric simulation
/// must agree (ranking consistency is what the executor's conclusions
/// rest on).
#[test]
fn layers_agree_on_configuration_ranking() {
    let elems = 1 << 14;
    let configs = [(2u32, 8u32), (4, 4), (8, 2)];
    let mut numeric_times = Vec::new();
    let mut analytic_times = Vec::new();
    for &(x, y) in &configs {
        let mut network = net(x, y);
        let n = network.mesh().num_chips();
        let ins = inputs(n, elems, 5);
        numeric_times.push(
            two_dim_all_reduce(&mut network, &ins, Precision::F32, 1, None)
                .unwrap()
                .time
                .seconds(),
        );
        let fresh = net(x, y);
        analytic_times.push(
            two_dim_all_reduce_time(&fresh, elems, Precision::F32, 1)
                .unwrap()
                .total(),
        );
    }
    // Near-ties (the α–β model is x/y-symmetric for some shapes) make a
    // full-order comparison noisy; both layers must at least agree on the
    // winning configuration.
    let argmin = |v: &[f64]| {
        v.iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap()
    };
    assert_eq!(
        argmin(&numeric_times),
        argmin(&analytic_times),
        "numeric={numeric_times:?} analytic={analytic_times:?}"
    );
}

/// The trace layer against the analytic byte counts: on a 4x4 torus each
/// ring member sends `n-1` chunks per phase, so every directed link that
/// participates in the Forward circulation carries exactly that — full
/// payload chunks on the Y rings, the Y-sharded remainder on the X lines.
/// The recorder must agree with both the closed form and the network's own
/// contention counters.
#[test]
fn recorder_link_bytes_match_analytic_ring_counts() {
    let elems = 1 << 12;
    let n = 4u64;
    let mut network = net(4, 4);
    let recorder = Recorder::shared();
    network.set_trace_sink(recorder.clone());
    let ins = inputs(16, elems, 9);
    two_dim_all_reduce(&mut network, &ins, Precision::F32, 1, None).unwrap();

    let y_chunk = Precision::F32.wire_bytes(elems / n as usize);
    let x_chunk = Precision::F32.wire_bytes(elems / (n * n) as usize);
    let summaries = recorder.link_summaries();
    assert!(!summaries.is_empty());
    for link in &summaries {
        let expected = match link.class {
            // Reduce-scatter + all-gather: 2 phases of n-1 chunks each.
            LinkClass::MeshY | LinkClass::WrapY => 2 * (n - 1) * y_chunk,
            // The open X line circulates its wrap messages back over the
            // reverse-direction links, so those carry the same count.
            LinkClass::MeshX => 2 * (n - 1) * x_chunk,
            other => panic!("unexpected link class {other:?}"),
        };
        assert_eq!(
            link.bytes,
            expected,
            "link {}->{} ({})",
            link.src,
            link.dst,
            link.class.label()
        );
        assert_eq!(
            link.bytes,
            network.link_traffic(ChipId(link.src), ChipId(link.dst)),
            "trace must mirror the network's own per-link counters"
        );
    }
}

/// Acceptance check from the tracing issue: recorded per-link utilization
/// for the 2-D all-reduce on a 4x4 torus matches the α–β prediction
/// (2 phases x `phase_beta_seconds` of serialization per link) within 1%.
#[test]
fn link_utilization_matches_alpha_beta_within_one_percent() {
    let elems = 1 << 12;
    let mut network = net(4, 4);
    let recorder = Recorder::shared();
    network.set_trace_sink(recorder.clone());
    let ins = inputs(16, elems, 11);
    two_dim_all_reduce(&mut network, &ins, Precision::F32, 1, None).unwrap();

    let fresh = net(4, 4);
    let y_costs = RingCosts::from_ring(&fresh, &fresh.mesh().y_ring(0), 1).unwrap();
    let x_costs = RingCosts::from_ring(&fresh, &fresh.mesh().x_line_strided(0, 0, 1), 1).unwrap();
    let y_busy = 2.0 * y_costs.phase_beta_seconds(elems, Precision::F32, false);
    let x_busy = 2.0 * x_costs.phase_beta_seconds(elems / 4, Precision::F32, false);
    let horizon = recorder.horizon_seconds();
    assert!(horizon > 0.0);
    for link in recorder.link_summaries() {
        let predicted_busy = match link.class {
            LinkClass::MeshY | LinkClass::WrapY => y_busy,
            LinkClass::MeshX => x_busy,
            other => panic!("unexpected link class {other:?}"),
        };
        let measured = link.utilization(horizon);
        let predicted = predicted_busy / horizon;
        let rel = (measured - predicted).abs() / predicted;
        assert!(
            rel < 0.01,
            "link {}->{} ({}): measured {measured:.6} vs predicted {predicted:.6} ({:.2}% off)",
            link.src,
            link.dst,
            link.class.label(),
            100.0 * rel
        );
    }
}

/// The recorder must see the whole span hierarchy of a 2-D all-reduce: one
/// enclosing collective, the four machine-wide phases, and one
/// reduce-scatter + all-gather pair per ring (4 Y rings + 4 X lines).
#[test]
fn recorder_sees_collective_and_phase_spans() {
    let elems = 1 << 10;
    let mut network = net(4, 4);
    let recorder = Recorder::shared();
    network.set_trace_sink(recorder.clone());
    let ins = inputs(16, elems, 13);
    two_dim_all_reduce(&mut network, &ins, Precision::F32, 1, None).unwrap();

    let count = |category: SpanCategory, name: &str| {
        recorder
            .span_totals()
            .iter()
            .find(|t| t.category == category && t.name == name)
            .map(|t| t.count)
            .unwrap_or(0)
    };
    assert_eq!(count(SpanCategory::Collective, "2d-all-reduce"), 1);
    for phase in [
        "y-reduce-scatter",
        "x-reduce-scatter",
        "x-all-gather",
        "y-all-gather",
    ] {
        assert_eq!(count(SpanCategory::CollectivePhase, phase), 1, "{phase}");
    }
    assert_eq!(count(SpanCategory::CollectivePhase, "reduce-scatter"), 8);
    assert_eq!(count(SpanCategory::CollectivePhase, "all-gather"), 8);
}

/// Attaching a sink must not perturb the simulation: identical outputs and
/// identical finish time with and without tracing (NoopSink-by-absence is
/// the zero-overhead default).
#[test]
fn tracing_does_not_perturb_simulated_time() {
    let elems = 1 << 12;
    let ins = inputs(16, elems, 21);

    let mut plain = net(4, 4);
    let untraced = two_dim_all_reduce(&mut plain, &ins, Precision::F32, 1, None).unwrap();

    let mut traced_net = net(4, 4);
    traced_net.set_trace_sink(Recorder::shared());
    let traced = two_dim_all_reduce(&mut traced_net, &ins, Precision::F32, 1, None).unwrap();

    assert_eq!(untraced.time, traced.time);
    assert_eq!(untraced.outputs, traced.outputs);
    assert_eq!(untraced.breakdown, traced.breakdown);
}

/// The Chrome export is deterministic (byte-identical across identical
/// runs) and survives a serde_json round trip.
#[test]
fn chrome_trace_export_round_trips_and_is_deterministic() {
    let run = || {
        let mut network = net(2, 4);
        let recorder = Recorder::shared();
        network.set_trace_sink(recorder.clone());
        let ins = inputs(8, 256, 3);
        two_dim_all_reduce(&mut network, &ins, Precision::F32, 1, None).unwrap();
        recorder.chrome_trace().expect("chrome trace serializes")
    };
    let a = run();
    let b = run();
    let text_a = serde_json::to_string(&a).unwrap();
    let text_b = serde_json::to_string(&b).unwrap();
    assert_eq!(text_a, text_b, "export must be byte-identical across runs");

    let back: serde_json::Value = serde_json::from_str(&text_a).unwrap();
    assert_eq!(back, a, "export must round-trip through the parser");
    assert!(a.get("traceEvents").is_some());
    assert!(a.get("otherData").is_some(), "metrics summary embedded");
}
