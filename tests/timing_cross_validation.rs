//! Cross-validation of the two timing layers: the α–β closed forms must
//! track the event-driven numeric simulation across mesh shapes, payload
//! sizes and precisions — otherwise the 4096-chip numbers rest on a model
//! that disagrees with the machine.

use multipod::collectives::timing::RingCosts;
use multipod::collectives::twod::{two_dim_all_reduce, two_dim_all_reduce_time};
use multipod::collectives::{ring, Precision};
use multipod::simnet::{Network, NetworkConfig, SimTime};
use multipod::tensor::{Shape, Tensor, TensorRng};
use multipod::topology::{Multipod, MultipodConfig};

fn net(x: u32, y: u32) -> Network {
    Network::new(
        Multipod::new(MultipodConfig::mesh(x, y, true)),
        NetworkConfig::tpu_v3(),
    )
}

fn inputs(n: usize, elems: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = TensorRng::seed(seed);
    (0..n)
        .map(|_| rng.uniform(Shape::vector(elems), -1.0, 1.0))
        .collect()
}

/// The α–β unidirectional ring model vs the barrier-stepped numeric
/// execution: within 2x across ring sizes and payloads (the numeric
/// barriers cost extra latency; the bandwidth term must agree).
#[test]
fn ring_alpha_beta_tracks_numeric_execution() {
    for (y, elems) in [(4u32, 1 << 12), (8, 1 << 14), (16, 1 << 16), (32, 1 << 18)] {
        let mut network = net(1, y);
        let ring_y = network.mesh().y_ring(0);
        let ins = inputs(y as usize, elems, y as u64);
        let numeric = ring::all_reduce_unidirectional(
            &mut network,
            &ring_y,
            &ins,
            Precision::F32,
            ring::Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap()
        .time
        .seconds();
        let fresh = net(1, y);
        let costs = RingCosts::from_ring(&fresh, &fresh.mesh().y_ring(0), 1);
        let analytic = costs.all_reduce_time(elems, Precision::F32, false);
        let ratio = numeric / analytic;
        assert!(
            (0.5..2.0).contains(&ratio),
            "y={y} elems={elems}: numeric={numeric} analytic={analytic} ratio={ratio}"
        );
    }
}

/// Same cross-check for the full 2-D schedule, both precisions.
#[test]
fn two_dim_alpha_beta_tracks_numeric_execution() {
    for (x, y, elems) in [(4u32, 4u32, 1 << 12), (8, 8, 1 << 14), (16, 8, 1 << 14)] {
        for precision in [Precision::F32, Precision::Bf16] {
            let mut network = net(x, y);
            let n = network.mesh().num_chips();
            let ins = inputs(n, elems, (x + y) as u64);
            let numeric = two_dim_all_reduce(&mut network, &ins, precision, 1, None)
                .unwrap()
                .time
                .seconds();
            let fresh = net(x, y);
            let analytic = two_dim_all_reduce_time(&fresh, elems, precision, 1).total();
            let ratio = numeric / analytic;
            assert!(
                (0.4..4.0).contains(&ratio),
                "{x}x{y} elems={elems} {precision:?}: ratio={ratio}"
            );
        }
    }
}

/// Both layers must rank configurations the same way: if the α–β model
/// says mesh A beats mesh B for the same payload, the numeric simulation
/// must agree (ranking consistency is what the executor's conclusions
/// rest on).
#[test]
fn layers_agree_on_configuration_ranking() {
    let elems = 1 << 14;
    let configs = [(2u32, 8u32), (4, 4), (8, 2)];
    let mut numeric_times = Vec::new();
    let mut analytic_times = Vec::new();
    for &(x, y) in &configs {
        let mut network = net(x, y);
        let n = network.mesh().num_chips();
        let ins = inputs(n, elems, 5);
        numeric_times.push(
            two_dim_all_reduce(&mut network, &ins, Precision::F32, 1, None)
                .unwrap()
                .time
                .seconds(),
        );
        let fresh = net(x, y);
        analytic_times.push(two_dim_all_reduce_time(&fresh, elems, Precision::F32, 1).total());
    }
    // Near-ties (the α–β model is x/y-symmetric for some shapes) make a
    // full-order comparison noisy; both layers must at least agree on the
    // winning configuration.
    let argmin = |v: &[f64]| {
        v.iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap()
    };
    assert_eq!(
        argmin(&numeric_times),
        argmin(&analytic_times),
        "numeric={numeric_times:?} analytic={analytic_times:?}"
    );
}
