//! Failure injection across crates: link failures, straggler hosts, and
//! padded evaluation all degrade gracefully.

use multipod::collectives::{ring, Precision};
use multipod::metrics::accuracy::{distributed_accuracy, EvalShard};
use multipod::simnet::{Network, NetworkConfig, NetworkError, SimTime};
use multipod::tensor::{Shape, Tensor, TensorRng};
use multipod::topology::{Coord, Multipod, MultipodConfig, TopologyError};

/// A failed X link forces the router onto the Y-then-X detour; transfers
/// still complete (slower), and untouched traffic is unaffected.
#[test]
fn transfers_reroute_around_failed_links() {
    let mesh = Multipod::new(MultipodConfig::mesh(4, 4, false));
    let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
    let a = net.mesh().chip_at(Coord::new(0, 0));
    let b = net.mesh().chip_at(Coord::new(3, 3));
    let healthy = net.transfer(a, b, 1 << 20, SimTime::ZERO).unwrap();

    let x1 = net.mesh().chip_at(Coord::new(1, 0));
    // The fault wrapper invalidates cached routes/occupancy itself — no
    // manual `net.reset()` needed (and forgetting one is no longer a bug).
    net.fail_link(a, x1, SimTime::ZERO);
    let degraded = net.transfer(a, b, 1 << 20, SimTime::ZERO).unwrap();
    assert!(degraded.finish >= healthy.finish);
    assert_eq!(degraded.bytes, healthy.bytes);
}

/// Collectives on a ring with a failed link: the wrap-around traffic
/// routes the long way, correctness is preserved, time degrades.
#[test]
fn ring_allreduce_survives_failed_wrap_link() {
    let build = || {
        let mesh = Multipod::new(MultipodConfig::mesh(1, 8, true));
        Network::new(mesh, NetworkConfig::tpu_v3())
    };
    let mut rng = TensorRng::seed(3);
    let inputs: Vec<Tensor> = (0..8)
        .map(|_| rng.uniform(Shape::vector(64), -1.0, 1.0))
        .collect();
    let reference = Tensor::sum_all(&inputs).unwrap();

    let mut healthy_net = build();
    let ring_y = healthy_net.mesh().y_ring(0);
    let healthy = ring::all_reduce_unidirectional(
        &mut healthy_net,
        &ring_y,
        &inputs,
        Precision::F32,
        ring::Direction::Forward,
        SimTime::ZERO,
    )
    .unwrap();

    let mut broken_net = build();
    let top = broken_net.mesh().chip_at(Coord::new(0, 0));
    let bottom = broken_net.mesh().chip_at(Coord::new(0, 7));
    broken_net.fail_link(top, bottom, SimTime::ZERO); // the torus wrap link
    let ring_y = broken_net.mesh().y_ring(0);
    let degraded = ring::all_reduce_unidirectional(
        &mut broken_net,
        &ring_y,
        &inputs,
        Precision::F32,
        ring::Direction::Forward,
        SimTime::ZERO,
    )
    .unwrap();

    for (h, d) in healthy.outputs.iter().zip(&degraded.outputs) {
        assert!(h.max_abs_diff(&reference) < 1e-4);
        assert!(d.max_abs_diff(&reference) < 1e-4);
    }
    assert!(degraded.time > healthy.time, "detour must cost time");
}

/// A fully partitioned chip (all links down) makes routes fail loudly,
/// not silently.
#[test]
fn isolated_chip_reports_no_route() {
    let mesh = Multipod::new(MultipodConfig::mesh(3, 1, false));
    let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
    let a = net.mesh().chip_at(Coord::new(0, 0));
    let b = net.mesh().chip_at(Coord::new(1, 0));
    net.fail_link(a, b, SimTime::ZERO);
    let err = net.transfer(a, b, 1024, SimTime::ZERO).unwrap_err();
    assert!(matches!(
        err,
        NetworkError::Route(TopologyError::NoRoute { .. })
    ));
}

/// Straggler host: one host 10x slower than the rest gates every step
/// (the §3.5 imbalance), and deep prefetching hides it.
#[test]
fn straggler_host_gates_steps_until_prefetch_hides_it() {
    use multipod::input::host_pipeline::{simulate_run, HostPipelineConfig};
    // All hosts tail-free except a high tail probability (a stand-in for
    // one slow host: the max-over-hosts semantics makes frequent tails on
    // any host equivalent).
    let slow = HostPipelineConfig {
        tail_probability: 0.2,
        prefetch_capacity: 1,
        ..HostPipelineConfig::compressed_imagenet()
    };
    let gated = simulate_run(&slow, 16, 24, 1.0e-3, 200, 13).expect("non-empty run");
    assert!(gated.stalled_fraction > 0.3, "{gated:?}");
    let buffered = HostPipelineConfig {
        prefetch_capacity: 2048,
        ..slow
    };
    let hidden = simulate_run(&buffered, 16, 24, 1.0e-3, 200, 13).expect("non-empty run");
    assert!(
        hidden.mean_stall <= gated.mean_stall,
        "hidden={hidden:?} gated={gated:?}"
    );
}

/// MLPerf eval padding (§3.4): dummy examples never change the metric,
/// even when they dominate the shard.
#[test]
fn eval_padding_is_metric_neutral() {
    let mut rng = TensorRng::seed(17);
    let classes = 10;
    let real_examples = 37;
    let padded_to = 128;
    let logits = rng.uniform(Shape::of(&[padded_to, classes]), -1.0, 1.0);
    let labels: Vec<usize> = (0..padded_to).map(|i| i % classes).collect();
    let mut real = vec![false; padded_to];
    for r in real.iter_mut().take(real_examples) {
        *r = true;
    }
    let padded = EvalShard::new(logits.clone(), labels.clone(), real);

    // Reference: only the real rows.
    let real_logits = Tensor::new(
        Shape::of(&[real_examples, classes]),
        logits.data()[..real_examples * classes].to_vec(),
    );
    let unpadded = EvalShard::new(
        real_logits,
        labels[..real_examples].to_vec(),
        vec![true; real_examples],
    );
    assert_eq!(
        distributed_accuracy(&[padded]),
        distributed_accuracy(&[unpadded])
    );
}
