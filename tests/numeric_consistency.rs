//! Cross-crate numeric consistency: the real-math layers (collectives,
//! optimizers, partitioner) compose without losing correctness.

use std::collections::HashMap;

use multipod::collectives::twod::two_dim_all_reduce;
use multipod::collectives::{ring, Precision};
use multipod::hlo::{HloBuilder, Sharding, SpmdPartitioner};
use multipod::optim::{Lamb, Optimizer, StateKey};
use multipod::simnet::{Network, NetworkConfig, SimTime};
use multipod::tensor::{Shape, Tensor, TensorRng};
use multipod::topology::{ChipId, Multipod, MultipodConfig};

/// Full data-parallel training step on a simulated 4x4 pod: per-chip
/// gradients → 2-D all-reduce with a *sharded LAMB update* applied at the
/// shard owners → all replicas end with identical, correctly updated
/// weights (the §3.2 + §3.3 composition).
#[test]
fn sharded_lamb_inside_2d_allreduce_matches_replicated_reference() {
    let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
    let mut net = Network::new(mesh.clone(), NetworkConfig::tpu_v3());
    let elems = 256usize;
    let mut rng = TensorRng::seed(21);
    let w0 = rng.uniform(Shape::vector(elems), -1.0, 1.0);
    let grads: Vec<Tensor> = (0..mesh.num_chips())
        .map(|_| rng.uniform(Shape::vector(elems), -0.1, 0.1))
        .collect();

    // Reference: replicated LAMB on the summed gradient.
    let summed = Tensor::sum_all(&grads).unwrap();
    let mut ref_opt = Lamb::new(0.01, 0.01);
    let mut ref_w = w0.clone();
    ref_opt.step(0, &mut ref_w, &summed).unwrap();

    // Sharded: the 2-D schedule leaves each chip one shard of summed
    // gradients; each owner updates its weight shard with per-shard LAMB
    // state, then the broadcast phases distribute the updated shards.
    //
    // LAMB's trust ratio needs whole-layer norms; precompute them from
    // the reference (in production this is the scalar all-reduce of
    // `multipod::optim::wus`).
    let chips_count = mesh.num_chips();
    let shards_total = chips_count; // 16 shards of 16 elems
    let shard_elems = elems / shards_total;
    let mut shard_opt = Lamb::new(0.01, 0.01);
    // Stats pass: accumulate global norms from per-shard prepares on a
    // scratch optimizer.
    let mut probe = Lamb::new(0.01, 0.01);
    let mut global = multipod::optim::LayerStats::default();
    let w_shards = w0.split(0, shards_total).unwrap();
    let g_shards = summed.split(0, shards_total).unwrap();
    for s in 0..shards_total {
        let (_u, stats) = probe
            .prepare(StateKey { layer: 0, shard: s }, &w_shards[s], &g_shards[s])
            .unwrap();
        global = global.merge(stats);
    }

    // The shard a chip owns is determined by the 2-D schedule itself; let
    // the update closure compute the right slice from the shard length.
    let mut shard_index = HashMap::new();
    let mut update = |chip: ChipId, shard: &mut Tensor| {
        // Identify which global shard this is by matching contents
        // against the summed gradient slices (robust to schedule
        // internals).
        let idx = (0..shards_total)
            .find(|&s| shard.max_abs_diff(&g_shards[s]) < 1e-4)
            .expect("shard corresponds to a slice of the summed gradient");
        shard_index.insert(chip, idx);
        let mut w_shard = w_shards[idx].clone();
        let (u, stats) = shard_opt
            .prepare(
                StateKey {
                    layer: 0,
                    shard: idx,
                },
                &w_shard,
                shard,
            )
            .unwrap();
        let _ = stats; // replaced by the globally merged norms
        shard_opt.apply(&mut w_shard, &u, global).unwrap();
        *shard = w_shard;
        assert_eq!(shard.len(), shard_elems);
    };
    let out = two_dim_all_reduce(&mut net, &grads, Precision::F32, 1, Some(&mut update))
        .expect("2-D all-reduce with WUS");

    for (i, o) in out.outputs.iter().enumerate() {
        assert!(
            o.max_abs_diff(&ref_w) < 1e-3,
            "chip {i}: sharded update diverged by {}",
            o.max_abs_diff(&ref_w)
        );
    }
    assert_eq!(shard_index.len(), mesh.num_chips());
}

/// Model parallelism (§3.1) composed with cross-replica gradient rings
/// (§3.3): two feature-sharded replicas compute partial matmuls,
/// all-reduce within their tiles, then sum gradients across replicas with
/// a peer-hopping ring — and the result matches the single-machine
/// reference.
#[test]
fn feature_sharded_forward_plus_peer_gradient_ring() {
    let parts = 2usize;
    // 4 chips in a row: tiles {0,1} and {2,3}; peers (0,2) and (1,3).
    let mesh = Multipod::new(MultipodConfig::mesh(4, 1, false));
    let mut net = Network::new(mesh.clone(), NetworkConfig::tpu_v3());

    let mut b = HloBuilder::new();
    let x = b.parameter("x", Shape::of(&[4, 8]), Sharding::Replicated);
    let w = b.parameter("w", Shape::of(&[8, 6]), Sharding::split(1, parts));
    let y = b.matmul(x, w).unwrap();
    let graph = b.build(vec![y]).unwrap();
    let program = SpmdPartitioner::new(parts).partition(&graph).unwrap();

    let mut rng = TensorRng::seed(5);
    let fx = rng.uniform(Shape::of(&[4, 8]), -1.0, 1.0);
    let fw = rng.uniform(Shape::of(&[8, 6]), -1.0, 1.0);
    let feeds: HashMap<String, Tensor> = [("x", fx.clone()), ("w", fw.clone())]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let reference = graph.evaluate(&feeds).unwrap();

    // Each tile executes the per-core program on its own chips.
    let tiles = mesh.model_tiles(2);
    let mut per_tile_outputs = Vec::new();
    for tile in &tiles {
        let (outs, _) = program
            .execute(&mut net, &feeds, tile.members())
            .expect("tile execution");
        per_tile_outputs.push(outs[0].clone());
    }
    for outs in &per_tile_outputs {
        let assembled = program.assemble_output(0, outs);
        assert!(assembled.max_abs_diff(&reference[0]) < 1e-4);
    }

    // "Gradients" (here: the per-core outputs) are summed across model
    // peers using the strided X ring that hops over the tile neighbour.
    for peer in 0..parts {
        let ring_peers = mesh.x_line_strided(0, peer as u32, 2);
        let inputs: Vec<Tensor> = per_tile_outputs.iter().map(|o| o[peer].clone()).collect();
        let reduced = ring::all_reduce_unidirectional(
            &mut net,
            &ring_peers,
            &inputs,
            Precision::F32,
            ring::Direction::Forward,
            SimTime::ZERO,
        )
        .expect("peer ring");
        let expect = Tensor::sum_all(&inputs).unwrap();
        for r in &reduced.outputs {
            assert!(r.max_abs_diff(&expect) < 1e-4);
        }
    }
}

/// bf16 gradient summation (§3.3's payload precision) stays within the
/// format's error bound through the full 2-D schedule.
#[test]
fn bf16_2d_allreduce_error_bounded() {
    let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
    let mut net = Network::new(mesh.clone(), NetworkConfig::tpu_v3());
    let mut rng = TensorRng::seed(9);
    let grads: Vec<Tensor> = (0..mesh.num_chips())
        .map(|_| rng.uniform(Shape::vector(64), 0.5, 1.5))
        .collect();
    let reference = Tensor::sum_all(&grads).unwrap();
    let out = two_dim_all_reduce(&mut net, &grads, Precision::Bf16, 1, None).unwrap();
    let bound = reference.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()))
        * mesh.num_chips() as f32
        * (1.0 / 128.0);
    for o in &out.outputs {
        assert!(o.max_abs_diff(&reference) <= bound);
    }
}
