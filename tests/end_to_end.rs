//! Cross-crate integration: the full executor pipeline reproduces the
//! paper's headline quantities.

use multipod::core::scaling::{standard_chip_counts, ScalingCurve};
use multipod::core::{presets, Executor};
use multipod::framework::FrameworkKind;
use multipod::models::catalog;

#[test]
fn table1_all_rows_run_and_land_in_band() {
    // (name, chips, paper minutes, tolerance factor)
    let rows = [
        ("ResNet-50", 4096u32, 0.48, 1.8),
        ("BERT", 4096, 0.39, 1.8),
        ("SSD", 4096, 0.46, 2.0),
        ("SSD", 2048, 0.623, 2.0),
        ("Transformer", 4096, 0.32, 2.0),
        ("MaskRCNN", 512, 8.1, 2.0),
        ("DLRM", 256, 2.4, 2.5),
    ];
    for (preset, chips, paper, tol) in rows.iter().map(|&(n, c, p, t)| {
        let preset = match n {
            "ResNet-50" => presets::resnet50(c),
            "BERT" => presets::bert(c),
            "SSD" => presets::ssd(c),
            "Transformer" => presets::transformer(c),
            "MaskRCNN" => presets::maskrcnn(c),
            _ => presets::dlrm(c),
        };
        (preset, c, p, t)
    }) {
        let r = Executor::new(preset).run().unwrap();
        let ours = r.end_to_end_minutes();
        assert!(
            ours > paper / tol && ours < paper * tol,
            "{} @ {chips}: ours={ours:.3} paper={paper}",
            r.name
        );
    }
}

#[test]
fn table2_init_ordering_holds_for_all_benchmarks() {
    use multipod::framework::{profiles, InitModel};
    let m = InitModel::calibrated();
    for name in [
        "ResNet-50",
        "BERT",
        "SSD",
        "Transformer",
        "MaskRCNN",
        "DLRM",
    ] {
        let p = profiles::by_name(name).expect("profile");
        let tf = m.init_seconds(FrameworkKind::TensorFlow, &p, 4096);
        let jax = m.init_seconds(FrameworkKind::Jax, &p, 4096);
        assert!(tf > jax, "{name}: TF init must exceed JAX");
        // JAX init is dominated by mesh bringup + one compile; TF adds
        // Θ(workers) graph construction.
        let tf_small = m.init_seconds(FrameworkKind::TensorFlow, &p, 256);
        assert!(tf > tf_small, "{name}: TF init grows with scale");
    }
}

#[test]
fn allreduce_share_grows_monotonically_with_scale() {
    // The Amdahl story of Figures 6/8, for both data-parallel models.
    for w in [catalog::resnet50(), catalog::bert()] {
        let curve = ScalingCurve::sweep(&w, &standard_chip_counts(4096)).expect("sweep");
        let shares: Vec<f64> = curve
            .points
            .iter()
            .map(|p| p.report.step.all_reduce_fraction())
            .collect();
        for pair in shares.windows(2) {
            assert!(
                pair[1] >= pair[0] - 1e-9,
                "{}: share not monotone: {shares:?}",
                w.name
            );
        }
        assert!(*shares.last().unwrap() > 0.15, "{}: {shares:?}", w.name);
    }
}

#[test]
fn every_model_prefers_its_paper_scale_or_larger() {
    // MaskRCNN cannot go past 512 chips at all: 1024 chips would mean
    // more 4-core replicas than its largest converging batch (256) has
    // samples — the model reproduces why Table 1 stops at 512.
    let w = catalog::maskrcnn();
    assert_eq!(w.global_batch(512), 256);
    let too_many_replicas =
        (1024 * 2) / w.parallelism.cores_per_replica() > w.convergence.max_batch.unwrap();
    assert!(too_many_replicas, "512 chips must be MaskRCNN's ceiling");

    let dlrm_small = Executor::new(presets::dlrm(256)).run().unwrap();
    let dlrm_large = Executor::new(presets::dlrm(1024)).run().unwrap();
    let gain = dlrm_small.end_to_end_minutes() / dlrm_large.end_to_end_minutes();
    assert!(gain < 2.0, "DLRM communication caps scale-out: {gain}");

    // BERT, in contrast, keeps improving to the full multipod.
    let bert_pod = Executor::new(presets::bert(1024)).run().unwrap();
    let bert_multipod = Executor::new(presets::bert(4096)).run().unwrap();
    assert!(
        bert_multipod.end_to_end_minutes() < 0.5 * bert_pod.end_to_end_minutes(),
        "BERT should gain >2x from 1024 to 4096 chips"
    );
}

#[test]
fn jax_runs_report_lower_eval_and_init_overheads() {
    for make in [presets::ssd as fn(u32) -> _, presets::resnet50] {
        let mut jax_preset = make(2048);
        jax_preset.framework = FrameworkKind::Jax;
        let tf = Executor::new(make(2048)).run().unwrap();
        let jax = Executor::new(jax_preset).run().unwrap();
        assert!(jax.init_seconds < tf.init_seconds);
        assert!(jax.eval_seconds <= tf.eval_seconds + 1e-9);
        // Device train time is framework-independent (§4).
        assert!((jax.train_seconds - tf.train_seconds).abs() < 1e-9);
    }
}

#[test]
fn reports_serialize_to_json() {
    let r = Executor::new(presets::transformer(512)).run().unwrap();
    let json = serde_json::to_string(&r).expect("report serializes");
    assert!(json.contains("\"Transformer\""));
    assert!(json.contains("gradient_comm"));
}
