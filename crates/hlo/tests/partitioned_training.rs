//! Forward **and backward** through the SPMD partitioner (§3.1's full
//! story): the gradient graph of a feature-sharded model partitions into
//! partial matmuls + all-reduces, executes on the simulated tile, and
//! matches the reference gradients — then a real training loop converges.

use std::collections::HashMap;

use multipod_hlo::{gradients, HloBuilder, Sharding, SpmdPartitioner};
use multipod_simnet::{Network, NetworkConfig};
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::{ChipId, Multipod, MultipodConfig};

fn feeds(pairs: Vec<(&str, Tensor)>) -> HashMap<String, Tensor> {
    pairs.into_iter().map(|(n, t)| (n.to_string(), t)).collect()
}

/// Builds loss = sum((relu(x·W1)·W2)²-ish) with W1/W2 feature-sharded.
fn sharded_mlp(
    parts: usize,
) -> (
    multipod_hlo::HloGraph,
    multipod_hlo::NodeId,
    Vec<multipod_hlo::NodeId>,
) {
    let mut b = HloBuilder::new();
    let x = b.parameter("x", Shape::of(&[4, 8]), Sharding::Replicated);
    let w1 = b.parameter("w1", Shape::of(&[8, 16]), Sharding::split(1, parts));
    let w2 = b.parameter("w2", Shape::of(&[16, 8]), Sharding::split(0, parts));
    let target = b.parameter("target", Shape::of(&[4, 8]), Sharding::Replicated);
    let h = b.matmul(x, w1).unwrap();
    let h = b.relu(h).unwrap();
    let y = b.matmul(h, w2).unwrap();
    // Squared error: sum((y - t) ⊙ (y - t)).
    let neg_t = b.constant(Tensor::fill(Shape::of(&[4, 8]), -1.0));
    let minus_t = b.mul(target, neg_t).unwrap();
    let resid = b.add(y, minus_t).unwrap();
    let sq = b.mul(resid, resid).unwrap();
    let s = b.reduce_sum(sq, 0).unwrap();
    let loss = b.reduce_sum(s, 0).unwrap();
    let graph = b.build(vec![loss]).unwrap();
    let gg = gradients(&graph, loss, &[w1, w2]).unwrap();
    let grads = gg.grads.clone();
    (gg.graph, gg.loss, grads)
}

#[test]
fn partitioned_backward_matches_reference_gradients() {
    let parts = 4usize;
    let (graph, _loss, _grads) = sharded_mlp(parts);
    let program = SpmdPartitioner::new(parts).partition(&graph).unwrap();
    // §3.1: "The backward pass has a similar partial matrix multiplication
    // followed by allreduce" — the combined graph all-reduces more than a
    // forward-only one.
    assert!(program.comm_stats().all_reduces >= 2);

    let mut rng = TensorRng::seed(77);
    let f = feeds(vec![
        ("x", rng.uniform(Shape::of(&[4, 8]), -1.0, 1.0)),
        ("w1", rng.uniform(Shape::of(&[8, 16]), -0.5, 0.5)),
        ("w2", rng.uniform(Shape::of(&[16, 8]), -0.5, 0.5)),
        ("target", rng.uniform(Shape::of(&[4, 8]), -1.0, 1.0)),
    ]);
    let reference = graph.evaluate(&f).unwrap();

    let mesh = Multipod::new(MultipodConfig::mesh(parts as u32, 1, false));
    let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
    let tile: Vec<ChipId> = net.mesh().chips().collect();
    let (outs, _) = program.execute(&mut net, &f, &tile).unwrap();
    for (o, per_core) in outs.iter().enumerate() {
        let assembled = program.assemble_output(o, per_core);
        assert!(
            assembled.max_abs_diff(&reference[o]) < 1e-2,
            "output {o} diverged by {}",
            assembled.max_abs_diff(&reference[o])
        );
    }
}

#[test]
fn partitioned_training_converges() {
    let parts = 2usize;
    let (graph, _loss, _grads) = sharded_mlp(parts);
    let program = SpmdPartitioner::new(parts).partition(&graph).unwrap();
    let mesh = Multipod::new(MultipodConfig::mesh(parts as u32, 1, false));
    let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
    let tile: Vec<ChipId> = net.mesh().chips().collect();

    let mut rng = TensorRng::seed(99);
    let x = rng.uniform(Shape::of(&[4, 8]), -1.0, 1.0);
    let target = rng.uniform(Shape::of(&[4, 8]), -0.5, 0.5);
    let mut w1 = rng.uniform(Shape::of(&[8, 16]), -0.3, 0.3);
    let mut w2 = rng.uniform(Shape::of(&[16, 8]), -0.3, 0.3);

    let mut first_loss = None;
    let mut last_loss = 0.0f32;
    for _ in 0..60 {
        let f = feeds(vec![
            ("x", x.clone()),
            ("w1", w1.clone()),
            ("w2", w2.clone()),
            ("target", target.clone()),
        ]);
        let (outs, _) = program.execute(&mut net, &f, &tile).unwrap();
        net.reset();
        let loss = program.assemble_output(0, &outs[0]).data()[0];
        let dw1 = program.assemble_output(1, &outs[1]);
        let dw2 = program.assemble_output(2, &outs[2]);
        first_loss.get_or_insert(loss);
        last_loss = loss;
        w1.axpy(-0.02, &dw1).unwrap();
        w2.axpy(-0.02, &dw2).unwrap();
    }
    let first = first_loss.unwrap();
    assert!(
        last_loss < 0.05 * first,
        "training through the partitioner must converge: {first} -> {last_loss}"
    );
}

#[test]
fn spatial_conv_backward_partitions_and_matches() {
    // Gradient of a spatially partitioned conv: the halo exchange shows
    // up in the forward product, the kernel gradient falls back to a
    // replicated computation, and numbers match the reference.
    let parts = 2usize;
    let mut b = HloBuilder::new();
    let img = b.parameter("img", Shape::of(&[8, 6]), Sharding::split(0, parts));
    let k = b.parameter("k", Shape::of(&[3, 3]), Sharding::Replicated);
    let c = b.conv2d_same(img, k).unwrap();
    let sq = b.mul(c, c).unwrap();
    let s = b.reduce_sum(sq, 0).unwrap();
    let loss = b.reduce_sum(s, 0).unwrap();
    let graph = b.build(vec![loss]).unwrap();
    let gg = gradients(&graph, loss, &[k]).unwrap();
    let program = SpmdPartitioner::new(parts).partition(&gg.graph).unwrap();
    assert!(program.comm_stats().halo_exchanges >= 1);

    let mut rng = TensorRng::seed(55);
    let f = feeds(vec![
        ("img", rng.uniform(Shape::of(&[8, 6]), -1.0, 1.0)),
        ("k", rng.uniform(Shape::of(&[3, 3]), -1.0, 1.0)),
    ]);
    let reference = gg.graph.evaluate(&f).unwrap();
    let mesh = Multipod::new(MultipodConfig::mesh(parts as u32, 1, false));
    let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
    let tile: Vec<ChipId> = net.mesh().chips().collect();
    let (outs, _) = program.execute(&mut net, &f, &tile).unwrap();
    for (o, per_core) in outs.iter().enumerate() {
        let assembled = program.assemble_output(o, per_core);
        assert!(
            assembled.max_abs_diff(&reference[o]) < 1e-3,
            "output {o} diverged"
        );
    }
}
