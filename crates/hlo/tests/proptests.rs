//! Property test: random layer stacks, random shardings — the partitioned
//! program always matches the reference interpreter.

use std::collections::HashMap;

use multipod_hlo::{CommunicationOpt, HloBuilder, Sharding, SpmdPartitioner};
use multipod_simnet::{Network, NetworkConfig};
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::{ChipId, Multipod, MultipodConfig};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Layer {
    MatMulReplicated,
    MatMulFeatureSharded,
    Relu,
    AddBias,
    ReduceRows,
}

fn arb_layers() -> impl Strategy<Value = Vec<Layer>> {
    prop::collection::vec(
        prop_oneof![
            Just(Layer::MatMulReplicated),
            Just(Layer::MatMulFeatureSharded),
            Just(Layer::Relu),
            Just(Layer::AddBias),
        ],
        1..5,
    )
    .prop_flat_map(|layers| {
        // Optionally cap the stack with a row reduction.
        prop::bool::ANY.prop_map(move |reduce| {
            let mut layers = layers.clone();
            if reduce {
                layers.push(Layer::ReduceRows);
            }
            layers
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any stack of supported layers with mixed shardings partitions into
    /// a program whose assembled outputs equal the reference.
    #[test]
    fn random_stacks_partition_correctly(
        layers in arb_layers(),
        parts_pow in 1u32..3,
        batch_split in any::<bool>(),
        seed in 0u64..10_000,
        naive in any::<bool>(),
    ) {
        let parts = 1usize << parts_pow; // 2 or 4
        let rows = 8usize;
        let dim = 8usize;
        let mut b = HloBuilder::new();
        let x_sharding = if batch_split {
            Sharding::split(0, parts)
        } else {
            Sharding::Replicated
        };
        let x = b.parameter("x", Shape::of(&[rows, dim]), x_sharding);
        let mut cur = x;
        let mut feeds: Vec<(String, Shape)> = vec![("x".into(), Shape::of(&[rows, dim]))];
        let mut reduced = false;
        for (i, layer) in layers.iter().enumerate() {
            if reduced {
                break;
            }
            match layer {
                Layer::MatMulReplicated => {
                    let name = format!("w{i}");
                    let w = b.parameter(&name, Shape::of(&[dim, dim]), Sharding::Replicated);
                    feeds.push((name, Shape::of(&[dim, dim])));
                    cur = b.matmul(cur, w).unwrap();
                }
                Layer::MatMulFeatureSharded => {
                    let name = format!("w{i}");
                    let w = b.parameter(&name, Shape::of(&[dim, dim]), Sharding::split(1, parts));
                    feeds.push((name, Shape::of(&[dim, dim])));
                    cur = b.matmul(cur, w).unwrap();
                }
                Layer::Relu => {
                    cur = b.relu(cur).unwrap();
                }
                Layer::AddBias => {
                    let name = format!("b{i}");
                    let shape = Shape::of(&[rows, dim]);
                    let bias = b.parameter(&name, shape.clone(), Sharding::Replicated);
                    feeds.push((name, shape));
                    cur = b.add(cur, bias).unwrap();
                }
                Layer::ReduceRows => {
                    cur = b.reduce_sum(cur, 0).unwrap();
                    reduced = true;
                }
            }
        }
        let graph = b.build(vec![cur]).unwrap();

        let comm = if naive { CommunicationOpt::Naive } else { CommunicationOpt::Optimized };
        let program = match SpmdPartitioner::with_comm_opt(parts, comm).partition(&graph) {
            Ok(p) => p,
            // Some add-bias shapes cannot follow a feature-sharded matmul
            // under certain sharding states; rejection is acceptable,
            // wrong numbers are not.
            Err(_) => return Ok(()),
        };

        let mut rng = TensorRng::seed(seed);
        let feed_map: HashMap<String, Tensor> = feeds
            .into_iter()
            .map(|(name, shape)| {
                let t = rng.uniform(shape, -1.0, 1.0);
                (name, t)
            })
            .collect();
        let reference = graph.evaluate(&feed_map).unwrap();

        let mesh = Multipod::new(MultipodConfig::mesh(parts as u32, 1, false));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let tile: Vec<ChipId> = net.mesh().chips().collect();
        let (outs, _) = program.execute(&mut net, &feed_map, &tile).unwrap();
        let assembled = program.assemble_output(0, &outs[0]);
        prop_assert!(
            assembled.max_abs_diff(&reference[0]) < 1e-3,
            "layers={layers:?} parts={parts} naive={naive} diff={}",
            assembled.max_abs_diff(&reference[0])
        );
    }
}
