//! The §4.5 partitioner extensions: gather → onehot-matmul and
//! distributed top-k, verified numerically against the reference
//! interpreter and checked for the paper's cost claims.

use std::collections::HashMap;

use multipod_hlo::{GatherStrategy, HloBuilder, Sharding, SpmdPartitioner};
use multipod_simnet::{Network, NetworkConfig};
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::{ChipId, Multipod, MultipodConfig};

fn tile_net(parts: u32) -> (Network, Vec<ChipId>) {
    let mesh = Multipod::new(MultipodConfig::mesh(parts, 1, false));
    let net = Network::new(mesh, NetworkConfig::tpu_v3());
    let tile = net.mesh().chips().collect();
    (net, tile)
}

fn gather_graph(parts: usize) -> (multipod_hlo::HloGraph, HashMap<String, Tensor>) {
    let mut b = HloBuilder::new();
    let table = b.parameter("table", Shape::of(&[32, 4]), Sharding::split(0, parts));
    let mut rng = TensorRng::seed(13);
    let indices = b.constant(Tensor::from_slice(&[3.0, 31.0, 0.0, 17.0, 8.0]));
    let y = b.gather(table, indices).unwrap();
    let g = b.build(vec![y]).unwrap();
    let feeds = [("table", rng.uniform(Shape::of(&[32, 4]), -1.0, 1.0))]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    (g, feeds)
}

#[test]
fn onehot_gather_matches_reference() {
    for parts in [2usize, 4, 8] {
        let (g, feeds) = gather_graph(parts);
        let p = SpmdPartitioner::new(parts)
            .with_gather_strategy(GatherStrategy::OneHotMatMul)
            .partition(&g)
            .unwrap();
        assert!(p.comm_stats().all_reduces >= 1);
        assert_eq!(p.comm_stats().all_gathers, 0);
        let (mut net, tile) = tile_net(parts as u32);
        let (outs, _) = p.execute(&mut net, &feeds, &tile).unwrap();
        let reference = g.evaluate(&feeds).unwrap();
        for core_out in &outs[0] {
            assert!(core_out.max_abs_diff(&reference[0]) < 1e-5);
        }
    }
}

#[test]
fn allgather_gather_matches_reference_but_moves_the_table() {
    let parts = 4;
    let (g, feeds) = gather_graph(parts);
    let slow = SpmdPartitioner::new(parts)
        .with_gather_strategy(GatherStrategy::AllGather)
        .partition(&g)
        .unwrap();
    let fast = SpmdPartitioner::new(parts)
        .with_gather_strategy(GatherStrategy::OneHotMatMul)
        .partition(&g)
        .unwrap();
    assert!(slow.comm_stats().all_gathers >= 1);
    // The all-gather strategy ships the whole table; the onehot strategy
    // all-reduces only the [k x d] result.
    assert!(
        slow.comm_stats().bytes_per_core > fast.comm_stats().bytes_per_core,
        "slow={:?} fast={:?}",
        slow.comm_stats(),
        fast.comm_stats()
    );
    let (mut net, tile) = tile_net(parts as u32);
    let (outs, _) = slow.execute(&mut net, &feeds, &tile).unwrap();
    let reference = g.evaluate(&feeds).unwrap();
    for core_out in &outs[0] {
        assert!(core_out.max_abs_diff(&reference[0]) < 1e-5);
    }
}

#[test]
fn onehot_flops_run_on_the_mxu_and_split_linearly() {
    // §4.5: onehot-matmul gathers "execute on the TPU matrix unit
    // achieving linear speedups when increasing the number of model
    // parallelism partitions".
    let (g2, _) = gather_graph(2);
    let (g8, _) = gather_graph(8);
    let p2 = SpmdPartitioner::new(2).partition(&g2).unwrap();
    let p8 = SpmdPartitioner::new(8).partition(&g8).unwrap();
    assert!(p2.flops_per_core() > 0, "onehot gather must be MXU work");
    let ratio = p2.flops_per_core() as f64 / p8.flops_per_core() as f64;
    assert!((3.5..4.5).contains(&ratio), "linear split: ratio={ratio}");
}

#[test]
fn distributed_topk_matches_reference() {
    for parts in [2usize, 4] {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[64]), Sharding::split(0, parts));
        let y = b.top_k(x, 5).unwrap();
        let g = b.build(vec![y]).unwrap();
        let p = SpmdPartitioner::new(parts).partition(&g).unwrap();
        // Local top-k → all-gather candidates → final top-k.
        assert!(p.comm_stats().all_gathers >= 1);

        let mut rng = TensorRng::seed(7 + parts as u64);
        let feeds: HashMap<String, Tensor> = [("x", rng.uniform(Shape::of(&[64]), -10.0, 10.0))]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let (mut net, tile) = tile_net(parts as u32);
        let (outs, _) = p.execute(&mut net, &feeds, &tile).unwrap();
        let reference = g.evaluate(&feeds).unwrap();
        for core_out in &outs[0] {
            assert!(core_out.max_abs_diff(&reference[0]) < 1e-6);
        }
    }
}

#[test]
fn topk_larger_than_shard_is_rejected() {
    let mut b = HloBuilder::new();
    let x = b.parameter("x", Shape::of(&[16]), Sharding::split(0, 4));
    let y = b.top_k(x, 8).unwrap(); // 8 > 16/4
    let g = b.build(vec![y]).unwrap();
    assert!(SpmdPartitioner::new(4).partition(&g).is_err());
}

#[test]
fn replicated_gather_and_topk_stay_local() {
    let mut b = HloBuilder::new();
    let table = b.parameter("table", Shape::of(&[16, 2]), Sharding::Replicated);
    let idx = b.constant(Tensor::from_slice(&[1.0, 2.0]));
    let gathered = b.gather(table, idx).unwrap();
    let summed = b.reduce_sum(gathered, 1).unwrap();
    let top = b.top_k(summed, 1).unwrap();
    let g = b.build(vec![top]).unwrap();
    let p = SpmdPartitioner::new(4).partition(&g).unwrap();
    assert_eq!(p.comm_stats().total_collectives(), 0);
}
