//! The dataflow graph, its builder, and the reference interpreter.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use multipod_tensor::{Shape, Tensor};

use crate::op::Op;
use crate::sharding::Sharding;
use crate::HloError;

/// Identifies a node within an [`HloGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) struct Node {
    pub(crate) op: Op,
    pub(crate) shape: Shape,
    pub(crate) sharding: Option<Sharding>,
}

/// An immutable, shape-checked dataflow graph in topological order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HloGraph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) outputs: Vec<NodeId>,
}

/// Incrementally builds an [`HloGraph`] with eager shape inference.
///
/// ```
/// use multipod_hlo::{HloBuilder, Sharding};
/// use multipod_tensor::Shape;
///
/// let mut b = HloBuilder::new();
/// let x = b.parameter("x", Shape::of(&[4, 8]), Sharding::Replicated);
/// let w = b.parameter("w", Shape::of(&[8, 2]), Sharding::Replicated);
/// let y = b.matmul(x, w).unwrap();
/// let g = b.build(vec![y]).unwrap();
/// assert_eq!(g.shape(y).dims(), &[4, 2]);
/// ```
#[derive(Debug, Default)]
pub struct HloBuilder {
    nodes: Vec<Node>,
}

impl HloBuilder {
    /// An empty builder.
    pub fn new() -> HloBuilder {
        HloBuilder { nodes: Vec::new() }
    }

    /// Declares a named input with a sharding annotation.
    pub fn parameter(&mut self, name: &str, shape: Shape, sharding: Sharding) -> NodeId {
        self.push(
            Op::Parameter {
                name: name.to_string(),
            },
            shape,
            Some(sharding),
        )
    }

    /// Embeds a constant (always replicated).
    pub fn constant(&mut self, value: Tensor) -> NodeId {
        let shape = value.shape().clone();
        self.push(Op::Constant { value }, shape, Some(Sharding::Replicated))
    }

    /// `lhs[m,k] × rhs[k,n]`.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for incompatible operands.
    pub fn matmul(&mut self, lhs: NodeId, rhs: NodeId) -> Result<NodeId, HloError> {
        self.infer(Op::MatMul { lhs, rhs })
    }

    /// Same-padded 2-D convolution.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for incompatible operands.
    pub fn conv2d_same(&mut self, input: NodeId, kernel: NodeId) -> Result<NodeId, HloError> {
        self.infer(Op::Conv2dSame { input, kernel })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for incompatible operands.
    pub fn add(&mut self, lhs: NodeId, rhs: NodeId) -> Result<NodeId, HloError> {
        self.infer(Op::Add { lhs, rhs })
    }

    /// Elementwise ReLU.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::UnknownNode`] for a bad operand id.
    pub fn relu(&mut self, input: NodeId) -> Result<NodeId, HloError> {
        self.infer(Op::Relu { input })
    }

    /// Sum reduction over `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for a bad axis.
    pub fn reduce_sum(&mut self, input: NodeId, axis: usize) -> Result<NodeId, HloError> {
        self.infer(Op::ReduceSum { input, axis })
    }

    /// Row gather by a rank-1 index tensor (§4.5's ROIAlign pattern).
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for bad ranks.
    pub fn gather(&mut self, input: NodeId, indices: NodeId) -> Result<NodeId, HloError> {
        self.infer(Op::Gather { input, indices })
    }

    /// The `k` largest values of a rank-1 input, descending.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] when `k` exceeds the input.
    pub fn top_k(&mut self, input: NodeId, k: usize) -> Result<NodeId, HloError> {
        self.infer(Op::TopK { input, k })
    }

    /// Rank-2 transpose.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for non-rank-2 inputs.
    pub fn transpose(&mut self, input: NodeId) -> Result<NodeId, HloError> {
        self.infer(Op::Transpose { input })
    }

    /// Elementwise product.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for mismatched shapes.
    pub fn mul(&mut self, lhs: NodeId, rhs: NodeId) -> Result<NodeId, HloError> {
        self.infer(Op::Mul { lhs, rhs })
    }

    /// The ReLU VJP `upstream ⊙ (input > 0)`.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for mismatched shapes.
    pub fn relu_grad(&mut self, input: NodeId, upstream: NodeId) -> Result<NodeId, HloError> {
        self.infer(Op::ReluGrad { input, upstream })
    }

    /// Inserts `axis` with `extent` copies (ReduceSum VJP).
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for a bad axis or zero extent.
    pub fn broadcast_axis(
        &mut self,
        input: NodeId,
        axis: usize,
        extent: usize,
    ) -> Result<NodeId, HloError> {
        self.infer(Op::BroadcastAxis {
            input,
            axis,
            extent,
        })
    }

    /// 180° kernel rotation.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for non-rank-2 inputs.
    pub fn rot180(&mut self, input: NodeId) -> Result<NodeId, HloError> {
        self.infer(Op::Rot180 { input })
    }

    /// The conv-kernel VJP for a `kh×kw` same-padded convolution.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for bad shapes or even kernels.
    pub fn conv_kernel_grad(
        &mut self,
        input: NodeId,
        upstream: NodeId,
        kh: usize,
        kw: usize,
    ) -> Result<NodeId, HloError> {
        self.infer(Op::ConvKernelGrad {
            input,
            upstream,
            kh,
            kw,
        })
    }

    /// The gather VJP: scatter-adds `upstream` rows into a `rows`-row
    /// zero table.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for inconsistent shapes.
    pub fn scatter_add(
        &mut self,
        indices: NodeId,
        upstream: NodeId,
        rows: usize,
    ) -> Result<NodeId, HloError> {
        self.infer(Op::ScatterAdd {
            indices,
            upstream,
            rows,
        })
    }

    /// Seeds a builder with an existing graph's nodes (used by the
    /// gradient builder to append the backward pass).
    pub fn from_graph(graph: &HloGraph) -> HloBuilder {
        HloBuilder {
            nodes: graph.nodes.clone(),
        }
    }

    /// Overrides the sharding annotation of a node (e.g. to request a
    /// sharded output from a matmul).
    ///
    /// # Errors
    ///
    /// Returns [`HloError::UnknownNode`] for a bad node id.
    pub fn annotate(&mut self, node: NodeId, sharding: Sharding) -> Result<(), HloError> {
        self.nodes
            .get_mut(node.0)
            .ok_or(HloError::UnknownNode(node))?
            .sharding = Some(sharding);
        Ok(())
    }

    /// Finalizes the graph with the given outputs.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::UnknownNode`] if any output id is unknown.
    pub fn build(self, outputs: Vec<NodeId>) -> Result<HloGraph, HloError> {
        for &out in &outputs {
            if out.0 >= self.nodes.len() {
                return Err(HloError::UnknownNode(out));
            }
        }
        Ok(HloGraph {
            nodes: self.nodes,
            outputs,
        })
    }

    fn infer(&mut self, op: Op) -> Result<NodeId, HloError> {
        let mut shapes = Vec::new();
        for id in op.operands() {
            let node = self.nodes.get(id.0).ok_or(HloError::UnknownNode(id))?;
            shapes.push(&node.shape);
        }
        let shape = op.infer_shape(&shapes)?;
        Ok(self.push(op, shape, None))
    }

    fn push(&mut self, op: Op, shape: Shape, sharding: Option<Sharding>) -> NodeId {
        self.nodes.push(Node {
            op,
            shape,
            sharding,
        });
        NodeId(self.nodes.len() - 1)
    }
}

impl HloGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The graph outputs.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The (global) shape of a node.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn shape(&self, node: NodeId) -> &Shape {
        &self.nodes[node.0].shape
    }

    /// The op of a node.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn op(&self, node: NodeId) -> &Op {
        &self.nodes[node.0].op
    }

    /// The sharding annotation of a node, if any.
    pub fn annotation(&self, node: NodeId) -> Option<Sharding> {
        self.nodes[node.0].sharding
    }

    /// Iterates node ids in topological (construction) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Total forward FLOPs of the unpartitioned graph.
    pub fn total_flops(&self) -> u64 {
        self.node_ids()
            .map(|id| {
                let node = &self.nodes[id.0];
                let shapes: Vec<&Shape> = node
                    .op
                    .operands()
                    .iter()
                    .map(|o| &self.nodes[o.0].shape)
                    .collect();
                node.op.flops(&shapes, &node.shape)
            })
            .sum()
    }

    /// Runs the graph on concrete feeds and returns the outputs — the
    /// reference every partitioned execution is verified against.
    ///
    /// # Errors
    ///
    /// Fails on missing feeds or feed-shape mismatches.
    pub fn evaluate(&self, feeds: &HashMap<String, Tensor>) -> Result<Vec<Tensor>, HloError> {
        let mut values: Vec<Tensor> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let value = match &node.op {
                Op::Parameter { name } => {
                    let t = feeds
                        .get(name)
                        .ok_or_else(|| HloError::MissingFeed(name.clone()))?;
                    if t.shape() != &node.shape {
                        return Err(HloError::FeedShape {
                            name: name.clone(),
                            expected: node.shape.clone(),
                            got: t.shape().clone(),
                        });
                    }
                    t.clone()
                }
                Op::Constant { value } => value.clone(),
                op => {
                    let operands: Vec<&Tensor> =
                        op.operands().iter().map(|o| &values[o.0]).collect();
                    op.evaluate(&operands)
                }
            };
            values.push(value);
        }
        Ok(self.outputs.iter().map(|o| values[o.0].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_tensor::TensorRng;

    fn feeds(pairs: &[(&str, Tensor)]) -> HashMap<String, Tensor> {
        pairs
            .iter()
            .map(|(n, t)| (n.to_string(), t.clone()))
            .collect()
    }

    #[test]
    fn builds_and_evaluates_mlp() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[2, 4]), Sharding::Replicated);
        let w1 = b.parameter("w1", Shape::of(&[4, 8]), Sharding::Replicated);
        let w2 = b.parameter("w2", Shape::of(&[8, 2]), Sharding::Replicated);
        let h = b.matmul(x, w1).unwrap();
        let h = b.relu(h).unwrap();
        let y = b.matmul(h, w2).unwrap();
        let g = b.build(vec![y]).unwrap();
        assert_eq!(g.shape(y).dims(), &[2, 2]);

        let mut rng = TensorRng::seed(1);
        let fx = rng.uniform(Shape::of(&[2, 4]), -1.0, 1.0);
        let f1 = rng.uniform(Shape::of(&[4, 8]), -1.0, 1.0);
        let f2 = rng.uniform(Shape::of(&[8, 2]), -1.0, 1.0);
        let out = g
            .evaluate(&feeds(&[
                ("x", fx.clone()),
                ("w1", f1.clone()),
                ("w2", f2.clone()),
            ]))
            .unwrap();
        let expect = fx
            .matmul(&f1)
            .unwrap()
            .map(|v| v.max(0.0))
            .matmul(&f2)
            .unwrap();
        assert!(out[0].max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn shape_errors_surface_at_build_time() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[2, 4]), Sharding::Replicated);
        let w = b.parameter("w", Shape::of(&[5, 8]), Sharding::Replicated);
        assert!(matches!(
            b.matmul(x, w),
            Err(HloError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn missing_and_misshapen_feeds_error() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[2]), Sharding::Replicated);
        let g = b.build(vec![x]).unwrap();
        assert!(matches!(
            g.evaluate(&HashMap::new()),
            Err(HloError::MissingFeed(_))
        ));
        let bad = feeds(&[("x", Tensor::zeros(Shape::of(&[3])))]);
        assert!(matches!(g.evaluate(&bad), Err(HloError::FeedShape { .. })));
    }

    #[test]
    fn constants_and_total_flops() {
        let mut b = HloBuilder::new();
        let c = b.constant(Tensor::fill(Shape::of(&[2, 2]), 3.0));
        let x = b.parameter("x", Shape::of(&[2, 2]), Sharding::Replicated);
        let y = b.matmul(c, x).unwrap();
        let g = b.build(vec![y]).unwrap();
        assert_eq!(g.total_flops(), 2 * 2 * 2 * 2);
        let out = g
            .evaluate(&feeds(&[(
                "x",
                Tensor::new(Shape::of(&[2, 2]), vec![1.0, 0.0, 0.0, 1.0]),
            )]))
            .unwrap();
        assert_eq!(out[0].data(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn unknown_operand_is_rejected() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[2, 2]), Sharding::Replicated);
        assert!(matches!(
            b.matmul(x, NodeId(99)),
            Err(HloError::UnknownNode(NodeId(99)))
        ));
    }

    #[test]
    fn annotate_and_build_reject_unknown_ids_without_panicking() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[2, 2]), Sharding::Replicated);
        assert!(matches!(
            b.annotate(NodeId(7), Sharding::Replicated),
            Err(HloError::UnknownNode(NodeId(7)))
        ));
        assert!(b.annotate(x, Sharding::Replicated).is_ok());
        assert!(matches!(
            b.build(vec![x, NodeId(7)]),
            Err(HloError::UnknownNode(NodeId(7)))
        ));
    }
}
