//! The op set.

use serde::{Deserialize, Serialize};

use multipod_tensor::{Shape, Tensor};

use crate::graph::NodeId;
use crate::HloError;

/// The operations the IR supports — the minimum set that exercises every
/// partitioner mechanism the paper relies on: batch/spatial splits
/// (matmul rows, convolutions with halo exchange), contracted-dimension
/// splits (partial matmul + all-reduce), elementwise propagation, and
/// cross-shard reductions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// A named graph input.
    Parameter {
        /// Feed name.
        name: String,
    },
    /// An embedded constant.
    Constant {
        /// The value.
        value: Tensor,
    },
    /// Rank-2 matrix multiplication `lhs[m,k] × rhs[k,n]`.
    MatMul {
        /// Left operand.
        lhs: NodeId,
        /// Right operand.
        rhs: NodeId,
    },
    /// 2-D "same"-padded convolution of `input[h,w]` with an odd
    /// `kernel[kh,kw]` (channels are folded into the cost model; the
    /// spatial dataflow is what partitioning cares about).
    Conv2dSame {
        /// Input image.
        input: NodeId,
        /// Convolution kernel.
        kernel: NodeId,
    },
    /// Elementwise addition.
    Add {
        /// Left operand.
        lhs: NodeId,
        /// Right operand.
        rhs: NodeId,
    },
    /// Elementwise `max(x, 0)`.
    Relu {
        /// Input.
        input: NodeId,
    },
    /// Sum-reduction over one axis.
    ReduceSum {
        /// Input.
        input: NodeId,
        /// Axis to reduce away.
        axis: usize,
    },
    /// Row gather: `output[i, :] = input[indices[i], :]` (the ROIAlign
    /// access pattern of §4.5; indices are a rank-1 tensor of row ids).
    Gather {
        /// Rank-2 table to gather from.
        input: NodeId,
        /// Rank-1 row indices.
        indices: NodeId,
    },
    /// The `k` largest values of a rank-1 input, descending (§4.5 lists
    /// top-k among the ops the paper added partitioner support for).
    TopK {
        /// Rank-1 input.
        input: NodeId,
        /// How many values to keep.
        k: usize,
    },
    /// Rank-2 transpose (appears in every matmul gradient).
    Transpose {
        /// Input.
        input: NodeId,
    },
    /// Elementwise (Hadamard) product.
    Mul {
        /// Left operand.
        lhs: NodeId,
        /// Right operand.
        rhs: NodeId,
    },
    /// The ReLU VJP: `upstream ⊙ (input > 0)`.
    ReluGrad {
        /// The forward input.
        input: NodeId,
        /// The upstream gradient.
        upstream: NodeId,
    },
    /// Inserts `axis` with `extent` copies (the ReduceSum VJP).
    BroadcastAxis {
        /// Input of rank `r`.
        input: NodeId,
        /// Where to insert the new axis (0..=r).
        axis: usize,
        /// Extent of the new axis.
        extent: usize,
    },
    /// 180° rotation of a rank-2 kernel (the conv-input VJP uses the
    /// flipped kernel).
    Rot180 {
        /// Input kernel.
        input: NodeId,
    },
    /// The conv-kernel VJP: `dK[a,b] = Σ_{i,j} upstream[i,j] ·
    /// input[i+a−ph, j+b−pw]` for a `kh×kw` kernel.
    ConvKernelGrad {
        /// The forward image.
        input: NodeId,
        /// The upstream gradient (same shape as the image).
        upstream: NodeId,
        /// Kernel height (odd).
        kh: usize,
        /// Kernel width (odd).
        kw: usize,
    },
    /// The gather VJP: scatter-adds `upstream` rows into a zero table of
    /// `rows` rows.
    ScatterAdd {
        /// Rank-1 row indices.
        indices: NodeId,
        /// Upstream gradient `[len(indices) × d]`.
        upstream: NodeId,
        /// Rows of the (gradient) table.
        rows: usize,
    },
}

impl Op {
    /// Operand node ids, in order.
    pub fn operands(&self) -> Vec<NodeId> {
        match self {
            Op::Parameter { .. } | Op::Constant { .. } => vec![],
            Op::MatMul { lhs, rhs } | Op::Add { lhs, rhs } => vec![*lhs, *rhs],
            Op::Conv2dSame { input, kernel } => vec![*input, *kernel],
            Op::Relu { input }
            | Op::ReduceSum { input, .. }
            | Op::TopK { input, .. }
            | Op::Transpose { input }
            | Op::Rot180 { input }
            | Op::BroadcastAxis { input, .. } => vec![*input],
            Op::Gather { input, indices } => vec![*input, *indices],
            Op::Mul { lhs, rhs } => vec![*lhs, *rhs],
            Op::ReluGrad { input, upstream } => vec![*input, *upstream],
            Op::ConvKernelGrad {
                input, upstream, ..
            } => vec![*input, *upstream],
            Op::ScatterAdd {
                indices, upstream, ..
            } => vec![*indices, *upstream],
        }
    }

    /// Infers the output shape from operand shapes.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::ShapeMismatch`] for incompatible operands.
    pub fn infer_shape(&self, operand_shapes: &[&Shape]) -> Result<Shape, HloError> {
        let fail = |op: &'static str| HloError::ShapeMismatch {
            op,
            shapes: operand_shapes.iter().map(|s| (*s).clone()).collect(),
        };
        match self {
            Op::Parameter { .. } | Op::Constant { .. } => {
                unreachable!("leaf shapes are fixed at construction")
            }
            Op::MatMul { .. } => {
                let (l, r) = (operand_shapes[0], operand_shapes[1]);
                if l.rank() != 2 || r.rank() != 2 || l.dim(1) != r.dim(0) {
                    return Err(fail("matmul"));
                }
                Ok(Shape::of(&[l.dim(0), r.dim(1)]))
            }
            Op::Conv2dSame { .. } => {
                let (i, k) = (operand_shapes[0], operand_shapes[1]);
                if i.rank() != 2
                    || k.rank() != 2
                    || k.dim(0) % 2 == 0
                    || k.dim(1) % 2 == 0
                    || k.dim(0) > i.dim(0)
                    || k.dim(1) > i.dim(1)
                {
                    return Err(fail("conv2d_same"));
                }
                Ok(i.clone())
            }
            Op::Add { .. } => {
                let (l, r) = (operand_shapes[0], operand_shapes[1]);
                if l != r {
                    return Err(fail("add"));
                }
                Ok(l.clone())
            }
            Op::Relu { .. } => Ok(operand_shapes[0].clone()),
            Op::ReduceSum { axis, .. } => {
                let i = operand_shapes[0];
                if *axis >= i.rank() {
                    return Err(fail("reduce_sum"));
                }
                let dims: Vec<usize> = i
                    .dims()
                    .iter()
                    .enumerate()
                    .filter(|(a, _)| a != axis)
                    .map(|(_, &d)| d)
                    .collect();
                Ok(Shape::of(&dims))
            }
            Op::Gather { .. } => {
                let (table, idx) = (operand_shapes[0], operand_shapes[1]);
                if table.rank() != 2 || idx.rank() != 1 {
                    return Err(fail("gather"));
                }
                Ok(Shape::of(&[idx.dim(0), table.dim(1)]))
            }
            Op::TopK { k, .. } => {
                let i = operand_shapes[0];
                if i.rank() != 1 || *k == 0 || *k > i.dim(0) {
                    return Err(fail("top_k"));
                }
                Ok(Shape::of(&[*k]))
            }
            Op::Transpose { .. } => {
                let i = operand_shapes[0];
                if i.rank() != 2 {
                    return Err(fail("transpose"));
                }
                Ok(Shape::of(&[i.dim(1), i.dim(0)]))
            }
            Op::Mul { .. } | Op::ReluGrad { .. } => {
                let (l, r) = (operand_shapes[0], operand_shapes[1]);
                if l != r {
                    return Err(fail("elementwise"));
                }
                Ok(l.clone())
            }
            Op::BroadcastAxis { axis, extent, .. } => {
                let i = operand_shapes[0];
                if *axis > i.rank() || *extent == 0 {
                    return Err(fail("broadcast_axis"));
                }
                let mut dims = i.dims().to_vec();
                dims.insert(*axis, *extent);
                Ok(Shape::of(&dims))
            }
            Op::Rot180 { .. } => {
                let i = operand_shapes[0];
                if i.rank() != 2 {
                    return Err(fail("rot180"));
                }
                Ok(i.clone())
            }
            Op::ConvKernelGrad { kh, kw, .. } => {
                let (img, up) = (operand_shapes[0], operand_shapes[1]);
                if img.rank() != 2 || up != img || *kh % 2 == 0 || *kw % 2 == 0 {
                    return Err(fail("conv_kernel_grad"));
                }
                Ok(Shape::of(&[*kh, *kw]))
            }
            Op::ScatterAdd { rows, .. } => {
                let (idx, up) = (operand_shapes[0], operand_shapes[1]);
                if idx.rank() != 1 || up.rank() != 2 || up.dim(0) != idx.dim(0) || *rows == 0 {
                    return Err(fail("scatter_add"));
                }
                Ok(Shape::of(&[*rows, up.dim(1)]))
            }
        }
    }

    /// Floating-point operations for executing this op on the given
    /// operand shapes (forward pass).
    pub fn flops(&self, operand_shapes: &[&Shape], out_shape: &Shape) -> u64 {
        match self {
            Op::Parameter { .. } | Op::Constant { .. } => 0,
            Op::MatMul { .. } => {
                let l = operand_shapes[0];
                2 * (l.dim(0) * l.dim(1)) as u64 * operand_shapes[1].dim(1) as u64
            }
            Op::Conv2dSame { .. } => {
                let k = operand_shapes[1];
                2 * out_shape.len() as u64 * (k.dim(0) * k.dim(1)) as u64
            }
            Op::Add { .. } | Op::Relu { .. } => out_shape.len() as u64,
            Op::ReduceSum { .. } => operand_shapes[0].len() as u64,
            // A gather is memory movement, not FLOPs, which is exactly
            // why it runs poorly on the MXU (§4.5).
            Op::Gather { .. } => 0,
            Op::TopK { .. } => operand_shapes[0].len() as u64,
            Op::Transpose { .. } | Op::Rot180 { .. } | Op::BroadcastAxis { .. } => 0,
            Op::Mul { .. } | Op::ReluGrad { .. } => out_shape.len() as u64,
            Op::ConvKernelGrad { kh, kw, .. } => {
                2 * operand_shapes[0].len() as u64 * (*kh * *kw) as u64
            }
            Op::ScatterAdd { .. } => operand_shapes[1].len() as u64,
        }
    }

    /// Executes the op on concrete operand tensors (the reference
    /// interpreter's kernel set).
    ///
    /// # Panics
    ///
    /// Panics if operand shapes were not validated by [`Op::infer_shape`].
    pub fn evaluate(&self, operands: &[&Tensor]) -> Tensor {
        match self {
            Op::Parameter { .. } | Op::Constant { .. } => {
                unreachable!("leaves are fed, not evaluated")
            }
            Op::MatMul { .. } => operands[0].matmul(operands[1]).expect("validated matmul"),
            Op::Conv2dSame { .. } => conv2d_same(operands[0], operands[1]),
            Op::Add { .. } => operands[0].add(operands[1]).expect("validated add"),
            Op::Relu { .. } => operands[0].map(|v| v.max(0.0)),
            Op::ReduceSum { axis, .. } => reduce_sum(operands[0], *axis),
            Op::Gather { .. } => gather_rows(operands[0], operands[1]),
            Op::TopK { k, .. } => top_k(operands[0], *k),
            Op::Transpose { .. } => transpose2(operands[0]),
            Op::Mul { .. } => operands[0].mul(operands[1]).expect("validated mul"),
            Op::ReluGrad { .. } => relu_grad(operands[0], operands[1]),
            Op::BroadcastAxis { axis, extent, .. } => broadcast_axis(operands[0], *axis, *extent),
            Op::Rot180 { .. } => rot180(operands[0]),
            Op::ConvKernelGrad { kh, kw, .. } => {
                conv_kernel_grad(operands[0], operands[1], *kh, *kw)
            }
            Op::ScatterAdd { rows, .. } => scatter_add(operands[0], operands[1], *rows),
        }
    }
}

/// Rank-2 transpose.
pub(crate) fn transpose2(t: &Tensor) -> Tensor {
    let (m, n) = (t.shape().dim(0), t.shape().dim(1));
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = t.data()[i * n + j];
        }
    }
    Tensor::new(Shape::of(&[n, m]), out)
}

/// `upstream ⊙ (input > 0)`.
pub(crate) fn relu_grad(input: &Tensor, upstream: &Tensor) -> Tensor {
    let data = input
        .data()
        .iter()
        .zip(upstream.data())
        .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
        .collect();
    Tensor::new(input.shape().clone(), data)
}

/// Inserts `axis` with `extent` copies of the input.
pub(crate) fn broadcast_axis(t: &Tensor, axis: usize, extent: usize) -> Tensor {
    let outer: usize = t.shape().dims()[..axis].iter().product();
    let inner: usize = t.shape().dims()[axis..].iter().product();
    let mut out = Vec::with_capacity(t.len() * extent);
    for o in 0..outer {
        for _ in 0..extent {
            out.extend_from_slice(&t.data()[o * inner..(o + 1) * inner]);
        }
    }
    let mut dims = t.shape().dims().to_vec();
    dims.insert(axis, extent);
    Tensor::new(Shape::of(&dims), out)
}

/// 180° rotation of a rank-2 tensor.
pub(crate) fn rot180(t: &Tensor) -> Tensor {
    let mut data = t.data().to_vec();
    data.reverse();
    Tensor::new(t.shape().clone(), data)
}

/// The conv-kernel VJP (see [`Op::ConvKernelGrad`]).
pub(crate) fn conv_kernel_grad(input: &Tensor, upstream: &Tensor, kh: usize, kw: usize) -> Tensor {
    let (h, w) = (input.shape().dim(0), input.shape().dim(1));
    let (ph, pw) = (kh / 2, kw / 2);
    let mut out = vec![0.0f32; kh * kw];
    for a in 0..kh {
        for b in 0..kw {
            let mut acc = 0.0f32;
            for i in 0..h {
                for j in 0..w {
                    let ii = i as isize + a as isize - ph as isize;
                    let jj = j as isize + b as isize - pw as isize;
                    if ii >= 0 && (ii as usize) < h && jj >= 0 && (jj as usize) < w {
                        acc += upstream.data()[i * w + j]
                            * input.data()[ii as usize * w + jj as usize];
                    }
                }
            }
            out[a * kw + b] = acc;
        }
    }
    Tensor::new(Shape::of(&[kh, kw]), out)
}

/// Scatter-adds `upstream` rows into a `rows × d` zero table.
pub(crate) fn scatter_add(indices: &Tensor, upstream: &Tensor, rows: usize) -> Tensor {
    let d = upstream.shape().dim(1);
    let mut out = vec![0.0f32; rows * d];
    for (i, &raw) in indices.data().iter().enumerate() {
        let r = raw.round() as usize;
        assert!(r < rows, "scatter index {r} out of range");
        for c in 0..d {
            out[r * d + c] += upstream.data()[i * d + c];
        }
    }
    Tensor::new(Shape::of(&[rows, d]), out)
}

/// Gathers rows of a rank-2 `table` by (rounded) f32 `indices`.
///
/// # Panics
///
/// Panics on out-of-range indices.
pub(crate) fn gather_rows(table: &Tensor, indices: &Tensor) -> Tensor {
    let (rows, cols) = (table.shape().dim(0), table.shape().dim(1));
    let mut out = Vec::with_capacity(indices.len() * cols);
    for &raw in indices.data() {
        let r = raw.round() as usize;
        assert!(r < rows, "gather index {r} out of range ({rows} rows)");
        out.extend_from_slice(&table.data()[r * cols..(r + 1) * cols]);
    }
    Tensor::new(Shape::of(&[indices.len(), cols]), out)
}

/// The `k` largest values, descending.
pub(crate) fn top_k(input: &Tensor, k: usize) -> Tensor {
    let mut values = input.data().to_vec();
    values.sort_unstable_by(|a, b| b.total_cmp(a));
    values.truncate(k);
    Tensor::new(Shape::vector(k), values)
}

/// "Same"-padded 2-D convolution (zero padding).
pub(crate) fn conv2d_same(input: &Tensor, kernel: &Tensor) -> Tensor {
    let (h, w) = (input.shape().dim(0), input.shape().dim(1));
    let (kh, kw) = (kernel.shape().dim(0), kernel.shape().dim(1));
    let (ph, pw) = (kh / 2, kw / 2);
    let mut out = vec![0.0f32; h * w];
    for i in 0..h {
        for j in 0..w {
            let mut acc = 0.0f32;
            for a in 0..kh {
                for b in 0..kw {
                    let ii = i as isize + a as isize - ph as isize;
                    let jj = j as isize + b as isize - pw as isize;
                    if ii >= 0 && (ii as usize) < h && jj >= 0 && (jj as usize) < w {
                        acc +=
                            input.data()[ii as usize * w + jj as usize] * kernel.data()[a * kw + b];
                    }
                }
            }
            out[i * w + j] = acc;
        }
    }
    Tensor::new(Shape::of(&[h, w]), out)
}

/// "Valid" (no padding) 2-D convolution; used by partitioned tiles whose
/// halos already carry the neighbour data.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn conv2d_valid(input: &Tensor, kernel: &Tensor) -> Tensor {
    let (h, w) = (input.shape().dim(0), input.shape().dim(1));
    let (kh, kw) = (kernel.shape().dim(0), kernel.shape().dim(1));
    let (oh, ow) = (h + 1 - kh, w + 1 - kw);
    let mut out = vec![0.0f32; oh * ow];
    for i in 0..oh {
        for j in 0..ow {
            let mut acc = 0.0f32;
            for a in 0..kh {
                for b in 0..kw {
                    acc += input.data()[(i + a) * w + (j + b)] * kernel.data()[a * kw + b];
                }
            }
            out[i * ow + j] = acc;
        }
    }
    Tensor::new(Shape::of(&[oh, ow]), out)
}

pub(crate) fn reduce_sum(input: &Tensor, axis: usize) -> Tensor {
    let shape = input.shape();
    let extent = shape.dim(axis);
    let outer: usize = shape.dims()[..axis].iter().product();
    let inner: usize = shape.dims()[axis + 1..].iter().product();
    let out_dims: Vec<usize> = shape
        .dims()
        .iter()
        .enumerate()
        .filter(|(a, _)| *a != axis)
        .map(|(_, &d)| d)
        .collect();
    let mut out = vec![0.0f32; outer * inner];
    for o in 0..outer {
        for e in 0..extent {
            for i in 0..inner {
                out[o * inner + i] += input.data()[(o * extent + e) * inner + i];
            }
        }
    }
    Tensor::new(Shape::of(&out_dims), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_shape_inference() {
        let op = Op::MatMul {
            lhs: NodeId(0),
            rhs: NodeId(1),
        };
        let (a, b) = (Shape::of(&[2, 3]), Shape::of(&[3, 5]));
        assert_eq!(op.infer_shape(&[&a, &b]).unwrap(), Shape::of(&[2, 5]));
        let bad = Shape::of(&[4, 5]);
        assert!(op.infer_shape(&[&a, &bad]).is_err());
    }

    #[test]
    fn conv_shape_requires_odd_kernel() {
        let op = Op::Conv2dSame {
            input: NodeId(0),
            kernel: NodeId(1),
        };
        let img = Shape::of(&[8, 8]);
        assert!(op.infer_shape(&[&img, &Shape::of(&[3, 3])]).is_ok());
        assert!(op.infer_shape(&[&img, &Shape::of(&[2, 3])]).is_err());
        assert!(op.infer_shape(&[&img, &Shape::of(&[9, 9])]).is_err());
    }

    #[test]
    fn reduce_sum_drops_axis() {
        let op = Op::ReduceSum {
            input: NodeId(0),
            axis: 0,
        };
        let s = Shape::of(&[4, 6]);
        assert_eq!(op.infer_shape(&[&s]).unwrap(), Shape::of(&[6]));
        let t = Tensor::new(Shape::of(&[2, 3]), vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(reduce_sum(&t, 0).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(reduce_sum(&t, 1).data(), &[6.0, 15.0]);
    }

    #[test]
    fn conv_same_matches_valid_on_padded_input() {
        let img = Tensor::new(Shape::of(&[3, 3]), (1..=9).map(|v| v as f32).collect());
        let k = Tensor::new(Shape::of(&[3, 3]), vec![0., 0., 0., 0., 1., 0., 0., 0., 0.]);
        // Identity kernel: same conv returns the image.
        assert_eq!(conv2d_same(&img, &k), img);
        // Valid conv on a 3x3 with 3x3 kernel returns a single value.
        let v = conv2d_valid(&img, &k);
        assert_eq!(v.shape().dims(), &[1, 1]);
        assert_eq!(v.data(), &[5.0]);
    }

    #[test]
    fn gather_and_topk_shapes() {
        let g = Op::Gather {
            input: NodeId(0),
            indices: NodeId(1),
        };
        let table = Shape::of(&[10, 4]);
        let idx = Shape::of(&[3]);
        assert_eq!(g.infer_shape(&[&table, &idx]).unwrap(), Shape::of(&[3, 4]));
        assert!(g.infer_shape(&[&idx, &idx]).is_err());
        let t = Op::TopK {
            input: NodeId(0),
            k: 3,
        };
        assert_eq!(
            t.infer_shape(&[&Shape::of(&[10])]).unwrap(),
            Shape::of(&[3])
        );
        assert!(Op::TopK {
            input: NodeId(0),
            k: 11
        }
        .infer_shape(&[&Shape::of(&[10])])
        .is_err());
    }

    #[test]
    fn gather_and_topk_evaluate() {
        let table = Tensor::new(Shape::of(&[3, 2]), vec![1., 2., 3., 4., 5., 6.]);
        let idx = Tensor::from_slice(&[2.0, 0.0]);
        let g = gather_rows(&table, &idx);
        assert_eq!(g.data(), &[5., 6., 1., 2.]);
        let t = top_k(&Tensor::from_slice(&[3., 1., 4., 1., 5.]), 3);
        assert_eq!(t.data(), &[5., 4., 3.]);
    }

    #[test]
    fn flops_accounting() {
        let mm = Op::MatMul {
            lhs: NodeId(0),
            rhs: NodeId(1),
        };
        let (a, b, o) = (Shape::of(&[2, 3]), Shape::of(&[3, 5]), Shape::of(&[2, 5]));
        assert_eq!(mm.flops(&[&a, &b], &o), 2 * 2 * 3 * 5);
        let conv = Op::Conv2dSame {
            input: NodeId(0),
            kernel: NodeId(1),
        };
        let (i, k) = (Shape::of(&[4, 4]), Shape::of(&[3, 3]));
        assert_eq!(conv.flops(&[&i, &k], &i), 2 * 16 * 9);
    }
}
