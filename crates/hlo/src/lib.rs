//! An XLA-like graph IR with an SPMD partitioner.
//!
//! The paper's model parallelism (§3.1) is implemented by XLA's SPMD
//! partitioner (Lepikhin et al. 2020): users annotate tensors with
//! shardings, and the compiler rewrites the program into a single
//! per-core program with collectives inserted where data crosses shard
//! boundaries — halo exchanges for spatially partitioned convolutions,
//! all-reduces for contracted dimensions, reshard sequences elsewhere.
//!
//! This crate rebuilds that pipeline end to end:
//!
//! * [`HloGraph`] / [`HloBuilder`] — a small dataflow IR with shape
//!   inference, FLOP accounting and a reference interpreter.
//! * [`Sharding`] — replicated or 1-D tiled placements.
//! * [`SpmdPartitioner`] — rewrites an annotated graph into a single
//!   [`PartitionedProgram`] whose collectives run on the simulated
//!   multipod; compile cost is independent of the partition count.
//! * [`MpmdPartitioner`] — the MLPerf v0.6 baseline that compiles one
//!   program *per core* (compile cost ∝ cores) and cannot express
//!   weight-update sharding (§4.4).
//!
//! [`gradients`] appends a reverse-mode backward pass to any graph, so
//! training flows through the same partitioner — feature-sharded matmul
//! gradients become partial matmuls + all-reduces, exactly the §3.1
//! backward-pass structure.
//!
//! The partitioned program is executed numerically and its outputs are
//! verified against the reference interpreter in this crate's tests.
//!
//! ```
//! use multipod_hlo::{HloBuilder, Sharding, SpmdPartitioner};
//! use multipod_tensor::Shape;
//!
//! let mut b = HloBuilder::new();
//! // Feature-sharded matmul: weights split over 4 cores (§3.1).
//! let x = b.parameter("x", Shape::of(&[8, 16]), Sharding::Replicated);
//! let w = b.parameter("w", Shape::of(&[16, 32]), Sharding::split(1, 4));
//! let y = b.matmul(x, w).unwrap();
//! let graph = b.build(vec![y]).unwrap();
//! let program = SpmdPartitioner::new(4).partition(&graph).unwrap();
//! // The per-core weight shard is [16 x 8].
//! assert_eq!(program.value_shape(y).dims(), &[8, 8]);
//! ```

mod display;
mod error;
mod grad;
mod graph;
mod mpmd;
mod op;
mod program;
mod sharding;
mod spmd;

pub use error::HloError;
pub use grad::{gradients, GradientGraph};
pub use graph::{HloBuilder, HloGraph, NodeId};
pub use mpmd::MpmdPartitioner;
pub use op::Op;
pub use program::{CommStats, ComputeOp, Instr, PartitionedProgram, ValueId};
pub use sharding::Sharding;
pub use spmd::{CommunicationOpt, GatherStrategy, SpmdPartitioner};
