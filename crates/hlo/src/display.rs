//! Human-readable dumps of graphs and partitioned programs.
//!
//! XLA's HLO text form is the lingua franca for debugging partitioner
//! behaviour; these `Display` impls provide the equivalent here, e.g.:
//!
//! ```text
//! %2 = matmul(%0, %1) : [8×8]
//! ```

use std::fmt;

use crate::graph::HloGraph;
use crate::op::Op;
use crate::program::{ComputeOp, Instr, PartitionedProgram};
use crate::sharding::Sharding;

fn sharding_suffix(s: Option<Sharding>) -> String {
    match s {
        None => String::new(),
        Some(Sharding::Replicated) => " {replicated}".to_string(),
        Some(Sharding::Split { axis, parts }) => format!(" {{split axis={axis} parts={parts}}}"),
    }
}

impl fmt::Display for HloGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for id in self.node_ids() {
            let op = self.op(id);
            let shape = self.shape(id);
            let ann = sharding_suffix(self.annotation(id));
            let body = match op {
                Op::Parameter { name } => format!("parameter \"{name}\""),
                Op::Constant { .. } => "constant".to_string(),
                Op::MatMul { lhs, rhs } => format!("matmul({lhs:?}, {rhs:?})"),
                Op::Conv2dSame { input, kernel } => {
                    format!("conv2d_same({input:?}, {kernel:?})")
                }
                Op::Add { lhs, rhs } => format!("add({lhs:?}, {rhs:?})"),
                Op::Mul { lhs, rhs } => format!("mul({lhs:?}, {rhs:?})"),
                Op::Relu { input } => format!("relu({input:?})"),
                Op::ReluGrad { input, upstream } => {
                    format!("relu_grad({input:?}, {upstream:?})")
                }
                Op::ReduceSum { input, axis } => {
                    format!("reduce_sum({input:?}, axis={axis})")
                }
                Op::Gather { input, indices } => format!("gather({input:?}, {indices:?})"),
                Op::TopK { input, k } => format!("top_k({input:?}, k={k})"),
                Op::Transpose { input } => format!("transpose({input:?})"),
                Op::BroadcastAxis {
                    input,
                    axis,
                    extent,
                } => format!("broadcast_axis({input:?}, axis={axis}, extent={extent})"),
                Op::Rot180 { input } => format!("rot180({input:?})"),
                Op::ConvKernelGrad {
                    input,
                    upstream,
                    kh,
                    kw,
                } => format!("conv_kernel_grad({input:?}, {upstream:?}, {kh}x{kw})"),
                Op::ScatterAdd {
                    indices,
                    upstream,
                    rows,
                } => format!("scatter_add({indices:?}, {upstream:?}, rows={rows})"),
            };
            writeln!(f, "{id:?} = {body} : {shape}{ann}")?;
        }
        write!(f, "outputs: {:?}", self.outputs())
    }
}

impl fmt::Display for PartitionedProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// SPMD program over {} cores", self.num_parts())?;
        for instr in self.instrs() {
            let out = instr.out();
            let shape = &self.shapes[out.0];
            let body = match instr {
                Instr::Compute { op, .. } => match op {
                    ComputeOp::Feed { name, sharding } => {
                        format!("feed \"{name}\"{}", sharding_suffix(Some(*sharding)))
                    }
                    ComputeOp::Constant { .. } => "constant".to_string(),
                    ComputeOp::MatMul { lhs, rhs } => format!("matmul({lhs:?}, {rhs:?})"),
                    ComputeOp::ConvSame { input, kernel } => {
                        format!("conv2d_same({input:?}, {kernel:?})")
                    }
                    ComputeOp::ConvHalo {
                        input,
                        kernel,
                        valid_axis,
                    } => format!("conv_halo({input:?}, {kernel:?}, valid_axis={valid_axis})"),
                    ComputeOp::Add { lhs, rhs } => format!("add({lhs:?}, {rhs:?})"),
                    ComputeOp::Mul { lhs, rhs } => format!("mul({lhs:?}, {rhs:?})"),
                    ComputeOp::Relu { input } => format!("relu({input:?})"),
                    ComputeOp::ReluGrad { input, upstream } => {
                        format!("relu_grad({input:?}, {upstream:?})")
                    }
                    ComputeOp::ReduceSum { input, axis } => {
                        format!("reduce_sum({input:?}, axis={axis})")
                    }
                    ComputeOp::SliceAxis { input, axis } => {
                        format!("slice_axis({input:?}, axis={axis})")
                    }
                    ComputeOp::Gather { input, indices } => {
                        format!("gather({input:?}, {indices:?})")
                    }
                    ComputeOp::GatherPartial { input, indices } => {
                        format!("gather_partial[onehot-matmul]({input:?}, {indices:?})")
                    }
                    ComputeOp::TopK { input, k } => format!("top_k({input:?}, k={k})"),
                    ComputeOp::Transpose { input } => format!("transpose({input:?})"),
                    ComputeOp::BroadcastAxis {
                        input,
                        axis,
                        extent,
                    } => format!("broadcast_axis({input:?}, axis={axis}, extent={extent})"),
                    ComputeOp::Rot180 { input } => format!("rot180({input:?})"),
                    ComputeOp::ConvKernelGrad {
                        input,
                        upstream,
                        kh,
                        kw,
                    } => format!("conv_kernel_grad({input:?}, {upstream:?}, {kh}x{kw})"),
                    ComputeOp::ScatterAdd {
                        indices,
                        upstream,
                        rows,
                    } => format!("scatter_add({indices:?}, {upstream:?}, rows={rows})"),
                },
                Instr::AllReduce { input, .. } => format!("ALL-REDUCE({input:?})"),
                Instr::AllGather { input, axis, .. } => {
                    format!("ALL-GATHER({input:?}, axis={axis})")
                }
                Instr::HaloExchange {
                    input, axis, halo, ..
                } => format!("HALO-EXCHANGE({input:?}, axis={axis}, halo={halo})"),
            };
            writeln!(f, "{out:?} = {body} : {shape}")?;
        }
        write!(f, "outputs: {:?}", self.outputs())
    }
}

#[cfg(test)]
mod tests {
    use crate::{HloBuilder, Sharding, SpmdPartitioner};
    use multipod_tensor::Shape;

    #[test]
    fn graph_display_lists_every_node() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[4, 8]), Sharding::Replicated);
        let w = b.parameter("w", Shape::of(&[8, 2]), Sharding::split(1, 2));
        let y = b.matmul(x, w).unwrap();
        let g = b.build(vec![y]).unwrap();
        let text = g.to_string();
        assert!(text.contains("parameter \"x\""));
        assert!(text.contains("{split axis=1 parts=2}"));
        assert!(text.contains("matmul(%0, %1)"));
        assert!(text.contains("outputs: [%2]"));
    }

    #[test]
    fn program_display_shows_collectives() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[4, 8]), Sharding::split(1, 2));
        let w = b.parameter("w", Shape::of(&[8, 2]), Sharding::split(0, 2));
        let y = b.matmul(x, w).unwrap();
        let g = b.build(vec![y]).unwrap();
        let p = SpmdPartitioner::new(2).partition(&g).unwrap();
        let text = p.to_string();
        assert!(text.contains("SPMD program over 2 cores"));
        assert!(text.contains("ALL-REDUCE"));
        assert!(text.contains("feed \"x\""));
    }
}
