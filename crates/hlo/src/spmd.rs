//! The SPMD partitioner.
//!
//! Rewrites an annotated [`HloGraph`] into a single per-core
//! [`PartitionedProgram`] (Lepikhin et al. 2020). Sharding propagates
//! forward through the graph; collectives are inserted exactly where data
//! crosses shard boundaries:
//!
//! * matmul with a split contracting dimension → partial matmul +
//!   **all-reduce** (the Transformer feature sharding of §3.1/§4.3);
//! * convolution with a split spatial dimension → **halo exchange** +
//!   mixed valid/same convolution (the SSD/MaskRCNN spatial partitioning);
//! * sharding disagreements → reshard (**all-gather** + local slice).
//!
//! [`CommunicationOpt::Naive`] disables propagation and reshards every
//! operand to replicated before each op — the straw-man whose overhead the
//! paper's MaskRCNN communication optimizations cut "from 30% to about
//! 10%" (§4.5).

use std::collections::HashMap;

use multipod_tensor::Shape;

use crate::graph::{HloGraph, NodeId};
use crate::op::Op;
use crate::program::{ComputeOp, Instr, PartitionedProgram, ValueId};
use crate::sharding::Sharding;
use crate::HloError;

/// How a gather over a row-partitioned table is rewritten (§4.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatherStrategy {
    /// Replicate the table first (all-gather), then gather locally — the
    /// pre-optimization behaviour whose communication made gathers an
    /// Amdahl bottleneck.
    AllGather,
    /// Rewrite as a onehot partial matmul + all-reduce: dense MXU work
    /// that achieves "linear speedups when increasing the number of model
    /// parallelism partitions" (§4.5).
    OneHotMatMul,
}

/// How aggressively the partitioner minimizes communication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommunicationOpt {
    /// Propagate shardings and insert the minimal collective at each
    /// boundary (the paper's optimized partitioner).
    Optimized,
    /// Reshard every operand to replicated before every op (ablation
    /// baseline for the §4.5 communication-overhead comparison).
    Naive,
}

/// Partitions annotated graphs over a model-parallel tile of `parts` cores.
#[derive(Clone, Debug)]
pub struct SpmdPartitioner {
    parts: usize,
    comm_opt: CommunicationOpt,
    gather: GatherStrategy,
}

struct Emitter {
    instrs: Vec<Instr>,
    shapes: Vec<Shape>,
    shardings: Vec<Sharding>,
    global_shapes: Vec<Shape>,
}

impl Emitter {
    fn push(
        &mut self,
        instr_of: impl FnOnce(ValueId) -> Instr,
        shape: Shape,
        sharding: Sharding,
        global: Shape,
    ) -> ValueId {
        let out = ValueId(self.shapes.len());
        self.instrs.push(instr_of(out));
        self.shapes.push(shape);
        self.shardings.push(sharding);
        self.global_shapes.push(global);
        out
    }

    fn compute(
        &mut self,
        op: ComputeOp,
        shape: Shape,
        sharding: Sharding,
        global: Shape,
    ) -> ValueId {
        self.push(|out| Instr::Compute { out, op }, shape, sharding, global)
    }

    fn all_reduce(&mut self, input: ValueId) -> ValueId {
        let shape = self.shapes[input.0].clone();
        let global = self.global_shapes[input.0].clone();
        self.push(
            |out| Instr::AllReduce { out, input },
            shape,
            Sharding::Replicated,
            global,
        )
    }

    /// Reshards `value` to `to`, inserting the cheapest collective
    /// sequence.
    fn reshard(&mut self, value: ValueId, to: Sharding, node: NodeId) -> Result<ValueId, HloError> {
        let from = self.shardings[value.0];
        if from == to {
            return Ok(value);
        }
        let global = self.global_shapes[value.0].clone();
        match (from, to) {
            (Sharding::Replicated, Sharding::Split { axis, parts }) => {
                let local = Sharding::split(axis, parts).local_shape(&global)?;
                Ok(self.compute(
                    ComputeOp::SliceAxis { input: value, axis },
                    local,
                    to,
                    global,
                ))
            }
            (Sharding::Split { axis, .. }, Sharding::Replicated) => Ok(self.push(
                |out| Instr::AllGather {
                    out,
                    input: value,
                    axis,
                },
                global.clone(),
                Sharding::Replicated,
                global,
            )),
            (Sharding::Split { .. }, Sharding::Split { .. }) => {
                let replicated = self.reshard(value, Sharding::Replicated, node)?;
                self.reshard(replicated, to, node)
            }
            _ => Err(HloError::Unpartitionable {
                node,
                reason: format!("cannot reshard {from:?} to {to:?}"),
            }),
        }
    }
}

impl SpmdPartitioner {
    /// A partitioner for `parts`-way model parallelism with optimized
    /// communication.
    ///
    /// A zero `parts` is rejected with a typed error by
    /// [`SpmdPartitioner::partition`] rather than panicking here.
    pub fn new(parts: usize) -> SpmdPartitioner {
        SpmdPartitioner::with_comm_opt(parts, CommunicationOpt::Optimized)
    }

    /// A partitioner with an explicit communication strategy.
    pub fn with_comm_opt(parts: usize, comm_opt: CommunicationOpt) -> SpmdPartitioner {
        SpmdPartitioner {
            parts,
            comm_opt,
            gather: GatherStrategy::OneHotMatMul,
        }
    }

    /// Overrides the gather rewrite strategy (ablations compare the two).
    pub fn with_gather_strategy(mut self, gather: GatherStrategy) -> SpmdPartitioner {
        self.gather = gather;
        self
    }

    /// Whether this partitioner can express weight-update sharding
    /// (always true for SPMD; the MPMD baseline cannot — §4.4).
    pub fn supports_weight_update_sharding(&self) -> bool {
        true
    }

    /// Rewrites `graph` into a single per-core program.
    ///
    /// # Errors
    ///
    /// Fails when the part count is zero, an annotation is invalid for
    /// its shape, or an op/sharding combination cannot be rewritten.
    pub fn partition(&self, graph: &HloGraph) -> Result<PartitionedProgram, HloError> {
        if self.parts == 0 {
            return Err(HloError::InvalidPartCount);
        }
        let mut em = Emitter {
            instrs: Vec::new(),
            shapes: Vec::new(),
            shardings: Vec::new(),
            global_shapes: Vec::new(),
        };
        let mut value_of_node: HashMap<NodeId, ValueId> = HashMap::new();

        for id in graph.node_ids() {
            let op = graph.op(id).clone();
            let global_shape = graph.shape(id).clone();
            let value = match &op {
                Op::Parameter { name } => {
                    let sharding = graph.annotation(id).unwrap_or(Sharding::Replicated);
                    sharding.validate(&global_shape, self.parts)?;
                    let local = sharding.local_shape(&global_shape)?;
                    em.compute(
                        ComputeOp::Feed {
                            name: name.clone(),
                            sharding,
                        },
                        local,
                        sharding,
                        global_shape.clone(),
                    )
                }
                Op::Constant { value } => em.compute(
                    ComputeOp::Constant {
                        value: value.clone(),
                    },
                    global_shape.clone(),
                    Sharding::Replicated,
                    global_shape.clone(),
                ),
                _ => {
                    let operands: Vec<ValueId> =
                        op.operands().iter().map(|o| value_of_node[o]).collect();
                    match self.comm_opt {
                        CommunicationOpt::Optimized => {
                            self.emit_optimized(&mut em, id, &op, &operands, &global_shape)?
                        }
                        CommunicationOpt::Naive => {
                            self.emit_naive(&mut em, id, &op, &operands, &global_shape)?
                        }
                    }
                }
            };
            // Honour an explicit output annotation.
            let value = match graph.annotation(id) {
                Some(want) if !matches!(op, Op::Parameter { .. }) => {
                    want.validate(&global_shape, self.parts)?;
                    em.reshard(value, want, id)?
                }
                _ => value,
            };
            value_of_node.insert(id, value);
        }

        let outputs = graph.outputs().iter().map(|o| value_of_node[o]).collect();
        let compile_cost = em.instrs.len() as u64;
        Ok(PartitionedProgram {
            parts: self.parts,
            instrs: em.instrs,
            shapes: em.shapes,
            shardings: em.shardings,
            value_of_node,
            outputs,
            compile_cost,
        })
    }

    fn emit_optimized(
        &self,
        em: &mut Emitter,
        id: NodeId,
        op: &Op,
        operands: &[ValueId],
        global: &Shape,
    ) -> Result<ValueId, HloError> {
        match op {
            Op::MatMul { .. } => self.emit_matmul(em, id, operands, global),
            Op::Conv2dSame { .. } => self.emit_conv(em, id, operands, global),
            Op::Gather { .. } => self.emit_gather(em, id, operands, global),
            Op::TopK { k, .. } => self.emit_topk(em, id, operands, global, *k),
            Op::Add { .. } => {
                let (mut l, mut r) = (operands[0], operands[1]);
                let (sl, sr) = (em.shardings[l.0], em.shardings[r.0]);
                let out_sharding = match (sl, sr) {
                    (a, b) if a == b => a,
                    (Sharding::Replicated, s @ Sharding::Split { .. }) => {
                        l = em.reshard(l, s, id)?;
                        s
                    }
                    (s @ Sharding::Split { .. }, Sharding::Replicated) => {
                        r = em.reshard(r, s, id)?;
                        s
                    }
                    (s @ Sharding::Split { .. }, Sharding::Split { .. }) => {
                        r = em.reshard(r, s, id)?;
                        s
                    }
                    _ => unreachable!("covered above"),
                };
                let shape = em.shapes[l.0].clone();
                Ok(em.compute(
                    ComputeOp::Add { lhs: l, rhs: r },
                    shape,
                    out_sharding,
                    global.clone(),
                ))
            }
            Op::Relu { .. } => {
                let input = operands[0];
                let shape = em.shapes[input.0].clone();
                let sharding = em.shardings[input.0];
                Ok(em.compute(ComputeOp::Relu { input }, shape, sharding, global.clone()))
            }
            Op::Transpose { .. } => {
                let input = operands[0];
                let local = em.shapes[input.0].clone();
                let out_local = Shape::of(&[local.dim(1), local.dim(0)]);
                let sharding = match em.shardings[input.0] {
                    Sharding::Replicated => Sharding::Replicated,
                    Sharding::Split { axis, parts } => Sharding::split(1 - axis, parts),
                };
                Ok(em.compute(
                    ComputeOp::Transpose { input },
                    out_local,
                    sharding,
                    global.clone(),
                ))
            }
            Op::Mul { .. } => {
                let (l, r) = self.align_elementwise(em, id, operands[0], operands[1])?;
                let shape = em.shapes[l.0].clone();
                let sharding = em.shardings[l.0];
                Ok(em.compute(
                    ComputeOp::Mul { lhs: l, rhs: r },
                    shape,
                    sharding,
                    global.clone(),
                ))
            }
            Op::ReluGrad { .. } => {
                let (l, r) = self.align_elementwise(em, id, operands[0], operands[1])?;
                let shape = em.shapes[l.0].clone();
                let sharding = em.shardings[l.0];
                Ok(em.compute(
                    ComputeOp::ReluGrad {
                        input: l,
                        upstream: r,
                    },
                    shape,
                    sharding,
                    global.clone(),
                ))
            }
            // Gradient bookkeeping ops without a sharded fast path:
            // replicate inputs, compute once (always correct; the paper's
            // partitioner has bespoke rules we do not need for fidelity).
            Op::BroadcastAxis { axis, extent, .. } => {
                let input = em.reshard(operands[0], Sharding::Replicated, id)?;
                Ok(em.compute(
                    ComputeOp::BroadcastAxis {
                        input,
                        axis: *axis,
                        extent: *extent,
                    },
                    global.clone(),
                    Sharding::Replicated,
                    global.clone(),
                ))
            }
            Op::Rot180 { .. } => {
                let input = em.reshard(operands[0], Sharding::Replicated, id)?;
                Ok(em.compute(
                    ComputeOp::Rot180 { input },
                    global.clone(),
                    Sharding::Replicated,
                    global.clone(),
                ))
            }
            Op::ConvKernelGrad { kh, kw, .. } => {
                let input = em.reshard(operands[0], Sharding::Replicated, id)?;
                let upstream = em.reshard(operands[1], Sharding::Replicated, id)?;
                Ok(em.compute(
                    ComputeOp::ConvKernelGrad {
                        input,
                        upstream,
                        kh: *kh,
                        kw: *kw,
                    },
                    global.clone(),
                    Sharding::Replicated,
                    global.clone(),
                ))
            }
            Op::ScatterAdd { rows, .. } => {
                let indices = em.reshard(operands[0], Sharding::Replicated, id)?;
                let upstream = em.reshard(operands[1], Sharding::Replicated, id)?;
                Ok(em.compute(
                    ComputeOp::ScatterAdd {
                        indices,
                        upstream,
                        rows: *rows,
                    },
                    global.clone(),
                    Sharding::Replicated,
                    global.clone(),
                ))
            }
            Op::ReduceSum { axis, .. } => {
                let input = operands[0];
                let sharding = em.shardings[input.0];
                let local_in = em.shapes[input.0].clone();
                let local_out = Op::ReduceSum {
                    input: NodeId(0),
                    axis: *axis,
                }
                .infer_shape(&[&local_in])?;
                match sharding {
                    Sharding::Split { axis: s, .. } if s == *axis => {
                        // Reducing over the split axis: local partials,
                        // then all-reduce.
                        let partial = em.compute(
                            ComputeOp::ReduceSum { input, axis: *axis },
                            local_out,
                            Sharding::Replicated,
                            global.clone(),
                        );
                        Ok(em.all_reduce(partial))
                    }
                    Sharding::Split { axis: s, parts } => {
                        let s_after = if *axis < s { s - 1 } else { s };
                        Ok(em.compute(
                            ComputeOp::ReduceSum { input, axis: *axis },
                            local_out,
                            Sharding::split(s_after, parts),
                            global.clone(),
                        ))
                    }
                    Sharding::Replicated => Ok(em.compute(
                        ComputeOp::ReduceSum { input, axis: *axis },
                        local_out,
                        Sharding::Replicated,
                        global.clone(),
                    )),
                }
            }
            Op::Parameter { .. } | Op::Constant { .. } => unreachable!("leaves handled earlier"),
        }
    }

    /// Aligns two elementwise operands onto a common sharding (slicing a
    /// replicated side for free, resharding on disagreement), returning
    /// the aligned value ids.
    fn align_elementwise(
        &self,
        em: &mut Emitter,
        id: NodeId,
        mut l: ValueId,
        mut r: ValueId,
    ) -> Result<(ValueId, ValueId), HloError> {
        let (sl, sr) = (em.shardings[l.0], em.shardings[r.0]);
        match (sl, sr) {
            (a, b) if a == b => {}
            (Sharding::Replicated, s @ Sharding::Split { .. }) => {
                l = em.reshard(l, s, id)?;
            }
            (s @ Sharding::Split { .. }, _) => {
                r = em.reshard(r, s, id)?;
            }
            _ => unreachable!("covered above"),
        }
        Ok((l, r))
    }

    fn emit_gather(
        &self,
        em: &mut Emitter,
        id: NodeId,
        operands: &[ValueId],
        global: &Shape,
    ) -> Result<ValueId, HloError> {
        let (table, mut indices) = (operands[0], operands[1]);
        indices = em.reshard(indices, Sharding::Replicated, id)?;
        let k = em.shapes[indices.0].dim(0);
        match em.shardings[table.0] {
            Sharding::Replicated => Ok(em.compute(
                ComputeOp::Gather {
                    input: table,
                    indices,
                },
                global.clone(),
                Sharding::Replicated,
                global.clone(),
            )),
            // Column-sharded table: rows are whole on every core, so the
            // gather is local and the output inherits the column split.
            Sharding::Split { axis: 1, parts } => {
                let local = Shape::of(&[k, em.shapes[table.0].dim(1)]);
                Ok(em.compute(
                    ComputeOp::Gather {
                        input: table,
                        indices,
                    },
                    local,
                    Sharding::split(1, parts),
                    global.clone(),
                ))
            }
            // Row-partitioned table: the interesting §4.5 case.
            Sharding::Split { axis: 0, .. } => match self.gather {
                GatherStrategy::AllGather => {
                    let replicated = em.reshard(table, Sharding::Replicated, id)?;
                    Ok(em.compute(
                        ComputeOp::Gather {
                            input: replicated,
                            indices,
                        },
                        global.clone(),
                        Sharding::Replicated,
                        global.clone(),
                    ))
                }
                GatherStrategy::OneHotMatMul => {
                    let partial = em.compute(
                        ComputeOp::GatherPartial {
                            input: table,
                            indices,
                        },
                        global.clone(),
                        Sharding::Replicated,
                        global.clone(),
                    );
                    Ok(em.all_reduce(partial))
                }
            },
            s => Err(HloError::Unpartitionable {
                node: id,
                reason: format!("gather table sharding {s:?}"),
            }),
        }
    }

    fn emit_topk(
        &self,
        em: &mut Emitter,
        id: NodeId,
        operands: &[ValueId],
        global: &Shape,
        k: usize,
    ) -> Result<ValueId, HloError> {
        let input = operands[0];
        match em.shardings[input.0] {
            Sharding::Replicated => Ok(em.compute(
                ComputeOp::TopK { input, k },
                Shape::vector(k),
                Sharding::Replicated,
                global.clone(),
            )),
            Sharding::Split { axis: 0, parts } => {
                let local_len = em.shapes[input.0].dim(0);
                if k > local_len {
                    return Err(HloError::Unpartitionable {
                        node: id,
                        reason: format!("top-{k} exceeds the {local_len}-element local shard"),
                    });
                }
                // Local candidates → all-gather → final top-k (the
                // distributed top-k rewrite the paper added to XLA, §4.5).
                let candidates = em.compute(
                    ComputeOp::TopK { input, k },
                    Shape::vector(k),
                    Sharding::split(0, parts),
                    Shape::vector(k * parts),
                );
                let gathered = em.reshard(candidates, Sharding::Replicated, id)?;
                Ok(em.compute(
                    ComputeOp::TopK { input: gathered, k },
                    Shape::vector(k),
                    Sharding::Replicated,
                    global.clone(),
                ))
            }
            s => Err(HloError::Unpartitionable {
                node: id,
                reason: format!("top-k input sharding {s:?}"),
            }),
        }
    }

    fn emit_matmul(
        &self,
        em: &mut Emitter,
        id: NodeId,
        operands: &[ValueId],
        global: &Shape,
    ) -> Result<ValueId, HloError> {
        let (mut lhs, mut rhs) = (operands[0], operands[1]);
        let (sl, sr) = (em.shardings[lhs.0], em.shardings[rhs.0]);
        let parts = self.parts;
        let matmul_shape = |em: &Emitter, l: ValueId, r: ValueId| {
            Shape::of(&[em.shapes[l.0].dim(0), em.shapes[r.0].dim(1)])
        };
        match (sl, sr) {
            // Contracting dimension split on both sides: partial matmul
            // followed by an all-reduce over the tile (§3.1).
            (Sharding::Split { axis: 1, .. }, Sharding::Split { axis: 0, .. }) => {
                let shape = matmul_shape(em, lhs, rhs);
                let partial = em.compute(
                    ComputeOp::MatMul { lhs, rhs },
                    shape,
                    Sharding::Replicated,
                    global.clone(),
                );
                Ok(em.all_reduce(partial))
            }
            // Row (batch/spatial) split: replicate the weights.
            (Sharding::Split { axis: 0, .. }, _) => {
                rhs = em.reshard(rhs, Sharding::Replicated, id)?;
                let shape = matmul_shape(em, lhs, rhs);
                Ok(em.compute(
                    ComputeOp::MatMul { lhs, rhs },
                    shape,
                    Sharding::split(0, parts),
                    global.clone(),
                ))
            }
            // Output-feature split: replicate the activations.
            (_, Sharding::Split { axis: 1, .. }) => {
                lhs = em.reshard(lhs, Sharding::Replicated, id)?;
                let shape = matmul_shape(em, lhs, rhs);
                Ok(em.compute(
                    ComputeOp::MatMul { lhs, rhs },
                    shape,
                    Sharding::split(1, parts),
                    global.clone(),
                ))
            }
            // One-sided contracting split: slice the other side locally
            // (communication-free) and take the partial-sum path.
            (Sharding::Split { axis: 1, .. }, Sharding::Replicated) => {
                rhs = em.reshard(rhs, Sharding::split(0, parts), id)?;
                let shape = matmul_shape(em, lhs, rhs);
                let partial = em.compute(
                    ComputeOp::MatMul { lhs, rhs },
                    shape,
                    Sharding::Replicated,
                    global.clone(),
                );
                Ok(em.all_reduce(partial))
            }
            (Sharding::Replicated, Sharding::Split { axis: 0, .. }) => {
                lhs = em.reshard(lhs, Sharding::split(1, parts), id)?;
                let shape = matmul_shape(em, lhs, rhs);
                let partial = em.compute(
                    ComputeOp::MatMul { lhs, rhs },
                    shape,
                    Sharding::Replicated,
                    global.clone(),
                );
                Ok(em.all_reduce(partial))
            }
            (Sharding::Replicated, Sharding::Replicated) => {
                let shape = matmul_shape(em, lhs, rhs);
                Ok(em.compute(
                    ComputeOp::MatMul { lhs, rhs },
                    shape,
                    Sharding::Replicated,
                    global.clone(),
                ))
            }
            (from, to) => Err(HloError::Unpartitionable {
                node: id,
                reason: format!("matmul with shardings {from:?} × {to:?}"),
            }),
        }
    }

    fn emit_conv(
        &self,
        em: &mut Emitter,
        id: NodeId,
        operands: &[ValueId],
        global: &Shape,
    ) -> Result<ValueId, HloError> {
        let (input, mut kernel) = (operands[0], operands[1]);
        kernel = em.reshard(kernel, Sharding::Replicated, id)?;
        let kernel_shape = em.shapes[kernel.0].clone();
        match em.shardings[input.0] {
            Sharding::Replicated => {
                let shape = em.shapes[input.0].clone();
                Ok(em.compute(
                    ComputeOp::ConvSame { input, kernel },
                    shape,
                    Sharding::Replicated,
                    global.clone(),
                ))
            }
            Sharding::Split { axis, parts } if axis < 2 => {
                let tile_shape = em.shapes[input.0].clone();
                let halo = kernel_shape.dim(axis) / 2;
                let conv_input = if halo > 0 {
                    let padded = tile_shape.with_dim(axis, tile_shape.dim(axis) + 2 * halo);
                    em.push(
                        |out| Instr::HaloExchange {
                            out,
                            input,
                            axis,
                            halo,
                        },
                        padded,
                        Sharding::split(axis, parts),
                        global.clone(),
                    )
                } else {
                    input
                };
                Ok(em.compute(
                    ComputeOp::ConvHalo {
                        input: conv_input,
                        kernel,
                        valid_axis: axis,
                    },
                    tile_shape,
                    Sharding::split(axis, parts),
                    global.clone(),
                ))
            }
            s => Err(HloError::Unpartitionable {
                node: id,
                reason: format!("conv input sharding {s:?}"),
            }),
        }
    }

    fn emit_naive(
        &self,
        em: &mut Emitter,
        id: NodeId,
        op: &Op,
        operands: &[ValueId],
        global: &Shape,
    ) -> Result<ValueId, HloError> {
        // Reshard everything to replicated, compute globally.
        let replicated: Vec<ValueId> = operands
            .iter()
            .map(|&v| em.reshard(v, Sharding::Replicated, id))
            .collect::<Result<_, _>>()?;
        let compute = match op {
            Op::MatMul { .. } => ComputeOp::MatMul {
                lhs: replicated[0],
                rhs: replicated[1],
            },
            Op::Conv2dSame { .. } => ComputeOp::ConvSame {
                input: replicated[0],
                kernel: replicated[1],
            },
            Op::Add { .. } => ComputeOp::Add {
                lhs: replicated[0],
                rhs: replicated[1],
            },
            Op::Relu { .. } => ComputeOp::Relu {
                input: replicated[0],
            },
            Op::ReduceSum { axis, .. } => ComputeOp::ReduceSum {
                input: replicated[0],
                axis: *axis,
            },
            Op::Gather { .. } => ComputeOp::Gather {
                input: replicated[0],
                indices: replicated[1],
            },
            Op::TopK { k, .. } => ComputeOp::TopK {
                input: replicated[0],
                k: *k,
            },
            Op::Transpose { .. } => ComputeOp::Transpose {
                input: replicated[0],
            },
            Op::Mul { .. } => ComputeOp::Mul {
                lhs: replicated[0],
                rhs: replicated[1],
            },
            Op::ReluGrad { .. } => ComputeOp::ReluGrad {
                input: replicated[0],
                upstream: replicated[1],
            },
            Op::BroadcastAxis { axis, extent, .. } => ComputeOp::BroadcastAxis {
                input: replicated[0],
                axis: *axis,
                extent: *extent,
            },
            Op::Rot180 { .. } => ComputeOp::Rot180 {
                input: replicated[0],
            },
            Op::ConvKernelGrad { kh, kw, .. } => ComputeOp::ConvKernelGrad {
                input: replicated[0],
                upstream: replicated[1],
                kh: *kh,
                kw: *kw,
            },
            Op::ScatterAdd { rows, .. } => ComputeOp::ScatterAdd {
                indices: replicated[0],
                upstream: replicated[1],
                rows: *rows,
            },
            Op::Parameter { .. } | Op::Constant { .. } => {
                unreachable!("leaves handled earlier")
            }
        };
        Ok(em.compute(
            compute,
            global.clone(),
            Sharding::Replicated,
            global.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HloBuilder;
    use multipod_simnet::{Network, NetworkConfig};
    use multipod_tensor::{Tensor, TensorRng};
    use multipod_topology::{ChipId, Multipod, MultipodConfig};
    use std::collections::HashMap;

    fn tile_net(parts: u32) -> (Network, Vec<ChipId>) {
        let mesh = Multipod::new(MultipodConfig::mesh(parts, 1, false));
        let net = Network::new(mesh, NetworkConfig::tpu_v3());
        let tile = net.mesh().chips().collect();
        (net, tile)
    }

    fn feeds(pairs: &[(&str, Tensor)]) -> HashMap<String, Tensor> {
        pairs
            .iter()
            .map(|(n, t)| (n.to_string(), t.clone()))
            .collect()
    }

    /// Partition, execute, assemble, and compare against the reference
    /// interpreter.
    fn verify(
        graph: &crate::HloGraph,
        program: &PartitionedProgram,
        feed_map: &HashMap<String, Tensor>,
    ) {
        let reference = graph.evaluate(feed_map).unwrap();
        let (mut net, tile) = tile_net(program.num_parts() as u32);
        let (outputs, _t) = program.execute(&mut net, feed_map, &tile).unwrap();
        for (i, per_core) in outputs.iter().enumerate() {
            let assembled = program.assemble_output(i, per_core);
            assert!(
                assembled.max_abs_diff(&reference[i]) < 1e-3,
                "output {i} mismatch: {:?} vs {:?}",
                assembled,
                reference[i]
            );
        }
    }

    #[test]
    fn feature_sharded_matmul_inserts_all_reduce() {
        // §3.1: weights split on the contracting dim, partial matmuls
        // reduced via all-reduce.
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[4, 8]), Sharding::split(1, 4));
        let w = b.parameter("w", Shape::of(&[8, 6]), Sharding::split(0, 4));
        let y = b.matmul(x, w).unwrap();
        let g = b.build(vec![y]).unwrap();
        let p = SpmdPartitioner::new(4).partition(&g).unwrap();
        assert_eq!(p.comm_stats().all_reduces, 1);
        assert_eq!(p.comm_stats().all_gathers, 0);

        let mut rng = TensorRng::seed(2);
        let f = feeds(&[
            ("x", rng.uniform(Shape::of(&[4, 8]), -1.0, 1.0)),
            ("w", rng.uniform(Shape::of(&[8, 6]), -1.0, 1.0)),
        ]);
        verify(&g, &p, &f);
    }

    #[test]
    fn batch_split_matmul_is_communication_free() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[8, 4]), Sharding::split(0, 4));
        let w = b.parameter("w", Shape::of(&[4, 6]), Sharding::Replicated);
        let y = b.matmul(x, w).unwrap();
        let g = b.build(vec![y]).unwrap();
        let p = SpmdPartitioner::new(4).partition(&g).unwrap();
        assert_eq!(p.comm_stats().total_collectives(), 0);
        assert_eq!(p.value_shape(y).dims(), &[2, 6]);
        assert_eq!(p.value_sharding(y), Sharding::split(0, 4));

        let mut rng = TensorRng::seed(3);
        let f = feeds(&[
            ("x", rng.uniform(Shape::of(&[8, 4]), -1.0, 1.0)),
            ("w", rng.uniform(Shape::of(&[4, 6]), -1.0, 1.0)),
        ]);
        verify(&g, &p, &f);
    }

    #[test]
    fn output_feature_split_keeps_weights_sharded() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[4, 8]), Sharding::Replicated);
        let w = b.parameter("w", Shape::of(&[8, 12]), Sharding::split(1, 4));
        let y = b.matmul(x, w).unwrap();
        let g = b.build(vec![y]).unwrap();
        let p = SpmdPartitioner::new(4).partition(&g).unwrap();
        assert_eq!(p.comm_stats().total_collectives(), 0);
        assert_eq!(p.value_shape(y).dims(), &[4, 3]);

        let mut rng = TensorRng::seed(4);
        let f = feeds(&[
            ("x", rng.uniform(Shape::of(&[4, 8]), -1.0, 1.0)),
            ("w", rng.uniform(Shape::of(&[8, 12]), -1.0, 1.0)),
        ]);
        verify(&g, &p, &f);
    }

    #[test]
    fn spatially_partitioned_conv_uses_halo_exchange() {
        // §3.1: spatial partitioning of segmentation models.
        let mut b = HloBuilder::new();
        let img = b.parameter("img", Shape::of(&[16, 8]), Sharding::split(0, 4));
        let k = b.parameter("k", Shape::of(&[3, 3]), Sharding::Replicated);
        let y = b.conv2d_same(img, k).unwrap();
        let g = b.build(vec![y]).unwrap();
        let p = SpmdPartitioner::new(4).partition(&g).unwrap();
        assert_eq!(p.comm_stats().halo_exchanges, 1);
        assert_eq!(p.comm_stats().all_reduces, 0);
        assert_eq!(p.value_shape(y).dims(), &[4, 8]);

        let mut rng = TensorRng::seed(5);
        let f = feeds(&[
            ("img", rng.uniform(Shape::of(&[16, 8]), -1.0, 1.0)),
            ("k", rng.uniform(Shape::of(&[3, 3]), -1.0, 1.0)),
        ]);
        verify(&g, &p, &f);
    }

    #[test]
    fn conv_split_along_width_also_works() {
        let mut b = HloBuilder::new();
        let img = b.parameter("img", Shape::of(&[6, 12]), Sharding::split(1, 2));
        let k = b.parameter("k", Shape::of(&[5, 3]), Sharding::Replicated);
        let y = b.conv2d_same(img, k).unwrap();
        let g = b.build(vec![y]).unwrap();
        let p = SpmdPartitioner::new(2).partition(&g).unwrap();
        assert_eq!(p.comm_stats().halo_exchanges, 1);

        let mut rng = TensorRng::seed(6);
        let f = feeds(&[
            ("img", rng.uniform(Shape::of(&[6, 12]), -1.0, 1.0)),
            ("k", rng.uniform(Shape::of(&[5, 3]), -1.0, 1.0)),
        ]);
        verify(&g, &p, &f);
    }

    #[test]
    fn deep_network_mixes_mechanisms() {
        // conv (spatial) → relu → reduce over the split axis (all-reduce).
        let mut b = HloBuilder::new();
        let img = b.parameter("img", Shape::of(&[8, 4]), Sharding::split(0, 2));
        let k = b.parameter("k", Shape::of(&[3, 1]), Sharding::Replicated);
        let c = b.conv2d_same(img, k).unwrap();
        let r = b.relu(c).unwrap();
        let s = b.reduce_sum(r, 0).unwrap();
        let g = b.build(vec![s]).unwrap();
        let p = SpmdPartitioner::new(2).partition(&g).unwrap();
        assert!(p.comm_stats().all_reduces >= 1);
        assert!(p.comm_stats().halo_exchanges >= 1);

        let mut rng = TensorRng::seed(7);
        let f = feeds(&[
            ("img", rng.uniform(Shape::of(&[8, 4]), -1.0, 1.0)),
            ("k", rng.uniform(Shape::of(&[3, 1]), -1.0, 1.0)),
        ]);
        verify(&g, &p, &f);
    }

    #[test]
    fn reduce_over_unsplit_axis_stays_local() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[8, 4]), Sharding::split(0, 4));
        let s = b.reduce_sum(x, 1).unwrap();
        let g = b.build(vec![s]).unwrap();
        let p = SpmdPartitioner::new(4).partition(&g).unwrap();
        assert_eq!(p.comm_stats().total_collectives(), 0);
        assert_eq!(p.value_sharding(s), Sharding::split(0, 4));

        let mut rng = TensorRng::seed(8);
        let f = feeds(&[("x", rng.uniform(Shape::of(&[8, 4]), -1.0, 1.0))]);
        verify(&g, &p, &f);
    }

    #[test]
    fn add_slices_replicated_operand_for_free() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[8, 4]), Sharding::split(0, 2));
        let bias = b.parameter("bias", Shape::of(&[8, 4]), Sharding::Replicated);
        let y = b.add(x, bias).unwrap();
        let g = b.build(vec![y]).unwrap();
        let p = SpmdPartitioner::new(2).partition(&g).unwrap();
        assert_eq!(p.comm_stats().total_collectives(), 0);

        let mut rng = TensorRng::seed(9);
        let f = feeds(&[
            ("x", rng.uniform(Shape::of(&[8, 4]), -1.0, 1.0)),
            ("bias", rng.uniform(Shape::of(&[8, 4]), -1.0, 1.0)),
        ]);
        verify(&g, &p, &f);
    }

    #[test]
    fn output_annotation_forces_reshard() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[8, 4]), Sharding::split(0, 2));
        let w = b.parameter("w", Shape::of(&[4, 4]), Sharding::Replicated);
        let y = b.matmul(x, w).unwrap();
        b.annotate(y, Sharding::Replicated).unwrap();
        let g = b.build(vec![y]).unwrap();
        let p = SpmdPartitioner::new(2).partition(&g).unwrap();
        assert_eq!(p.comm_stats().all_gathers, 1);
        assert_eq!(p.value_sharding(y), Sharding::Replicated);

        let mut rng = TensorRng::seed(10);
        let f = feeds(&[
            ("x", rng.uniform(Shape::of(&[8, 4]), -1.0, 1.0)),
            ("w", rng.uniform(Shape::of(&[4, 4]), -1.0, 1.0)),
        ]);
        verify(&g, &p, &f);
    }

    #[test]
    fn naive_mode_reshards_everything() {
        // Build a two-layer network; naive partitioning must move far more
        // bytes than the optimized one (§4.5's 30% → 10%).
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[16, 8]), Sharding::split(0, 4));
        let w1 = b.parameter("w1", Shape::of(&[8, 8]), Sharding::Replicated);
        let h = b.matmul(x, w1).unwrap();
        let r = b.relu(h).unwrap();
        let w2 = b.parameter("w2", Shape::of(&[8, 4]), Sharding::Replicated);
        let y = b.matmul(r, w2).unwrap();
        let g = b.build(vec![y]).unwrap();

        let optimized = SpmdPartitioner::new(4).partition(&g).unwrap();
        let naive = SpmdPartitioner::with_comm_opt(4, CommunicationOpt::Naive)
            .partition(&g)
            .unwrap();
        assert_eq!(optimized.comm_stats().bytes_per_core, 0);
        assert!(naive.comm_stats().bytes_per_core > 0);
        // Both still compute the right answer.
        let mut rng = TensorRng::seed(11);
        let f = feeds(&[
            ("x", rng.uniform(Shape::of(&[16, 8]), -1.0, 1.0)),
            ("w1", rng.uniform(Shape::of(&[8, 8]), -1.0, 1.0)),
            ("w2", rng.uniform(Shape::of(&[8, 4]), -1.0, 1.0)),
        ]);
        verify(&g, &optimized, &f);
        verify(&g, &naive, &f);
        // Naive mode also computes k times the FLOPs per core.
        assert!(naive.flops_per_core() > optimized.flops_per_core());
    }

    #[test]
    fn zero_parts_is_a_typed_error_not_a_panic() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[8, 4]), Sharding::Replicated);
        let g = b.build(vec![x]).unwrap();
        assert_eq!(
            SpmdPartitioner::new(0).partition(&g).unwrap_err(),
            HloError::InvalidPartCount
        );
        assert_eq!(
            SpmdPartitioner::with_comm_opt(0, CommunicationOpt::Naive)
                .partition(&g)
                .unwrap_err(),
            HloError::InvalidPartCount
        );
    }

    #[test]
    fn invalid_annotations_are_rejected() {
        let mut b = HloBuilder::new();
        // 7 rows cannot split 4 ways.
        let _x = b.parameter("x", Shape::of(&[7, 4]), Sharding::split(0, 4));
        let g = b.build(vec![NodeId(0)]).unwrap();
        assert!(matches!(
            SpmdPartitioner::new(4).partition(&g),
            Err(HloError::BadSharding { .. })
        ));
        // Declared parts must match the partitioner's.
        let mut b = HloBuilder::new();
        let _x = b.parameter("x", Shape::of(&[8, 4]), Sharding::split(0, 2));
        let g = b.build(vec![NodeId(0)]).unwrap();
        assert!(matches!(
            SpmdPartitioner::new(4).partition(&g),
            Err(HloError::BadSharding { .. })
        ));
    }

    #[test]
    fn single_part_degenerates_to_reference() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[4, 4]), Sharding::Replicated);
        let w = b.parameter("w", Shape::of(&[4, 4]), Sharding::Replicated);
        let y = b.matmul(x, w).unwrap();
        let g = b.build(vec![y]).unwrap();
        let p = SpmdPartitioner::new(1).partition(&g).unwrap();
        assert_eq!(p.comm_stats().total_collectives(), 0);
        let mut rng = TensorRng::seed(12);
        let f = feeds(&[
            ("x", rng.uniform(Shape::of(&[4, 4]), -1.0, 1.0)),
            ("w", rng.uniform(Shape::of(&[4, 4]), -1.0, 1.0)),
        ]);
        verify(&g, &p, &f);
    }

    #[test]
    fn compile_cost_is_independent_of_parts() {
        let build = || {
            let mut b = HloBuilder::new();
            let x = b.parameter("x", Shape::of(&[16, 16]), Sharding::Replicated);
            let w = b.parameter("w", Shape::of(&[16, 16]), Sharding::Replicated);
            let y = b.matmul(x, w).unwrap();
            b.build(vec![y]).unwrap()
        };
        let p2 = SpmdPartitioner::new(2).partition(&build()).unwrap();
        let p8 = SpmdPartitioner::new(8).partition(&build()).unwrap();
        assert_eq!(p2.compile_cost(), p8.compile_cost());
    }
}
