//! Errors for graph construction and partitioning.

use std::error::Error;
use std::fmt;

use multipod_tensor::Shape;

use crate::graph::NodeId;
use crate::sharding::Sharding;

/// Error raised by HLO graph construction, partitioning or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum HloError {
    /// Operand shapes are incompatible for the op.
    ShapeMismatch {
        /// The op being built.
        op: &'static str,
        /// The offending shapes.
        shapes: Vec<Shape>,
    },
    /// A sharding cannot be applied to a shape (axis out of range or
    /// extent not divisible by the part count).
    BadSharding {
        /// The sharding.
        sharding: Sharding,
        /// The shape it was applied to.
        shape: Shape,
    },
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A required parameter feed was missing at execution time.
    MissingFeed(String),
    /// A feed's shape disagreed with its parameter declaration.
    FeedShape {
        /// Parameter name.
        name: String,
        /// Declared shape.
        expected: Shape,
        /// Supplied shape.
        got: Shape,
    },
    /// A partitioner was asked to split a graph over zero cores.
    InvalidPartCount,
    /// The partitioner hit an op/sharding combination it cannot rewrite.
    Unpartitionable {
        /// The node that failed.
        node: NodeId,
        /// Human-readable reason.
        reason: String,
    },
    /// A collective failed during partitioned execution.
    Collective(String),
}

impl fmt::Display for HloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HloError::ShapeMismatch { op, shapes } => {
                write!(f, "shape mismatch in {op}: {shapes:?}")
            }
            HloError::BadSharding { sharding, shape } => {
                write!(f, "sharding {sharding:?} invalid for shape {shape}")
            }
            HloError::UnknownNode(id) => write!(f, "unknown node {id:?}"),
            HloError::MissingFeed(name) => write!(f, "missing feed for parameter '{name}'"),
            HloError::FeedShape {
                name,
                expected,
                got,
            } => write!(f, "feed '{name}' has shape {got}, expected {expected}"),
            HloError::InvalidPartCount => {
                write!(f, "partition count must be positive")
            }
            HloError::Unpartitionable { node, reason } => {
                write!(f, "cannot partition node {node:?}: {reason}")
            }
            HloError::Collective(msg) => write!(f, "collective failed: {msg}"),
        }
    }
}

impl Error for HloError {}

impl From<multipod_collectives::CollectiveError> for HloError {
    fn from(e: multipod_collectives::CollectiveError) -> Self {
        HloError::Collective(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = HloError::MissingFeed("x".into());
        assert!(e.to_string().contains("'x'"));
        let e = HloError::BadSharding {
            sharding: Sharding::split(0, 3),
            shape: Shape::of(&[4]),
        };
        assert!(e.to_string().contains("invalid"));
    }
}
