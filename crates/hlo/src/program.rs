//! The partitioned per-core program and its executor.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use multipod_collectives::{halo, ring, Precision};
use multipod_simnet::{Network, SimTime};
use multipod_tensor::{Shape, Tensor};
use multipod_topology::{ChipId, Ring};

use crate::graph::NodeId;
use crate::op;
use crate::sharding::Sharding;
use crate::HloError;

/// Identifies a value produced by a [`PartitionedProgram`] instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ValueId(pub usize);

impl fmt::Debug for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Local (per-core) compute operations of the partitioned program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ComputeOp {
    /// Reads a parameter feed; execution splits the global tensor
    /// according to the sharding.
    Feed {
        /// Feed name.
        name: String,
        /// How the global tensor is distributed.
        sharding: Sharding,
    },
    /// A replicated constant.
    Constant {
        /// The value.
        value: Tensor,
    },
    /// Local (possibly partial) matmul.
    MatMul {
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Same-padded convolution on a fully replicated input.
    ConvSame {
        /// Input image.
        input: ValueId,
        /// Kernel.
        kernel: ValueId,
    },
    /// Convolution on a halo-padded tile: *valid* along `valid_axis`
    /// (the halo already carries the neighbour rows), *same*-padded along
    /// the other axis.
    ConvHalo {
        /// Halo-padded input tile.
        input: ValueId,
        /// Kernel.
        kernel: ValueId,
        /// The spatially partitioned axis.
        valid_axis: usize,
    },
    /// Elementwise addition.
    Add {
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Elementwise ReLU.
    Relu {
        /// Input.
        input: ValueId,
    },
    /// Local sum reduction over `axis`.
    ReduceSum {
        /// Input.
        input: ValueId,
        /// Axis to reduce.
        axis: usize,
    },
    /// Core `i` takes tile `i` along `axis` of a replicated value
    /// (a communication-free reshard).
    SliceAxis {
        /// Replicated input.
        input: ValueId,
        /// Axis to tile.
        axis: usize,
    },
    /// Local row gather from a replicated (or column-sharded) table.
    Gather {
        /// The table.
        input: ValueId,
        /// Replicated rank-1 indices.
        indices: ValueId,
    },
    /// The onehot-matmul rewrite of a gather over a row-partitioned
    /// table (§4.5): each core contributes the rows it owns (zeros
    /// elsewhere), computed as a dense partial matmul on the MXU; an
    /// all-reduce completes the gather.
    GatherPartial {
        /// Row-sharded table (`rows/parts` rows per core).
        input: ValueId,
        /// Replicated rank-1 *global* row indices.
        indices: ValueId,
    },
    /// Local top-k of a rank-1 value.
    TopK {
        /// Input.
        input: ValueId,
        /// Values to keep.
        k: usize,
    },
    /// Rank-2 transpose.
    Transpose {
        /// Input.
        input: ValueId,
    },
    /// Elementwise product.
    Mul {
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// ReLU VJP.
    ReluGrad {
        /// Forward input.
        input: ValueId,
        /// Upstream gradient.
        upstream: ValueId,
    },
    /// Axis insertion (ReduceSum VJP).
    BroadcastAxis {
        /// Input.
        input: ValueId,
        /// Inserted axis.
        axis: usize,
        /// New extent.
        extent: usize,
    },
    /// Kernel rotation (conv-input VJP helper).
    Rot180 {
        /// Input kernel.
        input: ValueId,
    },
    /// Conv-kernel VJP.
    ConvKernelGrad {
        /// Forward image.
        input: ValueId,
        /// Upstream gradient.
        upstream: ValueId,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
    },
    /// Gather VJP (scatter-add into a zero table).
    ScatterAdd {
        /// Row indices.
        indices: ValueId,
        /// Upstream gradient.
        upstream: ValueId,
        /// Table rows.
        rows: usize,
    },
}

/// One instruction of the partitioned program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Local computation on every core.
    Compute {
        /// Produced value.
        out: ValueId,
        /// The operation.
        op: ComputeOp,
    },
    /// Cross-core elementwise sum (partial results → full results).
    AllReduce {
        /// Produced value.
        out: ValueId,
        /// Summed input.
        input: ValueId,
    },
    /// Gather tiles along `axis` in core-index order (Split → Replicated).
    AllGather {
        /// Produced value.
        out: ValueId,
        /// Sharded input.
        input: ValueId,
        /// Tiled axis.
        axis: usize,
    },
    /// Exchange `halo` boundary slices along `axis` with spatial
    /// neighbours.
    HaloExchange {
        /// Produced (padded) value.
        out: ValueId,
        /// Tiled input.
        input: ValueId,
        /// Spatial axis.
        axis: usize,
        /// Halo width.
        halo: usize,
    },
}

impl Instr {
    /// The produced value id.
    pub fn out(&self) -> ValueId {
        match self {
            Instr::Compute { out, .. }
            | Instr::AllReduce { out, .. }
            | Instr::AllGather { out, .. }
            | Instr::HaloExchange { out, .. } => *out,
        }
    }

    /// Whether this instruction communicates between cores.
    pub fn is_collective(&self) -> bool {
        !matches!(self, Instr::Compute { .. })
    }
}

/// Aggregate communication statistics of a program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Number of all-reduce instructions.
    pub all_reduces: usize,
    /// Number of all-gather (reshard) instructions.
    pub all_gathers: usize,
    /// Number of halo exchanges.
    pub halo_exchanges: usize,
    /// Total bytes a single core sends across all collectives
    /// (f32 payloads).
    pub bytes_per_core: u64,
}

impl CommStats {
    /// Total collective instruction count.
    pub fn total_collectives(&self) -> usize {
        self.all_reduces + self.all_gathers + self.halo_exchanges
    }
}

/// A single program executed by every core of a model-parallel tile
/// (the defining property of SPMD partitioning).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionedProgram {
    pub(crate) parts: usize,
    pub(crate) instrs: Vec<Instr>,
    /// Per-core shape of each value.
    pub(crate) shapes: Vec<Shape>,
    /// Sharding of each value with respect to the global tensor it tiles.
    pub(crate) shardings: Vec<Sharding>,
    pub(crate) value_of_node: HashMap<NodeId, ValueId>,
    pub(crate) outputs: Vec<ValueId>,
    /// Abstract compile cost: instruction count × number of compiled
    /// programs (1 for SPMD, `parts` for MPMD).
    pub(crate) compile_cost: u64,
}

impl PartitionedProgram {
    /// Number of cores the program runs on.
    pub fn num_parts(&self) -> usize {
        self.parts
    }

    /// The instruction stream.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Output values (same order as the source graph's outputs).
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }

    /// The per-core shape of the value computed for a source-graph node.
    ///
    /// # Panics
    ///
    /// Panics when the node has no partitioned value.
    pub fn value_shape(&self, node: NodeId) -> &Shape {
        let v = self.value_of_node[&node];
        &self.shapes[v.0]
    }

    /// The sharding of the value computed for a source-graph node.
    ///
    /// # Panics
    ///
    /// Panics when the node has no partitioned value.
    pub fn value_sharding(&self, node: NodeId) -> Sharding {
        let v = self.value_of_node[&node];
        self.shardings[v.0]
    }

    /// Abstract compile cost (instructions × compiled programs).
    pub fn compile_cost(&self) -> u64 {
        self.compile_cost
    }

    /// Per-core forward FLOPs.
    pub fn flops_per_core(&self) -> u64 {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Compute { out, op } => Some(self.compute_flops(op, *out)),
                _ => None,
            })
            .sum()
    }

    fn compute_flops(&self, op: &ComputeOp, out: ValueId) -> u64 {
        let shape = |v: &ValueId| &self.shapes[v.0];
        match op {
            ComputeOp::Feed { .. } | ComputeOp::Constant { .. } | ComputeOp::SliceAxis { .. } => 0,
            // A plain gather is data movement (no MXU FLOPs) — the §4.5
            // problem. The onehot rewrite is a dense [k × rows_local] ×
            // [rows_local × d] matmul.
            ComputeOp::Gather { .. } => 0,
            ComputeOp::GatherPartial { input, indices } => {
                2 * shape(indices).len() as u64 * (shape(input).dim(0) * shape(input).dim(1)) as u64
            }
            ComputeOp::TopK { input, .. } => shape(input).len() as u64,
            ComputeOp::Transpose { .. }
            | ComputeOp::Rot180 { .. }
            | ComputeOp::BroadcastAxis { .. } => 0,
            ComputeOp::Mul { lhs, .. } => shape(lhs).len() as u64,
            ComputeOp::ReluGrad { input, .. } => shape(input).len() as u64,
            ComputeOp::ConvKernelGrad { input, kh, kw, .. } => {
                2 * shape(input).len() as u64 * (*kh * *kw) as u64
            }
            ComputeOp::ScatterAdd { upstream, .. } => shape(upstream).len() as u64,
            ComputeOp::MatMul { lhs, rhs } => {
                2 * (shape(lhs).dim(0) * shape(lhs).dim(1)) as u64 * shape(rhs).dim(1) as u64
            }
            ComputeOp::ConvSame { kernel, .. } | ComputeOp::ConvHalo { kernel, .. } => {
                2 * self.shapes[out.0].len() as u64
                    * (shape(kernel).dim(0) * shape(kernel).dim(1)) as u64
            }
            ComputeOp::Add { lhs, .. } => shape(lhs).len() as u64,
            ComputeOp::Relu { input } => shape(input).len() as u64,
            ComputeOp::ReduceSum { input, .. } => shape(input).len() as u64,
        }
    }

    /// Communication statistics (per-core bytes assume f32 payloads).
    pub fn comm_stats(&self) -> CommStats {
        let mut stats = CommStats::default();
        for instr in &self.instrs {
            match instr {
                Instr::AllReduce { input, .. } => {
                    stats.all_reduces += 1;
                    // Ring all-reduce moves ~2x the buffer per core.
                    stats.bytes_per_core += 2 * 4 * self.shapes[input.0].len() as u64;
                }
                Instr::AllGather { input, .. } => {
                    stats.all_gathers += 1;
                    stats.bytes_per_core +=
                        4 * (self.shapes[input.0].len() * (self.parts - 1)) as u64;
                }
                Instr::HaloExchange {
                    input, axis, halo, ..
                } => {
                    stats.halo_exchanges += 1;
                    let s = &self.shapes[input.0];
                    let slice_elems = s.len() / s.dim(*axis) * halo;
                    stats.bytes_per_core += 4 * 2 * slice_elems as u64;
                }
                Instr::Compute { .. } => {}
            }
        }
        stats
    }

    /// Executes the program on `tile` (one chip per part) with global
    /// feeds, returning per-output per-core tensors and the communication
    /// completion time.
    ///
    /// # Errors
    ///
    /// Fails on missing/misshapen feeds or collective failures.
    pub fn execute(
        &self,
        net: &mut Network,
        feeds: &HashMap<String, Tensor>,
        tile: &[ChipId],
    ) -> Result<(Vec<Vec<Tensor>>, SimTime), HloError> {
        assert_eq!(tile.len(), self.parts, "tile width must equal parts");
        let n = self.parts;
        let ring = Ring::new(tile.to_vec(), false, 1);
        // values[v][core]
        let mut values: Vec<Vec<Tensor>> = Vec::with_capacity(self.instrs.len());
        let mut t = SimTime::ZERO;
        for instr in &self.instrs {
            let produced: Vec<Tensor> = match instr {
                Instr::Compute { op, .. } => self.execute_compute(op, &values, feeds, n)?,
                Instr::AllReduce { input, .. } => {
                    // Ring chunking needs the payload divisible by the
                    // ring size; pad with zeros and truncate after (as
                    // XLA's collective lowering does).
                    let ins = &values[input.0];
                    let shape = ins[0].shape().clone();
                    let elems = ins[0].len();
                    let padded_len = elems.div_ceil(n) * n;
                    let padded: Vec<Tensor> = ins
                        .iter()
                        .map(|v| {
                            let mut data = v.data().to_vec();
                            data.resize(padded_len, 0.0);
                            Tensor::new(Shape::vector(padded_len), data)
                        })
                        .collect();
                    let out = ring::all_reduce_unidirectional(
                        net,
                        &ring,
                        &padded,
                        Precision::F32,
                        ring::Direction::Forward,
                        t,
                    )?;
                    t = out.time;
                    out.outputs
                        .into_iter()
                        .map(|v| Tensor::new(shape.clone(), v.data()[..elems].to_vec()))
                        .collect()
                }
                Instr::AllGather { input, axis, .. } => {
                    let ins = &values[input.0];
                    let tile_shape = ins[0].shape().clone();
                    let out = ring::all_gather_ordered(
                        net,
                        &ring,
                        ins,
                        Precision::F32,
                        ring::Direction::Forward,
                        t,
                    )?;
                    t = out.time;
                    // Reassemble tiles along the requested axis.
                    out.outputs
                        .into_iter()
                        .map(|flat| {
                            let tiles: Vec<Tensor> = flat
                                .split(0, n)
                                .expect("gathered tiles")
                                .into_iter()
                                .map(|c| c.reshape(tile_shape.clone()).expect("tile reshape"))
                                .collect();
                            Tensor::concat(&tiles, *axis).expect("tile concat")
                        })
                        .collect()
                }
                Instr::HaloExchange {
                    input, axis, halo, ..
                } => {
                    let ins = &values[input.0];
                    let out = halo::halo_exchange(net, tile, ins, *axis, *halo, Precision::F32, t)?;
                    t = out.time;
                    out.outputs
                }
            };
            values.push(produced);
        }
        let outputs = self.outputs.iter().map(|o| values[o.0].clone()).collect();
        Ok((outputs, t))
    }

    fn execute_compute(
        &self,
        op: &ComputeOp,
        values: &[Vec<Tensor>],
        feeds: &HashMap<String, Tensor>,
        n: usize,
    ) -> Result<Vec<Tensor>, HloError> {
        let val = |v: &ValueId| &values[v.0];
        Ok(match op {
            ComputeOp::Feed { name, sharding } => {
                let global = feeds
                    .get(name)
                    .ok_or_else(|| HloError::MissingFeed(name.clone()))?;
                match sharding {
                    Sharding::Replicated => vec![global.clone(); n],
                    Sharding::Split { axis, parts } => global
                        .split(*axis, *parts)
                        .map_err(|e| HloError::Collective(e.to_string()))?,
                }
            }
            ComputeOp::Constant { value } => vec![value.clone(); n],
            ComputeOp::MatMul { lhs, rhs } => (0..n)
                .map(|c| val(lhs)[c].matmul(&val(rhs)[c]).expect("validated matmul"))
                .collect(),
            ComputeOp::ConvSame { input, kernel } => (0..n)
                .map(|c| op::conv2d_same(&val(input)[c], &val(kernel)[c]))
                .collect(),
            ComputeOp::ConvHalo {
                input,
                kernel,
                valid_axis,
            } => (0..n)
                .map(|c| conv2d_mixed(&val(input)[c], &val(kernel)[c], *valid_axis))
                .collect(),
            ComputeOp::Add { lhs, rhs } => (0..n)
                .map(|c| {
                    val(lhs)[c]
                        .add(&val(rhs)[c])
                        .map_err(|e| HloError::Collective(e.to_string()))
                })
                .collect::<Result<_, _>>()?,
            ComputeOp::Relu { input } => {
                (0..n).map(|c| val(input)[c].map(|v| v.max(0.0))).collect()
            }
            ComputeOp::ReduceSum { input, axis } => (0..n)
                .map(|c| op::reduce_sum(&val(input)[c], *axis))
                .collect(),
            ComputeOp::SliceAxis { input, axis } => {
                let full = val(input);
                (0..n)
                    .map(|c| {
                        full[c]
                            .split(*axis, n)
                            .map(|tiles| tiles[c].clone())
                            .map_err(|e| HloError::Collective(e.to_string()))
                    })
                    .collect::<Result<_, _>>()?
            }
            ComputeOp::Gather { input, indices } => (0..n)
                .map(|c| crate::op::gather_rows(&val(input)[c], &val(indices)[c]))
                .collect(),
            ComputeOp::GatherPartial { input, indices } => {
                let tables = val(input);
                let idx = val(indices);
                let rows_local = tables[0].shape().dim(0);
                (0..n)
                    .map(|c| gather_partial(&tables[c], &idx[c], c * rows_local))
                    .collect()
            }
            ComputeOp::TopK { input, k } => (0..n)
                .map(|c| crate::op::top_k(&val(input)[c], *k))
                .collect(),
            ComputeOp::Transpose { input } => (0..n)
                .map(|c| crate::op::transpose2(&val(input)[c]))
                .collect(),
            ComputeOp::Mul { lhs, rhs } => (0..n)
                .map(|c| {
                    val(lhs)[c]
                        .mul(&val(rhs)[c])
                        .map_err(|e| HloError::Collective(e.to_string()))
                })
                .collect::<Result<_, _>>()?,
            ComputeOp::ReluGrad { input, upstream } => (0..n)
                .map(|c| crate::op::relu_grad(&val(input)[c], &val(upstream)[c]))
                .collect(),
            ComputeOp::BroadcastAxis {
                input,
                axis,
                extent,
            } => (0..n)
                .map(|c| crate::op::broadcast_axis(&val(input)[c], *axis, *extent))
                .collect(),
            ComputeOp::Rot180 { input } => {
                (0..n).map(|c| crate::op::rot180(&val(input)[c])).collect()
            }
            ComputeOp::ConvKernelGrad {
                input,
                upstream,
                kh,
                kw,
            } => (0..n)
                .map(|c| crate::op::conv_kernel_grad(&val(input)[c], &val(upstream)[c], *kh, *kw))
                .collect(),
            ComputeOp::ScatterAdd {
                indices,
                upstream,
                rows,
            } => (0..n)
                .map(|c| crate::op::scatter_add(&val(indices)[c], &val(upstream)[c], *rows))
                .collect(),
        })
    }

    /// Reassembles per-core outputs of output index `idx` into the global
    /// tensor: concatenation of tiles for split outputs, the (identical)
    /// replica for replicated outputs.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range or tiles cannot be concatenated.
    pub fn assemble_output(&self, idx: usize, per_core: &[Tensor]) -> Tensor {
        let value = self.outputs[idx];
        match self.shardings[value.0] {
            Sharding::Replicated => per_core[0].clone(),
            Sharding::Split { axis, .. } => {
                Tensor::concat(per_core, axis).expect("assemble split output")
            }
        }
    }
}

/// The per-core half of the onehot-matmul gather: rows this core owns
/// contribute their values; remote rows contribute zeros (the partial
/// product of `onehot[k, rows_local] × table[rows_local, d]`).
fn gather_partial(table_shard: &Tensor, indices: &Tensor, row_offset: usize) -> Tensor {
    let rows_local = table_shard.shape().dim(0);
    let cols = table_shard.shape().dim(1);
    let mut out = vec![0.0f32; indices.len() * cols];
    for (i, &raw) in indices.data().iter().enumerate() {
        let r = raw.round() as usize;
        if r >= row_offset && r < row_offset + rows_local {
            let local = r - row_offset;
            out[i * cols..(i + 1) * cols]
                .copy_from_slice(&table_shard.data()[local * cols..(local + 1) * cols]);
        }
    }
    Tensor::new(Shape::of(&[indices.len(), cols]), out)
}

/// Convolution that is *valid* along `valid_axis` (halo rows already
/// present) and *same* (zero-padded) along the other axis.
pub(crate) fn conv2d_mixed(input: &Tensor, kernel: &Tensor, valid_axis: usize) -> Tensor {
    let (h, w) = (input.shape().dim(0), input.shape().dim(1));
    let (kh, kw) = (kernel.shape().dim(0), kernel.shape().dim(1));
    let (ph, pw) = (kh / 2, kw / 2);
    let (oh, ow) = if valid_axis == 0 {
        (h + 1 - kh, w)
    } else {
        (h, w + 1 - kw)
    };
    let mut out = vec![0.0f32; oh * ow];
    for i in 0..oh {
        for j in 0..ow {
            let mut acc = 0.0f32;
            for a in 0..kh {
                for b in 0..kw {
                    let (ii, jj) = if valid_axis == 0 {
                        (
                            i as isize + a as isize,
                            j as isize + b as isize - pw as isize,
                        )
                    } else {
                        (
                            i as isize + a as isize - ph as isize,
                            j as isize + b as isize,
                        )
                    };
                    if ii >= 0 && (ii as usize) < h && jj >= 0 && (jj as usize) < w {
                        acc +=
                            input.data()[ii as usize * w + jj as usize] * kernel.data()[a * kw + b];
                    }
                }
            }
            out[i * ow + j] = acc;
        }
    }
    Tensor::new(Shape::of(&[oh, ow]), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_mixed_matches_same_on_interior() {
        // A mixed conv over a tile padded with true neighbour rows equals
        // the same-padded conv restricted to the tile (checked end-to-end
        // in the partitioner tests); here check shapes and a hand case.
        let input = Tensor::new(Shape::of(&[4, 2]), vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let k = Tensor::new(Shape::of(&[3, 1]), vec![1., 1., 1.]);
        let out = conv2d_mixed(&input, &k, 0);
        assert_eq!(out.shape().dims(), &[2, 2]);
        // Row i of output sums rows i..i+3 of input.
        assert_eq!(out.data(), &[9.0, 12.0, 15.0, 18.0]);
    }

    #[test]
    fn instr_out_and_collective_flags() {
        let i = Instr::AllReduce {
            out: ValueId(3),
            input: ValueId(2),
        };
        assert_eq!(i.out(), ValueId(3));
        assert!(i.is_collective());
        let c = Instr::Compute {
            out: ValueId(0),
            op: ComputeOp::Relu { input: ValueId(1) },
        };
        assert!(!c.is_collective());
    }
}
