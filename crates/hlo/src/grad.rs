//! Reverse-mode differentiation over the IR.
//!
//! The paper's models *train*: the backward pass re-runs the forward
//! collectives and adds the gradient exchanges (§3.1: "The backward pass
//! has a similar partial matrix multiplication followed by allreduce
//! producing both activations and gradients"). [`gradients`] builds that
//! backward pass as ordinary graph nodes, so the **same SPMD partitioner**
//! shards it — feature-sharded matmul gradients come out as partial
//! matmuls + all-reduces, exactly the structure the paper describes.

use std::collections::HashMap;

use multipod_tensor::Tensor;

use crate::graph::{HloBuilder, HloGraph, NodeId};
use crate::op::Op;
use crate::HloError;

/// A graph extended with its backward pass.
#[derive(Debug)]
pub struct GradientGraph {
    /// The combined forward+backward graph. Its outputs are
    /// `[loss, grad(wrt[0]), grad(wrt[1]), …]`.
    pub graph: HloGraph,
    /// The (copied) loss node id in the new graph.
    pub loss: NodeId,
    /// Gradient node ids, one per requested parameter.
    pub grads: Vec<NodeId>,
}

/// Builds `∂ sum(loss) / ∂ wrt[i]` for every requested node.
///
/// The gradient is of the *sum* of the loss tensor's elements (pass a
/// scalar loss for the usual case). Differentiation follows the reverse
/// topological order; adjoints of fan-out nodes are accumulated with
/// `Add`.
///
/// # Errors
///
/// Fails with [`HloError::UnknownNode`] when `loss` or any `wrt` id is
/// not in the graph, and otherwise when a non-differentiable op (`TopK`,
/// `Gather` indices paths, or an op that is itself a VJP helper) lies on
/// the path from `loss` to a requested node, or when shapes disagree (a
/// bug in the VJP rules).
pub fn gradients(
    graph: &HloGraph,
    loss: NodeId,
    wrt: &[NodeId],
) -> Result<GradientGraph, HloError> {
    // Validate every caller-supplied id up front: `graph.shape` on an
    // unknown id would panic below.
    if loss.0 >= graph.num_nodes() {
        return Err(HloError::UnknownNode(loss));
    }
    if let Some(&bad) = wrt.iter().find(|w| w.0 >= graph.num_nodes()) {
        return Err(HloError::UnknownNode(bad));
    }
    let mut b = HloBuilder::from_graph(graph);
    let mut adjoint: HashMap<NodeId, NodeId> = HashMap::new();

    // Seed: d(sum(loss))/d(loss) = ones.
    let ones = b.constant(Tensor::fill(graph.shape(loss).clone(), 1.0));
    adjoint.insert(loss, ones);

    // Reverse topological order = reverse construction order.
    for idx in (0..graph.num_nodes()).rev() {
        let node = NodeId(idx);
        let Some(&g) = adjoint.get(&node) else {
            continue;
        };
        let op = graph.op(node).clone();
        match op {
            Op::Parameter { .. } | Op::Constant { .. } => {}
            Op::MatMul { lhs, rhs } => {
                // dA = G·Bᵀ ; dB = Aᵀ·G.
                let bt = b.transpose(rhs)?;
                let da = b.matmul(g, bt)?;
                accumulate(&mut b, &mut adjoint, lhs, da)?;
                let at = b.transpose(lhs)?;
                let db = b.matmul(at, g)?;
                accumulate(&mut b, &mut adjoint, rhs, db)?;
            }
            Op::Conv2dSame { input, kernel } => {
                let (kh, kw) = {
                    let ks = graph.shape(kernel);
                    (ks.dim(0), ks.dim(1))
                };
                let flipped = b.rot180(kernel)?;
                let dx = b.conv2d_same(g, flipped)?;
                accumulate(&mut b, &mut adjoint, input, dx)?;
                let dk = b.conv_kernel_grad(input, g, kh, kw)?;
                accumulate(&mut b, &mut adjoint, kernel, dk)?;
            }
            Op::Add { lhs, rhs } => {
                accumulate(&mut b, &mut adjoint, lhs, g)?;
                accumulate(&mut b, &mut adjoint, rhs, g)?;
            }
            Op::Mul { lhs, rhs } => {
                let dl = b.mul(g, rhs)?;
                accumulate(&mut b, &mut adjoint, lhs, dl)?;
                let dr = b.mul(g, lhs)?;
                accumulate(&mut b, &mut adjoint, rhs, dr)?;
            }
            Op::Relu { input } => {
                let dx = b.relu_grad(input, g)?;
                accumulate(&mut b, &mut adjoint, input, dx)?;
            }
            Op::ReduceSum { input, axis } => {
                let extent = graph.shape(input).dim(axis);
                let dx = b.broadcast_axis(g, axis, extent)?;
                accumulate(&mut b, &mut adjoint, input, dx)?;
            }
            Op::Gather { input, indices } => {
                let rows = graph.shape(input).dim(0);
                let dt = b.scatter_add(indices, g, rows)?;
                accumulate(&mut b, &mut adjoint, input, dt)?;
                // Indices are integer-valued: no gradient.
            }
            Op::Transpose { input } => {
                let dx = b.transpose(g)?;
                accumulate(&mut b, &mut adjoint, input, dx)?;
            }
            Op::BroadcastAxis { input, axis, .. } => {
                let dx = b.reduce_sum(g, axis)?;
                accumulate(&mut b, &mut adjoint, input, dx)?;
            }
            Op::TopK { .. }
            | Op::ReluGrad { .. }
            | Op::Rot180 { .. }
            | Op::ConvKernelGrad { .. }
            | Op::ScatterAdd { .. } => {
                return Err(HloError::Unpartitionable {
                    node,
                    reason: format!("op {op:?} is not differentiable"),
                });
            }
        }
    }

    let grads = wrt
        .iter()
        .map(|&w| match adjoint.get(&w) {
            Some(&g) => Ok(g),
            // Unreached parameters get a zero gradient.
            None => Ok(b.constant(Tensor::zeros(graph.shape(w).clone()))),
        })
        .collect::<Result<Vec<_>, HloError>>()?;

    let mut outputs = vec![loss];
    outputs.extend(&grads);
    Ok(GradientGraph {
        graph: b.build(outputs)?,
        loss,
        grads,
    })
}

/// Adds `delta` into the adjoint of `node` (creating or `Add`-ing).
fn accumulate(
    b: &mut HloBuilder,
    adjoint: &mut HashMap<NodeId, NodeId>,
    node: NodeId,
    delta: NodeId,
) -> Result<(), HloError> {
    let new = match adjoint.get(&node) {
        Some(&existing) => b.add(existing, delta)?,
        None => delta,
    };
    adjoint.insert(node, new);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sharding;
    use multipod_tensor::{Shape, TensorRng};
    use std::collections::HashMap as Feeds;

    #[test]
    fn unknown_loss_or_wrt_ids_are_typed_errors_not_panics() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[2, 2]), Sharding::Replicated);
        let g = b.build(vec![x]).unwrap();
        let bogus = NodeId(99);
        assert_eq!(
            gradients(&g, bogus, &[x]).unwrap_err(),
            HloError::UnknownNode(bogus)
        );
        assert_eq!(
            gradients(&g, x, &[bogus]).unwrap_err(),
            HloError::UnknownNode(bogus)
        );
    }

    /// Finite-difference check of every gradient output.
    fn check_gradients(
        graph: &HloGraph,
        loss: NodeId,
        wrt: &[(NodeId, &str)],
        feeds: &Feeds<String, Tensor>,
    ) {
        let gg = gradients(
            graph,
            loss,
            &wrt.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
        )
        .expect("gradient build");
        let outputs = gg.graph.evaluate(feeds).expect("grad eval");
        let loss_of = |feeds: &Feeds<String, Tensor>| -> f64 {
            graph.evaluate(feeds).unwrap()[0].sum() as f64
        };
        let eps = 1e-3f32;
        for (w, (_, name)) in wrt.iter().enumerate() {
            let analytic = &outputs[1 + w];
            let base = feeds[*name].clone();
            for i in 0..base.len().min(6) {
                let mut plus = feeds.clone();
                let mut t = base.clone();
                t.data_mut()[i] += eps;
                plus.insert(name.to_string(), t);
                let mut minus = feeds.clone();
                let mut t = base.clone();
                t.data_mut()[i] -= eps;
                minus.insert(name.to_string(), t);
                let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps as f64);
                let a = analytic.data()[i] as f64;
                assert!(
                    (a - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                    "{name}[{i}]: analytic={a} numeric={numeric}"
                );
            }
        }
    }

    fn feeds(pairs: Vec<(&str, Tensor)>) -> Feeds<String, Tensor> {
        pairs.into_iter().map(|(n, t)| (n.to_string(), t)).collect()
    }

    #[test]
    fn mlp_gradients_match_finite_differences() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[3, 4]), Sharding::Replicated);
        let w1 = b.parameter("w1", Shape::of(&[4, 5]), Sharding::Replicated);
        let w2 = b.parameter("w2", Shape::of(&[5, 2]), Sharding::Replicated);
        let h = b.matmul(x, w1).unwrap();
        let h = b.relu(h).unwrap();
        let y = b.matmul(h, w2).unwrap();
        let s = b.reduce_sum(y, 0).unwrap();
        let loss = b.reduce_sum(s, 0).unwrap();
        let g = b.build(vec![loss]).unwrap();

        let mut rng = TensorRng::seed(31);
        let f = feeds(vec![
            ("x", rng.uniform(Shape::of(&[3, 4]), -1.0, 1.0)),
            ("w1", rng.uniform(Shape::of(&[4, 5]), -1.0, 1.0)),
            ("w2", rng.uniform(Shape::of(&[5, 2]), -1.0, 1.0)),
        ]);
        check_gradients(&g, loss, &[(w1, "w1"), (w2, "w2"), (x, "x")], &f);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut b = HloBuilder::new();
        let img = b.parameter("img", Shape::of(&[6, 5]), Sharding::Replicated);
        let k = b.parameter("k", Shape::of(&[3, 3]), Sharding::Replicated);
        let c = b.conv2d_same(img, k).unwrap();
        let r = b.relu(c).unwrap();
        let s = b.reduce_sum(r, 0).unwrap();
        let loss = b.reduce_sum(s, 0).unwrap();
        let g = b.build(vec![loss]).unwrap();

        let mut rng = TensorRng::seed(32);
        let f = feeds(vec![
            ("img", rng.uniform(Shape::of(&[6, 5]), -1.0, 1.0)),
            ("k", rng.uniform(Shape::of(&[3, 3]), -1.0, 1.0)),
        ]);
        check_gradients(&g, loss, &[(k, "k"), (img, "img")], &f);
    }

    #[test]
    fn mul_and_gather_gradients() {
        let mut b = HloBuilder::new();
        let t = b.parameter("t", Shape::of(&[6, 3]), Sharding::Replicated);
        let idx = b.constant(Tensor::from_slice(&[4.0, 0.0, 4.0]));
        let gathered = b.gather(t, idx).unwrap();
        let squared = b.mul(gathered, gathered).unwrap();
        let s = b.reduce_sum(squared, 0).unwrap();
        let loss = b.reduce_sum(s, 0).unwrap();
        let g = b.build(vec![loss]).unwrap();

        let mut rng = TensorRng::seed(33);
        let f = feeds(vec![("t", rng.uniform(Shape::of(&[6, 3]), -1.0, 1.0))]);
        check_gradients(&g, loss, &[(t, "t")], &f);
        // Row 4 is gathered twice: the scatter-add must accumulate.
        let gg = gradients(&g, loss, &[t]).unwrap();
        let outs = gg.graph.evaluate(&f).unwrap();
        let dt = &outs[1];
        let expect_row4: Vec<f32> = (0..3)
            .map(|c| 2.0 * f["t"].at(&[4, c]) * 2.0) // d(x²)=2x, twice
            .collect();
        for (c, &e) in expect_row4.iter().enumerate() {
            assert!((dt.at(&[4, c]) - e).abs() < 1e-4);
        }
        // Unreferenced rows get zero gradient.
        assert_eq!(dt.at(&[1, 0]), 0.0);
    }

    #[test]
    fn fan_out_accumulates_adjoints() {
        // loss = sum(x·w + x·w) → dL/dw = 2 Σᵢ xᵢ-columns.
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[2, 3]), Sharding::Replicated);
        let w = b.parameter("w", Shape::of(&[3, 2]), Sharding::Replicated);
        let y1 = b.matmul(x, w).unwrap();
        let y2 = b.matmul(x, w).unwrap();
        let y = b.add(y1, y2).unwrap();
        let s = b.reduce_sum(y, 0).unwrap();
        let loss = b.reduce_sum(s, 0).unwrap();
        let g = b.build(vec![loss]).unwrap();
        let mut rng = TensorRng::seed(34);
        let f = feeds(vec![
            ("x", rng.uniform(Shape::of(&[2, 3]), -1.0, 1.0)),
            ("w", rng.uniform(Shape::of(&[3, 2]), -1.0, 1.0)),
        ]);
        check_gradients(&g, loss, &[(w, "w")], &f);
    }

    #[test]
    fn unreached_parameters_get_zero_gradients() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[2]), Sharding::Replicated);
        let unused = b.parameter("unused", Shape::of(&[4]), Sharding::Replicated);
        let loss = b.reduce_sum(x, 0).unwrap();
        let g = b.build(vec![loss]).unwrap();
        let gg = gradients(&g, loss, &[unused]).unwrap();
        let f = feeds(vec![
            ("x", Tensor::from_slice(&[1.0, 2.0])),
            ("unused", Tensor::zeros(Shape::of(&[4]))),
        ]);
        let outs = gg.graph.evaluate(&f).unwrap();
        assert_eq!(outs[1].data(), &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn topk_on_the_path_is_rejected() {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[8]), Sharding::Replicated);
        let t = b.top_k(x, 2).unwrap();
        let loss = b.reduce_sum(t, 0).unwrap();
        let g = b.build(vec![loss]).unwrap();
        assert!(gradients(&g, loss, &[x]).is_err());
    }
}
