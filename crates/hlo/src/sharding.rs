//! Sharding annotations.

use serde::{Deserialize, Serialize};

use multipod_tensor::Shape;

use crate::HloError;

/// Where a tensor's data lives across the model-parallel tile.
///
/// The paper's spatial partitioning (§3.1) splits image tensors along a
/// spatial axis; its feature sharding (Transformer, §4.3) splits weights
/// along vocab/heads/hidden axes. Both are 1-D tilings, which is all this
/// partitioner supports (GShard-style multi-axis tilings are out of the
/// paper's scope).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sharding {
    /// Every core holds the full tensor.
    Replicated,
    /// The tensor is split along `axis` into `parts` equal tiles; core `i`
    /// holds tile `i`.
    Split {
        /// The split axis.
        axis: usize,
        /// Number of tiles (= cores in the model-parallel tile).
        parts: usize,
    },
}

impl Sharding {
    /// Convenience constructor for [`Sharding::Split`].
    pub fn split(axis: usize, parts: usize) -> Sharding {
        Sharding::Split { axis, parts }
    }

    /// Whether the tensor is replicated.
    pub fn is_replicated(self) -> bool {
        matches!(self, Sharding::Replicated)
    }

    /// The per-core shape of a tensor with this sharding.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::BadSharding`] when the axis is out of range or
    /// the extent does not divide evenly.
    pub fn local_shape(self, global: &Shape) -> Result<Shape, HloError> {
        match self {
            Sharding::Replicated => Ok(global.clone()),
            Sharding::Split { axis, parts } => {
                global.split_axis(axis, parts).ok_or(HloError::BadSharding {
                    sharding: self,
                    shape: global.clone(),
                })
            }
        }
    }

    /// Validates this sharding against a shape and part count.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::BadSharding`] when invalid, including when a
    /// `Split` declares a different part count than `expected_parts`.
    pub fn validate(self, global: &Shape, expected_parts: usize) -> Result<(), HloError> {
        if let Sharding::Split { parts, .. } = self {
            if parts != expected_parts {
                return Err(HloError::BadSharding {
                    sharding: self,
                    shape: global.clone(),
                });
            }
        }
        self.local_shape(global).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_keeps_shape() {
        let s = Shape::of(&[4, 6]);
        assert_eq!(Sharding::Replicated.local_shape(&s).unwrap(), s);
        assert!(Sharding::Replicated.is_replicated());
    }

    #[test]
    fn split_divides_axis() {
        let s = Shape::of(&[4, 6]);
        assert_eq!(
            Sharding::split(1, 3).local_shape(&s).unwrap(),
            Shape::of(&[4, 2])
        );
        assert!(!Sharding::split(1, 3).is_replicated());
    }

    #[test]
    fn split_rejects_indivisible_or_bad_axis() {
        let s = Shape::of(&[4, 6]);
        assert!(Sharding::split(1, 4).local_shape(&s).is_err());
        assert!(Sharding::split(2, 2).local_shape(&s).is_err());
    }

    #[test]
    fn validate_checks_part_count() {
        let s = Shape::of(&[8]);
        assert!(Sharding::split(0, 4).validate(&s, 4).is_ok());
        assert!(Sharding::split(0, 2).validate(&s, 4).is_err());
        assert!(Sharding::Replicated.validate(&s, 4).is_ok());
    }
}
