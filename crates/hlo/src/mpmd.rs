//! The MPMD spatial-partitioner baseline.
//!
//! MLPerf v0.6 used "XLA's MPMD spatial partitioner" (§4.4), which the
//! v0.7 submission replaced with SPMD because MPMD:
//!
//! * compiles a *separate program per core*, so compile time grows
//!   linearly with the partition count ("SPMD has better scalability in
//!   compilation time"),
//! * only supports spatial/batch partitioning (no feature sharding of the
//!   contracting dimension), and
//! * cannot express the weight-update-sharding optimization under model
//!   parallelism.
//!
//! The baseline produces semantically identical programs (it reuses the
//! SPMD rewrite machinery for supported graphs) but reports those
//! scalability limits faithfully.

use crate::graph::HloGraph;
use crate::op::Op;
use crate::program::PartitionedProgram;
use crate::sharding::Sharding;
use crate::spmd::SpmdPartitioner;
use crate::HloError;

/// The per-core (MPMD) partitioner used in MLPerf v0.6.
#[derive(Clone, Debug)]
pub struct MpmdPartitioner {
    parts: usize,
}

impl MpmdPartitioner {
    /// A partitioner for `parts`-way spatial partitioning.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is zero.
    pub fn new(parts: usize) -> MpmdPartitioner {
        assert!(parts > 0, "parts must be positive");
        MpmdPartitioner { parts }
    }

    /// MPMD cannot express weight-update sharding with model parallelism
    /// (§4.4).
    pub fn supports_weight_update_sharding(&self) -> bool {
        false
    }

    /// Partitions `graph`, rejecting feature sharding (contracting-
    /// dimension splits), and charging compile cost proportional to the
    /// partition count.
    ///
    /// # Errors
    ///
    /// Fails for annotations MPMD cannot express and for anything the
    /// underlying rewrite rejects.
    pub fn partition(&self, graph: &HloGraph) -> Result<PartitionedProgram, HloError> {
        // Feature sharding check: any matmul whose lhs is split on the
        // contracting axis or rhs split at all is out of scope for the
        // spatial partitioner.
        for id in graph.node_ids() {
            if let Op::MatMul { lhs, rhs } = graph.op(id) {
                let lhs_sharded_contracting = matches!(
                    graph.annotation(*lhs),
                    Some(Sharding::Split { axis: 1, .. })
                );
                let rhs_sharded = matches!(graph.annotation(*rhs), Some(Sharding::Split { .. }));
                if lhs_sharded_contracting || rhs_sharded {
                    return Err(HloError::Unpartitionable {
                        node: id,
                        reason: "MPMD spatial partitioner does not support feature sharding"
                            .to_string(),
                    });
                }
            }
        }
        let mut program = SpmdPartitioner::new(self.parts).partition(graph)?;
        // MPMD compiles one program per core.
        program.compile_cost *= self.parts as u64;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HloBuilder;
    use multipod_tensor::Shape;

    fn spatial_graph() -> HloGraph {
        let mut b = HloBuilder::new();
        let img = b.parameter("img", Shape::of(&[16, 8]), Sharding::split(0, 4));
        let k = b.parameter("k", Shape::of(&[3, 3]), Sharding::Replicated);
        let y = b.conv2d_same(img, k).unwrap();
        b.build(vec![y]).unwrap()
    }

    fn feature_graph() -> HloGraph {
        let mut b = HloBuilder::new();
        let x = b.parameter("x", Shape::of(&[4, 8]), Sharding::split(1, 4));
        let w = b.parameter("w", Shape::of(&[8, 6]), Sharding::split(0, 4));
        let y = b.matmul(x, w).unwrap();
        b.build(vec![y]).unwrap()
    }

    #[test]
    fn supports_spatial_but_not_feature_sharding() {
        assert!(MpmdPartitioner::new(4).partition(&spatial_graph()).is_ok());
        assert!(matches!(
            MpmdPartitioner::new(4).partition(&feature_graph()),
            Err(HloError::Unpartitionable { .. })
        ));
        // SPMD handles both.
        assert!(SpmdPartitioner::new(4).partition(&feature_graph()).is_ok());
    }

    #[test]
    fn compile_cost_scales_with_parts() {
        let mut b = HloBuilder::new();
        let img = b.parameter("img", Shape::of(&[16, 8]), Sharding::split(0, 2));
        let k = b.parameter("k", Shape::of(&[3, 3]), Sharding::Replicated);
        let y = b.conv2d_same(img, k).unwrap();
        let g2 = b.build(vec![y]).unwrap();
        let p2 = MpmdPartitioner::new(2).partition(&g2).unwrap();
        let mut b = HloBuilder::new();
        let img = b.parameter("img", Shape::of(&[16, 8]), Sharding::split(0, 8));
        let k = b.parameter("k", Shape::of(&[3, 3]), Sharding::Replicated);
        let y = b.conv2d_same(img, k).unwrap();
        let g8 = b.build(vec![y]).unwrap();
        let p8 = MpmdPartitioner::new(8).partition(&g8).unwrap();
        assert_eq!(p8.compile_cost(), 4 * p2.compile_cost());
        // And SPMD's cost does not scale (checked in spmd tests).
    }

    #[test]
    fn wus_support_flags() {
        assert!(!MpmdPartitioner::new(4).supports_weight_update_sharding());
        assert!(SpmdPartitioner::new(4).supports_weight_update_sharding());
    }
}
