//! The paper's benchmark configurations (Table 1 rows).

use multipod_framework::FrameworkKind;
use multipod_models::catalog;

use crate::executor::Preset;
use crate::step::StepOptions;

fn preset(workload: multipod_models::Workload, chips: u32) -> Preset {
    Preset {
        workload,
        chips,
        framework: FrameworkKind::TensorFlow,
        options: StepOptions::default(),
    }
}

/// ResNet-50 on `chips` chips (paper: 4096).
pub fn resnet50(chips: u32) -> Preset {
    preset(catalog::resnet50(), chips)
}

/// BERT on `chips` chips (paper: 4096).
pub fn bert(chips: u32) -> Preset {
    preset(catalog::bert(), chips)
}

/// Transformer on `chips` chips (paper: 4096).
pub fn transformer(chips: u32) -> Preset {
    preset(catalog::transformer(), chips)
}

/// SSD on `chips` chips (paper: 4096 and 2048).
pub fn ssd(chips: u32) -> Preset {
    preset(catalog::ssd(), chips)
}

/// MaskRCNN on `chips` chips (paper: 512 — batch parallelism is capped).
pub fn maskrcnn(chips: u32) -> Preset {
    preset(catalog::maskrcnn(), chips)
}

/// DLRM on `chips` chips (paper: 256 — communication caps scale-out).
pub fn dlrm(chips: u32) -> Preset {
    preset(catalog::dlrm(), chips)
}

/// The MLPerf **v0.6** configuration of a benchmark, for the Table-1
/// speedup column: one pod (or the v0.6 slice), the v0.6 batch caps and
/// tile widths, no weight-update sharding (the MPMD partitioner cannot
/// express it under model parallelism, §4.4), and the compressed-JPEG
/// input path (§3.5's fix landed in v0.7).
///
/// Returns `None` for benchmarks that are new in v0.7 (BERT, DLRM).
///
/// Note: the measured v0.6 submissions also ran a year-older compiler and
/// runtime, which this model does not capture; reproduced speedups are
/// therefore a lower bound on the paper's (see EXPERIMENTS.md).
pub fn v06(name: &str) -> Option<Preset> {
    use multipod_models::ParallelismPlan;
    let old_options = StepOptions {
        weight_update_sharding: false,
        uncompressed_input: false,
    };
    let mut p = match name {
        "ResNet-50" => {
            let mut p = resnet50(1024);
            p.workload.convergence.max_batch = Some(32768);
            p
        }
        "SSD" => {
            // v0.6: batch 2048, 4-way MPMD model parallelism, 2048 cores.
            let mut p = ssd(1024);
            p.workload.convergence.max_batch = Some(2048);
            p.workload.parallelism = ParallelismPlan::SpatialSharded { tile: 4 };
            p
        }
        "Transformer" => transformer(1024),
        "MaskRCNN" => {
            // v0.6: batch 128 on a 256-chip slice.
            let mut p = maskrcnn(256);
            p.workload.convergence.max_batch = Some(128);
            p
        }
        _ => return None,
    };
    p.options = old_options;
    Some(p)
}

/// The full Table-1 configuration set: `(TF preset, JAX preset if the
/// paper reports one)`.
pub fn table1() -> Vec<(Preset, Option<Preset>)> {
    let jax = |mut p: Preset| {
        p.framework = FrameworkKind::Jax;
        p
    };
    vec![
        (resnet50(4096), Some(jax(resnet50(4096)))),
        (bert(4096), Some(jax(bert(4096)))),
        (ssd(4096), None),
        (ssd(2048), Some(jax(ssd(2048)))),
        (transformer(4096), Some(jax(transformer(4096)))),
        (maskrcnn(512), None),
        (dlrm(256), None),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_rows_like_the_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 7);
        // JAX columns exist exactly where the paper reports them.
        let jax_rows = rows.iter().filter(|(_, j)| j.is_some()).count();
        assert_eq!(jax_rows, 4);
    }

    #[test]
    fn presets_carry_the_paper_chip_counts() {
        assert_eq!(maskrcnn(512).chips, 512);
        assert_eq!(dlrm(256).chips, 256);
        assert_eq!(bert(4096).chips, 4096);
    }
}
