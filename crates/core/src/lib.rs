//! The training executor: the paper's end-to-end model.
//!
//! Everything below composes the substrate crates into the quantities the
//! paper reports:
//!
//! * [`step::step_breakdown`] — one training step's time, split into MXU
//!   compute, model-parallel communication (from SPMD-partitioned
//!   representative graphs), the 2-D gradient summation, the (optionally
//!   sharded) weight update, DLRM's embedding path and host-input stalls.
//! * [`Executor`] — runs a [`Preset`] to a [`Report`]: initialization
//!   (Table 2), steps-to-quality × step time (Table 1, Figures 5–8),
//!   and evaluation overheads.
//! * [`scaling`] — chip-count sweeps for the speedup/breakdown figures.
//! * [`modelpar`] — model-parallel speedup curves (Figure 9).
//! * [`presets`] — the paper's benchmark configurations.
//! * [`ablate`] — on/off comparisons of the load-bearing optimizations
//!   (2-D summation, bf16 payloads, weight-update sharding).
//!
//! ```
//! use multipod_core::{presets, Executor};
//!
//! let report = Executor::new(presets::resnet50(4096)).run().unwrap();
//! // Paper Table 1: 0.48 minutes on 4096 chips.
//! assert!(report.end_to_end_minutes() > 0.2 && report.end_to_end_minutes() < 1.0);
//! ```

pub mod ablate;
pub mod graphs;
pub mod modelpar;
pub mod overlap;
pub mod presets;
pub mod scaling;
pub mod step;
pub mod trainer;

mod executor;

pub use executor::{Executor, Preset, Report};
pub use overlap::{CheckpointOverlap, OverlapConfig, OverlappedStep};
pub use scaling::SweepError;
pub use step::{record_step_telemetry, record_step_trace, StepBreakdown, StepError, StepOptions};
pub use trainer::{DataParallelTrainer, FaultPolicy, RecoveryMode, TrainStepStats};
