//! The per-step time model.
//!
//! One training step on a multipod slice decomposes into (Figures 6, 8):
//!
//! * **MXU compute** — per-core FLOPs over the efficiency curve;
//! * **model-parallel communication** — from SPMD-partitioning the
//!   model's representative layer ([`crate::graphs`]);
//! * **gradient summation** — the 2-D Y-then-X schedule of §3.3, with
//!   X rings hopping over model-parallel peers;
//! * **weight update** — replicated or sharded (§3.2);
//! * **embedding path** — HBM lookups and all-to-all for DLRM;
//! * **input stall** — when the host pipeline cannot keep up (§3.5).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use multipod_collectives::twod::{two_dim_all_reduce_time, TwoDimBreakdown};
use multipod_collectives::CollectiveError;
use multipod_framework::FrameworkError;
use multipod_input::dlrm::{DlrmInputConfig, ParseGranularity, PcieLayout};
use multipod_input::host_pipeline::HostPipelineConfig;
use multipod_models::{ModelError, TpuV3, Workload};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_taskgraph::TaskGraphError;
use multipod_telemetry::{MetricId, Subsystem, Telemetry};
use multipod_topology::{Multipod, MultipodConfig, CHIPS_PER_HOST};
use multipod_trace::{SpanCategory, SpanEvent, TraceSink, Track};

use crate::graphs;

/// Why a step could not be modeled.
#[derive(Clone, Debug, PartialEq)]
pub enum StepError {
    /// `chips` is not a power of two ≥ 2, so no slice of the paper's
    /// sweeps holds it.
    InvalidSliceShape {
        /// The rejected chip count.
        chips: u32,
    },
    /// A collective cost model failed (unroutable ring on a degraded
    /// mesh, zero contention factor).
    Collective(CollectiveError),
    /// The overlapped step's task graph was malformed (a duration guard
    /// tripped — indicates a bug in the graph builder).
    TaskGraph(TaskGraphError),
    /// An analytic workload/machine model rejected the configuration
    /// (zero batch, out-of-range efficiency, batch above the
    /// convergence cap).
    Model(ModelError),
    /// The framework control-plane model rejected the configuration
    /// (e.g. no init profile for the workload name).
    Framework(FrameworkError),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::InvalidSliceShape { chips } => {
                write!(f, "no slice holds {chips} chips (need a power of two >= 2)")
            }
            StepError::Collective(e) => write!(f, "step collective model failed: {e}"),
            StepError::TaskGraph(e) => write!(f, "step task graph invalid: {e}"),
            StepError::Model(e) => write!(f, "step workload model rejected the config: {e}"),
            StepError::Framework(e) => write!(f, "step framework model rejected the config: {e}"),
        }
    }
}

impl Error for StepError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StepError::InvalidSliceShape { .. } => None,
            StepError::Collective(e) => Some(e),
            StepError::TaskGraph(e) => Some(e),
            StepError::Model(e) => Some(e),
            StepError::Framework(e) => Some(e),
        }
    }
}

impl From<CollectiveError> for StepError {
    fn from(e: CollectiveError) -> StepError {
        StepError::Collective(e)
    }
}

impl From<TaskGraphError> for StepError {
    fn from(e: TaskGraphError) -> StepError {
        StepError::TaskGraph(e)
    }
}

impl From<ModelError> for StepError {
    fn from(e: ModelError) -> StepError {
        StepError::Model(e)
    }
}

impl From<FrameworkError> for StepError {
    fn from(e: FrameworkError) -> StepError {
        StepError::Framework(e)
    }
}

/// Optimization toggles (for ablations; the paper's submission runs with
/// everything on).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepOptions {
    /// Weight-update sharding (§3.2).
    pub weight_update_sharding: bool,
    /// Uncompressed-image host input cache (§3.5).
    pub uncompressed_input: bool,
}

impl Default for StepOptions {
    fn default() -> Self {
        StepOptions {
            weight_update_sharding: true,
            uncompressed_input: true,
        }
    }
}

/// Time components of one training step, seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StepBreakdown {
    /// Matrix-unit compute (forward + backward).
    pub compute: f64,
    /// Model-parallel collectives inside the tile (forward + backward).
    pub model_parallel_comm: f64,
    /// The 2-D gradient summation.
    pub gradient_comm: TwoDimBreakdown,
    /// Optimizer arithmetic.
    pub weight_update: f64,
    /// Embedding lookups + all-to-all (DLRM only).
    pub embedding: f64,
    /// Host input stall.
    pub input_stall: f64,
}

impl StepBreakdown {
    /// Total step time.
    pub fn total(&self) -> f64 {
        self.compute
            + self.model_parallel_comm
            + self.gradient_comm.total()
            + self.weight_update
            + self.embedding
            + self.input_stall
    }

    /// The all-reduce share of device step time — the quantity Figures 6
    /// and 8 plot (22% for ResNet-50 and 27.3% for BERT at 4096 chips).
    /// A zero-length step has no all-reduce share: this returns 0.0
    /// rather than NaN.
    pub fn all_reduce_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            return 0.0;
        }
        self.gradient_comm.total() / total
    }
}

/// The utilization-relevant batch: per-replica samples discounted by
/// √(cores per replica) — spatial/feature tiles keep bigger per-core
/// shapes than a plain per-core batch split would suggest, but lose
/// efficiency to the "smaller dimensions after partitioning" (§5).
pub fn efficiency_batch(workload: &Workload, chips: u32) -> f64 {
    let cores = chips as f64 * 2.0;
    let cpr = workload.parallelism.cores_per_replica() as f64;
    let replicas = (cores / cpr).max(1.0);
    let per_replica = workload.global_batch(chips) as f64 / replicas;
    per_replica / cpr.sqrt()
}

/// The model-parallel stride actually usable on a mesh: the largest
/// divisor of both the plan's chip stride and the mesh X extent.
pub fn effective_stride(workload: &Workload, mesh: &Multipod) -> u32 {
    let want = workload.parallelism.chip_stride();
    let mut stride = want.min(mesh.x_len());
    while !mesh.x_len().is_multiple_of(stride) {
        stride -= 1;
    }
    stride.max(1)
}

/// Computes the step breakdown for a workload on a `chips`-chip slice.
///
/// # Errors
///
/// [`StepError::InvalidSliceShape`] when `chips` is not a power of two
/// ≥ 2 (the slice shapes the paper sweeps).
pub fn step_breakdown(
    workload: &Workload,
    chips: u32,
    options: &StepOptions,
) -> Result<StepBreakdown, StepError> {
    step_breakdown_on(
        workload,
        chips,
        options,
        &TpuV3::new(),
        NetworkConfig::tpu_v3(),
    )
}

/// [`step_breakdown`] on an explicit machine and interconnect (e.g.
/// [`TpuV3::v4_projection`] + [`NetworkConfig::tpu_v4`], the paper's
/// DLRM footnote).
pub fn step_breakdown_on(
    workload: &Workload,
    chips: u32,
    options: &StepOptions,
    tpu: &TpuV3,
    net_config: NetworkConfig,
) -> Result<StepBreakdown, StepError> {
    let mesh = Multipod::new(
        MultipodConfig::try_slice(chips).map_err(|_| StepError::InvalidSliceShape { chips })?,
    );
    let net = Network::new(mesh, net_config);

    let batch = workload.global_batch(chips);
    let cores_per_replica = workload.parallelism.cores_per_replica();
    let stride = effective_stride(workload, net.mesh());

    // MXU compute: utilization follows the per-replica batch, discounted
    // by √(tile width) for the shrinking-dimension losses of model
    // parallelism (§4.4, §5).
    let eff = workload.efficiency.at(efficiency_batch(workload, chips))?;
    let compute = tpu.core_compute_time(workload.flops_per_core_step(chips), eff)?;

    // Model-parallel communication (feature sharding / spatial tiles).
    let model_parallel_comm = model_comm_time(workload, &net, batch, chips);

    // Gradient summation: each chip contributes its share of the
    // (possibly sharded) weights; X-phase rings hop over model peers.
    let grad_elems_per_chip = (workload.params / stride as u64) as usize;
    let gradient_comm =
        two_dim_all_reduce_time(&net, grad_elems_per_chip, workload.grad_precision, stride)?;

    // Weight update: sharded updates divide the optimizer math by the
    // number of shards in the replica set (§3.2).
    let update_elems = if options.weight_update_sharding {
        let shards = (net.mesh().y_len() as u64) * (net.mesh().x_len() as u64 / stride as u64);
        (workload.params / stride as u64).div_ceil(shards)
    } else {
        workload.params / stride as u64
    };
    let weight_update = tpu.optimizer_update_time(update_elems, workload.optimizer_flops_per_param);

    // Embedding path (DLRM).
    let embedding = embedding_time(workload, &net, batch, tpu);

    // Host input pipeline.
    let device_time =
        compute + model_parallel_comm + gradient_comm.total() + weight_update + embedding;
    let input_stall = input_stall(workload, chips, batch, device_time, options);

    let _ = cores_per_replica;

    Ok(StepBreakdown {
        compute,
        model_parallel_comm,
        gradient_comm,
        weight_update,
        embedding,
        input_stall,
    })
}

fn model_comm_time(workload: &Workload, net: &Network, batch: u32, chips: u32) -> f64 {
    let cores_per_replica = workload.parallelism.cores_per_replica() as usize;
    let Some(rep) = graphs::representative(workload, cores_per_replica) else {
        return 0.0;
    };
    let cores = chips as u64 * 2;
    let replicas = (cores / cores_per_replica as u64).max(1);
    let samples_per_replica = (batch as f64 / replicas as f64).max(1.0);
    let bytes_per_core = rep.comm_bytes_per_core_per_sample(cores_per_replica)
        * samples_per_replica
        * workload.grad_precision.bytes() as f64
        / 4.0;
    let collectives = rep.collectives_per_step(cores_per_replica);
    let cfg = net.config();
    // Within-tile rings run over adjacent chips; both cores of a chip
    // share its links.
    let alpha = cfg.message_overhead + cfg.hop_latency;
    collectives * alpha + bytes_per_core / cfg.link_bandwidth
}

fn embedding_time(workload: &Workload, net: &Network, batch: u32, tpu: &TpuV3) -> f64 {
    let Some(emb) = workload.embedding else {
        return 0.0;
    };
    let mesh = net.mesh();
    let chips = mesh.num_chips() as f64;
    let lookup_bytes = emb.lookup_bytes_per_sample() as f64 * batch as f64;
    // Forward lookup + backward scatter-update from HBM, spread over chips.
    let hbm = 2.0 * lookup_bytes / chips / tpu.hbm_bandwidth;
    // All-to-all: tables are partitioned across chips, so each looked-up
    // row crosses the mesh; bisection-bound on a 2-D mesh.
    let bisection = 2.0 * mesh.y_len() as f64 * net.config().link_bandwidth;
    let all_to_all = 2.0 * (lookup_bytes / 2.0) / bisection;
    hbm + all_to_all
}

/// Time for one host to produce its share of a step's input batch —
/// the quantity the device race against (§3.5). The overlapped step
/// model schedules this same duration as an `InputFetch` task.
pub fn host_input_time(workload: &Workload, chips: u32, batch: u32, options: &StepOptions) -> f64 {
    let hosts = (chips as usize).div_ceil(CHIPS_PER_HOST) as f64;
    let samples_per_host = batch as f64 / hosts;
    if workload.embedding.is_some() {
        // DLRM's batch-granularity, stacked-PCIe path (§3.5).
        DlrmInputConfig::criteo().step_input_time(
            samples_per_host.ceil() as usize,
            ParseGranularity::PerBatch,
            PcieLayout::Stacked,
        )
    } else {
        let pipeline = if options.uncompressed_input {
            HostPipelineConfig::uncompressed_imagenet()
        } else {
            // Large-image JPEG decode (mean plus the expected heavy-tail
            // contribution of oversized images, §3.5).
            HostPipelineConfig::large_image_imagenet()
        };
        samples_per_host * pipeline.mean_sample_seconds() / pipeline.workers as f64
    }
}

fn input_stall(
    workload: &Workload,
    chips: u32,
    batch: u32,
    device_time: f64,
    options: &StepOptions,
) -> f64 {
    (host_input_time(workload, chips, batch, options) - device_time).max(0.0)
}

/// Records `breakdown` as a sequential span timeline on the simulation
/// track, starting at `start`: step phases for compute and model-parallel
/// communication, collective phases for the four 2-D summation halves, an
/// optimizer span for the weight update, and an input span for any host
/// stall, all wrapped in one step span named `name`. Returns the step's
/// end time so successive steps can be laid out back to back.
pub fn record_step_trace(
    sink: &dyn TraceSink,
    name: &str,
    breakdown: &StepBreakdown,
    step_index: u64,
    start: SimTime,
) -> SimTime {
    let mut t = start;
    let mut phase = |category: SpanCategory, label: &str, seconds: f64| {
        if seconds <= 0.0 {
            return;
        }
        let end = t + seconds;
        sink.record_span(SpanEvent::new(Track::Sim, category, label, t, end));
        t = end;
    };
    phase(SpanCategory::StepPhase, "compute", breakdown.compute);
    phase(
        SpanCategory::StepPhase,
        "model-parallel-comm",
        breakdown.model_parallel_comm,
    );
    let g = &breakdown.gradient_comm;
    phase(
        SpanCategory::CollectivePhase,
        "y-reduce-scatter",
        g.y_reduce_scatter,
    );
    phase(
        SpanCategory::CollectivePhase,
        "x-reduce-scatter",
        g.x_reduce_scatter,
    );
    phase(
        SpanCategory::CollectivePhase,
        "x-all-gather",
        g.x_all_gather,
    );
    phase(
        SpanCategory::CollectivePhase,
        "y-all-gather",
        g.y_all_gather,
    );
    phase(
        SpanCategory::Optimizer,
        "weight-update",
        breakdown.weight_update,
    );
    phase(SpanCategory::StepPhase, "embedding", breakdown.embedding);
    phase(SpanCategory::Input, "input-stall", breakdown.input_stall);
    let end = t;
    sink.record_span(
        SpanEvent::new(Track::Sim, SpanCategory::Step, name, start, end)
            .with_arg("step", step_index as f64)
            .with_arg("allreduce_share", breakdown.all_reduce_fraction()),
    );
    end
}

/// Records one step's time breakdown into the telemetry registry —
/// per-phase histograms plus a step counter, mirroring the spans
/// [`record_step_trace`] lays out.
pub fn record_step_telemetry(telemetry: &Telemetry, breakdown: &StepBreakdown) {
    telemetry.inc_counter(MetricId::new(Subsystem::Core, "steps"), 1);
    let observe = |name: &'static str, seconds: f64| {
        if seconds > 0.0 {
            telemetry.observe(MetricId::new(Subsystem::Core, name), seconds);
        }
    };
    observe("compute_seconds", breakdown.compute);
    observe("model_parallel_comm_seconds", breakdown.model_parallel_comm);
    observe("gradient_comm_seconds", breakdown.gradient_comm.total());
    observe("weight_update_seconds", breakdown.weight_update);
    observe("embedding_seconds", breakdown.embedding);
    observe("input_stall_seconds", breakdown.input_stall);
    observe("step_seconds", breakdown.total());
}

/// Devices per replica and replica count at a chip count (convenience for
/// reports).
pub fn replicas(workload: &Workload, chips: u32) -> u32 {
    (chips * 2) / workload.parallelism.cores_per_replica()
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_models::catalog;

    #[test]
    fn resnet_allreduce_share_matches_fig6() {
        // Fig. 6: all-reduce ≈ 22% of device step time at 4096 chips.
        let b = step_breakdown(&catalog::resnet50(), 4096, &StepOptions::default()).unwrap();
        let share = b.all_reduce_fraction();
        assert!(
            (0.12..0.32).contains(&share),
            "share={share} breakdown={b:?}"
        );
    }

    #[test]
    fn bert_allreduce_share_matches_fig8() {
        // Fig. 8: ≈ 27.3% at 4096 chips, and higher than ResNet-50's.
        let bert = step_breakdown(&catalog::bert(), 4096, &StepOptions::default()).unwrap();
        let resnet = step_breakdown(&catalog::resnet50(), 4096, &StepOptions::default()).unwrap();
        let share = bert.all_reduce_fraction();
        assert!((0.17..0.40).contains(&share), "share={share}");
        assert!(share > resnet.all_reduce_fraction());
    }

    #[test]
    fn compute_shrinks_with_scale_comm_does_not() {
        // Fig. 6's shape: computation time keeps decreasing, the
        // all-reduce time stays almost constant.
        let w = catalog::resnet50();
        let small = step_breakdown(&w, 256, &StepOptions::default()).unwrap();
        let large = step_breakdown(&w, 4096, &StepOptions::default()).unwrap();
        assert!(small.compute > 3.0 * large.compute);
        let comm_ratio = small.gradient_comm.total() / large.gradient_comm.total();
        assert!((0.4..2.5).contains(&comm_ratio), "comm_ratio={comm_ratio}");
    }

    #[test]
    fn wus_shrinks_update_time() {
        // §3.2: the replicated LAMB update is a large fraction of the
        // step at 512 chips (measured at a ~4k global batch); sharding
        // removes it.
        let mut w = catalog::bert();
        w.max_per_core_batch = 4;
        let with = step_breakdown(&w, 512, &StepOptions::default()).unwrap();
        let without = step_breakdown(
            &w,
            512,
            &StepOptions {
                weight_update_sharding: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(without.weight_update > 50.0 * with.weight_update);
        // ~18% of the unsharded step.
        let share = without.weight_update / without.total();
        assert!((0.05..0.35).contains(&share), "share={share}");
        assert!(with.total() < without.total());
    }

    #[test]
    fn model_parallel_models_pay_tile_comm() {
        let t = step_breakdown(&catalog::transformer(), 4096, &StepOptions::default()).unwrap();
        assert!(t.model_parallel_comm > 0.0);
        let r = step_breakdown(&catalog::resnet50(), 4096, &StepOptions::default()).unwrap();
        assert_eq!(r.model_parallel_comm, 0.0);
    }

    #[test]
    fn dlrm_embedding_and_input_paths_active() {
        let d = step_breakdown(&catalog::dlrm(), 256, &StepOptions::default()).unwrap();
        assert!(d.embedding > 0.0);
        // The optimized input path keeps DLRM device-bound per §3.5's
        // fixes (stall may be zero or small).
        assert!(d.input_stall < d.total());
    }

    #[test]
    fn compressed_input_stalls_resnet_at_scale() {
        let w = catalog::resnet50();
        let tuned = step_breakdown(&w, 128, &StepOptions::default()).unwrap();
        let legacy = step_breakdown(
            &w,
            128,
            &StepOptions {
                uncompressed_input: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(legacy.input_stall > tuned.input_stall);
        assert!(legacy.input_stall > 0.0, "legacy={legacy:?}");
    }

    #[test]
    fn effective_stride_respects_mesh() {
        let w = catalog::ssd(); // chip stride 4
        let mesh = Multipod::new(MultipodConfig::slice(16)); // 4x4
        assert_eq!(effective_stride(&w, &mesh), 4);
        let tiny = Multipod::new(MultipodConfig::slice(2)); // 2x1
        assert_eq!(effective_stride(&w, &tiny), 2);
    }

    #[test]
    fn tpu_v4_projection_reproduces_the_dlrm_footnote() {
        // Table 1's note: DLRM's best result (1.21 min) came from TPU-v4,
        // roughly 2x faster end-to-end than the v3 slice's 2.4 min. The
        // compute/embedding parts of the step shrink accordingly.
        use multipod_models::TpuV3;
        let w = catalog::dlrm();
        let v3 = step_breakdown(&w, 256, &StepOptions::default()).unwrap();
        let v4 = step_breakdown_on(
            &w,
            256,
            &StepOptions::default(),
            &TpuV3::v4_projection(),
            NetworkConfig::tpu_v4(),
        )
        .unwrap();
        assert!(v4.compute < v3.compute);
        assert!(v4.embedding < v3.embedding);
        let ratio = v3.total() / v4.total();
        // Paper: 2.4 min (v3, 256 chips) vs 1.21 min (v4) ≈ 2x.
        assert!((1.4..3.0).contains(&ratio), "v4 speedup: {ratio}");
    }

    #[test]
    fn non_power_of_two_chips_is_a_typed_error_not_a_panic() {
        for chips in [0, 1, 3, 6, 100] {
            let err =
                step_breakdown(&catalog::resnet50(), chips, &StepOptions::default()).unwrap_err();
            assert_eq!(err, StepError::InvalidSliceShape { chips });
            assert!(err.to_string().contains(&chips.to_string()));
        }
    }

    #[test]
    fn all_reduce_fraction_of_an_empty_step_is_zero_not_nan() {
        let b = StepBreakdown::default();
        assert_eq!(b.total(), 0.0);
        let share = b.all_reduce_fraction();
        assert!(share.is_finite(), "share={share}");
        assert_eq!(share, 0.0);
    }

    #[test]
    fn host_input_time_matches_the_stall_race() {
        // The extracted host-side time is exactly what input_stall races
        // against the device: stall == max(host − device, 0).
        let w = catalog::resnet50();
        let opts = StepOptions {
            uncompressed_input: false,
            ..Default::default()
        };
        let b = step_breakdown(&w, 128, &opts).unwrap();
        // Same fold order as the internal device_time, so bit-identical.
        let device = b.compute
            + b.model_parallel_comm
            + b.gradient_comm.total()
            + b.weight_update
            + b.embedding;
        let host = host_input_time(&w, 128, w.global_batch(128), &opts);
        assert_eq!((host - device).max(0.0).to_bits(), b.input_stall.to_bits());
    }

    #[test]
    fn step_times_are_positive_and_finite_for_all_models() {
        for w in catalog::all() {
            let chips = match w.name {
                "MaskRCNN" => 512,
                "DLRM" => 256,
                _ => 4096,
            };
            let b = step_breakdown(&w, chips, &StepOptions::default()).unwrap();
            assert!(
                b.total().is_finite() && b.total() > 0.0,
                "{}: {b:?}",
                w.name
            );
            assert!(
                b.total() < 1.0,
                "{}: step should be sub-second: {b:?}",
                w.name
            );
        }
    }
}
