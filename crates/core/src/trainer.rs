//! A reusable data-parallel training loop over the simulated multipod.
//!
//! Packages the §3.2 + §3.3 pattern the examples spell out by hand:
//! per-chip local gradients go through the 2-D gradient summation, the
//! optimizer step runs **sharded** at the shard owners (trust-ratio norms
//! reconstructed from per-shard partials), and the broadcast phases leave
//! every replica with identical updated weights. A [`multipod_optim::LrSchedule`]
//! drives the rate.
//!
//! ```
//! use multipod_core::trainer::DataParallelTrainer;
//! use multipod_optim::{LrSchedule, SgdMomentum};
//! use multipod_tensor::{Shape, Tensor};
//! use multipod_topology::MultipodConfig;
//!
//! let mut trainer = DataParallelTrainer::new(
//!     MultipodConfig::mesh(2, 2, true),
//!     SgdMomentum::new(1.0, 0.0),
//!     LrSchedule::Constant { lr: 0.5 },
//! );
//! let mut weights = Tensor::fill(Shape::vector(4), 1.0);
//! let grads = vec![Tensor::fill(Shape::vector(4), 0.25); 4];
//! trainer.step(&mut weights, &grads).unwrap();
//! // w -= 0.5 * Σ grads = 1.0 - 0.5*1.0
//! assert!((weights.data()[0] - 0.5).abs() < 1e-6);
//! ```

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use multipod_collectives::twod::{shard_index, two_dim_all_reduce};
use multipod_collectives::{CollectiveError, Precision};
use multipod_optim::{LayerStats, LrSchedule, Optimizer, StateKey};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_tensor::Tensor;
use multipod_topology::MultipodConfig;
use multipod_trace::{SpanCategory, SpanEvent, TraceSink, Track};

/// Timing of one trainer step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainStepStats {
    /// Simulated gradient-summation (and broadcast) time, seconds.
    pub comm_seconds: f64,
    /// The learning rate used.
    pub lr: f32,
    /// Steps taken so far.
    pub step: u64,
}

/// A data-parallel trainer: one model replica per chip of the configured
/// mesh, gradients summed with the paper's 2-D schedule, weight update
/// sharded across all chips.
#[derive(Debug)]
pub struct DataParallelTrainer<O: Optimizer> {
    net: Network,
    optimizer: O,
    schedule: LrSchedule,
    precision: Precision,
    step: u64,
}

impl<O: Optimizer> DataParallelTrainer<O> {
    /// Builds a trainer over a mesh configuration.
    pub fn new(mesh: MultipodConfig, optimizer: O, schedule: LrSchedule) -> Self {
        DataParallelTrainer {
            net: Network::new(
                multipod_topology::Multipod::new(mesh),
                NetworkConfig::tpu_v3(),
            ),
            optimizer,
            schedule,
            precision: Precision::F32,
            step: 0,
        }
    }

    /// Switches the gradient-summation payload to bfloat16 (§3.3).
    pub fn with_bf16_gradients(mut self) -> Self {
        self.precision = Precision::Bf16;
        self
    }

    /// Number of replicas (= chips).
    pub fn replicas(&self) -> usize {
        self.net.mesh().num_chips()
    }

    /// Attaches a trace sink to the trainer's network: subsequent steps
    /// record link transfers, collective phases and step spans into it.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.net.set_trace_sink(sink);
    }

    /// Detaches the trace sink, restoring zero-overhead stepping.
    pub fn clear_trace_sink(&mut self) {
        self.net.clear_trace_sink();
    }

    /// The simulated network the trainer steps on.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// One training step: sums `local_grads` (one per chip) with the 2-D
    /// schedule, applies the sharded optimizer update at the shard owners,
    /// and writes the identical updated weights back into `weights`.
    ///
    /// # Errors
    ///
    /// Fails when the gradient count differs from the replica count, the
    /// payload does not shard evenly, or a transfer is unroutable.
    ///
    /// # Panics
    ///
    /// Panics if gradient shapes disagree with the weights.
    pub fn step(
        &mut self,
        weights: &mut Tensor,
        local_grads: &[Tensor],
    ) -> Result<TrainStepStats, CollectiveError> {
        let n = self.replicas();
        if local_grads.len() != n {
            return Err(CollectiveError::ParticipantMismatch {
                inputs: local_grads.len(),
                members: n,
            });
        }
        let lr = self.schedule.at(self.step);
        self.optimizer.set_learning_rate(lr);

        // Phase A (local to this host-side driver): advance optimizer
        // state per shard and gather the global layer statistics the
        // trust-ratio optimizers need (the scalar all-reduce of §3.2).
        let grad_sum = Tensor::sum_all(local_grads);
        let w_shards = weights.split(0, n)?;
        let g_shards = grad_sum.split(0, n)?;
        let mut global = LayerStats::default();
        let mut updates = Vec::with_capacity(n);
        for s in 0..n {
            let (u, stats) =
                self.optimizer
                    .prepare(StateKey { layer: 0, shard: s }, &w_shards[s], &g_shards[s]);
            global = global.merge(stats);
            updates.push(u);
        }

        // Phase B: the simulated 2-D summation; each shard owner applies
        // its slice of the update before the broadcast half. The owner's
        // slice index comes from the schedule itself, so this stays
        // correct under bf16 payload quantization.
        let optimizer = &self.optimizer;
        let mesh = self.net.mesh().clone();
        let mut apply = |chip, shard: &mut Tensor| {
            let s = shard_index(&mesh, chip, 1);
            let mut w_shard = w_shards[s].clone();
            optimizer.apply(&mut w_shard, &updates[s], global);
            *shard = w_shard;
        };
        self.net.reset();
        let out = two_dim_all_reduce(
            &mut self.net,
            local_grads,
            self.precision,
            1,
            Some(&mut apply),
        )?;
        *weights = out.outputs[0].clone().reshape(weights.shape().clone())?;
        if let Some(sink) = self.net.trace_sink() {
            // The sharded optimizer update runs at the shard owners
            // between the reduce and broadcast halves; the driver models
            // it as instantaneous in simulated time.
            let update_at = SimTime::from_seconds(
                out.breakdown.y_reduce_scatter + out.breakdown.x_reduce_scatter,
            );
            sink.record_span(
                SpanEvent::new(
                    Track::Sim,
                    SpanCategory::Optimizer,
                    "sharded-weight-update",
                    update_at,
                    update_at,
                )
                .with_arg("shards", n as f64)
                .with_arg("lr", lr as f64),
            );
            sink.record_span(
                SpanEvent::new(
                    Track::Sim,
                    SpanCategory::Step,
                    "train-step",
                    SimTime::ZERO,
                    out.time,
                )
                .with_arg("step", (self.step + 1) as f64)
                .with_arg("lr", lr as f64),
            );
        }
        self.step += 1;
        Ok(TrainStepStats {
            comm_seconds: out.time.seconds(),
            lr,
            step: self.step,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_optim::{Lamb, SgdMomentum};
    use multipod_tensor::{Shape, TensorRng};

    #[test]
    fn trainer_matches_single_node_sgd() {
        let n = 16usize;
        let elems = 64usize;
        let mut rng = TensorRng::seed(6);
        let mut w_dist = rng.uniform(Shape::vector(elems), -1.0, 1.0);
        let mut w_ref = w_dist.clone();
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(4, 4, true),
            SgdMomentum::new(1.0, 0.9),
            LrSchedule::Constant { lr: 0.05 },
        );
        let mut reference = SgdMomentum::new(0.05, 0.9);
        for _ in 0..10 {
            let grads: Vec<Tensor> = (0..n)
                .map(|_| rng.uniform(Shape::vector(elems), -0.1, 0.1))
                .collect();
            trainer.step(&mut w_dist, &grads).unwrap();
            reference.step(0, &mut w_ref, &Tensor::sum_all(&grads));
        }
        assert!(
            w_dist.max_abs_diff(&w_ref) < 1e-4,
            "distributed == single-node: {}",
            w_dist.max_abs_diff(&w_ref)
        );
    }

    #[test]
    fn trainer_converges_with_lamb_and_schedule() {
        let n = 4usize;
        let elems = 32usize;
        let mut rng = TensorRng::seed(7);
        let target = rng.uniform(Shape::vector(elems), -1.0, 1.0);
        let mut w = Tensor::zeros(Shape::vector(elems));
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(2, 2, true),
            Lamb::new(1.0, 0.0),
            LrSchedule::lamb_bert(0.3, 5, 80),
        )
        .with_bf16_gradients();
        for _ in 0..80 {
            // grad of ||w - target||²/2, split evenly across replicas.
            let g = w.sub(&target).unwrap().scale(1.0 / n as f32);
            let grads = vec![g; n];
            trainer.step(&mut w, &grads).unwrap();
        }
        let err = w.sub(&target).unwrap().norm2() / target.norm2();
        assert!(err < 0.15, "relative error {err}");
    }

    #[test]
    fn schedule_and_counter_advance() {
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(2, 1, false),
            SgdMomentum::new(1.0, 0.0),
            LrSchedule::lars_resnet(1.0, 4, 10),
        );
        let mut w = Tensor::fill(Shape::vector(4), 1.0);
        let grads = vec![Tensor::zeros(Shape::vector(4)); 2];
        let s1 = trainer.step(&mut w, &grads).unwrap();
        let s2 = trainer.step(&mut w, &grads).unwrap();
        assert_eq!(s1.step, 1);
        assert_eq!(s2.step, 2);
        assert!(s2.lr > s1.lr, "warmup must raise the rate");
    }

    #[test]
    fn wrong_replica_count_is_rejected() {
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(2, 2, true),
            SgdMomentum::new(1.0, 0.0),
            LrSchedule::Constant { lr: 0.1 },
        );
        let mut w = Tensor::fill(Shape::vector(4), 1.0);
        let grads = vec![Tensor::zeros(Shape::vector(4)); 3];
        assert!(trainer.step(&mut w, &grads).is_err());
    }

    #[test]
    fn traced_step_emits_step_and_optimizer_spans() {
        use multipod_trace::Recorder;
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(2, 2, true),
            SgdMomentum::new(1.0, 0.0),
            LrSchedule::Constant { lr: 0.1 },
        );
        let recorder = Recorder::shared();
        trainer.set_trace_sink(recorder.clone());
        let mut w = Tensor::fill(Shape::vector(16), 1.0);
        let grads = vec![Tensor::fill(Shape::vector(16), 0.5); 4];
        let stats = trainer.step(&mut w, &grads).unwrap();

        let count = |category: SpanCategory, name: &str| {
            recorder
                .span_totals()
                .iter()
                .filter(|t| t.category == category && t.name == name)
                .map(|t| t.count)
                .sum::<u64>()
        };
        assert_eq!(count(SpanCategory::Step, "train-step"), 1);
        assert_eq!(count(SpanCategory::Optimizer, "sharded-weight-update"), 1);
        assert_eq!(count(SpanCategory::Collective, "2d-all-reduce"), 1);
        assert!(
            !recorder.link_summaries().is_empty(),
            "link events recorded"
        );
        // The step span must cover the whole simulated step.
        let step_total = recorder
            .span_totals()
            .into_iter()
            .find(|t| t.category == SpanCategory::Step)
            .unwrap();
        assert!((step_total.total_seconds - stats.comm_seconds).abs() < 1e-12);

        // Detaching restores the silent path.
        trainer.clear_trace_sink();
        let before = recorder.len();
        trainer.step(&mut w, &grads).unwrap();
        assert_eq!(recorder.len(), before, "detached sink must see nothing");
    }
}
