//! A reusable data-parallel training loop over the simulated multipod.
//!
//! Packages the §3.2 + §3.3 pattern the examples spell out by hand:
//! per-chip local gradients go through the 2-D gradient summation, the
//! optimizer step runs **sharded** at the shard owners (trust-ratio norms
//! reconstructed from per-shard partials), and the broadcast phases leave
//! every replica with identical updated weights. A [`multipod_optim::LrSchedule`]
//! drives the rate.
//!
//! ```
//! use multipod_core::trainer::DataParallelTrainer;
//! use multipod_optim::{LrSchedule, SgdMomentum};
//! use multipod_tensor::{Shape, Tensor};
//! use multipod_topology::MultipodConfig;
//!
//! let mut trainer = DataParallelTrainer::new(
//!     MultipodConfig::mesh(2, 2, true),
//!     SgdMomentum::new(1.0, 0.0),
//!     LrSchedule::Constant { lr: 0.5 },
//! );
//! let mut weights = Tensor::fill(Shape::vector(4), 1.0);
//! let grads = vec![Tensor::fill(Shape::vector(4), 0.25); 4];
//! trainer.step(&mut weights, &grads).unwrap();
//! // w -= 0.5 * Σ grads = 1.0 - 0.5*1.0
//! assert!((weights.data()[0] - 0.5).abs() < 1e-6);
//! ```

use std::collections::BTreeSet;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use multipod_collectives::degraded::ring_degradation;
use multipod_collectives::ring;
use multipod_collectives::twod::{
    bucketed_two_dim_all_reduce_time, shard_index, two_dim_all_reduce,
};
use multipod_collectives::{CollectiveError, Precision};
use multipod_optim::{LayerStats, LrSchedule, Optimizer, StateKey};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_taskgraph::{Resource, TaskGraph, TaskKind, TaskSchedule};
use multipod_tensor::Tensor;
use multipod_topology::{ChipId, MultipodConfig, Ring};
use multipod_trace::{SpanCategory, SpanEvent, TraceSink, Track};

use crate::step::StepError;

/// Timing of one trainer step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainStepStats {
    /// Simulated gradient-summation (and broadcast) time, seconds.
    pub comm_seconds: f64,
    /// The learning rate used.
    pub lr: f32,
    /// Steps taken so far.
    pub step: u64,
    /// Retries this step burned on fault recovery (0 on the happy path).
    pub retries: u32,
    /// Replicas dropped from the data-parallel group so far.
    pub dead_replicas: usize,
    /// Whether the step ran over detoured links or a survivor ring.
    pub degraded: bool,
}

/// What the trainer does with replicas lost to chip isolation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryMode {
    /// Drop lost replicas from the data-parallel group and renormalize
    /// the gradient average over the survivors (Kumar & Jouppi's
    /// graceful degradation; the PR 2 behavior and the default).
    #[default]
    DropReplicas,
    /// Surface replica loss to the caller instead of absorbing it: the
    /// step fails with the triggering `Network` error after the dead set
    /// is updated, so a checkpoint layer (see `multipod-ckpt`) can roll
    /// the run back to the last checkpoint and resume on the survivor
    /// mesh at full capacity minus the failures.
    Rollback,
}

/// How the trainer reacts to faults mid-run: how often it retries a step
/// after re-planning, how much simulated time each re-plan costs, and
/// whether replica loss is absorbed (drop + renormalize) or escalated to
/// a rollback layer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// Maximum step retries before the fault is surfaced as an error.
    pub max_retries: u32,
    /// Simulated re-plan cost of the first retry, seconds; doubled on each
    /// further retry (bounded exponential backoff).
    pub backoff_seconds: f64,
    /// What to do about replicas lost to chip isolation.
    pub recovery: RecoveryMode,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_retries: 3,
            backoff_seconds: 1e-3,
            recovery: RecoveryMode::DropReplicas,
        }
    }
}

/// A data-parallel trainer: one model replica per chip of the configured
/// mesh, gradients summed with the paper's 2-D schedule, weight update
/// sharded across all chips.
///
/// The trainer tolerates topology faults: steps are pre-flighted against
/// the current mesh, lost (isolated) replicas are dropped from the group
/// with the gradient average renormalized over survivors, and each
/// re-plan retries the step under a bounded-backoff [`FaultPolicy`].
#[derive(Debug)]
pub struct DataParallelTrainer<O: Optimizer> {
    net: Network,
    optimizer: O,
    schedule: LrSchedule,
    precision: Precision,
    step: u64,
    fault_policy: FaultPolicy,
    /// Chip indices of replicas dropped after isolation.
    dead: BTreeSet<usize>,
}

impl<O: Optimizer> DataParallelTrainer<O> {
    /// Builds a trainer over a mesh configuration.
    pub fn new(mesh: MultipodConfig, optimizer: O, schedule: LrSchedule) -> Self {
        DataParallelTrainer {
            net: Network::new(
                multipod_topology::Multipod::new(mesh),
                NetworkConfig::tpu_v3(),
            ),
            optimizer,
            schedule,
            precision: Precision::F32,
            step: 0,
            fault_policy: FaultPolicy::default(),
            dead: BTreeSet::new(),
        }
    }

    /// Switches the gradient-summation payload to bfloat16 (§3.3).
    pub fn with_bf16_gradients(mut self) -> Self {
        self.precision = Precision::Bf16;
        self
    }

    /// Overrides the fault-recovery policy.
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Number of replicas (= chips).
    pub fn replicas(&self) -> usize {
        self.net.mesh().num_chips()
    }

    /// Attaches a trace sink to the trainer's network: subsequent steps
    /// record link transfers, collective phases and step spans into it.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.net.set_trace_sink(sink);
    }

    /// Detaches the trace sink, restoring zero-overhead stepping.
    pub fn clear_trace_sink(&mut self) {
        self.net.clear_trace_sink();
    }

    /// The simulated network the trainer steps on.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the network, so fault drivers can fail and heal
    /// links mid-run (cached routing state invalidates automatically).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Chip indices of replicas dropped after isolation, in index order.
    pub fn dead_replicas(&self) -> Vec<usize> {
        self.dead.iter().copied().collect()
    }

    /// The optimizer driving the weight updates.
    pub fn optimizer(&self) -> &O {
        &self.optimizer
    }

    /// Mutable optimizer access, so a checkpoint layer can export and
    /// re-import its state around a rollback.
    pub fn optimizer_mut(&mut self) -> &mut O {
        &mut self.optimizer
    }

    /// Steps taken so far (the value the next [`Self::step`] reports as
    /// `step - 1`).
    pub fn current_step(&self) -> u64 {
        self.step
    }

    /// Rewinds the step counter to `step`, so the learning-rate schedule
    /// replays exactly as it did the first time. Optimizer state is *not*
    /// touched — the rollback layer re-imports it from the checkpoint.
    pub fn rollback_to(&mut self, step: u64) {
        self.step = step;
    }

    /// One training step: sums `local_grads` (one per chip) with the 2-D
    /// schedule, applies the sharded optimizer update at the shard owners,
    /// and writes the identical updated weights back into `weights`.
    ///
    /// Faults are tolerated: each attempt is pre-flighted against the
    /// current mesh before optimizer state advances, replicas isolated by
    /// chip loss are dropped (gradient average renormalized over the
    /// survivors) and the step is retried under the bounded-backoff
    /// [`FaultPolicy`], with `step-retry`/`replica-lost` fault spans on
    /// the trace sink.
    ///
    /// # Errors
    ///
    /// Fails when the gradient count differs from the replica count, the
    /// payload does not shard evenly, or the mesh stays unroutable after
    /// `max_retries` re-plans.
    ///
    /// # Panics
    ///
    /// Panics if gradient shapes disagree with the weights.
    pub fn step(
        &mut self,
        weights: &mut Tensor,
        local_grads: &[Tensor],
    ) -> Result<TrainStepStats, CollectiveError> {
        let n = self.replicas();
        if local_grads.len() != n {
            return Err(CollectiveError::ParticipantMismatch {
                inputs: local_grads.len(),
                members: n,
            });
        }
        let lr = self.schedule.at(self.step);
        self.optimizer.set_learning_rate(lr);
        self.net.reset();

        let mut retries = 0u32;
        let mut start = SimTime::ZERO;
        loop {
            // Pre-flight routability first so optimizer state advances at
            // most once per step: faults surface before `prepare` runs.
            let preflight = if self.dead.is_empty() {
                self.preflight_full()
            } else {
                self.preflight_survivors()
            };
            match preflight {
                Ok(degraded) => {
                    let time = if self.dead.is_empty() {
                        self.full_step(weights, local_grads, lr, start)?
                    } else {
                        self.survivor_step(weights, local_grads, start)?
                    };
                    if let Some(sink) = self.net.trace_sink() {
                        sink.record_span(
                            SpanEvent::new(
                                Track::Sim,
                                SpanCategory::Step,
                                "train-step",
                                SimTime::ZERO,
                                time,
                            )
                            .with_arg("step", (self.step + 1) as f64)
                            .with_arg("lr", lr as f64),
                        );
                    }
                    self.step += 1;
                    return Ok(TrainStepStats {
                        comm_seconds: time.seconds(),
                        lr,
                        step: self.step,
                        retries,
                        dead_replicas: self.dead.len(),
                        degraded: degraded || !self.dead.is_empty(),
                    });
                }
                Err(CollectiveError::Network(err)) => {
                    retries += 1;
                    if retries > self.fault_policy.max_retries {
                        return Err(CollectiveError::Network(err));
                    }
                    let lost = self.mark_isolated_replicas(start);
                    if self.dead.len() >= n {
                        return Err(CollectiveError::Network(err));
                    }
                    if self.fault_policy.recovery == RecoveryMode::Rollback && lost > 0 {
                        // Escalate instead of absorbing: optimizer state
                        // has not advanced this attempt, so the caller
                        // can restore the last checkpoint and re-drive
                        // the step on the survivor mesh.
                        self.emit_sim_fault(
                            "rollback-required",
                            start,
                            start,
                            &[("replicas_lost", lost as f64)],
                        );
                        return Err(CollectiveError::Network(err));
                    }
                    // Bounded exponential backoff in simulated time: the
                    // re-plan (failure detection, new ring computation)
                    // costs a backoff window that doubles per retry.
                    let delay = self.fault_policy.backoff_seconds
                        * f64::from(1u32 << (retries - 1).min(30));
                    self.emit_sim_fault(
                        "step-retry",
                        start,
                        start + delay,
                        &[
                            ("retry", f64::from(retries)),
                            ("replicas_lost", lost as f64),
                        ],
                    );
                    start += delay;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Routability pre-flight for the full 2-D schedule: every edge of
    /// every Y ring and X line must route. Returns whether any edge is
    /// detoured around a failed link.
    fn preflight_full(&self) -> Result<bool, CollectiveError> {
        let mesh = self.net.mesh();
        if mesh.failed_links().is_empty() {
            return Ok(false);
        }
        let mut degraded = false;
        for x in 0..mesh.x_len() {
            degraded |= ring_degradation(mesh, &mesh.y_ring(x))?.is_some();
        }
        for y in 0..mesh.y_len() {
            degraded |= ring_degradation(mesh, &mesh.x_line(y))?.is_some();
        }
        Ok(degraded)
    }

    /// Routability pre-flight for the survivor ring (always degraded).
    fn preflight_survivors(&self) -> Result<bool, CollectiveError> {
        let survivors = self.survivors();
        if survivors.len() >= 2 {
            ring_degradation(self.net.mesh(), &Ring::new(survivors, false, 1))?;
        }
        Ok(true)
    }

    fn survivors(&self) -> Vec<ChipId> {
        let mesh = self.net.mesh();
        let mut chips: Vec<ChipId> = mesh
            .chips()
            .filter(|c| !self.dead.contains(&c.index()))
            .collect();
        // Column-major ring order: consecutive same-column survivors can
        // detour the long way around the torus Y wrap when the chip between
        // them is dead. Row-major order would pair same-row survivors whose
        // only connecting row passes through the dead chip, and the
        // dimension-ordered router has no dogleg through an adjacent row.
        chips.sort_by_key(|&c| {
            let coord = mesh.coord_of(c);
            (coord.x, coord.y)
        });
        chips
    }

    /// Marks replicas on isolated chips as dead, emitting one
    /// `replica-lost` fault span each; returns how many were newly lost.
    fn mark_isolated_replicas(&mut self, at: SimTime) -> usize {
        let mesh = self.net.mesh();
        let newly: Vec<ChipId> = mesh
            .chips()
            .filter(|&c| mesh.is_isolated(c) && !self.dead.contains(&c.index()))
            .collect();
        let count = newly.len();
        for chip in newly {
            self.dead.insert(chip.index());
            if let Some(sink) = self.net.trace_sink() {
                sink.record_span(SpanEvent::new(
                    Track::Chip {
                        pod: self.net.mesh().pod_of(chip),
                        chip: chip.0,
                    },
                    SpanCategory::Fault,
                    "replica-lost",
                    at,
                    at,
                ));
            }
        }
        count
    }

    /// Projects what the deferred task-graph runtime would make of a step
    /// on **this trainer's mesh**: `compute_seconds` of backprop split
    /// into `buckets` segments, with each bucket's share of an
    /// `elems`-element gradient running the bucketed 2-D schedule as soon
    /// as its segment retires. Returns the executed schedule, so callers
    /// can compare its makespan against the serial
    /// `compute_seconds + comm` sum (and against the measured
    /// [`TrainStepStats::comm_seconds`]).
    ///
    /// # Errors
    ///
    /// [`StepError::Collective`] when a ring of the trainer's (possibly
    /// degraded) mesh fails to route.
    pub fn projected_overlap(
        &self,
        compute_seconds: f64,
        elems: usize,
        buckets: u32,
    ) -> Result<TaskSchedule, StepError> {
        let buckets = buckets.max(1) as usize;
        let costs = bucketed_two_dim_all_reduce_time(&self.net, elems, self.precision, 1, buckets)?;
        let segment = compute_seconds.max(0.0) / buckets as f64;
        let mut g = TaskGraph::new();
        let mut prev = None;
        for (i, cost) in costs.iter().enumerate() {
            let bucket = i as u32;
            let deps: Vec<_> = prev.into_iter().collect();
            let bwd = g.add(
                TaskKind::LayerBackprop { layer: bucket },
                Resource::Mxu,
                segment,
                &deps,
            )?;
            prev = Some(bwd);
            let yrs = g.add(
                TaskKind::reduce_scatter_y(bucket),
                Resource::Ici,
                cost.y_reduce_scatter,
                &[bwd],
            )?;
            let xrs = g.add(
                TaskKind::reduce_scatter_x(bucket),
                Resource::Ici,
                cost.x_reduce_scatter,
                &[yrs],
            )?;
            let xag = g.add(
                TaskKind::all_gather_x(bucket),
                Resource::Ici,
                cost.x_all_gather,
                &[xrs],
            )?;
            g.add(
                TaskKind::all_gather_y(bucket),
                Resource::Ici,
                cost.y_all_gather,
                &[xag],
            )?;
        }
        Ok(g.run())
    }

    fn emit_sim_fault(&self, name: &str, start: SimTime, end: SimTime, args: &[(&str, f64)]) {
        if let Some(sink) = self.net.trace_sink() {
            let mut span = SpanEvent::new(Track::Sim, SpanCategory::Fault, name, start, end);
            for &(key, value) in args {
                span = span.with_arg(key, value);
            }
            sink.record_span(span);
        }
    }

    /// The fault-free dataflow: 2-D gradient summation with the sharded
    /// optimizer update applied at the shard owners (§3.2 + §3.3).
    fn full_step(
        &mut self,
        weights: &mut Tensor,
        local_grads: &[Tensor],
        lr: f32,
        start: SimTime,
    ) -> Result<SimTime, CollectiveError> {
        let n = self.replicas();
        // Phase A (local to this host-side driver): advance optimizer
        // state per shard and gather the global layer statistics the
        // trust-ratio optimizers need (the scalar all-reduce of §3.2).
        let grad_sum = Tensor::sum_all(local_grads)?;
        let w_shards = weights.split(0, n)?;
        let g_shards = grad_sum.split(0, n)?;
        let mut global = LayerStats::default();
        let mut updates = Vec::with_capacity(n);
        for s in 0..n {
            let (u, stats) = self
                .optimizer
                .prepare(StateKey { layer: 0, shard: s }, &w_shards[s], &g_shards[s])
                .map_err(CollectiveError::from)?;
            global = global.merge(stats);
            updates.push(u);
        }

        // Phase B: the simulated 2-D summation; each shard owner applies
        // its slice of the update before the broadcast half. The owner's
        // slice index comes from the schedule itself, so this stays
        // correct under bf16 payload quantization.
        let optimizer = &self.optimizer;
        let mesh = self.net.mesh().clone();
        // The apply callback cannot return an error through the collective;
        // capture the first failure and surface it after the reduce.
        let mut apply_err: Option<multipod_optim::OptimError> = None;
        let mut apply = |chip, shard: &mut Tensor| {
            let s = shard_index(&mesh, chip, 1);
            let mut w_shard = w_shards[s].clone();
            if let Err(e) = optimizer.apply(&mut w_shard, &updates[s], global) {
                apply_err.get_or_insert(e);
            }
            *shard = w_shard;
        };
        let out = two_dim_all_reduce(
            &mut self.net,
            local_grads,
            self.precision,
            1,
            Some(&mut apply),
        )?;
        if let Some(e) = apply_err {
            return Err(e.into());
        }
        *weights = out.outputs[0].clone().reshape(weights.shape().clone())?;
        if let Some(sink) = self.net.trace_sink() {
            // The sharded optimizer update runs at the shard owners
            // between the reduce and broadcast halves; the driver models
            // it as instantaneous in simulated time.
            let update_at = SimTime::from_seconds(
                out.breakdown.y_reduce_scatter + out.breakdown.x_reduce_scatter,
            );
            sink.record_span(
                SpanEvent::new(
                    Track::Sim,
                    SpanCategory::Optimizer,
                    "sharded-weight-update",
                    update_at,
                    update_at,
                )
                .with_arg("shards", n as f64)
                .with_arg("lr", lr as f64),
            );
        }
        // `two_dim_all_reduce` times its phases from SimTime::ZERO; shift
        // by the step's (backoff-delayed) start.
        Ok(start + out.time.seconds())
    }

    /// The degraded dataflow after replica loss: gradients of the
    /// survivors are summed on a routed ring over the remaining chips and
    /// the average is renormalized by `n / survivors`, so the update keeps
    /// the magnitude of the full data-parallel batch (Kumar & Jouppi's
    /// graceful-degradation recipe). Optimizer shards and their momentum
    /// state are unchanged: only the gradient estimate loses samples.
    fn survivor_step(
        &mut self,
        weights: &mut Tensor,
        local_grads: &[Tensor],
        start: SimTime,
    ) -> Result<SimTime, CollectiveError> {
        let n = self.replicas();
        let survivors = self.survivors();
        let s = survivors.len();
        debug_assert!(s >= 1, "step() refuses to run with zero survivors");
        let survivor_grads: Vec<Tensor> = survivors
            .iter()
            .map(|c| local_grads[c.index()].clone())
            .collect();
        // Time the collective on the network; numerics below use the
        // host-side sum so renormalization stays bit-deterministic.
        let time = if s >= 2 {
            let ring = Ring::new(survivors.clone(), false, 1);
            match ring::all_reduce(&mut self.net, &ring, &survivor_grads, self.precision, start) {
                Ok(out) => out.time,
                Err(CollectiveError::IndivisiblePayload { .. }) => {
                    // The payload does not split across the survivor count:
                    // fall back to a routed gather + broadcast through the
                    // first survivor.
                    let root = survivors[0];
                    let bytes = self.precision.wire_bytes(survivor_grads[0].len());
                    let gather: Vec<(ChipId, ChipId, u64)> =
                        survivors[1..].iter().map(|&c| (c, root, bytes)).collect();
                    let gathered = self.net.parallel_transfers(&gather, start)?;
                    let scatter: Vec<(ChipId, ChipId, u64)> =
                        survivors[1..].iter().map(|&c| (root, c, bytes)).collect();
                    self.net.parallel_transfers(&scatter, gathered)?
                }
                Err(e) => return Err(e),
            }
        } else {
            start
        };
        let scale = n as f32 / s as f32;
        let grad_sum = Tensor::sum_all(&survivor_grads)?.scale(scale);
        let w_shards = weights.split(0, n)?;
        let g_shards = grad_sum.split(0, n)?;
        let mut global = LayerStats::default();
        let mut updates = Vec::with_capacity(n);
        for idx in 0..n {
            let (u, stats) = self
                .optimizer
                .prepare(
                    StateKey {
                        layer: 0,
                        shard: idx,
                    },
                    &w_shards[idx],
                    &g_shards[idx],
                )
                .map_err(CollectiveError::from)?;
            global = global.merge(stats);
            updates.push(u);
        }
        let mut updated = Vec::with_capacity(n);
        for idx in 0..n {
            let mut w_shard = w_shards[idx].clone();
            self.optimizer
                .apply(&mut w_shard, &updates[idx], global)
                .map_err(CollectiveError::from)?;
            updated.push(w_shard);
        }
        *weights = Tensor::concat(&updated, 0)?.reshape(weights.shape().clone())?;
        self.emit_sim_fault(
            "degraded-update",
            time,
            time,
            &[
                ("survivors", s as f64),
                ("renormalization", f64::from(scale)),
            ],
        );
        Ok(time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_optim::{Lamb, SgdMomentum};
    use multipod_tensor::{Shape, TensorRng};

    #[test]
    fn trainer_matches_single_node_sgd() {
        let n = 16usize;
        let elems = 64usize;
        let mut rng = TensorRng::seed(6);
        let mut w_dist = rng.uniform(Shape::vector(elems), -1.0, 1.0);
        let mut w_ref = w_dist.clone();
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(4, 4, true),
            SgdMomentum::new(1.0, 0.9),
            LrSchedule::Constant { lr: 0.05 },
        );
        let mut reference = SgdMomentum::new(0.05, 0.9);
        for _ in 0..10 {
            let grads: Vec<Tensor> = (0..n)
                .map(|_| rng.uniform(Shape::vector(elems), -0.1, 0.1))
                .collect();
            trainer.step(&mut w_dist, &grads).unwrap();
            reference
                .step(0, &mut w_ref, &Tensor::sum_all(&grads).unwrap())
                .unwrap();
        }
        assert!(
            w_dist.max_abs_diff(&w_ref) < 1e-4,
            "distributed == single-node: {}",
            w_dist.max_abs_diff(&w_ref)
        );
    }

    #[test]
    fn trainer_converges_with_lamb_and_schedule() {
        let n = 4usize;
        let elems = 32usize;
        let mut rng = TensorRng::seed(7);
        let target = rng.uniform(Shape::vector(elems), -1.0, 1.0);
        let mut w = Tensor::zeros(Shape::vector(elems));
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(2, 2, true),
            Lamb::new(1.0, 0.0),
            LrSchedule::lamb_bert(0.3, 5, 80),
        )
        .with_bf16_gradients();
        for _ in 0..80 {
            // grad of ||w - target||²/2, split evenly across replicas.
            let g = w.sub(&target).unwrap().scale(1.0 / n as f32);
            let grads = vec![g; n];
            trainer.step(&mut w, &grads).unwrap();
        }
        let err = w.sub(&target).unwrap().norm2() / target.norm2();
        assert!(err < 0.15, "relative error {err}");
    }

    #[test]
    fn schedule_and_counter_advance() {
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(2, 1, false),
            SgdMomentum::new(1.0, 0.0),
            LrSchedule::lars_resnet(1.0, 4, 10),
        );
        let mut w = Tensor::fill(Shape::vector(4), 1.0);
        let grads = vec![Tensor::zeros(Shape::vector(4)); 2];
        let s1 = trainer.step(&mut w, &grads).unwrap();
        let s2 = trainer.step(&mut w, &grads).unwrap();
        assert_eq!(s1.step, 1);
        assert_eq!(s2.step, 2);
        assert!(s2.lr > s1.lr, "warmup must raise the rate");
    }

    #[test]
    fn wrong_replica_count_is_rejected() {
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(2, 2, true),
            SgdMomentum::new(1.0, 0.0),
            LrSchedule::Constant { lr: 0.1 },
        );
        let mut w = Tensor::fill(Shape::vector(4), 1.0);
        let grads = vec![Tensor::zeros(Shape::vector(4)); 3];
        assert!(trainer.step(&mut w, &grads).is_err());
    }

    #[test]
    fn traced_step_emits_step_and_optimizer_spans() {
        use multipod_trace::Recorder;
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(2, 2, true),
            SgdMomentum::new(1.0, 0.0),
            LrSchedule::Constant { lr: 0.1 },
        );
        let recorder = Recorder::shared();
        trainer.set_trace_sink(recorder.clone());
        let mut w = Tensor::fill(Shape::vector(16), 1.0);
        let grads = vec![Tensor::fill(Shape::vector(16), 0.5); 4];
        let stats = trainer.step(&mut w, &grads).unwrap();

        let count = |category: SpanCategory, name: &str| {
            recorder
                .span_totals()
                .iter()
                .filter(|t| t.category == category && t.name == name)
                .map(|t| t.count)
                .sum::<u64>()
        };
        assert_eq!(count(SpanCategory::Step, "train-step"), 1);
        assert_eq!(count(SpanCategory::Optimizer, "sharded-weight-update"), 1);
        assert_eq!(count(SpanCategory::Collective, "2d-all-reduce"), 1);
        assert!(
            !recorder.link_summaries().is_empty(),
            "link events recorded"
        );
        // The step span must cover the whole simulated step.
        let step_total = recorder
            .span_totals()
            .into_iter()
            .find(|t| t.category == SpanCategory::Step)
            .unwrap();
        assert!((step_total.total_seconds - stats.comm_seconds).abs() < 1e-12);

        // Detaching restores the silent path.
        trainer.clear_trace_sink();
        let before = recorder.len();
        trainer.step(&mut w, &grads).unwrap();
        assert_eq!(recorder.len(), before, "detached sink must see nothing");
    }

    #[test]
    fn projected_overlap_stays_within_the_resource_bounds() {
        let trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(8, 8, true),
            SgdMomentum::new(1.0, 0.0),
            LrSchedule::Constant { lr: 0.1 },
        );
        let compute = 5.0e-3;
        let serial = trainer.projected_overlap(compute, 334_000_000, 1).unwrap();
        let overlapped = trainer.projected_overlap(compute, 334_000_000, 8).unwrap();
        let comm = overlapped.comm_seconds();
        let m = overlapped.makespan.seconds();
        assert!(m >= compute.max(comm) * (1.0 - 1e-12));
        assert!(m <= (compute + comm) * (1.0 + 1e-12));
        // Bucketing exposes overlap the single-shot schedule cannot.
        assert!(
            m < serial.makespan.seconds(),
            "{m} vs {}",
            serial.makespan.seconds()
        );
    }

    #[test]
    fn chip_loss_drops_replica_renormalizes_and_retries() {
        use multipod_trace::{Recorder, TraceEvent};
        let n = 16usize;
        let elems = 64usize;
        let mut rng = TensorRng::seed(11);
        let mut w = rng.uniform(Shape::vector(elems), -1.0, 1.0);
        let mut w_ref = w.clone();
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(4, 4, true),
            SgdMomentum::new(1.0, 0.0),
            LrSchedule::Constant { lr: 0.1 },
        );
        let recorder = Recorder::shared();
        trainer.set_trace_sink(recorder.clone());
        let lost = trainer.network_mut().mesh().chips().nth(5).unwrap();
        trainer.network_mut().fail_chip(lost, SimTime::ZERO);

        let grads: Vec<Tensor> = (0..n)
            .map(|_| rng.uniform(Shape::vector(elems), -0.1, 0.1))
            .collect();
        let stats = trainer.step(&mut w, &grads).unwrap();
        assert_eq!(stats.retries, 1, "one preflight failure, one re-plan");
        assert_eq!(stats.dead_replicas, 1);
        assert!(stats.degraded);
        assert_eq!(trainer.dead_replicas(), vec![5]);
        assert!(stats.comm_seconds > 0.0);

        // The update must equal single-node SGD on the survivors' gradient
        // sum renormalized by n / survivors.
        let survivor_grads: Vec<Tensor> = grads
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 5)
            .map(|(_, g)| g.clone())
            .collect();
        let renorm = Tensor::sum_all(&survivor_grads)
            .unwrap()
            .scale(n as f32 / (n - 1) as f32);
        let mut reference = SgdMomentum::new(0.1, 0.0);
        reference.step(0, &mut w_ref, &renorm).unwrap();
        assert!(
            w.max_abs_diff(&w_ref) < 1e-5,
            "renormalized survivor update: {}",
            w.max_abs_diff(&w_ref)
        );

        let fault_names: Vec<String> = recorder
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Span(s) if s.category == SpanCategory::Fault => Some(s.name),
                _ => None,
            })
            .collect();
        for expected in ["chip-down", "replica-lost", "step-retry", "degraded-update"] {
            assert!(
                fault_names.contains(&expected.to_string()),
                "missing fault span {expected:?} in {fault_names:?}"
            );
        }
    }

    #[test]
    fn rollback_policy_escalates_chip_loss_instead_of_absorbing() {
        use multipod_trace::{Recorder, TraceEvent};
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(4, 4, true),
            SgdMomentum::new(1.0, 0.0),
            LrSchedule::Constant { lr: 0.1 },
        )
        .with_fault_policy(FaultPolicy {
            recovery: RecoveryMode::Rollback,
            ..FaultPolicy::default()
        });
        let recorder = Recorder::shared();
        trainer.set_trace_sink(recorder.clone());
        let lost = trainer.network_mut().mesh().chips().nth(5).unwrap();
        trainer.network_mut().fail_chip(lost, SimTime::ZERO);

        let mut w = Tensor::fill(Shape::vector(16), 1.0);
        let w_before = w.clone();
        let grads = vec![Tensor::fill(Shape::vector(16), 0.5); 16];
        assert!(matches!(
            trainer.step(&mut w, &grads),
            Err(CollectiveError::Network(_))
        ));
        // The dead set is updated for the caller, but neither weights nor
        // the step counter advanced — the rollback layer owns recovery.
        assert_eq!(trainer.dead_replicas(), vec![5]);
        assert_eq!(w, w_before);
        assert_eq!(trainer.current_step(), 0);
        let escalated = recorder.events().into_iter().any(|e| {
            matches!(e, TraceEvent::Span(s)
                if s.category == SpanCategory::Fault && s.name == "rollback-required")
        });
        assert!(escalated, "rollback-required span must be emitted");

        // After the (external) restore, the survivor mesh steps fine.
        trainer.rollback_to(0);
        trainer.step(&mut w, &grads).unwrap();
        assert_eq!(trainer.current_step(), 1);
    }

    #[test]
    fn unroutable_mesh_exhausts_retries_with_typed_error() {
        // Non-torus 1-wide column: failing a middle link partitions the
        // chain without isolating any single chip, so no replica can be
        // dropped and every re-plan fails.
        let mut trainer = DataParallelTrainer::new(
            MultipodConfig::mesh(1, 4, false),
            SgdMomentum::new(1.0, 0.0),
            LrSchedule::Constant { lr: 0.1 },
        )
        .with_fault_policy(FaultPolicy {
            max_retries: 2,
            backoff_seconds: 1e-3,
            ..FaultPolicy::default()
        });
        let chips: Vec<ChipId> = trainer.network_mut().mesh().chips().collect();
        trainer
            .network_mut()
            .fail_link(chips[1], chips[2], SimTime::ZERO);
        let mut w = Tensor::fill(Shape::vector(16), 1.0);
        let grads = vec![Tensor::fill(Shape::vector(16), 0.5); 4];
        assert!(matches!(
            trainer.step(&mut w, &grads),
            Err(CollectiveError::Network(_))
        ));
        assert!(trainer.dead_replicas().is_empty(), "no chip was isolated");
    }

    #[test]
    fn detoured_step_is_degraded_slower_and_numerically_identical() {
        let n = 8usize;
        let elems = 64usize;
        let mut rng = TensorRng::seed(12);
        let grads: Vec<Tensor> = (0..n)
            .map(|_| rng.uniform(Shape::vector(elems), -0.1, 0.1))
            .collect();
        let w0 = rng.uniform(Shape::vector(elems), -1.0, 1.0);

        let run = |fail: bool| {
            let mut trainer = DataParallelTrainer::new(
                MultipodConfig::mesh(2, 4, true),
                SgdMomentum::new(1.0, 0.0),
                LrSchedule::Constant { lr: 0.1 },
            );
            if fail {
                let ring = trainer.network_mut().mesh().y_ring(0);
                let a = *ring.members().last().unwrap();
                let b = ring.members()[0];
                trainer.network_mut().fail_link(a, b, SimTime::ZERO);
            }
            let mut w = w0.clone();
            let stats = trainer.step(&mut w, &grads).unwrap();
            (w, stats)
        };
        let (w_ok, s_ok) = run(false);
        let (w_deg, s_deg) = run(true);
        assert!(!s_ok.degraded);
        assert!(s_deg.degraded, "detoured wrap edge must flag degradation");
        assert_eq!(s_deg.retries, 0, "routable mesh needs no retry");
        assert_eq!(s_deg.dead_replicas, 0);
        assert_eq!(w_ok, w_deg, "detours must not change numerics");
        assert!(
            s_deg.comm_seconds > s_ok.comm_seconds,
            "detour must cost simulated time: {} vs {}",
            s_deg.comm_seconds,
            s_ok.comm_seconds
        );
    }
}
