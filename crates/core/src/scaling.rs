//! Chip-count sweeps (Figures 5–8 and 11).

use serde::{Deserialize, Serialize};

use multipod_models::Workload;

use crate::executor::{Executor, Preset, Report};
use crate::step::StepOptions;

/// Why a sweep request could not produce a curve.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepError {
    /// The caller passed no sweep points at all; every accessor on a
    /// curve needs at least a baseline point.
    EmptySweep,
    /// Chip counts must strictly ascend so speedups-over-first make
    /// sense.
    UnorderedChipCounts {
        /// The offending adjacent pair.
        previous: u32,
        /// The value that failed to ascend past `previous`.
        next: u32,
    },
    /// Model-parallel sweeps must start at 1 core (the speedup baseline).
    MissingBaseline {
        /// The first core count the caller passed.
        first: u32,
    },
    /// The workload has no representative model-parallel graph.
    DataParallelWorkload {
        /// Workload name.
        workload: String,
    },
    /// A sweep point's step model failed (stringified
    /// [`crate::step::StepError`], which keeps this enum `Eq`).
    Step {
        /// The chip count whose step failed.
        chips: u32,
        /// The underlying step error, rendered.
        message: String,
    },
    /// A sweep point's analytic workload model rejected the
    /// configuration (stringified [`multipod_models::ModelError`],
    /// which keeps this enum `Eq`).
    Model {
        /// The underlying model error, rendered.
        message: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::EmptySweep => write!(f, "sweep needs at least one chip count"),
            SweepError::UnorderedChipCounts { previous, next } => {
                write!(f, "chip counts must ascend: {previous} then {next}")
            }
            SweepError::MissingBaseline { first } => {
                write!(f, "model-parallel sweep must start at 1 core, got {first}")
            }
            SweepError::DataParallelWorkload { workload } => {
                write!(f, "workload {workload:?} has no model-parallel graph")
            }
            SweepError::Step { chips, message } => {
                write!(f, "sweep point at {chips} chips failed: {message}")
            }
            SweepError::Model { message } => {
                write!(f, "sweep workload model rejected the config: {message}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// One point of a scaling sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Chips at this point.
    pub chips: u32,
    /// The full simulated report.
    pub report: Report,
}

/// A scaling curve over chip counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalingCurve {
    /// Sweep points, ascending in chips.
    pub points: Vec<ScalePoint>,
}

impl ScalingCurve {
    /// Sweeps a workload across chip counts with default options.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SweepError`] when `chip_counts` is empty (the
    /// curve would have no baseline point) or not strictly ascending.
    pub fn sweep(workload: &Workload, chip_counts: &[u32]) -> Result<ScalingCurve, SweepError> {
        if chip_counts.is_empty() {
            return Err(SweepError::EmptySweep);
        }
        if let Some(w) = chip_counts.windows(2).find(|w| w[0] >= w[1]) {
            return Err(SweepError::UnorderedChipCounts {
                previous: w[0],
                next: w[1],
            });
        }
        let points = chip_counts
            .iter()
            .map(|&chips| {
                let preset = Preset {
                    workload: workload.clone(),
                    chips,
                    framework: multipod_framework::FrameworkKind::TensorFlow,
                    options: StepOptions::default(),
                };
                let report = Executor::new(preset).run().map_err(|e| SweepError::Step {
                    chips,
                    message: e.to_string(),
                })?;
                Ok(ScalePoint { chips, report })
            })
            .collect::<Result<Vec<_>, SweepError>>()?;
        Ok(ScalingCurve { points })
    }

    /// End-to-end speedup of each point over the first (Figures 5/7/11).
    pub fn end_to_end_speedups(&self) -> Vec<(u32, f64)> {
        let base = self.points[0].report.end_to_end_minutes();
        self.points
            .iter()
            .map(|p| (p.chips, base / p.report.end_to_end_minutes()))
            .collect()
    }

    /// Throughput speedup of each point over the first (Figure 5's second
    /// series).
    pub fn throughput_speedups(&self) -> Vec<(u32, f64)> {
        let base = self.points[0].report.throughput();
        self.points
            .iter()
            .map(|p| (p.chips, p.report.throughput() / base))
            .collect()
    }

    /// The ideal (linear) speedup at each point, for reference lines.
    pub fn ideal_speedups(&self) -> Vec<(u32, f64)> {
        let base = self.points[0].chips as f64;
        self.points
            .iter()
            .map(|p| (p.chips, p.chips as f64 / base))
            .collect()
    }

    /// Per-point (compute seconds, all-reduce seconds) — the stacked areas
    /// of Figures 6 and 8.
    pub fn step_time_breakdown(&self) -> Vec<(u32, f64, f64)> {
        self.points
            .iter()
            .map(|p| {
                (
                    p.chips,
                    p.report.step.compute
                        + p.report.step.model_parallel_comm
                        + p.report.step.weight_update,
                    p.report.step.gradient_comm.total(),
                )
            })
            .collect()
    }
}

/// The paper's standard sweep: 16 to `max` chips by powers of two.
pub fn standard_chip_counts(max: u32) -> Vec<u32> {
    let mut counts = Vec::new();
    let mut c = 16u32;
    while c <= max {
        counts.push(c);
        c *= 2;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_models::catalog;

    #[test]
    fn resnet_throughput_scales_better_than_end_to_end() {
        // Fig. 5: "the throughput speedup is closer to ideal scaling than
        // the end-to-end speedup" (epoch count doubles at large batch).
        let curve = ScalingCurve::sweep(&catalog::resnet50(), &standard_chip_counts(4096)).unwrap();
        let e2e = curve.end_to_end_speedups();
        let thr = curve.throughput_speedups();
        let last = e2e.len() - 1;
        assert!(thr[last].1 > e2e[last].1, "thr={thr:?} e2e={e2e:?}");
        // Both improve monotonically up to the multipod.
        assert!(e2e[last].1 > e2e[last / 2].1);
    }

    #[test]
    fn bert_scales_through_4096_chips() {
        // Fig. 7: BERT shows the highest scaling 16 → 4096.
        let curve = ScalingCurve::sweep(&catalog::bert(), &standard_chip_counts(4096)).unwrap();
        let e2e = curve.end_to_end_speedups();
        let last = e2e.last().unwrap();
        assert_eq!(last.0, 4096);
        // 256x more chips: well past 30x end-to-end.
        assert!(last.1 > 30.0, "bert speedup at 4096 = {}", last.1);
    }

    #[test]
    fn breakdown_series_shapes_match_fig6() {
        let curve = ScalingCurve::sweep(&catalog::resnet50(), &standard_chip_counts(4096)).unwrap();
        let rows = curve.step_time_breakdown();
        let (first_compute, first_comm) = (rows[0].1, rows[0].2);
        let (last_compute, last_comm) = (rows[rows.len() - 1].1, rows[rows.len() - 1].2);
        // Compute keeps decreasing; comm is ~flat.
        assert!(first_compute > 3.0 * last_compute);
        assert!(last_comm > 0.2 * first_comm && last_comm < 5.0 * first_comm);
    }

    #[test]
    fn empty_and_unordered_sweeps_are_typed_errors() {
        assert_eq!(
            ScalingCurve::sweep(&catalog::resnet50(), &[]),
            Err(SweepError::EmptySweep)
        );
        assert_eq!(
            ScalingCurve::sweep(&catalog::resnet50(), &[64, 64]),
            Err(SweepError::UnorderedChipCounts {
                previous: 64,
                next: 64
            })
        );
    }

    #[test]
    fn bad_chip_counts_surface_as_step_sweep_errors() {
        let err = ScalingCurve::sweep(&catalog::resnet50(), &[16, 48]).unwrap_err();
        match err {
            SweepError::Step { chips, message } => {
                assert_eq!(chips, 48);
                assert!(message.contains("48"), "message={message}");
            }
            other => panic!("expected Step error, got {other:?}"),
        }
    }

    #[test]
    fn standard_counts_are_powers_of_two() {
        let counts = standard_chip_counts(4096);
        assert_eq!(counts.first(), Some(&16));
        assert_eq!(counts.last(), Some(&4096));
        assert!(counts.windows(2).all(|w| w[1] == 2 * w[0]));
    }
}
