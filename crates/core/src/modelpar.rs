//! Model-parallel speedup curves (Figure 9).
//!
//! For SSD, MaskRCNN and the Transformer, the paper plots the speedup of
//! one training step as the model-parallel tile grows from 1 to 8 cores.
//! Here the per-core compute comes from the SPMD-partitioned
//! representative graph (so partitioning imbalance/duplication is
//! captured) and the tile communication from the same program's
//! collectives — the speedup is sublinear exactly because communication
//! does not parallelize (§5: "The scaling is limited by communication
//! overhead introduced for partitioning and inefficiencies from smaller
//! dimensions after partitioning").

use serde::{Deserialize, Serialize};

use multipod_models::{TpuV3, Workload};
use multipod_simnet::NetworkConfig;

use crate::graphs;
use crate::scaling::SweepError;

/// One point of the Figure-9 curves.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelParallelPoint {
    /// Cores in the model-parallel tile.
    pub cores: u32,
    /// Per-step time at this tile width, seconds.
    pub step_time: f64,
    /// Speedup over the 1-core step.
    pub speedup: f64,
}

/// Sweeps tile widths for one workload.
///
/// `per_replica_batch` is the number of samples one replica processes per
/// step (e.g. 1 for the Transformer at the multipod scale).
///
/// # Errors
///
/// Returns a typed [`SweepError`] when `cores_list` is empty, does not
/// start at the 1-core baseline, or the workload is purely data-parallel
/// (no representative model-parallel graph).
pub fn speedup_curve(
    workload: &Workload,
    per_replica_batch: f64,
    cores_list: &[u32],
) -> Result<Vec<ModelParallelPoint>, SweepError> {
    match cores_list.first() {
        None => return Err(SweepError::EmptySweep),
        Some(&first) if first != 1 => return Err(SweepError::MissingBaseline { first }),
        Some(_) => {}
    }
    let tpu = TpuV3::new();
    let cfg = NetworkConfig::tpu_v3();
    let points: Vec<(u32, f64)> = cores_list
        .iter()
        .map(|&cores| {
            let rep = graphs::representative(workload, cores as usize).ok_or_else(|| {
                SweepError::DataParallelWorkload {
                    workload: workload.name.to_string(),
                }
            })?;
            // Compute: partitioned per-core FLOPs, with utilization
            // degrading as the per-core work shrinks.
            let rep_flops = rep.flops_per_core_per_sample(cores as usize) * per_replica_batch;
            // Scale representative FLOPs to the full model's budget.
            let full_flops_1 = graphs::representative(workload, 1)
                .ok_or_else(|| SweepError::DataParallelWorkload {
                    workload: workload.name.to_string(),
                })?
                .flops_per_core_per_sample(1);
            let scale = workload.flops_per_sample / full_flops_1;
            let flops = rep_flops * scale;
            // Partition-efficiency discount: √(cores) rather than cores
            // (tiles keep large local shapes but lose peak to small
            // post-partition dimensions).
            let eff = workload
                .efficiency
                .at((per_replica_batch / (cores as f64).sqrt()).max(1e-3))
                .map_err(|e| SweepError::Model {
                    message: e.to_string(),
                })?;
            let compute = tpu.step_overhead + flops / (tpu.peak_matmul_flops / 2.0 * eff);
            // Tile communication: bytes and collective count from the
            // partitioned program.
            let comm = if cores > 1 {
                let bytes = rep.comm_bytes_per_core_per_sample(cores as usize)
                    * per_replica_batch
                    * workload.grad_precision.bytes() as f64
                    / 4.0;
                let collectives = rep.collectives_per_step(cores as usize);
                collectives * (cfg.message_overhead + cfg.hop_latency) + bytes / cfg.link_bandwidth
            } else {
                0.0
            };
            Ok((cores, compute + comm))
        })
        .collect::<Result<_, SweepError>>()?;
    let base = points[0].1;
    Ok(points
        .into_iter()
        .map(|(cores, step_time)| ModelParallelPoint {
            cores,
            step_time,
            speedup: base / step_time,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_models::catalog;

    #[test]
    fn transformer_reaches_paper_speedup_at_4_cores() {
        // §5: "The transformer model also achieves comparable speedup of
        // 2.3× on four TPU-v3 cores."
        let curve = speedup_curve(&catalog::transformer(), 1.0, &[1, 2, 4]).unwrap();
        let at4 = curve.last().unwrap();
        assert_eq!(at4.cores, 4);
        assert!(
            (1.6..3.4).contains(&at4.speedup),
            "transformer 4-core speedup = {}",
            at4.speedup
        );
    }

    #[test]
    fn spatial_models_speed_up_through_8_cores() {
        for w in [catalog::ssd(), catalog::maskrcnn()] {
            let curve = speedup_curve(&w, 1.0, &[1, 2, 4, 8]).unwrap();
            // Monotone but sublinear.
            for pair in curve.windows(2) {
                assert!(pair[1].speedup > pair[0].speedup, "{}: {curve:?}", w.name);
            }
            let at8 = curve.last().unwrap().speedup;
            assert!(at8 > 1.5 && at8 < 8.0, "{}: speedup at 8 = {at8}", w.name);
        }
    }

    #[test]
    fn speedup_is_sublinear_due_to_comm() {
        let curve = speedup_curve(&catalog::ssd(), 4.0, &[1, 2, 4, 8]).unwrap();
        let at8 = curve.last().unwrap().speedup;
        assert!(at8 < 7.0, "comm must make 8-core speedup sublinear: {at8}");
    }

    #[test]
    fn data_parallel_models_are_rejected_with_typed_error() {
        assert_eq!(
            speedup_curve(&catalog::bert(), 1.0, &[1, 2]),
            Err(SweepError::DataParallelWorkload {
                workload: "BERT".to_string()
            })
        );
    }

    #[test]
    fn empty_and_baseline_less_sweeps_are_typed_errors() {
        assert_eq!(
            speedup_curve(&catalog::ssd(), 1.0, &[]),
            Err(SweepError::EmptySweep)
        );
        assert_eq!(
            speedup_curve(&catalog::ssd(), 1.0, &[2, 4]),
            Err(SweepError::MissingBaseline { first: 2 })
        );
    }
}
