//! Ablations of the paper's design choices.
//!
//! DESIGN.md calls out three load-bearing optimizations; each gets a
//! measurable on/off comparison:
//!
//! * the **2-D Y-then-X gradient summation** (§3.3) vs a single 1-D snake
//!   ring over all chips;
//! * **bfloat16 summation payloads** (§3.3, §4.1, §4.3) vs f32;
//! * **weight-update sharding** (§3.2) vs replicated updates (see also
//!   `repro_wus`).

use serde::{Deserialize, Serialize};

use multipod_collectives::timing::RingCosts;
use multipod_collectives::twod::two_dim_all_reduce_time;
use multipod_collectives::{CollectiveError, Precision};
use multipod_models::Workload;
use multipod_simnet::{Network, NetworkConfig};
use multipod_topology::{Multipod, MultipodConfig};

use crate::step::{step_breakdown, StepError, StepOptions};

/// One row of the 1-D vs 2-D summation comparison.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SummationRow {
    /// Chips in the slice.
    pub chips: u32,
    /// Single snake-ring all-reduce time, seconds.
    pub one_dim: f64,
    /// 2-D Y-then-X all-reduce time, seconds.
    pub two_dim: f64,
}

impl SummationRow {
    /// How much faster the 2-D schedule is.
    pub fn speedup(&self) -> f64 {
        self.one_dim / self.two_dim
    }
}

/// Times the all-reduce of `elems` gradient elements under both
/// schedules across slice sizes.
///
/// The 1-D ring has `chips − 1` latency-bound steps, so its time explodes
/// with scale while the 2-D schedule pays `y_len + x_len` steps — the
/// quantitative argument for §3.3.
///
/// # Errors
///
/// Propagates the `CollectiveError` (a typed `Network` routing failure)
/// instead of panicking when a slice's rings do not route — which cannot
/// happen for the freshly-built healthy meshes used here, but keeps the
/// degraded-mesh discipline of `multipod-collectives`.
pub fn summation_ablation(
    elems: usize,
    precision: Precision,
    chip_counts: &[u32],
) -> Result<Vec<SummationRow>, CollectiveError> {
    chip_counts
        .iter()
        .map(|&chips| {
            let net = Network::new(
                Multipod::new(MultipodConfig::slice(chips)),
                NetworkConfig::tpu_v3(),
            );
            let snake = RingCosts::from_ring(&net, &net.mesh().snake_ring(), 1)?;
            let one_dim = snake.all_reduce_time(elems, precision, true);
            let two_dim = two_dim_all_reduce_time(&net, elems, precision, 1)?.total();
            Ok(SummationRow {
                chips,
                one_dim,
                two_dim,
            })
        })
        .collect()
}

/// One row of the payload-precision comparison.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRow {
    /// Chips in the slice.
    pub chips: u32,
    /// f32-payload all-reduce time, seconds.
    pub f32_time: f64,
    /// bf16-payload all-reduce time, seconds.
    pub bf16_time: f64,
}

/// Times the 2-D all-reduce at both payload precisions.
///
/// # Errors
///
/// Propagates routing failures as a typed `CollectiveError` (see
/// [`summation_ablation`]).
pub fn precision_ablation(
    elems: usize,
    chip_counts: &[u32],
) -> Result<Vec<PrecisionRow>, CollectiveError> {
    chip_counts
        .iter()
        .map(|&chips| {
            let net = Network::new(
                Multipod::new(MultipodConfig::slice(chips)),
                NetworkConfig::tpu_v3(),
            );
            Ok(PrecisionRow {
                chips,
                f32_time: two_dim_all_reduce_time(&net, elems, Precision::F32, 1)?.total(),
                bf16_time: two_dim_all_reduce_time(&net, elems, Precision::Bf16, 1)?.total(),
            })
        })
        .collect()
}

/// One row of the weight-update-sharding comparison.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WusRow {
    /// Chips in the slice.
    pub chips: u32,
    /// Step time with the replicated update, seconds.
    pub replicated_step: f64,
    /// Step time with the sharded update, seconds.
    pub sharded_step: f64,
    /// Update share of the replicated step.
    pub replicated_update_share: f64,
}

/// Sweeps weight-update sharding on/off for a workload.
///
/// # Errors
///
/// Propagates the [`StepError`] of a failing sweep point (e.g. a
/// non-power-of-two chip count) instead of panicking.
pub fn wus_ablation(workload: &Workload, chip_counts: &[u32]) -> Result<Vec<WusRow>, StepError> {
    chip_counts
        .iter()
        .map(|&chips| {
            let sharded = step_breakdown(workload, chips, &StepOptions::default())?;
            let replicated = step_breakdown(
                workload,
                chips,
                &StepOptions {
                    weight_update_sharding: false,
                    ..Default::default()
                },
            )?;
            Ok(WusRow {
                chips,
                replicated_step: replicated.total(),
                sharded_step: sharded.total(),
                replicated_update_share: replicated.weight_update / replicated.total(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_models::catalog;

    #[test]
    fn two_dim_schedule_wins_and_the_gap_grows_with_scale() {
        let rows = summation_ablation(25_600_000, Precision::F32, &[64, 1024, 4096]).unwrap();
        for r in &rows {
            assert!(
                r.speedup() > 1.0,
                "2-D must beat the snake at {} chips: {r:?}",
                r.chips
            );
        }
        // The 1-D ring is latency-bound: its disadvantage grows with
        // chip count.
        assert!(rows[2].speedup() > 2.0 * rows[0].speedup(), "{rows:?}");
        // At the multipod the snake is catastrophic (thousands of
        // α-latency steps).
        assert!(rows[2].speedup() > 4.0, "{rows:?}");
    }

    #[test]
    fn bf16_halves_bandwidth_dominated_cost() {
        let rows = precision_ablation(334_000_000, &[256, 4096]).unwrap();
        for r in &rows {
            let ratio = r.bf16_time / r.f32_time;
            assert!(
                (0.45..0.95).contains(&ratio),
                "bf16 must cut summation time at {} chips: {ratio}",
                r.chips
            );
        }
        // More bandwidth-dominated at small scale (larger per-ring
        // payloads) → ratio closer to 0.5.
        assert!(
            rows[0].bf16_time / rows[0].f32_time <= rows[1].bf16_time / rows[1].f32_time + 0.05
        );
    }

    #[test]
    fn wus_matters_most_at_small_per_chip_batches() {
        let mut bert = catalog::bert();
        bert.max_per_core_batch = 4;
        let rows = wus_ablation(&bert, &[256, 512, 1024]).unwrap();
        for r in &rows {
            assert!(r.sharded_step < r.replicated_step, "{r:?}");
            assert!(r.replicated_update_share > 0.03, "{r:?}");
        }
    }

    #[test]
    fn wus_ablation_rejects_bad_chip_counts() {
        let err = wus_ablation(&catalog::bert(), &[256, 300]).unwrap_err();
        assert_eq!(err, StepError::InvalidSliceShape { chips: 300 });
    }
}
