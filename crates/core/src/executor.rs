//! End-to-end execution: init + train + eval.

use serde::{Deserialize, Serialize};

use multipod_collectives::timing::RingCosts;
use multipod_framework::{profiles, FrameworkKind, InitModel};
use multipod_metrics::accuracy::{combine_time, MetricCombine};
use multipod_metrics::placement::{simulate_evals, EvalPlacement};
use multipod_models::{TpuV3, Workload};
use multipod_simnet::{Network, NetworkConfig};
use multipod_topology::{Multipod, MultipodConfig};

use crate::overlap::{overlapped_step, OverlapConfig, OverlappedStep};
use crate::step::{step_breakdown, StepBreakdown, StepError, StepOptions};

/// A benchmark configuration: what Table 1 calls a row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Preset {
    /// The benchmark.
    pub workload: Workload,
    /// TPU-v3 chips.
    pub chips: u32,
    /// Which control plane drives the machine.
    pub framework: FrameworkKind,
    /// Optimization toggles.
    pub options: StepOptions,
}

/// The outcome of simulating one benchmark run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Benchmark name.
    pub name: String,
    /// Chips used.
    pub chips: u32,
    /// Framework used.
    pub framework: FrameworkKind,
    /// Initialization seconds (Table 2; excluded from the MLPerf run
    /// time).
    pub init_seconds: f64,
    /// Steps to target quality.
    pub steps: u64,
    /// Global batch size.
    pub global_batch: u32,
    /// Per-step breakdown.
    pub step: StepBreakdown,
    /// Training seconds (steps × step time).
    pub train_seconds: f64,
    /// Evaluation seconds added to the run.
    pub eval_seconds: f64,
}

impl Report {
    /// The MLPerf "time to train" in minutes (init excluded, evals
    /// included, per the MLPerf timing rules).
    pub fn end_to_end_minutes(&self) -> f64 {
        (self.train_seconds + self.eval_seconds) / 60.0
    }

    /// Samples per second during training. A zero-length step has no
    /// throughput: this returns 0.0 rather than Inf/NaN.
    pub fn throughput(&self) -> f64 {
        let total = self.step.total();
        if total == 0.0 {
            return 0.0;
        }
        self.global_batch as f64 / total
    }
}

/// Runs presets to reports.
#[derive(Clone, Debug)]
pub struct Executor {
    preset: Preset,
    init_model: InitModel,
}

impl Executor {
    /// An executor with calibrated init constants.
    pub fn new(preset: Preset) -> Executor {
        Executor {
            preset,
            init_model: InitModel::calibrated(),
        }
    }

    /// Simulates the run and records a span timeline of its first steps
    /// (up to `traced_steps`) into `sink`, laid out back to back in
    /// simulated time via [`crate::step::record_step_trace`].
    pub fn run_traced(
        &self,
        sink: &dyn multipod_trace::TraceSink,
        traced_steps: u64,
    ) -> Result<Report, StepError> {
        let report = self.run()?;
        let mut t = multipod_simnet::SimTime::ZERO;
        for s in 0..traced_steps.min(report.steps) {
            t = crate::step::record_step_trace(sink, &report.name, &report.step, s + 1, t);
        }
        Ok(report)
    }

    /// Like [`Executor::run_traced`], but also records each traced step's
    /// time breakdown into `telemetry`, so one call feeds both the
    /// critical-path profiler (via the span timeline) and the metrics
    /// registry.
    pub fn run_observed(
        &self,
        sink: &dyn multipod_trace::TraceSink,
        telemetry: &multipod_telemetry::Telemetry,
        traced_steps: u64,
    ) -> Result<Report, StepError> {
        let report = self.run()?;
        let mut t = multipod_simnet::SimTime::ZERO;
        for s in 0..traced_steps.min(report.steps) {
            t = crate::step::record_step_trace(sink, &report.name, &report.step, s + 1, t);
            crate::step::record_step_telemetry(telemetry, &report.step);
        }
        Ok(report)
    }

    /// Simulates the run.
    pub fn run(&self) -> Result<Report, StepError> {
        let p = &self.preset;
        let w = &p.workload;
        let batch = w.global_batch(p.chips);
        let steps = w
            .convergence
            .steps_for_batch(batch)
            .map_err(StepError::Model)?;
        let step = step_breakdown(w, p.chips, &p.options)?;
        let train_seconds = steps as f64 * step.total();
        let profile = profiles::by_name(w.name).map_err(StepError::Framework)?;
        let init_seconds = self.init_model.init_seconds(p.framework, &profile, p.chips);
        let eval_seconds = eval_seconds(w, p.chips, p.framework, train_seconds)?;
        Ok(Report {
            name: w.name.to_string(),
            chips: p.chips,
            framework: p.framework,
            init_seconds,
            steps,
            global_batch: batch,
            step,
            train_seconds,
            eval_seconds,
        })
    }

    /// Schedules the preset's step as a deferred task graph
    /// ([`crate::overlap::overlapped_step`]) instead of the serial
    /// analytic sum — with `overlap.overlap` off, the result's makespan
    /// reproduces [`Executor::run`]'s step total bit for bit.
    pub fn run_overlapped(&self, overlap: &OverlapConfig) -> Result<OverlappedStep, StepError> {
        let p = &self.preset;
        overlapped_step(&p.workload, p.chips, &p.options, overlap)
    }
}

/// Evaluation overhead across a run: device-side eval compute plus
/// metric combination (§3.4) plus host-side metric work (COCO eval,
/// DLRM's AUC) under the framework's placement policy.
fn eval_seconds(
    workload: &Workload,
    chips: u32,
    framework: FrameworkKind,
    train_seconds: f64,
) -> Result<f64, StepError> {
    let tpu = TpuV3::new();
    let evals = workload.evals_per_run.max(1) as usize;
    // Device-side forward pass over the eval set at near-peak batch.
    let eff = workload
        .efficiency
        .at(workload.max_per_core_batch as f64)
        .map_err(StepError::Model)?;
    let fwd_flops = workload.eval_samples as f64 * workload.flops_per_sample / 3.0;
    let mut device_eval = fwd_flops / (chips as f64 * tpu.peak_matmul_flops * eff);
    if let Some(emb) = workload.embedding {
        device_eval += workload.eval_samples as f64 * emb.lookup_bytes_per_sample() as f64
            / (chips as f64 * tpu.hbm_bandwidth);
    }
    // Metric combination.
    let net = Network::new(
        Multipod::new(
            MultipodConfig::try_slice(chips).map_err(|_| StepError::InvalidSliceShape { chips })?,
        ),
        NetworkConfig::tpu_v3(),
    );
    let ring = RingCosts::from_ring(&net, &net.mesh().y_ring(0), 1)?;
    let workers = InitModel::workers(chips) as usize;
    let combine = match framework {
        FrameworkKind::TensorFlow => {
            combine_time(MetricCombine::CoordinatorGather, workers, 1.0e-4, &ring)
        }
        FrameworkKind::Jax => combine_time(MetricCombine::DeviceAllReduce, workers, 1.0e-4, &ring),
    };
    // Host-side metric computation.
    let host_metric_cost = match workload.name {
        // COCO eval per §4.4 (run on CPUs; SSD's is lighter — one stage,
        // boxes only).
        "SSD" => 2.0,
        "MaskRCNN" => 12.0,
        // §4.6: the custom multithreaded AUC takes ~2 s per call.
        "DLRM" => 2.0,
        _ => 0.2,
    };
    let placement = match framework {
        FrameworkKind::TensorFlow => EvalPlacement::Coordinator,
        FrameworkKind::Jax => EvalPlacement::RoundRobin { workers },
    };
    let interval = train_seconds / evals as f64;
    let timeline = simulate_evals(placement, evals, host_metric_cost, interval);
    // The coordinator computes every metric on the run's critical path
    // (the MLPerf clock cannot stop before the target metric is
    // verified); round-robin workers overlap all but the final one.
    let host_serial = match placement {
        EvalPlacement::Coordinator => evals as f64 * host_metric_cost,
        EvalPlacement::RoundRobin { .. } => host_metric_cost,
    };
    Ok(evals as f64 * (device_eval + combine) + timeline.stall + host_serial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn table1_headline_rows_land_near_the_paper() {
        // (preset, paper minutes, tolerance factor)
        let rows = [
            (presets::resnet50(4096), 0.48, 1.8),
            (presets::bert(4096), 0.39, 1.8),
            (presets::transformer(4096), 0.32, 2.0),
            (presets::ssd(4096), 0.46, 2.0),
            (presets::maskrcnn(512), 8.1, 2.0),
            (presets::dlrm(256), 2.4, 2.5),
        ];
        for (preset, paper, tol) in rows {
            let r = Executor::new(preset).run().unwrap();
            let ours = r.end_to_end_minutes();
            assert!(
                ours > paper / tol && ours < paper * tol,
                "{}: ours={ours:.3} min, paper={paper} (steps={}, step={:?})",
                r.name,
                r.steps,
                r.step
            );
        }
    }

    #[test]
    fn jax_and_tf_train_times_match_but_inits_differ() {
        // §4: "resulting in very similar step times as well as number of
        // convergence steps"; Table 2: very different init times.
        let tf = Executor::new(presets::bert(4096)).run().unwrap();
        let mut jax_preset = presets::bert(4096);
        jax_preset.framework = FrameworkKind::Jax;
        let jax = Executor::new(jax_preset).run().unwrap();
        assert!((tf.train_seconds - jax.train_seconds).abs() < 1e-9);
        assert!(tf.init_seconds > 2.0 * jax.init_seconds);
    }

    #[test]
    fn throughput_is_batch_over_step() {
        let r = Executor::new(presets::resnet50(1024)).run().unwrap();
        assert!((r.throughput() - r.global_batch as f64 / r.step.total()).abs() < 1e-6);
        assert!(
            r.throughput() > 1e5,
            "multipod ResNet should exceed 100k img/s"
        );
    }

    #[test]
    fn v06_to_v07_speedups_are_plausible() {
        // Table 1: ~2.6x for the benchmarks that moved from 1024 to 4096
        // chips.
        // Our model attributes less of the paper's 2.6x to software
        // (the v0.6 baseline also lacked input/compiler fixes we do not
        // model separately), so accept a wider band.
        for (v07, v06, lo, hi) in [
            (presets::resnet50(4096), presets::resnet50(1024), 1.2, 5.0),
            (
                presets::transformer(4096),
                presets::transformer(1024),
                1.2,
                5.0,
            ),
        ] {
            let new = Executor::new(v07).run().unwrap();
            let mut old_preset = v06;
            old_preset.options.weight_update_sharding = false;
            let old = Executor::new(old_preset).run().unwrap();
            let speedup = old.end_to_end_minutes() / new.end_to_end_minutes();
            assert!(
                (lo..hi).contains(&speedup),
                "{}: speedup={speedup}",
                new.name
            );
        }
    }

    #[test]
    fn zero_step_throughput_is_zero_not_inf() {
        let mut r = Executor::new(presets::resnet50(1024)).run().unwrap();
        r.step = StepBreakdown::default();
        assert_eq!(r.step.total(), 0.0);
        let tp = r.throughput();
        assert!(tp.is_finite(), "tp={tp}");
        assert_eq!(tp, 0.0);
    }

    #[test]
    fn invalid_chip_count_propagates_from_run() {
        let mut preset = presets::resnet50(1024);
        preset.chips = 100;
        let err = Executor::new(preset).run().unwrap_err();
        assert_eq!(
            err,
            crate::step::StepError::InvalidSliceShape { chips: 100 }
        );
    }

    #[test]
    fn overlapped_run_beats_the_serial_step() {
        let exec = Executor::new(presets::bert(4096));
        let serial = exec.run().unwrap();
        let overlapped = exec.run_overlapped(&OverlapConfig::default()).unwrap();
        assert!(overlapped.step_seconds() < serial.step.total());
        assert_eq!(
            overlapped.analytic.total().to_bits(),
            serial.step.total().to_bits()
        );
    }

    #[test]
    fn eval_overhead_is_a_minor_fraction_for_vision_models() {
        let r = Executor::new(presets::resnet50(4096)).run().unwrap();
        assert!(r.eval_seconds < r.train_seconds);
    }
}
