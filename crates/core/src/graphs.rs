//! Representative per-model HLO graphs.
//!
//! The model-parallel communication of a step (forward/backward
//! all-reduces for feature sharding, halo exchanges for spatial
//! partitioning, §3.1) is derived by actually *partitioning* a
//! representative layer of each model with the SPMD partitioner and
//! reading off its [`multipod_hlo::CommStats`] — the same mechanism the
//! paper's XLA pipeline uses, rather than hand-waved constants.
//!
//! A representative graph models one layer at one channel; the
//! [`ModelCommProfile`] scales it by layer count and channel multiplier.

use multipod_hlo::{HloBuilder, HloGraph, PartitionedProgram, Sharding, SpmdPartitioner};
use multipod_models::{ParallelismPlan, Workload};
use multipod_tensor::Shape;

/// Scaling constants that turn one representative layer into a full
/// model's per-step communication.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelCommProfile {
    /// Number of layers of the representative kind.
    pub layers: u32,
    /// Channel/head multiplier folded out of the rank-2 representative
    /// graph.
    pub channel_mult: u32,
    /// Forward + backward collective multiplier (backward re-runs the
    /// forward collectives and adds gradient-of-activation exchanges).
    pub fwd_bwd_mult: f64,
}

/// A representative layer graph plus its scaling profile.
#[derive(Debug)]
pub struct RepresentativeModel {
    /// The annotated single-layer graph.
    pub graph: HloGraph,
    /// Scale-out constants.
    pub profile: ModelCommProfile,
}

/// Builds the representative layer for a workload at a given
/// model-parallel width (`parts` cores), or `None` for pure data
/// parallelism.
///
/// # Panics
///
/// Panics when `parts` does not divide the representative dimensions
/// (all paper tile sizes — 1, 2, 4, 8 — divide them).
pub fn representative(workload: &Workload, parts: usize) -> Option<RepresentativeModel> {
    match workload.parallelism {
        ParallelismPlan::DataParallel => None,
        ParallelismPlan::FeatureSharded { .. } => Some(transformer_layer(parts, workload.name)),
        ParallelismPlan::SpatialSharded { .. } => Some(match workload.name {
            "MaskRCNN" => conv_layer(parts, 800, 1336, 52, 64),
            // SSD: 300x300 inputs (padded to a divisible 304).
            _ => conv_layer(parts, 304, 304, 34, 48),
        }),
    }
}

/// One Transformer feed-forward block with Shazeer-style feature
/// sharding: activations replicated, `W1` split on output features,
/// `W2` split on input features, partial matmul + all-reduce (§3.1).
fn transformer_layer(parts: usize, name: &str) -> RepresentativeModel {
    let tokens = 256; // per-sample sequence length
    let hidden = 1024;
    let ff = 4096;
    let mut b = HloBuilder::new();
    let x = b.parameter("x", Shape::of(&[tokens, hidden]), Sharding::Replicated);
    let w1 = b.parameter("w1", Shape::of(&[hidden, ff]), Sharding::split(1, parts));
    let w2 = b.parameter("w2", Shape::of(&[ff, hidden]), Sharding::split(0, parts));
    let h = b.matmul(x, w1).expect("w1 matmul");
    let h = b.relu(h).expect("relu");
    let y = b.matmul(h, w2).expect("w2 matmul"); // partial + all-reduce
                                                 // Invariant: `y` was just minted by this builder.
    let graph = b.build(vec![y]).expect("output id is fresh");
    let layers = if name == "Transformer" { 12 } else { 24 };
    RepresentativeModel {
        graph,
        profile: ModelCommProfile {
            layers,
            channel_mult: 1,
            fwd_bwd_mult: 3.0,
        },
    }
}

/// One spatially partitioned convolution: the image is split along its
/// height across the tile; the partitioner inserts a halo exchange.
fn conv_layer(
    parts: usize,
    height: usize,
    width: usize,
    layers: u32,
    channel_mult: u32,
) -> RepresentativeModel {
    let mut b = HloBuilder::new();
    let img = b.parameter(
        "img",
        Shape::of(&[height, width]),
        Sharding::split(0, parts),
    );
    let k = b.parameter("k", Shape::of(&[3, 3]), Sharding::Replicated);
    let y = b.conv2d_same(img, k).expect("conv");
    // Invariant: `y` was just minted by this builder.
    let graph = b.build(vec![y]).expect("output id is fresh");
    RepresentativeModel {
        graph,
        profile: ModelCommProfile {
            layers,
            channel_mult,
            fwd_bwd_mult: 3.0,
        },
    }
}

impl RepresentativeModel {
    /// Partitions the representative graph over `parts` cores.
    ///
    /// # Panics
    ///
    /// Panics if the annotated graph cannot be partitioned (it always can
    /// for the paper's tile widths).
    pub fn partition(&self, parts: usize) -> PartitionedProgram {
        SpmdPartitioner::new(parts)
            .partition(&self.graph)
            .expect("representative graph partitions")
    }

    /// Per-step model-parallel bytes sent by one core, for one sample.
    pub fn comm_bytes_per_core_per_sample(&self, parts: usize) -> f64 {
        let program = self.partition(parts);
        program.comm_stats().bytes_per_core as f64
            * self.profile.layers as f64
            * self.profile.channel_mult as f64
            * self.profile.fwd_bwd_mult
    }

    /// Per-step collective count on the critical path (per sample batch,
    /// not per sample — collectives batch over the replica's samples).
    pub fn collectives_per_step(&self, parts: usize) -> f64 {
        let program = self.partition(parts);
        program.comm_stats().total_collectives() as f64
            * self.profile.layers as f64
            * self.profile.fwd_bwd_mult
    }

    /// Per-core compute FLOPs for one sample (through the partitioned
    /// program, so imbalance/duplication from partitioning is captured).
    pub fn flops_per_core_per_sample(&self, parts: usize) -> f64 {
        let program = self.partition(parts);
        program.flops_per_core() as f64
            * self.profile.layers as f64
            * self.profile.channel_mult as f64
            * self.profile.fwd_bwd_mult
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_models::catalog;

    #[test]
    fn data_parallel_models_have_no_representative() {
        assert!(representative(&catalog::bert(), 4).is_none());
        assert!(representative(&catalog::resnet50(), 4).is_none());
    }

    #[test]
    fn transformer_layer_all_reduces() {
        let rep = representative(&catalog::transformer(), 4).unwrap();
        let program = rep.partition(4);
        assert!(program.comm_stats().all_reduces >= 1);
        assert_eq!(program.comm_stats().halo_exchanges, 0);
    }

    #[test]
    fn spatial_models_halo_exchange() {
        for w in [catalog::ssd(), catalog::maskrcnn()] {
            let rep = representative(&w, 4).unwrap();
            let program = rep.partition(4);
            assert!(
                program.comm_stats().halo_exchanges >= 1,
                "{} should halo-exchange",
                w.name
            );
            assert_eq!(program.comm_stats().all_reduces, 0);
        }
    }

    #[test]
    fn per_core_flops_shrink_with_parts() {
        let w = catalog::ssd();
        let f1 = representative(&w, 1).unwrap().flops_per_core_per_sample(1);
        let f8 = representative(&w, 8).unwrap().flops_per_core_per_sample(8);
        let ratio = f1 / f8;
        assert!((6.0..9.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn comm_bytes_grow_with_parts_for_feature_sharding() {
        let w = catalog::transformer();
        let b2 = representative(&w, 2)
            .unwrap()
            .comm_bytes_per_core_per_sample(2);
        let b4 = representative(&w, 4)
            .unwrap()
            .comm_bytes_per_core_per_sample(4);
        // The all-reduced activation is the same size; ring all-reduce
        // bytes per core are ~2x payload regardless of parts, so bytes do
        // not shrink with parts (communication does not parallelize —
        // the §5 scaling limit).
        assert!(b4 >= 0.9 * b2, "b2={b2} b4={b4}");
    }

    #[test]
    fn halo_bytes_do_not_scale_with_tile_rows() {
        let w = catalog::maskrcnn();
        let rep2 = representative(&w, 2).unwrap();
        let rep4 = representative(&w, 4).unwrap();
        let b2 = rep2.comm_bytes_per_core_per_sample(2);
        let b4 = rep4.comm_bytes_per_core_per_sample(4);
        // Halo width is fixed by the kernel; per-core halo bytes are
        // constant in the partition count.
        assert!((b2 / b4 - 1.0).abs() < 0.05, "b2={b2} b4={b4}");
    }
}
