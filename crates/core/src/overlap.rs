//! The overlapped step model: the analytic [`crate::step`] components
//! re-expressed as a deferred task graph and scheduled over the simnet
//! event engine, so independent work advances concurrently in sim-time.
//!
//! Three overlaps ride on the same scheduler:
//!
//! * **gradient summation behind backprop** — the payload is split into
//!   buckets ([`multipod_collectives::twod::bucketed_two_dim_all_reduce_time`])
//!   and bucket `i`'s Y reduce-scatter starts as soon as backprop segment
//!   `i` has produced its gradients, instead of after the whole backward
//!   pass;
//! * **input prefetch** — the host pipeline fetches the next batch under
//!   the same scheduler, racing the device instead of stalling it;
//! * **pipelined checkpoint saves** — PCIe shard writes start as their
//!   weights finish updating, hidden behind the rest of the step.
//!
//! With [`OverlapConfig::overlap`] off, the graph degenerates to a
//! dependency chain of [`TaskKind::Serial`] phases whose makespan
//! reproduces [`StepBreakdown::total`] **bit for bit** (the left-fold
//! order of the chain matches the analytic sum; see the differential
//! test in `tests/overlap_consistency.rs`).
//!
//! Because all collective phases share the single `Ici` resource and all
//! compute shares `Mxu`, any schedule obeys
//! `makespan ∈ [max(compute, comm), compute + comm + host + pcie]` —
//! the bound the proptests pin down.

use serde::{Deserialize, Serialize};

use multipod_collectives::twod::{bucket_sizes, bucketed_two_dim_all_reduce_time};
use multipod_models::{TpuV3, Workload};
use multipod_simnet::{Network, NetworkConfig};
use multipod_taskgraph::{Resource, SerialPhase, TaskGraph, TaskId, TaskKind, TaskSchedule};
use multipod_topology::{Multipod, MultipodConfig};

use crate::step::{self, StepBreakdown, StepError, StepOptions};

/// Pipelined checkpoint shards to hide behind the step.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointOverlap {
    /// Number of PCIe shard writes per step.
    pub shards: u32,
    /// Seconds per shard write (from the checkpoint cost model).
    pub seconds_per_shard: f64,
}

/// Knobs of the overlapped step model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverlapConfig {
    /// Gradient buckets: more buckets expose more overlap but pay more
    /// per-phase α; 1 bucket degenerates to the single-shot collective.
    pub buckets: u32,
    /// When false, build the serial reference chain instead — its
    /// makespan reproduces the analytic breakdown bit for bit.
    pub overlap: bool,
    /// Prefetch the next input batch concurrently with the device step
    /// (when false the forward pass waits for the fetch).
    pub prefetch_input: bool,
    /// Optional pipelined checkpoint saves on the PCIe resource.
    pub checkpoint: Option<CheckpointOverlap>,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig {
            buckets: 8,
            overlap: true,
            prefetch_input: true,
            checkpoint: None,
        }
    }
}

/// One step scheduled as a task graph, next to its analytic reference.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverlappedStep {
    /// The serial analytic breakdown the graph was built from.
    pub analytic: StepBreakdown,
    /// The executed schedule.
    pub schedule: TaskSchedule,
}

impl OverlappedStep {
    /// Scheduled step time (the makespan).
    pub fn step_seconds(&self) -> f64 {
        self.schedule.makespan.seconds()
    }

    /// MXU busy seconds.
    pub fn compute_seconds(&self) -> f64 {
        self.schedule.compute_seconds()
    }

    /// ICI busy seconds.
    pub fn comm_seconds(&self) -> f64 {
        self.schedule.comm_seconds()
    }

    /// Makespan over serial compute + comm: 1.0 when nothing overlaps,
    /// approaching `max(compute, comm) / (compute + comm)` at perfect
    /// overlap. Returns 0.0 (not NaN) for an empty schedule.
    pub fn overlap_ratio(&self) -> f64 {
        let serial = self.compute_seconds() + self.comm_seconds();
        if serial == 0.0 {
            return 0.0;
        }
        self.step_seconds() / serial
    }
}

/// Builds and runs the overlapped step for a workload on a `chips`-chip
/// slice of the default TPU-v3 multipod.
///
/// # Errors
///
/// [`StepError::InvalidSliceShape`] for a non-power-of-two chip count;
/// [`StepError::Collective`] when the cost model fails.
pub fn overlapped_step(
    workload: &Workload,
    chips: u32,
    options: &StepOptions,
    overlap: &OverlapConfig,
) -> Result<OverlappedStep, StepError> {
    overlapped_step_on(
        workload,
        chips,
        options,
        overlap,
        &TpuV3::new(),
        NetworkConfig::tpu_v3(),
    )
}

/// [`overlapped_step`] on an explicit machine and interconnect.
pub fn overlapped_step_on(
    workload: &Workload,
    chips: u32,
    options: &StepOptions,
    overlap: &OverlapConfig,
    tpu: &TpuV3,
    net_config: NetworkConfig,
) -> Result<OverlappedStep, StepError> {
    let analytic = step::step_breakdown_on(workload, chips, options, tpu, net_config)?;
    let graph = if overlap.overlap {
        overlapped_graph(workload, chips, options, overlap, &analytic, net_config)?
    } else {
        serial_graph(&analytic)?
    };
    Ok(OverlappedStep {
        analytic,
        schedule: graph.run(),
    })
}

/// The overlap-disabled reference: one [`TaskKind::Serial`] task per
/// analytic phase, chained by dependencies in [`StepBreakdown::total`]'s
/// summation order so the makespan left-folds to the identical bits.
fn serial_graph(b: &StepBreakdown) -> Result<TaskGraph, StepError> {
    let phases = [
        (SerialPhase::Compute, Resource::Mxu, b.compute),
        (
            SerialPhase::ModelParallelComm,
            Resource::Ici,
            b.model_parallel_comm,
        ),
        (
            SerialPhase::GradientComm,
            Resource::Ici,
            b.gradient_comm.total(),
        ),
        (SerialPhase::WeightUpdate, Resource::Mxu, b.weight_update),
        (SerialPhase::Embedding, Resource::Mxu, b.embedding),
        (SerialPhase::InputStall, Resource::Host, b.input_stall),
    ];
    let mut g = TaskGraph::new();
    let mut prev: Option<TaskId> = None;
    for (phase, resource, seconds) in phases {
        let deps: Vec<TaskId> = prev.into_iter().collect();
        prev = Some(g.add(TaskKind::Serial { phase }, resource, seconds, &deps)?);
    }
    Ok(g)
}

fn overlapped_graph(
    workload: &Workload,
    chips: u32,
    options: &StepOptions,
    overlap: &OverlapConfig,
    analytic: &StepBreakdown,
    net_config: NetworkConfig,
) -> Result<TaskGraph, StepError> {
    let mesh = Multipod::new(
        MultipodConfig::try_slice(chips).map_err(|_| StepError::InvalidSliceShape { chips })?,
    );
    let net = Network::new(mesh, net_config);
    let stride = step::effective_stride(workload, net.mesh());
    let grad_elems = (workload.params / stride as u64) as usize;
    let buckets = overlap.buckets.max(1) as usize;
    let bucket_costs = bucketed_two_dim_all_reduce_time(
        &net,
        grad_elems,
        workload.grad_precision,
        stride,
        buckets,
    )?;
    let elems = bucket_sizes(grad_elems, buckets);
    let total_elems = grad_elems.max(1) as f64;

    let batch = workload.global_batch(chips);
    let host = step::host_input_time(workload, chips, batch, options);

    let mut g = TaskGraph::new();

    // The next batch's fetch runs under the same scheduler; with
    // prefetch off, the forward pass waits for it (the analytic stall).
    let fetch = g.add(TaskKind::InputFetch, Resource::Host, host, &[])?;

    // Forward ≈ 1/3 of fwd+bwd MXU time, backward the rest, split into
    // one segment per bucket: bucket i's gradients materialize when
    // segment i retires. Model-parallel comm stays on the compute path —
    // it is interleaved with the layers and cannot hide behind the
    // gradient rings.
    let forward = analytic.compute / 3.0;
    let fwd_deps: Vec<TaskId> = if overlap.prefetch_input {
        Vec::new()
    } else {
        vec![fetch]
    };
    let fwd = g.add(TaskKind::Forward, Resource::Mxu, forward, &fwd_deps)?;
    let mpc = g.add(
        TaskKind::ModelParallelComm,
        Resource::Mxu,
        analytic.model_parallel_comm,
        &[fwd],
    )?;

    let segment = (analytic.compute - forward) / buckets as f64;
    let mut prev_bwd = mpc;
    let mut updates = Vec::with_capacity(buckets);
    for (i, cost) in bucket_costs.iter().enumerate() {
        let bucket = i as u32;
        let bwd = g.add(
            TaskKind::LayerBackprop { layer: bucket },
            Resource::Mxu,
            segment,
            &[prev_bwd],
        )?;
        prev_bwd = bwd;
        let yrs = g.add(
            TaskKind::reduce_scatter_y(bucket),
            Resource::Ici,
            cost.y_reduce_scatter,
            &[bwd],
        )?;
        let xrs = g.add(
            TaskKind::reduce_scatter_x(bucket),
            Resource::Ici,
            cost.x_reduce_scatter,
            &[yrs],
        )?;
        let update_seconds = analytic.weight_update * elems[i] as f64 / total_elems;
        if options.weight_update_sharding {
            // §3.2 order: update the reduce-scattered shard, then
            // all-gather the updated weights.
            let upd = g.add(
                TaskKind::OptimizerShardUpdate { bucket },
                Resource::Mxu,
                update_seconds,
                &[xrs],
            )?;
            let xag = g.add(
                TaskKind::all_gather_x(bucket),
                Resource::Ici,
                cost.x_all_gather,
                &[upd],
            )?;
            g.add(
                TaskKind::all_gather_y(bucket),
                Resource::Ici,
                cost.y_all_gather,
                &[xag],
            )?;
            updates.push(upd);
        } else {
            // Replicated update: every chip needs the full summed
            // gradient first.
            let xag = g.add(
                TaskKind::all_gather_x(bucket),
                Resource::Ici,
                cost.x_all_gather,
                &[xrs],
            )?;
            let yag = g.add(
                TaskKind::all_gather_y(bucket),
                Resource::Ici,
                cost.y_all_gather,
                &[xag],
            )?;
            let upd = g.add(
                TaskKind::OptimizerShardUpdate { bucket },
                Resource::Mxu,
                update_seconds,
                &[yag],
            )?;
            updates.push(upd);
        }
    }

    if analytic.embedding > 0.0 {
        g.add(
            TaskKind::Embedding,
            Resource::Mxu,
            analytic.embedding,
            &[prev_bwd],
        )?;
    }

    if let Some(ckpt) = overlap.checkpoint {
        let shards = ckpt.shards.max(1);
        for s in 0..shards {
            // Shard s covers the weights of bucket ⌊s·B/shards⌋; its
            // PCIe write starts as soon as that bucket's update retires.
            let b = (s as usize * buckets) / shards as usize;
            g.add(
                TaskKind::CheckpointSave { shard: s },
                Resource::Pcie,
                ckpt.seconds_per_shard,
                &[updates[b]],
            )?;
        }
    }

    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_models::catalog;

    #[test]
    fn serial_graph_reproduces_the_analytic_total_bit_for_bit() {
        let w = catalog::bert();
        let opts = StepOptions::default();
        let analytic = step::step_breakdown(&w, 128, &opts).unwrap();
        let cfg = OverlapConfig {
            overlap: false,
            ..Default::default()
        };
        let s = overlapped_step(&w, 128, &opts, &cfg).unwrap();
        assert_eq!(
            s.step_seconds().to_bits(),
            analytic.total().to_bits(),
            "serial schedule must left-fold to the analytic sum"
        );
    }

    #[test]
    fn overlap_hides_comm_behind_backprop() {
        let w = catalog::bert();
        let opts = StepOptions::default();
        let serial = overlapped_step(
            &w,
            4096,
            &opts,
            &OverlapConfig {
                overlap: false,
                ..Default::default()
            },
        )
        .unwrap();
        let overlapped = overlapped_step(&w, 4096, &opts, &OverlapConfig::default()).unwrap();
        assert!(
            overlapped.step_seconds() < serial.step_seconds(),
            "overlapped={} serial={}",
            overlapped.step_seconds(),
            serial.step_seconds()
        );
        let lower = overlapped.compute_seconds().max(overlapped.comm_seconds());
        assert!(overlapped.step_seconds() >= lower * (1.0 - 1e-12));
    }

    #[test]
    fn overlapped_step_respects_the_resource_bounds() {
        let w = catalog::bert();
        let opts = StepOptions::default();
        for buckets in [1, 2, 8, 32] {
            let cfg = OverlapConfig {
                buckets,
                ..Default::default()
            };
            let s = overlapped_step(&w, 512, &opts, &cfg).unwrap();
            let compute = s.compute_seconds();
            let comm = s.comm_seconds();
            let host = s.schedule.busy_seconds(Resource::Host);
            let m = s.step_seconds();
            assert!(m >= compute.max(comm) * (1.0 - 1e-12), "buckets={buckets}");
            assert!(
                m <= (compute + comm + host) * (1.0 + 1e-12),
                "buckets={buckets} m={m} compute={compute} comm={comm} host={host}"
            );
        }
    }

    #[test]
    fn checkpoint_shards_hide_behind_the_step() {
        let w = catalog::bert();
        let opts = StepOptions::default();
        let without = overlapped_step(&w, 512, &opts, &OverlapConfig::default()).unwrap();
        let small = OverlapConfig {
            checkpoint: Some(CheckpointOverlap {
                shards: 4,
                seconds_per_shard: 1.0e-4,
            }),
            ..Default::default()
        };
        let with = overlapped_step(&w, 512, &opts, &small).unwrap();
        // Small shard writes fit in the PCIe idle time the step leaves.
        assert!(with.step_seconds() <= without.step_seconds() * 1.05);
        let saves = with
            .schedule
            .tasks
            .iter()
            .filter(|t| matches!(t.kind, TaskKind::CheckpointSave { .. }))
            .count();
        assert_eq!(saves, 4);
    }

    #[test]
    fn prefetch_hides_the_host_pipeline() {
        // Compressed input on a small slice makes the host the straggler;
        // prefetch races it against the device instead of serializing.
        let w = catalog::resnet50();
        let opts = StepOptions {
            uncompressed_input: false,
            ..Default::default()
        };
        let fetch_first = OverlapConfig {
            prefetch_input: false,
            ..Default::default()
        };
        let prefetched = overlapped_step(&w, 128, &opts, &OverlapConfig::default()).unwrap();
        let stalled = overlapped_step(&w, 128, &opts, &fetch_first).unwrap();
        assert!(prefetched.step_seconds() < stalled.step_seconds());
        let host = prefetched.schedule.busy_seconds(Resource::Host);
        assert!(host > 0.0);
        assert!(prefetched.step_seconds() >= host * (1.0 - 1e-12));
    }

    #[test]
    fn invalid_chip_count_surfaces_the_typed_error() {
        let err = overlapped_step(
            &catalog::bert(),
            3,
            &StepOptions::default(),
            &OverlapConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, StepError::InvalidSliceShape { chips: 3 });
    }

    #[test]
    fn overlap_ratio_is_finite_for_empty_schedules() {
        let s = OverlappedStep {
            analytic: StepBreakdown::default(),
            schedule: TaskGraph::new().run(),
        };
        assert_eq!(s.overlap_ratio(), 0.0);
    }
}
