//! Consistency contract of the task-graph step model.
//!
//! Two halves:
//!
//! * a **differential** check — with overlap disabled the scheduled
//!   makespan must reproduce the analytic [`StepBreakdown`] total *bit
//!   for bit* (the serial chain left-folds its durations in the same
//!   order as `StepBreakdown::total`), across the full workload catalog
//!   and a ladder of slice sizes;
//! * **property** checks — with overlap enabled, any bucket count and
//!   any valid slice must schedule into the resource envelope
//!   `[max(compute, comm, host), compute + comm + host + pcie]`, and
//!   the schedule itself must replay deterministically.

use multipod_core::overlap::{overlapped_step, CheckpointOverlap, OverlapConfig};
use multipod_core::step::{step_breakdown, StepOptions};
use multipod_core::StepBreakdown;
use multipod_models::catalog;
use multipod_taskgraph::Resource;
use proptest::prelude::*;

/// Workloads exercised by the differential sweep: the whole catalog.
fn all_workloads() -> Vec<multipod_models::Workload> {
    catalog::all()
}

#[test]
fn serial_schedule_reproduces_the_analytic_breakdown_bit_for_bit() {
    let serial = OverlapConfig {
        overlap: false,
        ..Default::default()
    };
    for w in all_workloads() {
        for chips in [2, 16, 128, 1024, 4096] {
            for uncompressed in [false, true] {
                let opts = StepOptions {
                    uncompressed_input: uncompressed,
                    ..Default::default()
                };
                let analytic: StepBreakdown = step_breakdown(&w, chips, &opts).unwrap();
                let scheduled = overlapped_step(&w, chips, &opts, &serial).unwrap();
                assert_eq!(
                    scheduled.step_seconds().to_bits(),
                    analytic.total().to_bits(),
                    "{} at {chips} chips (uncompressed={uncompressed}): \
                     scheduled {} != analytic {}",
                    w.name,
                    scheduled.step_seconds(),
                    analytic.total()
                );
                assert_eq!(
                    scheduled.analytic.total().to_bits(),
                    analytic.total().to_bits()
                );
            }
        }
    }
}

#[test]
fn overlap_never_beats_the_resource_lower_bound() {
    // Spot-check the paper's headline configuration before the proptest
    // sweeps the space: the 128x32 multipod running BERT.
    let s = overlapped_step(
        &catalog::bert(),
        4096,
        &StepOptions::default(),
        &OverlapConfig::default(),
    )
    .unwrap();
    let lower = s
        .compute_seconds()
        .max(s.comm_seconds())
        .max(s.schedule.busy_seconds(Resource::Host));
    assert!(s.step_seconds() >= lower * (1.0 - 1e-12));
    assert!(s.step_seconds() < s.compute_seconds() + s.comm_seconds());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any bucket count on any valid slice keeps the overlapped makespan
    /// inside `[max(per-resource busy), sum of all busy time]`.
    #[test]
    fn overlapped_makespan_stays_in_the_resource_envelope(
        chips_log2 in 1u32..13,
        buckets in 1u32..48,
        prefetch in any::<bool>(),
        wus in any::<bool>(),
        ckpt_shards in 0u32..9,
    ) {
        let chips = 1u32 << chips_log2;
        let w = catalog::bert();
        let opts = StepOptions {
            weight_update_sharding: wus,
            // Uncompressed input keeps the host pipeline small so the
            // envelope is driven by the device resources.
            uncompressed_input: true,
        };
        let cfg = OverlapConfig {
            buckets,
            overlap: true,
            prefetch_input: prefetch,
            checkpoint: (ckpt_shards > 0).then_some(CheckpointOverlap {
                shards: ckpt_shards,
                seconds_per_shard: 2.0e-5,
            }),
        };
        let s = overlapped_step(&w, chips, &opts, &cfg).unwrap();
        let compute = s.compute_seconds();
        let comm = s.comm_seconds();
        let host = s.schedule.busy_seconds(Resource::Host);
        let pcie = s.schedule.busy_seconds(Resource::Pcie);
        let m = s.step_seconds();
        let lower = compute.max(comm).max(host).max(pcie);
        let upper = compute + comm + host + pcie;
        prop_assert!(
            m >= lower * (1.0 - 1e-12),
            "makespan {m} below lower bound {lower} (chips={chips} buckets={buckets})"
        );
        prop_assert!(
            m <= upper * (1.0 + 1e-12),
            "makespan {m} above serial sum {upper} (chips={chips} buckets={buckets})"
        );
    }

    /// The schedule is a pure function of its inputs: replaying the same
    /// configuration twice yields identical task timings.
    #[test]
    fn schedules_replay_deterministically(
        chips_log2 in 1u32..12,
        buckets in 1u32..17,
    ) {
        let chips = 1u32 << chips_log2;
        let cfg = OverlapConfig { buckets, ..Default::default() };
        let opts = StepOptions::default();
        let a = overlapped_step(&catalog::bert(), chips, &opts, &cfg).unwrap();
        let b = overlapped_step(&catalog::bert(), chips, &opts, &cfg).unwrap();
        prop_assert_eq!(a.schedule, b.schedule);
    }
}
