//! Typed errors for the analytic model layer.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error raised by the workload / machine / convergence models when a
/// caller asks for a configuration outside the model's domain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModelError {
    /// A batch size of zero was passed where the model needs at least
    /// one sample (efficiency curves, steps-to-quality).
    NonPositiveBatch,
    /// The requested global batch exceeds the largest batch with known
    /// converging hyperparameters ([`crate::ConvergenceModel::max_batch`]).
    BatchAboveConvergenceCap {
        /// The rejected batch.
        batch: u32,
        /// The model's largest converging batch.
        max: u32,
    },
    /// An MXU utilization outside `(0, 1]` was passed to a compute-time
    /// model.
    InvalidEfficiency {
        /// The rejected utilization.
        efficiency: f64,
    },
    /// A GPU cluster was requested with zero GPUs.
    EmptyCluster,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositiveBatch => write!(f, "batch must be positive"),
            ModelError::BatchAboveConvergenceCap { batch, max } => {
                write!(
                    f,
                    "batch {batch} exceeds the largest converging batch {max}"
                )
            }
            ModelError::InvalidEfficiency { efficiency } => {
                write!(f, "efficiency must be in (0,1], got {efficiency}")
            }
            ModelError::EmptyCluster => write!(f, "cluster needs at least one GPU"),
        }
    }
}

impl Error for ModelError {}
