//! The GPU-cluster baseline for Figures 10–11.
//!
//! The paper compares TPU-v3 multipod times against NVIDIA's MLPerf v0.7
//! submissions on V100 and A100 clusters. Those machines have a very
//! different scaling law: fat NVLink islands of 8 GPUs joined by an
//! InfiniBand fat-tree, with NCCL-style hierarchical all-reduce. This
//! module provides that analytic baseline so the comparison figures can
//! be regenerated — the *shape* (who wins at which scale) is the target,
//! not NVIDIA's exact submission numbers.

use serde::{Deserialize, Serialize};

use multipod_collectives::Precision;

use crate::{ModelError, Workload};

/// GPU generation fielded in MLPerf v0.7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuGeneration {
    /// Volta V100 (DGX-1/DGX-2 clusters).
    V100,
    /// Ampere A100 (Selene).
    A100,
}

impl GpuGeneration {
    /// Peak fp16/bf16 tensor-core throughput per GPU, FLOP/s.
    pub fn peak_flops(self) -> f64 {
        match self {
            GpuGeneration::V100 => 125.0e12,
            GpuGeneration::A100 => 312.0e12,
        }
    }

    /// Per-direction NVLink bandwidth available to collectives within a
    /// node, bytes/s.
    pub fn nvlink_bandwidth(self) -> f64 {
        match self {
            GpuGeneration::V100 => 150.0e9,
            GpuGeneration::A100 => 300.0e9,
        }
    }

    /// Per-node InfiniBand injection bandwidth, bytes/s.
    pub fn ib_bandwidth(self) -> f64 {
        match self {
            GpuGeneration::V100 => 50.0e9,  // 4x 100 Gb/s HCAs
            GpuGeneration::A100 => 200.0e9, // 8x 200 Gb/s HCAs
        }
    }
}

/// An NVLink-island + InfiniBand-fat-tree GPU cluster.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuCluster {
    /// GPU generation.
    pub generation: GpuGeneration,
    /// Total GPUs.
    pub gpus: u32,
    /// GPUs per NVLink island.
    pub gpus_per_node: u32,
    /// Per-message latency on the IB fabric, seconds.
    pub ib_latency: f64,
}

impl GpuCluster {
    /// A cluster of `gpus` accelerators with 8-GPU nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyCluster`] when `gpus` is zero.
    pub fn new(generation: GpuGeneration, gpus: u32) -> Result<GpuCluster, ModelError> {
        if gpus == 0 {
            return Err(ModelError::EmptyCluster);
        }
        Ok(GpuCluster {
            generation,
            gpus,
            gpus_per_node: 8.min(gpus),
            ib_latency: 5.0e-6,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.gpus.div_ceil(self.gpus_per_node)
    }

    /// NCCL-style hierarchical all-reduce: ring reduce-scatter over
    /// NVLink, tree all-reduce of the node shard over IB, ring all-gather
    /// over NVLink.
    pub fn all_reduce_time(&self, elems: usize, precision: Precision) -> f64 {
        let bytes = precision.wire_bytes(elems) as f64;
        let g = self.gpus_per_node as f64;
        let nodes = self.nodes() as f64;
        let intra = if self.gpus_per_node > 1 {
            2.0 * bytes * (g - 1.0) / g / self.generation.nvlink_bandwidth()
        } else {
            0.0
        };
        let inter = if nodes > 1.0 {
            let shard = bytes / g;
            2.0 * shard * (nodes - 1.0) / nodes / self.generation.ib_bandwidth()
                + 2.0 * self.ib_latency * nodes.log2().ceil()
        } else {
            0.0
        };
        intra + inter
    }

    /// Global batch on this cluster (per-GPU memory roughly equals a TPU
    /// chip, i.e. two TPU cores).
    pub fn global_batch(&self, workload: &Workload) -> u32 {
        let hardware_max = self.gpus.saturating_mul(workload.max_per_core_batch * 2);
        workload
            .convergence
            .usable_batch(hardware_max)
            .max(self.gpus)
    }

    /// Achieved-efficiency derate of GPU training versus the
    /// TPU-calibrated curves: tensor cores reach a smaller fraction of
    /// peak on convolution/attention training graphs, and the published
    /// MLPerf v0.7 GPU throughputs imply roughly half the utilization at
    /// matched per-accelerator batch (e.g. ~1340 img/s per A100 for
    /// ResNet-50 at scale).
    pub const EFFICIENCY_DERATE: f64 = 0.45;

    /// Time for one training step, seconds.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the efficiency curve (cannot fire
    /// in practice — the per-GPU batch is clamped to a positive floor).
    pub fn step_time(&self, workload: &Workload) -> Result<f64, ModelError> {
        let batch = self.global_batch(workload);
        let per_gpu = batch as f64 / self.gpus as f64;
        // Reuse the TPU-core-calibrated curve at per-GPU/4 (a GPU's
        // occupancy needs are closer to four TPU cores' worth of batch),
        // derated per the published utilizations.
        let eff = workload.efficiency.at((per_gpu / 4.0).max(0.05))? * Self::EFFICIENCY_DERATE;
        let compute = per_gpu * workload.flops_per_sample / (self.generation.peak_flops() * eff);
        let mut comm = self.all_reduce_time(workload.gradient_elems(), Precision::Bf16);
        if let Some(emb) = workload.embedding {
            // Embedding all-to-all over the IB fat-tree (bisection bound).
            let lookup = emb.lookup_bytes_per_sample() as f64 * batch as f64;
            let bisection = self.nodes() as f64 * self.generation.ib_bandwidth() / 2.0;
            comm += 2.0 * lookup / bisection.max(self.generation.ib_bandwidth());
        }
        let launch_overhead = 200.0e-6;
        Ok(compute + comm + launch_overhead)
    }

    /// End-to-end training time in minutes (steps × step time).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the convergence model and
    /// efficiency curve ([`GpuCluster::global_batch`] already respects
    /// the convergence cap, so this cannot fire in practice).
    pub fn end_to_end_minutes(&self, workload: &Workload) -> Result<f64, ModelError> {
        let batch = self.global_batch(workload);
        let steps = workload.convergence.steps_for_batch(batch)?;
        Ok(steps as f64 * self.step_time(workload)? / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn a100_beats_v100_per_step() {
        let w = catalog::resnet50();
        let v = GpuCluster::new(GpuGeneration::V100, 1024).unwrap();
        let a = GpuCluster::new(GpuGeneration::A100, 1024).unwrap();
        assert!(a.step_time(&w).unwrap() < v.step_time(&w).unwrap());
    }

    #[test]
    fn all_reduce_has_nvlink_and_ib_components() {
        let c = GpuCluster::new(GpuGeneration::A100, 256).unwrap();
        let single_node = GpuCluster::new(GpuGeneration::A100, 8).unwrap();
        let elems = 25_600_000;
        assert!(
            c.all_reduce_time(elems, Precision::F32)
                > single_node.all_reduce_time(elems, Precision::F32)
        );
        assert!(single_node.all_reduce_time(elems, Precision::F32) > 0.0);
    }

    #[test]
    fn end_to_end_improves_then_saturates_with_scale() {
        let w = catalog::resnet50();
        let e2e = |gpus| {
            GpuCluster::new(GpuGeneration::A100, gpus)
                .unwrap()
                .end_to_end_minutes(&w)
                .unwrap()
        };
        let t16 = e2e(16);
        let t256 = e2e(256);
        let t2048 = e2e(2048);
        assert!(t256 < t16);
        assert!(t2048 < t256);
        // Far-from-ideal scaling at the top end: 8x the GPUs from 256 to
        // 2048 buys less than 8x.
        let speedup = t256 / t2048;
        assert!(speedup < 8.0, "speedup={speedup}");
    }

    #[test]
    fn node_count_rounds_up() {
        assert_eq!(GpuCluster::new(GpuGeneration::V100, 12).unwrap().nodes(), 2);
        assert_eq!(GpuCluster::new(GpuGeneration::V100, 8).unwrap().nodes(), 1);
        assert_eq!(
            GpuCluster::new(GpuGeneration::V100, 4)
                .unwrap()
                .gpus_per_node,
            4
        );
    }

    #[test]
    fn empty_cluster_is_rejected() {
        assert_eq!(
            GpuCluster::new(GpuGeneration::A100, 0),
            Err(crate::ModelError::EmptyCluster)
        );
    }
}
