//! The workload description consumed by the executor.

use serde::{Deserialize, Serialize};

use multipod_collectives::Precision;

use crate::{ConvergenceModel, EfficiencyCurve};

/// How a model is spread across the multipod (§3.1, Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParallelismPlan {
    /// Pure data parallelism — one replica per core (BERT, ResNet-50).
    DataParallel,
    /// Data parallelism over tiles of `tile` cores, each tile holding one
    /// model copy sharded on the feature dimension (Transformer).
    FeatureSharded {
        /// Cores per model-parallel tile.
        tile: u32,
    },
    /// Data parallelism over tiles of `tile` cores, each tile splitting
    /// images spatially (SSD, MaskRCNN).
    SpatialSharded {
        /// Cores per model-parallel tile.
        tile: u32,
    },
}

impl ParallelismPlan {
    /// Cores occupied by one model replica.
    pub fn cores_per_replica(self) -> u32 {
        match self {
            ParallelismPlan::DataParallel => 1,
            ParallelismPlan::FeatureSharded { tile } | ParallelismPlan::SpatialSharded { tile } => {
                tile
            }
        }
    }

    /// The model-parallel tile width in chips (2 cores per chip; a
    /// 1-core replica occupies "half a chip" and is reported as stride 1).
    pub fn chip_stride(self) -> u32 {
        (self.cores_per_replica() / 2).max(1)
    }
}

/// Embedding-table configuration for recommendation models (DLRM §4.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbeddingConfig {
    /// Number of categorical feature tables.
    pub tables: u32,
    /// Embedding dimension.
    pub dim: u32,
    /// Total embedding parameters across all tables (the reason large
    /// tables must be partitioned across chips).
    pub total_params: u64,
}

impl EmbeddingConfig {
    /// Bytes fetched from HBM per sample (one row per table, f32).
    pub fn lookup_bytes_per_sample(&self) -> u64 {
        self.tables as u64 * self.dim as u64 * 4
    }
}

/// Analytic description of one MLPerf benchmark.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Benchmark name (as in Table 1).
    pub name: &'static str,
    /// Trainable parameters.
    pub params: u64,
    /// Training FLOPs per sample (forward + backward).
    pub flops_per_sample: f64,
    /// Training-set size in samples.
    pub dataset_samples: u64,
    /// Evaluation-set size in samples.
    pub eval_samples: u64,
    /// Wire precision of gradient summation (§3.3).
    pub grad_precision: Precision,
    /// Optimizer cost (see `multipod_optim`).
    pub optimizer_flops_per_param: u64,
    /// MXU utilization curve.
    pub efficiency: EfficiencyCurve,
    /// Steps-to-quality model.
    pub convergence: ConvergenceModel,
    /// Parallelization strategy used at multipod scale.
    pub parallelism: ParallelismPlan,
    /// Largest per-core batch that fits in HBM.
    pub max_per_core_batch: u32,
    /// Host input bytes per sample (after decode).
    pub input_bytes_per_sample: u64,
    /// Peak activation memory per sample on device (bf16, with the
    /// layer-level rematerialization the submissions use), bytes.
    pub activation_bytes_per_sample: u64,
    /// Evaluation cadence: evals per training run mandated by the MLPerf
    /// rules.
    pub evals_per_run: u32,
    /// Embedding tables (recommendation models only).
    pub embedding: Option<EmbeddingConfig>,
}

impl Workload {
    /// Peak HBM bytes one core needs at a given per-core batch: the
    /// weight + optimizer-state arrays (three f32 copies for
    /// momentum/Adam state, divided across the model-parallel tile) plus
    /// activations. This is what makes `max_per_core_batch` a hardware
    /// limit rather than a tuning choice.
    pub fn memory_per_core(&self, per_core_batch: f64) -> u64 {
        let weight_state = self.params * 4 * 3 / self.parallelism.cores_per_replica() as u64;
        let embedding_shard = self
            .embedding
            .map(|e| e.total_params * 4 / 512) // shard across a typical slice
            .unwrap_or(0);
        let activations = (per_core_batch * self.activation_bytes_per_sample as f64) as u64;
        weight_state + embedding_shard + activations
    }

    /// Gradient elements exchanged per replica per step.
    pub fn gradient_elems(&self) -> usize {
        self.params as usize
    }

    /// The global batch used on `chips` chips (2 cores each), respecting
    /// the convergence cap and HBM limits.
    pub fn global_batch(&self, chips: u32) -> u32 {
        let cores = chips * 2;
        let replicas = (cores / self.parallelism.cores_per_replica()).max(1);
        let hardware_max = replicas
            .saturating_mul(self.max_per_core_batch)
            .saturating_mul(self.parallelism.cores_per_replica());
        let capped = self.convergence.usable_batch(hardware_max);
        // Keep at least one sample per replica group.
        capped.max(replicas)
    }

    /// Per-core batch at a given chip count.
    pub fn per_core_batch(&self, chips: u32) -> f64 {
        self.global_batch(chips) as f64 / (chips as f64 * 2.0)
    }

    /// Forward+backward FLOPs per core per step at a given chip count.
    pub fn flops_per_core_step(&self, chips: u32) -> f64 {
        self.global_batch(chips) as f64 * self.flops_per_sample / (chips as f64 * 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Workload {
        Workload {
            name: "toy",
            params: 1_000_000,
            flops_per_sample: 1e9,
            dataset_samples: 100_000,
            eval_samples: 10_000,
            grad_precision: Precision::Bf16,
            optimizer_flops_per_param: 4,
            efficiency: EfficiencyCurve {
                max: 0.6,
                half_batch: 8.0,
            },
            convergence: ConvergenceModel {
                base_samples: 1_000_000,
                critical_batch: 4096,
                penalty: 0.5,
                max_batch: Some(16384),
            },
            parallelism: ParallelismPlan::DataParallel,
            max_per_core_batch: 128,
            input_bytes_per_sample: 1 << 20,
            activation_bytes_per_sample: 50 << 20,
            evals_per_run: 5,
            embedding: None,
        }
    }

    #[test]
    fn global_batch_respects_convergence_cap() {
        let w = toy();
        // 1024 chips × 2 cores × 128/core = 262144 hardware max, capped
        // at 16384 by convergence.
        assert_eq!(w.global_batch(1024), 16384);
        // Small slice is hardware-bound: 8 chips × 2 × 128 = 2048.
        assert_eq!(w.global_batch(8), 2048);
    }

    #[test]
    fn per_core_batch_shrinks_with_scale() {
        let w = toy();
        assert!(w.per_core_batch(1024) < w.per_core_batch(64));
        assert_eq!(w.per_core_batch(1024), 16384.0 / 2048.0);
    }

    #[test]
    fn model_parallel_plans_report_strides() {
        assert_eq!(ParallelismPlan::DataParallel.chip_stride(), 1);
        assert_eq!(ParallelismPlan::FeatureSharded { tile: 8 }.chip_stride(), 4);
        assert_eq!(
            ParallelismPlan::SpatialSharded { tile: 8 }.cores_per_replica(),
            8
        );
    }

    #[test]
    fn flops_split_across_cores() {
        let w = toy();
        let per_core = w.flops_per_core_step(8);
        assert!((per_core - 2048.0 * 1e9 / 16.0).abs() < 1.0);
    }
}
