//! MLPerf v0.7 workload and machine models.
//!
//! The paper evaluates six MLPerf models (BERT, ResNet-50, Transformer,
//! SSD, Mask-RCNN, DLRM) on the TPU-v3 multipod and compares against
//! NVIDIA V100/A100 clusters (Figures 10–11). This crate provides the
//! *analytic descriptions* that drive the executor:
//!
//! * [`Workload`] — parameter counts, FLOPs/sample, dataset sizes,
//!   gradient precisions, parallelism plans and per-model MXU-efficiency
//!   curves, with the paper's disclosed values documented inline
//!   ([`catalog`]).
//! * [`ConvergenceModel`] — steps-to-target-quality as a function of
//!   global batch, anchored to the paper's disclosed points (ResNet-50:
//!   44 epochs @ 4k → 88 @ 64k; Transformer capped at batch 2048;
//!   MaskRCNN at 256; DLRM at 65536).
//! * [`TpuV3`] / [`GpuCluster`] — machine constants (123 TFLOP/s bf16
//!   MXU, ~70 GB/s ICI links; V100/A100 tensor-core peaks, NVLink islands
//!   + InfiniBand fat-tree) used by the step-time models.
//!
//! ```
//! use multipod_models::catalog;
//!
//! let bert = catalog::bert();
//! assert_eq!(bert.params, 334_000_000);
//! // LAMB keeps BERT data-parallel at a global batch of 8192.
//! assert!(bert.convergence.steps_for_batch(8192).unwrap() > 0);
//! ```

pub mod catalog;
mod convergence;
mod error;
mod gpu;
mod machine;
mod workload;

pub use convergence::ConvergenceModel;
pub use error::ModelError;
pub use gpu::{GpuCluster, GpuGeneration};
pub use machine::{EfficiencyCurve, TpuV3};
pub use workload::{EmbeddingConfig, ParallelismPlan, Workload};
