//! Steps-to-quality as a function of global batch size.
//!
//! Large-batch training does not scale forever: past a model-specific
//! critical batch, more parallelism buys fewer steps per epoch but *more*
//! epochs (Shallue et al. 2018). The paper discloses several anchor
//! points — ResNet-50 needs 44 epochs at batch 4k but 88 at 64k (§5);
//! the Transformer cannot usefully exceed batch 2048 (§4.3); MaskRCNN is
//! capped at 256 (§4.5); DLRM at 65536 (§4.6). This module encodes those
//! curves.

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// A piecewise model of samples-to-converge vs. global batch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceModel {
    /// Samples needed in the perfect-scaling regime (batch ≤
    /// `critical_batch`).
    pub base_samples: u64,
    /// Batch size beyond which extra samples are needed.
    pub critical_batch: u32,
    /// Extra sample fraction per `critical_batch` of batch growth beyond
    /// the critical point: at batch `critical * (1 + x)` the total
    /// samples grow by `penalty * x`.
    pub penalty: f64,
    /// Hard cap: the largest batch with converging hyperparameters
    /// (`None` when the paper scaled batch freely).
    pub max_batch: Option<u32>,
}

impl ConvergenceModel {
    /// Steps to reach target quality at a global batch size.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositiveBatch`] when `batch` is zero and
    /// [`ModelError::BatchAboveConvergenceCap`] when it exceeds the
    /// model's `max_batch`.
    pub fn steps_for_batch(&self, batch: u32) -> Result<u64, ModelError> {
        if batch == 0 {
            return Err(ModelError::NonPositiveBatch);
        }
        if let Some(max) = self.max_batch {
            if batch > max {
                return Err(ModelError::BatchAboveConvergenceCap { batch, max });
            }
        }
        let samples = self.samples_for_batch(batch);
        Ok(samples.div_ceil(batch as u64))
    }

    /// Total samples processed to reach target quality.
    pub fn samples_for_batch(&self, batch: u32) -> u64 {
        if batch <= self.critical_batch {
            return self.base_samples;
        }
        let over = (batch - self.critical_batch) as f64 / self.critical_batch as f64;
        (self.base_samples as f64 * (1.0 + self.penalty * over)) as u64
    }

    /// The largest usable batch, given a hardware-imposed ceiling.
    pub fn usable_batch(&self, hardware_max: u32) -> u32 {
        match self.max_batch {
            Some(max) => max.min(hardware_max),
            None => hardware_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet_like() -> ConvergenceModel {
        // 44 epochs of 1.28M images at batch ≤ 8k; 88 epochs at 64k.
        ConvergenceModel {
            base_samples: 44 * 1_281_167,
            critical_batch: 8192,
            penalty: 1.0 / 7.0,
            max_batch: Some(65536),
        }
    }

    #[test]
    fn perfect_scaling_below_critical_batch() {
        let m = resnet_like();
        let s1 = m.steps_for_batch(4096).unwrap();
        let s2 = m.steps_for_batch(8192).unwrap();
        // Half the steps for double the batch.
        assert!((s1 as f64 / s2 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn resnet_anchor_doubles_epochs_at_64k() {
        let m = resnet_like();
        let samples_64k = m.samples_for_batch(65536);
        let samples_4k = m.samples_for_batch(4096);
        let ratio = samples_64k as f64 / samples_4k as f64;
        assert!((1.9..2.1).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn steps_never_increase_with_batch() {
        let m = resnet_like();
        let mut prev = u64::MAX;
        for b in [1024u32, 2048, 4096, 8192, 16384, 32768, 65536] {
            let s = m.steps_for_batch(b).unwrap();
            assert!(s <= prev, "steps increased at batch {b}");
            prev = s;
        }
    }

    #[test]
    fn batch_cap_is_enforced() {
        assert_eq!(
            resnet_like().steps_for_batch(131072),
            Err(ModelError::BatchAboveConvergenceCap {
                batch: 131072,
                max: 65536
            })
        );
        assert_eq!(
            resnet_like().steps_for_batch(0),
            Err(ModelError::NonPositiveBatch)
        );
    }

    #[test]
    fn usable_batch_honours_both_limits() {
        let m = resnet_like();
        assert_eq!(m.usable_batch(32768), 32768);
        assert_eq!(m.usable_batch(1 << 20), 65536);
        let uncapped = ConvergenceModel {
            max_batch: None,
            ..resnet_like()
        };
        assert_eq!(uncapped.usable_batch(1 << 20), 1 << 20);
    }
}
