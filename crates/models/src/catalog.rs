//! The six MLPerf v0.7 benchmarks the paper scales (§4, Table 1).
//!
//! Parameter counts, FLOP budgets and batch limits come from the paper
//! and the MLPerf v0.7 reference implementations; efficiency-curve
//! constants are calibrated so the paper's disclosed anchors hold (see
//! `EXPERIMENTS.md`): ResNet-50's all-reduce ≈ 22% of step time at 4096
//! chips (Fig. 6), BERT's ≈ 27.3% (Fig. 8), ResNet epochs 44 → 88 from
//! batch 4k → 64k (§5).

use multipod_collectives::Precision;

use crate::{ConvergenceModel, EfficiencyCurve, EmbeddingConfig, ParallelismPlan, Workload};

/// ImageNet-1K training-set size.
pub const IMAGENET_TRAIN: u64 = 1_281_167;
/// ImageNet-1K validation-set size.
pub const IMAGENET_EVAL: u64 = 50_000;
/// COCO-2017 training images.
pub const COCO_TRAIN: u64 = 117_266;
/// COCO-2017 validation images.
pub const COCO_EVAL: u64 = 5_000;

/// BERT-large pre-training on Wikipedia (§4.1).
///
/// 334M parameters, sequence length 512. LAMB lets it stay data-parallel
/// at 4096 chips with a per-chip batch of 2 (global 8192, Fig. 8).
pub fn bert() -> Workload {
    Workload {
        name: "BERT",
        params: 334_000_000,
        // ~6 FLOPs per parameter per token for fwd+bwd, 512 tokens.
        flops_per_sample: 6.0 * 334.0e6 * 512.0,
        dataset_samples: 156_000_000,
        eval_samples: 10_000,
        grad_precision: Precision::Bf16,
        optimizer_flops_per_param: 20, // LAMB
        // Long sequences fill the MXUs even at batch 1/core.
        efficiency: EfficiencyCurve {
            max: 0.60,
            half_batch: 0.12,
        },
        convergence: ConvergenceModel {
            base_samples: 4_600_000,
            critical_batch: 8192,
            penalty: 0.6,
            // LAMB converges beyond this, but 8192 (2/chip at 4096 chips,
            // Fig. 8) gave the best time-to-accuracy in the submission.
            max_batch: Some(8192),
        },
        parallelism: ParallelismPlan::DataParallel,
        max_per_core_batch: 24,          // 48 per chip at small scale (Fig. 8)
        input_bytes_per_sample: 512 * 8, // token + mask ids
        activation_bytes_per_sample: 420 << 20, // 24 layers at seq 512, bf16 with remat
        evals_per_run: 6,
        embedding: None,
    }
}

/// ResNet-50 v1.5 on ImageNet (§4.2).
///
/// LARS enables batch 65536 (16 per chip at 4096 chips); the epoch budget
/// doubles from 44 (batch 4k) to 88 (batch 64k) per §5.
pub fn resnet50() -> Workload {
    Workload {
        name: "ResNet-50",
        params: 25_600_000,
        // ~4.1 GFLOPs forward at 224x224, 3x for training.
        flops_per_sample: 12.3e9,
        dataset_samples: IMAGENET_TRAIN,
        eval_samples: IMAGENET_EVAL,
        grad_precision: Precision::F32,
        optimizer_flops_per_param: 9, // LARS
        // Shrinking spatial dims penalize small per-core batches (Fig. 6).
        efficiency: EfficiencyCurve {
            max: 0.65,
            half_batch: 30.0,
        },
        convergence: ConvergenceModel {
            base_samples: 44 * IMAGENET_TRAIN,
            critical_batch: 8192,
            penalty: 1.0 / 7.0, // 2x samples at 64k
            max_batch: Some(65536),
        },
        parallelism: ParallelismPlan::DataParallel,
        max_per_core_batch: 128, // 256 per chip at small scale (Fig. 6)
        input_bytes_per_sample: 224 * 224 * 3,
        activation_bytes_per_sample: 100 << 20,
        evals_per_run: 12,
        embedding: None,
    }
}

/// The MLPerf Transformer (big) on WMT English-German (§4.3).
///
/// The fixed global batch of 2048 cannot scale further (Shallue et al.
/// 2018), so weights are feature-sharded over 4-core tiles, giving
/// "less than batch one per core" at 4096 chips.
pub fn transformer() -> Workload {
    Workload {
        name: "Transformer",
        params: 210_000_000,
        // ~6 FLOPs/param/token, ~256 tokens per sentence pair.
        flops_per_sample: 6.0 * 210.0e6 * 256.0,
        dataset_samples: 4_500_000,
        eval_samples: 3_000,
        grad_precision: Precision::Bf16,
        optimizer_flops_per_param: 10, // Adam
        efficiency: EfficiencyCurve {
            max: 0.50,
            half_batch: 0.35,
        },
        convergence: ConvergenceModel {
            base_samples: 4_300_000,
            critical_batch: 2048,
            penalty: 4.0,
            max_batch: Some(2048),
        },
        parallelism: ParallelismPlan::FeatureSharded { tile: 4 },
        max_per_core_batch: 16,
        input_bytes_per_sample: 256 * 8,
        activation_bytes_per_sample: 560 << 20,
        evals_per_run: 4,
        embedding: None,
    }
}

/// SSD with a ResNet-34 backbone on COCO (§4.4).
///
/// Batch 4096 (up from 2048 in v0.6); SPMD spatial partitioning over
/// 8-core tiles scaled it from 2048 to 8192 cores.
pub fn ssd() -> Workload {
    Workload {
        name: "SSD",
        params: 36_000_000,
        // ~8 GFLOPs forward at 300x300, 3x for training.
        flops_per_sample: 24.0e9,
        dataset_samples: COCO_TRAIN,
        eval_samples: COCO_EVAL,
        grad_precision: Precision::Bf16,
        optimizer_flops_per_param: 4, // SGD-momentum
        // Small 300x300 inputs shrink to 1x1 in the last layer (§4.4),
        // so sub-sample per-core batches run far below peak.
        efficiency: EfficiencyCurve {
            max: 0.55,
            half_batch: 20.0,
        },
        convergence: ConvergenceModel {
            base_samples: 49 * COCO_TRAIN,
            critical_batch: 2048,
            penalty: 0.35,
            max_batch: Some(4096),
        },
        parallelism: ParallelismPlan::SpatialSharded { tile: 8 },
        max_per_core_batch: 32,
        input_bytes_per_sample: 300 * 300 * 3,
        activation_bytes_per_sample: 300 << 20,
        evals_per_run: 5,
        embedding: None,
    }
}

/// Mask-RCNN on COCO (§4.5).
///
/// Two-stage detector with 800×1333 inputs; the largest converging batch
/// is 256, so it runs on a 512-chip slice with 4-core spatial tiles
/// (data-parallel to 128 cores, model-parallel to 1024).
pub fn maskrcnn() -> Workload {
    Workload {
        name: "MaskRCNN",
        params: 46_000_000,
        // ~400 GFLOPs forward at 800x1333 with FPN + both stages, 3x for
        // training.
        flops_per_sample: 1.2e12,
        dataset_samples: COCO_TRAIN,
        eval_samples: COCO_EVAL,
        grad_precision: Precision::F32,
        optimizer_flops_per_param: 4,
        // Gathers, ROIAlign and per-image head work keep utilization low
        // even after the paper's onehot-matmul optimization (§4.5).
        efficiency: EfficiencyCurve {
            max: 0.30,
            half_batch: 0.5,
        },
        convergence: ConvergenceModel {
            base_samples: 13 * COCO_TRAIN,
            critical_batch: 128,
            penalty: 0.2,
            max_batch: Some(256),
        },
        parallelism: ParallelismPlan::SpatialSharded { tile: 4 },
        max_per_core_batch: 4,
        input_bytes_per_sample: 800 * 1333 * 3,
        activation_bytes_per_sample: 2600 << 20, // 800x1333 two-stage features
        evals_per_run: 6,
        embedding: None,
    }
}

/// DLRM on the Criteo Terabyte click logs (§4.6).
///
/// Small dense MLPs plus huge embedding tables; batch 65536 is the
/// largest converging batch and communication overheads cap useful scale
/// at a 256-chip slice.
pub fn dlrm() -> Workload {
    Workload {
        name: "DLRM",
        params: 2_400_000, // dense parameters (bottom + top MLPs)
        flops_per_sample: 5.0e6,
        dataset_samples: 4_000_000_000,
        eval_samples: 90_000_000,
        grad_precision: Precision::F32,
        optimizer_flops_per_param: 4,
        efficiency: EfficiencyCurve {
            max: 0.30,
            half_batch: 16.0,
        },
        convergence: ConvergenceModel {
            base_samples: 4_000_000_000, // one epoch of Criteo
            critical_batch: 65536,
            penalty: 2.0,
            max_batch: Some(65536),
        },
        parallelism: ParallelismPlan::DataParallel,
        max_per_core_batch: 512,
        input_bytes_per_sample: 160, // ~40 int/categorical features
        activation_bytes_per_sample: 1 << 20,
        evals_per_run: 20,
        embedding: Some(EmbeddingConfig {
            tables: 26,
            dim: 128,
            total_params: 25_600_000_000,
        }),
    }
}

/// All six benchmarks, in Table-1 order.
pub fn all() -> Vec<Workload> {
    vec![resnet50(), bert(), ssd(), transformer(), maskrcnn(), dlrm()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_batch_anchors() {
        // ResNet-50: 64k batch at 4096 chips (16 per chip, Fig. 6),
        // 256 per chip at 128 chips.
        let r = resnet50();
        assert_eq!(r.global_batch(4096), 65536);
        assert_eq!(r.per_core_batch(4096), 8.0);
        assert_eq!(r.global_batch(128), 32768); // hardware-bound: 256/chip
                                                // BERT: per-chip batch 2 at 4096 chips (global 8192 ≤ LAMB cap).
        let b = bert();
        assert!(b.global_batch(4096) <= 32768);
        // Transformer: fixed 2048 regardless of scale.
        let t = transformer();
        assert_eq!(t.global_batch(4096), 2048);
        assert_eq!(t.global_batch(64), 2048);
        // MaskRCNN: capped at 256.
        assert_eq!(maskrcnn().global_batch(512), 256);
        // DLRM: capped at 65536.
        assert_eq!(dlrm().global_batch(256), 65536);
    }

    #[test]
    fn six_models_with_unique_names() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 6);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
    }

    #[test]
    fn resnet_epoch_anchor() {
        let r = resnet50();
        let at_4k = r.convergence.samples_for_batch(4096) as f64;
        let at_64k = r.convergence.samples_for_batch(65536) as f64;
        assert!((at_64k / at_4k - 2.0).abs() < 0.05);
        // 88 epochs at 64k.
        assert!((at_64k / IMAGENET_TRAIN as f64 - 88.0).abs() < 2.0);
    }

    #[test]
    fn model_parallel_models_declare_tiles() {
        assert_eq!(transformer().parallelism.cores_per_replica(), 4);
        assert_eq!(ssd().parallelism.cores_per_replica(), 8);
        assert_eq!(maskrcnn().parallelism.cores_per_replica(), 4);
    }

    #[test]
    fn per_core_batch_caps_are_memory_binding() {
        // Every model's max per-core batch fits a 16 GiB TensorCore, and
        // doubling it would not — the caps are HBM limits, not choices.
        let core_hbm: u64 = 16 * (1 << 30);
        for w in all() {
            let at_cap = w.memory_per_core(w.max_per_core_batch as f64);
            assert!(
                at_cap <= core_hbm,
                "{}: {} GiB at the cap",
                w.name,
                at_cap >> 30
            );
            if w.embedding.is_none() {
                let doubled = w.memory_per_core(2.0 * w.max_per_core_batch as f64);
                assert!(
                    doubled > core_hbm * 3 / 4,
                    "{}: cap should be near-binding ({} GiB doubled)",
                    w.name,
                    doubled >> 30
                );
            }
        }
    }

    #[test]
    fn dlrm_embedding_does_not_fit_on_one_chip() {
        let d = dlrm();
        let emb = d.embedding.unwrap();
        let bytes = emb.total_params * 4;
        assert!(bytes > crate::TpuV3::new().hbm_bytes);
        assert_eq!(emb.lookup_bytes_per_sample(), 26 * 128 * 4);
    }
}
