//! The TPU-v3 machine model.

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// MXU utilization as a function of per-core batch size.
///
/// Small per-core batches under-fill the 128×128 systolic arrays and
/// expose layer-launch overheads, so efficiency follows a saturating
/// curve `eff(b) = max · b / (b + half_batch)`. `half_batch` is
/// model-specific: BERT's long sequences keep the MXU busy even at batch
/// 2/chip (§5, Fig. 8), while ResNet-50's shrinking spatial dimensions
/// make small batches expensive (Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyCurve {
    /// Asymptotic MXU utilization at large batch.
    pub max: f64,
    /// Per-core batch at which utilization is half of `max`.
    pub half_batch: f64,
}

impl EfficiencyCurve {
    /// Utilization at the given per-core batch.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositiveBatch`] for non-positive batch
    /// sizes.
    pub fn at(&self, per_core_batch: f64) -> Result<f64, ModelError> {
        if per_core_batch <= 0.0 {
            return Err(ModelError::NonPositiveBatch);
        }
        Ok(self.max * per_core_batch / (per_core_batch + self.half_batch))
    }
}

/// TPU-v3 chip and pod constants (Jouppi et al. 2020).
///
/// A TPU-v3 chip has two TensorCores, each with two 128×128 MXUs, for a
/// combined 123 TFLOP/s of bf16 matmul peak; 32 GiB of HBM at ~900 GB/s;
/// and four ICI links of ~70 GB/s per direction forming the 2-D torus.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TpuV3 {
    /// Peak dense-matmul throughput per chip, FLOP/s (bf16).
    pub peak_matmul_flops: f64,
    /// Vector-unit throughput per chip, FLOP/s (optimizer math,
    /// normalizations).
    pub vector_flops: f64,
    /// HBM bandwidth per chip, bytes/s.
    pub hbm_bandwidth: f64,
    /// HBM capacity per chip, bytes.
    pub hbm_bytes: u64,
    /// Fixed per-step overhead (infeed handoff, step sync), seconds.
    pub step_overhead: f64,
}

impl TpuV3 {
    /// The published TPU-v3 configuration.
    pub fn new() -> TpuV3 {
        TpuV3 {
            peak_matmul_flops: 123.0e12,
            vector_flops: 2.0e12,
            hbm_bandwidth: 900.0e9,
            hbm_bytes: 32 * (1 << 30),
            step_overhead: 150.0e-6,
        }
    }

    /// Matmul-bound compute time for `flops` at a given MXU utilization.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidEfficiency`] when `efficiency` is
    /// not in (0, 1].
    pub fn compute_time(&self, flops: f64, efficiency: f64) -> Result<f64, ModelError> {
        if !(efficiency > 0.0 && efficiency <= 1.0) {
            return Err(ModelError::InvalidEfficiency { efficiency });
        }
        Ok(self.step_overhead + flops / (self.peak_matmul_flops * efficiency))
    }

    /// Vector-unit time for `flops` of elementwise/optimizer math.
    pub fn vector_time(&self, flops: f64) -> f64 {
        flops / self.vector_flops
    }

    /// Matmul-bound compute time for `flops` on a single TensorCore
    /// (half the chip's MXUs).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidEfficiency`] when `efficiency` is
    /// not in (0, 1].
    pub fn core_compute_time(&self, flops: f64, efficiency: f64) -> Result<f64, ModelError> {
        if !(efficiency > 0.0 && efficiency <= 1.0) {
            return Err(ModelError::InvalidEfficiency { efficiency });
        }
        Ok(self.step_overhead + flops / (self.peak_matmul_flops / 2.0 * efficiency))
    }

    /// Optimizer-update time for `elems` parameters: the update streams
    /// the parameter, gradient and optimizer-state arrays through HBM, so
    /// it is usually **memory-bound** (~2.5 bytes of HBM traffic per
    /// update FLOP: read+write of f32 state words). This is what makes
    /// the replicated LAMB update ~18% of the BERT step on 512 chips
    /// (§3.2).
    pub fn optimizer_update_time(&self, elems: u64, flops_per_param: u64) -> f64 {
        let flops = (elems * flops_per_param) as f64;
        let hbm_bytes = flops * 2.5;
        (flops / self.vector_flops).max(hbm_bytes / self.hbm_bandwidth)
    }
}

impl TpuV3 {
    /// A TPU-v4 projection (the paper's footnote machine: "the best
    /// result of 1.21 minutes was achieved on a TPU-v4 machine" for
    /// DLRM). Public TPU-v4 figures: ~275 bf16 TFLOP/s per chip and
    /// ~1.2 TB/s of HBM — roughly 2.2x the matmul and 1.3x the memory
    /// throughput of v3. The struct type is shared; only the constants
    /// change.
    pub fn v4_projection() -> TpuV3 {
        TpuV3 {
            peak_matmul_flops: 275.0e12,
            vector_flops: 4.0e12,
            hbm_bandwidth: 1200.0e9,
            hbm_bytes: 32 * (1 << 30),
            step_overhead: 120.0e-6,
        }
    }
}

impl Default for TpuV3 {
    fn default() -> Self {
        TpuV3::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_curve_saturates() {
        let c = EfficiencyCurve {
            max: 0.8,
            half_batch: 8.0,
        };
        assert!((c.at(8.0).unwrap() - 0.4).abs() < 1e-9);
        assert!(c.at(1024.0).unwrap() > 0.79);
        assert!(c.at(1.0).unwrap() < 0.1);
        // Monotone.
        assert!(c.at(2.0).unwrap() < c.at(4.0).unwrap());
    }

    #[test]
    fn efficiency_rejects_zero_batch() {
        let c = EfficiencyCurve {
            max: 0.5,
            half_batch: 1.0,
        };
        assert_eq!(c.at(0.0), Err(ModelError::NonPositiveBatch));
        assert_eq!(c.at(-2.0), Err(ModelError::NonPositiveBatch));
    }

    #[test]
    fn tpu_constants_match_the_published_chip() {
        let tpu = TpuV3::new();
        assert_eq!(tpu.peak_matmul_flops, 123.0e12);
        assert_eq!(tpu.hbm_bytes, 32 * (1 << 30));
    }

    #[test]
    fn compute_time_scales_inversely_with_efficiency() {
        let tpu = TpuV3::new();
        let fast = tpu.compute_time(1e12, 0.8).unwrap();
        let slow = tpu.compute_time(1e12, 0.2).unwrap();
        assert!(slow > 3.0 * fast - tpu.step_overhead * 4.0);
        assert!(fast > tpu.step_overhead);
    }

    #[test]
    fn compute_time_rejects_out_of_range_efficiency() {
        let tpu = TpuV3::new();
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(matches!(
                tpu.compute_time(1e12, bad),
                Err(ModelError::InvalidEfficiency { .. })
            ));
            assert!(matches!(
                tpu.core_compute_time(1e12, bad),
                Err(ModelError::InvalidEfficiency { .. })
            ));
        }
    }

    #[test]
    fn v4_projection_outpaces_v3() {
        let v3 = TpuV3::new();
        let v4 = TpuV3::v4_projection();
        assert!(v4.peak_matmul_flops > 2.0 * v3.peak_matmul_flops);
        assert!(v4.compute_time(1e12, 0.5).unwrap() < v3.compute_time(1e12, 0.5).unwrap());
        assert!(v4.optimizer_update_time(1 << 20, 20) < v3.optimizer_update_time(1 << 20, 20));
    }

    #[test]
    fn vector_time_is_linear() {
        let tpu = TpuV3::new();
        assert!((tpu.vector_time(2e12) - 1.0).abs() < 1e-9);
    }
}
