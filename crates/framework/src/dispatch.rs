//! Steady-state dispatch overheads (§2).
//!
//! Beyond initialization, the two control planes pay different *per-step*
//! costs: "TensorFlow has additional compilation steps, which we
//! accelerated using multithreading, while JAX requires more careful
//! management of Python bottlenecks (for instance, moving blocking tasks
//! like data infeed off of the main thread)." Both fixes are modeled and
//! ablatable here.

use serde::{Deserialize, Serialize};

/// TensorFlow's client-side compilation pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TfCompilePipeline {
    /// Independently compilable subgraphs.
    pub subgraphs: u32,
    /// Single-threaded cost per subgraph, seconds.
    pub cost_per_subgraph: f64,
    /// Compiler threads (the paper's acceleration; 1 = the old behaviour).
    pub threads: u32,
}

impl TfCompilePipeline {
    /// Wall-clock compile time: subgraphs are spread over threads
    /// (longest-processing-time bound: ceil-div batches of parallel work).
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    pub fn wall_clock(&self) -> f64 {
        assert!(self.threads > 0, "need at least one compiler thread");
        let rounds = self.subgraphs.div_ceil(self.threads);
        rounds as f64 * self.cost_per_subgraph
    }
}

/// The JAX host main-loop, with or without the paper's off-thread infeed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JaxHostLoop {
    /// Python dispatch work per step (argument donation, token plumbing),
    /// seconds.
    pub python_dispatch: f64,
    /// Data-infeed work per step, seconds.
    pub infeed: f64,
    /// Whether infeed runs on a background thread (the paper's fix).
    pub infeed_off_main_thread: bool,
}

impl JaxHostLoop {
    /// Host-side overhead added to one device step.
    ///
    /// On the main thread the two costs serialize; off-thread they
    /// overlap and only the larger can stall the device.
    pub fn per_step_overhead(&self) -> f64 {
        if self.infeed_off_main_thread {
            self.python_dispatch.max(self.infeed)
        } else {
            self.python_dispatch + self.infeed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multithreading_cuts_tf_compile_time() {
        let slow = TfCompilePipeline {
            subgraphs: 64,
            cost_per_subgraph: 0.5,
            threads: 1,
        };
        let fast = TfCompilePipeline {
            threads: 16,
            ..slow
        };
        assert_eq!(slow.wall_clock(), 32.0);
        assert_eq!(fast.wall_clock(), 2.0);
    }

    #[test]
    fn compile_speedup_saturates_at_subgraph_count() {
        let p = TfCompilePipeline {
            subgraphs: 4,
            cost_per_subgraph: 1.0,
            threads: 64,
        };
        assert_eq!(p.wall_clock(), 1.0);
    }

    #[test]
    fn off_thread_infeed_overlaps() {
        let on_main = JaxHostLoop {
            python_dispatch: 2.0e-3,
            infeed: 3.0e-3,
            infeed_off_main_thread: false,
        };
        let off_main = JaxHostLoop {
            infeed_off_main_thread: true,
            ..on_main
        };
        assert!((on_main.per_step_overhead() - 5.0e-3).abs() < 1e-12);
        assert!((off_main.per_step_overhead() - 3.0e-3).abs() < 1e-12);
        assert!(off_main.per_step_overhead() < on_main.per_step_overhead());
    }
}
