//! Typed errors for the control-plane models.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error raised by the framework control-plane models.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameworkError {
    /// No init profile exists for the requested benchmark name.
    UnknownBenchmark {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::UnknownBenchmark { name } => {
                write!(f, "unknown benchmark '{name}'")
            }
        }
    }
}

impl Error for FrameworkError {}
