//! TensorFlow vs JAX distributed control planes (§2, Table 2).
//!
//! The two frameworks program the same hardware with opposite
//! architectures:
//!
//! * **TensorFlow (single-client)**: one Python process holds the whole
//!   multi-device graph. Graph construction and optimization grow with
//!   the number of workers, the graph is compiled once, and partitioned
//!   subgraphs are shipped to every worker over RPC — an Amdahl
//!   bottleneck at 4096 chips (498–1040 s init in Table 2).
//! * **JAX (multi-client)**: every host runs the same program,
//!   compiles its own XLA executable (deterministic compilation keeps
//!   them compatible) and only coordinates at mesh setup — so init time
//!   is roughly constant in worker count (122–294 s).
//!
//! [`InitModel`] reproduces both laws; [`profiles`] carries the
//! per-benchmark constants calibrated against Table 2; [`TfCompilePipeline`]
//! and [`JaxHostLoop`] model the §2 steady-state fixes (multithreaded TF
//! compilation, JAX's off-main-thread infeed).

mod dispatch;
mod error;
mod init;
pub mod profiles;

pub use dispatch::{JaxHostLoop, TfCompilePipeline};
pub use error::FrameworkError;
pub use init::{FrameworkKind, InitBreakdown, InitModel, ModelInitProfile};
