//! Initialization-time models.

use serde::{Deserialize, Serialize};

use multipod_topology::{Multipod, CHIPS_PER_HOST};

/// Which framework's control plane drives the pod.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameworkKind {
    /// Single-client TensorFlow 1.x.
    TensorFlow,
    /// Multi-client JAX.
    Jax,
}

impl FrameworkKind {
    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            FrameworkKind::TensorFlow => "TensorFlow",
            FrameworkKind::Jax => "JAX",
        }
    }
}

/// Per-benchmark control-plane cost constants.
///
/// `graph_cost_per_worker` is the single-client client-side cost of
/// constructing/optimizing one worker's slice of the multi-device graph
/// (TensorFlow only); `compile_cost` is the XLA compilation time of one
/// program (paid once by the TF client, once per host — concurrently —
/// under JAX).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelInitProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Client-side multi-device graph cost per worker, seconds.
    pub graph_cost_per_worker: f64,
    /// XLA compile time of the model program, seconds.
    pub compile_cost: f64,
}

/// Per-phase breakdown of initialization time, seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InitBreakdown {
    /// Topological mesh initialization (common to both frameworks).
    pub mesh_init: f64,
    /// Client-side multi-device graph construction + optimization
    /// (TensorFlow only; Θ(workers)).
    pub graph_construction: f64,
    /// XLA compilation (TF: once on the client; JAX: per host, but all
    /// hosts compile concurrently so wall-clock is one compile).
    pub compilation: f64,
    /// Distributing compiled programs to the workers over RPC
    /// (TensorFlow only).
    pub distribution: f64,
}

impl InitBreakdown {
    /// Total initialization wall-clock.
    pub fn total(&self) -> f64 {
        self.mesh_init + self.graph_construction + self.compilation + self.distribution
    }
}

/// The initialization-time model of §2/§5.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InitModel {
    /// Fixed mesh-bringup cost, seconds.
    pub mesh_base: f64,
    /// Additional mesh-bringup cost per chip, seconds (link training and
    /// topology discovery scale with machine size).
    pub mesh_per_chip: f64,
    /// RPC cost of shipping one worker's program (TensorFlow), seconds.
    pub rpc_per_worker: f64,
}

impl InitModel {
    /// Constants calibrated against Table 2.
    pub fn calibrated() -> InitModel {
        InitModel {
            mesh_base: 20.0,
            mesh_per_chip: 1.0 / 64.0,
            rpc_per_worker: 0.02,
        }
    }

    /// Hosts (= workers) feeding `chips` chips.
    pub fn workers(chips: u32) -> u32 {
        chips.div_ceil(CHIPS_PER_HOST as u32)
    }

    /// Initialization breakdown for a framework, benchmark and machine
    /// size.
    pub fn init_breakdown(
        &self,
        kind: FrameworkKind,
        profile: &ModelInitProfile,
        chips: u32,
    ) -> InitBreakdown {
        let workers = Self::workers(chips) as f64;
        let mesh_init = self.mesh_base + self.mesh_per_chip * chips as f64;
        match kind {
            FrameworkKind::TensorFlow => InitBreakdown {
                mesh_init,
                graph_construction: profile.graph_cost_per_worker * workers,
                compilation: profile.compile_cost,
                distribution: self.rpc_per_worker * workers,
            },
            FrameworkKind::Jax => InitBreakdown {
                mesh_init,
                graph_construction: 0.0,
                // Every host compiles its own program concurrently;
                // deterministic compilation keeps the binaries
                // compatible without exchange.
                compilation: profile.compile_cost,
                distribution: 0.0,
            },
        }
    }

    /// Total initialization seconds.
    pub fn init_seconds(&self, kind: FrameworkKind, profile: &ModelInitProfile, chips: u32) -> f64 {
        self.init_breakdown(kind, profile, chips).total()
    }

    /// Convenience over a concrete topology.
    pub fn init_seconds_on(
        &self,
        kind: FrameworkKind,
        profile: &ModelInitProfile,
        mesh: &Multipod,
    ) -> f64 {
        self.init_seconds(kind, profile, mesh.num_chips() as u32)
    }
}

impl Default for InitModel {
    fn default() -> Self {
        InitModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn jax_init_is_flat_in_worker_count() {
        let m = InitModel::calibrated();
        let p = profiles::resnet50();
        let small = m.init_seconds(FrameworkKind::Jax, &p, 256);
        let large = m.init_seconds(FrameworkKind::Jax, &p, 4096);
        // Only the mesh-bringup term grows.
        let mesh_delta = (4096.0 - 256.0) * m.mesh_per_chip;
        assert!((large - small - mesh_delta).abs() < 1e-9);
    }

    #[test]
    fn tensorflow_init_grows_linearly_with_workers() {
        let m = InitModel::calibrated();
        let p = profiles::bert();
        let w1024 = m.init_seconds(FrameworkKind::TensorFlow, &p, 4096);
        let w512 = m.init_seconds(FrameworkKind::TensorFlow, &p, 2048);
        // Doubling the machine roughly doubles the graph-construction
        // share.
        assert!(w1024 > 1.5 * w512 - p.compile_cost - m.mesh_base * 2.0);
        assert!(w1024 > w512);
    }

    #[test]
    fn table2_magnitudes_reproduce() {
        // Paper Table 2 at 4096 chips: TF 498–1040 s, JAX 122–294 s.
        let m = InitModel::calibrated();
        for (p, tf_expect, jax_expect) in [
            (profiles::resnet50(), 498.0, 134.0),
            (profiles::bert(), 1040.0, 190.0),
            (profiles::transformer(), 868.0, 294.0),
        ] {
            let tf = m.init_seconds(FrameworkKind::TensorFlow, &p, 4096);
            let jax = m.init_seconds(FrameworkKind::Jax, &p, 4096);
            assert!(
                (tf / tf_expect - 1.0).abs() < 0.25,
                "{}: tf={tf} expected~{tf_expect}",
                p.name
            );
            assert!(
                (jax / jax_expect - 1.0).abs() < 0.25,
                "{}: jax={jax} expected~{jax_expect}",
                p.name
            );
            assert!(tf > 2.0 * jax, "{}: TF must dominate JAX", p.name);
        }
        // SSD's JAX number is reported at 2048 chips.
        let ssd_jax = m.init_seconds(FrameworkKind::Jax, &profiles::ssd(), 2048);
        assert!((ssd_jax / 122.0 - 1.0).abs() < 0.25, "ssd jax={ssd_jax}");
        let ssd_tf = m.init_seconds(FrameworkKind::TensorFlow, &profiles::ssd(), 4096);
        assert!((ssd_tf / 772.0 - 1.0).abs() < 0.25, "ssd tf={ssd_tf}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = InitModel::calibrated();
        let p = profiles::bert();
        let b = m.init_breakdown(FrameworkKind::TensorFlow, &p, 4096);
        assert!(
            (b.total() - (b.mesh_init + b.graph_construction + b.compilation + b.distribution))
                .abs()
                < 1e-12
        );
        assert!(b.graph_construction > 0.0);
        let j = m.init_breakdown(FrameworkKind::Jax, &p, 4096);
        assert_eq!(j.graph_construction, 0.0);
        assert_eq!(j.distribution, 0.0);
    }

    #[test]
    fn workers_follow_hosts() {
        assert_eq!(InitModel::workers(4096), 1024);
        assert_eq!(InitModel::workers(2), 1);
    }
}
