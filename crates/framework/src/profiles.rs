//! Per-benchmark control-plane profiles calibrated against Table 2.
//!
//! With the [`crate::InitModel::calibrated`] constants (mesh bringup
//! `20 s + chips/64`, RPC 20 ms/worker), these graph/compile costs land
//! on the paper's measured init times at 4096 chips (2048 for SSD's JAX
//! entry): TF 498/1040/772/868 s and JAX 134/190/122/294 s.

use crate::{FrameworkError, ModelInitProfile};

/// ResNet-50 (Table 2: TF 498 s, JAX 134 s at 4096 chips).
pub fn resnet50() -> ModelInitProfile {
    ModelInitProfile {
        name: "ResNet-50",
        graph_cost_per_worker: 0.335,
        compile_cost: 50.0,
    }
}

/// BERT — the largest graph in the suite (TF 1040 s, JAX 190 s).
pub fn bert() -> ModelInitProfile {
    ModelInitProfile {
        name: "BERT",
        graph_cost_per_worker: 0.81,
        compile_cost: 106.0,
    }
}

/// SSD with SPMD spatial partitioning (TF 772 s at 4096; JAX 122 s at
/// 2048).
pub fn ssd() -> ModelInitProfile {
    ModelInitProfile {
        name: "SSD",
        graph_cost_per_worker: 0.583,
        compile_cost: 70.0,
    }
}

/// Transformer with feature sharding — heavy SPMD compilation (TF 868 s,
/// JAX 294 s).
pub fn transformer() -> ModelInitProfile {
    ModelInitProfile {
        name: "Transformer",
        graph_cost_per_worker: 0.54,
        compile_cost: 210.0,
    }
}

/// MaskRCNN (no Table-2 entry; estimated from its graph size relative to
/// SSD).
pub fn maskrcnn() -> ModelInitProfile {
    ModelInitProfile {
        name: "MaskRCNN",
        graph_cost_per_worker: 0.7,
        compile_cost: 120.0,
    }
}

/// DLRM (no Table-2 entry; small dense graph plus embedding plumbing).
pub fn dlrm() -> ModelInitProfile {
    ModelInitProfile {
        name: "DLRM",
        graph_cost_per_worker: 0.25,
        compile_cost: 40.0,
    }
}

/// Profile lookup by benchmark name.
///
/// # Errors
///
/// Returns [`FrameworkError::UnknownBenchmark`] for unknown names.
pub fn by_name(name: &str) -> Result<ModelInitProfile, FrameworkError> {
    match name {
        "ResNet-50" => Ok(resnet50()),
        "BERT" => Ok(bert()),
        "SSD" => Ok(ssd()),
        "Transformer" => Ok(transformer()),
        "MaskRCNN" => Ok(maskrcnn()),
        "DLRM" => Ok(dlrm()),
        other => Err(FrameworkError::UnknownBenchmark {
            name: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_covers_all_benchmarks() {
        for name in [
            "ResNet-50",
            "BERT",
            "SSD",
            "Transformer",
            "MaskRCNN",
            "DLRM",
        ] {
            assert_eq!(by_name(name).unwrap().name, name);
        }
    }

    #[test]
    fn lookup_rejects_unknown() {
        assert_eq!(
            by_name("GPT-3"),
            Err(FrameworkError::UnknownBenchmark {
                name: "GPT-3".to_string()
            })
        );
    }
}
