//! DLRM input-path optimizations (§3.5, §4.6).
//!
//! DLRM "can quickly become input bound as the model accommodates a large
//! per-core batch size while having a small step latency". Three fixes
//! from the paper are modeled:
//!
//! * parse at **batch granularity** instead of per sample;
//! * transmit the ~40 input features over PCIe in **stacked** form
//!   (one transfer) instead of one transfer per feature;
//! * pre-serialize data in batch form so batching costs nothing at run
//!   time.

use serde::{Deserialize, Serialize};

/// Host-side parsing strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParseGranularity {
    /// One parser invocation per sample (the slow default).
    PerSample,
    /// One parser invocation per batch (the paper's optimization).
    PerBatch,
}

/// PCIe transfer layout for the per-step features.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PcieLayout {
    /// One DMA per feature (~40 transfers per step).
    PerFeature,
    /// All features stacked into a single DMA.
    Stacked,
}

/// Cost model of the DLRM host input path.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DlrmInputConfig {
    /// Features per sample (~40 for Criteo).
    pub features: u32,
    /// Bytes per feature value.
    pub bytes_per_feature: u32,
    /// Fixed cost of one parser invocation, seconds.
    pub parse_invocation_cost: f64,
    /// Marginal parse cost per sample, seconds.
    pub parse_per_sample_cost: f64,
    /// PCIe DMA setup latency per transfer, seconds.
    pub pcie_latency: f64,
    /// PCIe bandwidth, bytes/second.
    pub pcie_bandwidth: f64,
}

impl DlrmInputConfig {
    /// Criteo-like defaults on a PCIe-3 x16 host link.
    pub fn criteo() -> DlrmInputConfig {
        DlrmInputConfig {
            features: 40,
            bytes_per_feature: 4,
            parse_invocation_cost: 15.0e-6,
            parse_per_sample_cost: 0.3e-6,
            pcie_latency: 10.0e-6,
            pcie_bandwidth: 12.0e9,
        }
    }

    /// Host parse time for one batch.
    pub fn parse_time(&self, batch: usize, granularity: ParseGranularity) -> f64 {
        match granularity {
            ParseGranularity::PerSample => {
                batch as f64 * (self.parse_invocation_cost + self.parse_per_sample_cost)
            }
            ParseGranularity::PerBatch => {
                self.parse_invocation_cost + batch as f64 * self.parse_per_sample_cost
            }
        }
    }

    /// PCIe time to move one batch of features to the accelerator.
    pub fn pcie_time(&self, batch: usize, layout: PcieLayout) -> f64 {
        let bytes = batch as f64 * self.features as f64 * self.bytes_per_feature as f64;
        match layout {
            PcieLayout::PerFeature => {
                self.features as f64 * self.pcie_latency + bytes / self.pcie_bandwidth
            }
            PcieLayout::Stacked => self.pcie_latency + bytes / self.pcie_bandwidth,
        }
    }

    /// Total host input time per step for a per-host batch.
    pub fn step_input_time(
        &self,
        batch: usize,
        granularity: ParseGranularity,
        layout: PcieLayout,
    ) -> f64 {
        self.parse_time(batch, granularity) + self.pcie_time(batch, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_parsing_beats_per_sample_by_orders_of_magnitude() {
        let cfg = DlrmInputConfig::criteo();
        let batch = 2048; // per-host share of a 65536 global batch
        let per_sample = cfg.parse_time(batch, ParseGranularity::PerSample);
        let per_batch = cfg.parse_time(batch, ParseGranularity::PerBatch);
        assert!(per_sample > 20.0 * per_batch, "{per_sample} vs {per_batch}");
    }

    #[test]
    fn stacked_pcie_saves_per_feature_latencies() {
        let cfg = DlrmInputConfig::criteo();
        let per_feature = cfg.pcie_time(2048, PcieLayout::PerFeature);
        let stacked = cfg.pcie_time(2048, PcieLayout::Stacked);
        assert!((per_feature - stacked - 39.0 * cfg.pcie_latency).abs() < 1e-9);
        assert!(stacked < per_feature);
    }

    #[test]
    fn optimized_path_fits_the_dlrm_step_budget() {
        // §4.6: DLRM step latency is ~2.4 ms; the optimized input path per
        // host must fit inside it, the naive one must not.
        let cfg = DlrmInputConfig::criteo();
        let batch = 2048;
        let naive = cfg.step_input_time(batch, ParseGranularity::PerSample, PcieLayout::PerFeature);
        let tuned = cfg.step_input_time(batch, ParseGranularity::PerBatch, PcieLayout::Stacked);
        assert!(naive > 2.4e-3, "naive={naive}");
        assert!(tuned < 2.4e-3, "tuned={tuned}");
    }

    #[test]
    fn input_time_grows_linearly_in_batch() {
        let cfg = DlrmInputConfig::criteo();
        let t1 = cfg.step_input_time(1024, ParseGranularity::PerBatch, PcieLayout::Stacked);
        let t2 = cfg.step_input_time(4096, ParseGranularity::PerBatch, PcieLayout::Stacked);
        assert!(t2 > t1 && t2 < 4.5 * t1);
    }
}
