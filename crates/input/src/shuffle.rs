//! Data-shuffling quality for BERT (§3.5).
//!
//! Two knobs matter at scale, and both are reproduced over synthetic
//! corpora:
//!
//! 1. **File-level order of shuffle and repeat.** With 500 files over 128
//!    hosts each host owns ~4 files. `repeat → shuffle` reshuffles across
//!    epoch boundaries (good coverage *and* stochasticity);
//!    `shuffle → repeat` fixes one file permutation and replays it every
//!    epoch, so batches repeat across epochs.
//! 2. **Sequence-level shuffle-buffer size.** A small buffer can only
//!    reorder locally, so batches stay biased toward the (correlated)
//!    stream order, and different runs see very different convergence
//!    trajectories.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::InputError;

/// The relative order of the file-level `shuffle` and `repeat` stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileOrder {
    /// `tf.data.shuffle` before `tf.data.repeat`: one permutation, then
    /// replayed identically every epoch.
    ShuffleThenRepeat,
    /// `tf.data.repeat` before `tf.data.shuffle`: every epoch is freshly
    /// permuted (the paper's recommendation).
    RepeatThenShuffle,
}

/// Streams file indices for `epochs` epochs over `files` files in the
/// given order.
pub fn file_stream(files: usize, epochs: usize, order: FileOrder, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(files * epochs);
    match order {
        FileOrder::ShuffleThenRepeat => {
            let mut perm: Vec<usize> = (0..files).collect();
            perm.shuffle(&mut rng);
            for _ in 0..epochs {
                out.extend_from_slice(&perm);
            }
        }
        FileOrder::RepeatThenShuffle => {
            for _ in 0..epochs {
                let mut perm: Vec<usize> = (0..files).collect();
                perm.shuffle(&mut rng);
                out.extend_from_slice(&perm);
            }
        }
    }
    out
}

/// Fraction of all `files` seen in the first `window` stream entries
/// (coverage) — both orders cover well within one epoch, which is why
/// the paper cares about *cross-epoch* stochasticity too.
pub fn coverage(stream: &[usize], files: usize, window: usize) -> f64 {
    let mut seen = vec![false; files];
    for &f in stream.iter().take(window) {
        seen[f] = true;
    }
    seen.iter().filter(|&&s| s).count() as f64 / files as f64
}

/// Cross-epoch stochasticity: the fraction of positions at which epoch
/// `e` differs from epoch `e+1`. `ShuffleThenRepeat` scores 0.
pub fn cross_epoch_stochasticity(stream: &[usize], files: usize) -> f64 {
    let epochs = stream.len() / files;
    if epochs < 2 {
        return 0.0;
    }
    let mut diff = 0usize;
    let mut total = 0usize;
    for e in 0..epochs - 1 {
        for i in 0..files {
            total += 1;
            if stream[e * files + i] != stream[(e + 1) * files + i] {
                diff += 1;
            }
        }
    }
    diff as f64 / total as f64
}

/// Fraction of the global file set a single host ever reads in `epochs`
/// epochs, when the per-epoch file stream is dealt round-robin to
/// `hosts` hosts (host `h` takes stream positions `≡ h (mod hosts)`).
///
/// With 500 files over 128 hosts a host reads ~4 files per epoch (§3.5);
/// under `shuffle→repeat` those are the *same* 4 files every epoch, so
/// per-host coverage is stuck at ~4/500, while `repeat→shuffle` deals a
/// fresh hand each epoch and coverage grows toward 1 — "the latter
/// guarantees the model catches all information available in the
/// dataset".
pub fn host_file_coverage(
    files: usize,
    hosts: usize,
    epochs: usize,
    order: FileOrder,
    seed: u64,
) -> Result<f64, InputError> {
    if hosts == 0 || files == 0 || epochs == 0 {
        return Err(InputError::EmptyCoverage {
            files,
            hosts,
            epochs,
        });
    }
    let stream = file_stream(files, epochs, order, seed);
    let mut seen = vec![false; files];
    for epoch in 0..epochs {
        for pos in (0..files).filter(|p| p % hosts == 0) {
            seen[stream[epoch * files + pos]] = true;
        }
    }
    Ok(seen.iter().filter(|&&s| s).count() as f64 / files as f64)
}

/// Applies a bounded shuffle buffer of `capacity` to a stream, exactly
/// like `tf.data.shuffle(buffer_size)`: the buffer is kept full and a
/// random occupant is emitted each step.
///
/// # Errors
///
/// Returns [`InputError::ZeroShuffleCapacity`] when `capacity` is zero.
pub fn buffered_shuffle(
    stream: &[f32],
    capacity: usize,
    seed: u64,
) -> Result<Vec<f32>, InputError> {
    if capacity == 0 {
        return Err(InputError::ZeroShuffleCapacity);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut buffer: Vec<f32> = Vec::with_capacity(capacity);
    let mut out = Vec::with_capacity(stream.len());
    for &x in stream {
        if buffer.len() < capacity {
            buffer.push(x);
            continue;
        }
        let idx = rng.gen_range(0..buffer.len());
        out.push(buffer[idx]);
        buffer[idx] = x;
    }
    while !buffer.is_empty() {
        let idx = rng.gen_range(0..buffer.len());
        out.push(buffer.swap_remove(idx));
    }
    Ok(out)
}

/// Per-batch bias of a shuffled stream: the RMS deviation of batch means
/// from the global mean. Correlated (e.g. sorted) input that is only
/// locally shuffled keeps biased batches; the paper links this to
/// run-to-run convergence variance.
pub fn batch_bias(stream: &[f32], batch: usize) -> Result<f64, InputError> {
    if batch == 0 || stream.len() < batch {
        return Err(InputError::BatchExceedsStream {
            batch,
            stream_len: stream.len(),
        });
    }
    let global_mean = stream.iter().map(|&x| x as f64).sum::<f64>() / stream.len() as f64;
    let batches = stream.len() / batch;
    let mut acc = 0.0f64;
    for b in 0..batches {
        let mean = stream[b * batch..(b + 1) * batch]
            .iter()
            .map(|&x| x as f64)
            .sum::<f64>()
            / batch as f64;
        acc += (mean - global_mean).powi(2);
    }
    Ok((acc / batches as f64).sqrt())
}

/// Run-to-run variance: trains a 1-D quadratic model on differently
/// seeded shuffles of the same correlated corpus and reports the spread
/// of outcomes. Larger buffers make runs land closer together (§3.5:
/// "with larger buffer sizes, every training batch of different runs can
/// be more uniformly sampled").
///
/// # Errors
///
/// Returns [`InputError::ZeroShuffleCapacity`] when `buffer` is zero.
pub fn run_to_run_spread(
    corpus_len: usize,
    buffer: usize,
    batch: usize,
    runs: usize,
) -> Result<f64, InputError> {
    // Correlated "dataset": a sorted ramp split into file-sized blocks.
    // Each run sees its own file order (as real runs do), so a small
    // sequence-level buffer preserves run-specific order bias while a
    // large buffer approaches uniform sampling for every run.
    let block = (corpus_len / 64).max(1);
    let mut outcomes: Vec<f64> = Vec::with_capacity(runs);
    for r in 0..runs {
        let mut rng = SmallRng::seed_from_u64(5000 + r as u64);
        let mut blocks: Vec<usize> = (0..corpus_len.div_ceil(block)).collect();
        blocks.shuffle(&mut rng);
        let corpus: Vec<f32> = blocks
            .iter()
            .flat_map(|&b| {
                (b * block..((b + 1) * block).min(corpus_len)).map(|i| i as f32 / corpus_len as f32)
            })
            .collect();
        let shuffled = buffered_shuffle(&corpus, buffer, 1000 + r as u64)?;
        // One pass of SGD on f(w) = (w - x)²/2 with small lr; the
        // final w depends on the order bias of late batches.
        let mut w = 0.0f64;
        let lr = 0.05f64;
        for chunk in shuffled.chunks(batch) {
            let grad: f64 = chunk.iter().map(|&x| w - x as f64).sum::<f64>() / chunk.len() as f64;
            w -= lr * grad;
        }
        outcomes.push(w);
    }
    let mean = outcomes.iter().sum::<f64>() / runs as f64;
    Ok((outcomes.iter().map(|o| (o - mean).powi(2)).sum::<f64>() / runs as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_orders_cover_one_epoch_fully() {
        for order in [FileOrder::ShuffleThenRepeat, FileOrder::RepeatThenShuffle] {
            let s = file_stream(500, 3, order, 1);
            assert_eq!(coverage(&s, 500, 500), 1.0);
        }
    }

    #[test]
    fn repeat_then_shuffle_is_stochastic_across_epochs() {
        let fixed = file_stream(500, 4, FileOrder::ShuffleThenRepeat, 2);
        let fresh = file_stream(500, 4, FileOrder::RepeatThenShuffle, 2);
        assert_eq!(cross_epoch_stochasticity(&fixed, 500), 0.0);
        assert!(cross_epoch_stochasticity(&fresh, 500) > 0.95);
    }

    #[test]
    fn small_host_shards_make_order_matter_more() {
        // 128 hosts × ~4 files: a host's epoch under shuffle→repeat is the
        // same 4 files in the same order forever.
        let files_per_host = 4;
        let s = file_stream(files_per_host, 8, FileOrder::ShuffleThenRepeat, 3);
        assert_eq!(cross_epoch_stochasticity(&s, files_per_host), 0.0);
    }

    #[test]
    fn repeat_then_shuffle_grows_per_host_coverage() {
        // The paper's 500-file / 128-host configuration.
        let fixed = host_file_coverage(500, 128, 8, FileOrder::ShuffleThenRepeat, 4).unwrap();
        let fresh = host_file_coverage(500, 128, 8, FileOrder::RepeatThenShuffle, 4).unwrap();
        // shuffle→repeat: the host re-reads its ~4 files forever.
        assert!(fixed < 0.02, "fixed={fixed}");
        // repeat→shuffle: ~4 new files per epoch.
        assert!(fresh > 3.0 * fixed, "fresh={fresh} fixed={fixed}");
        // And with enough epochs coverage approaches the whole dataset.
        let long = host_file_coverage(500, 128, 200, FileOrder::RepeatThenShuffle, 4).unwrap();
        assert!(long > 0.7, "long={long}");
    }

    #[test]
    fn buffered_shuffle_is_a_permutation() {
        let input: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let mut out = buffered_shuffle(&input, 64, 5).unwrap();
        assert_eq!(out.len(), input.len());
        out.sort_by(f32::total_cmp);
        assert_eq!(out, input);
    }

    #[test]
    fn bigger_buffers_reduce_batch_bias() {
        let corpus: Vec<f32> = (0..8192).map(|i| i as f32 / 8192.0).collect();
        let small = batch_bias(&buffered_shuffle(&corpus, 16, 7).unwrap(), 64).unwrap();
        let large = batch_bias(&buffered_shuffle(&corpus, 4096, 7).unwrap(), 64).unwrap();
        assert!(
            large < 0.5 * small,
            "large buffer bias {large} vs small {small}"
        );
    }

    #[test]
    fn bigger_buffers_reduce_run_to_run_spread() {
        let small = run_to_run_spread(4096, 16, 64, 8).unwrap();
        let large = run_to_run_spread(4096, 4096, 64, 8).unwrap();
        assert!(
            large < small,
            "large-buffer spread {large} vs small {small}"
        );
    }

    #[test]
    fn file_streams_are_deterministic_per_seed() {
        let a = file_stream(100, 2, FileOrder::RepeatThenShuffle, 9);
        let b = file_stream(100, 2, FileOrder::RepeatThenShuffle, 9);
        assert_eq!(a, b);
        let c = file_stream(100, 2, FileOrder::RepeatThenShuffle, 10);
        assert_ne!(a, c);
    }
}
