//! Per-host input pipeline with decode-cost tails and prefetching.
//!
//! Each host preprocesses samples for its chips. With compressed inputs,
//! per-sample decode time is heavy-tailed (large JPEGs); the *step* input
//! time is the **max over hosts**, so at multipod scale the tail host
//! gates every step. The paper's fix (§3.5): store uncompressed images so
//! the pipeline only does crop/flip/normalize, and let the now-faster
//! pipeline build a prefetch buffer that absorbs residual variance.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use multipod_telemetry::{MetricId, Subsystem, Telemetry};
use multipod_trace::{SimTime, SpanCategory, SpanEvent, TraceSink, Track};

use crate::InputError;

/// What the host pipeline must do per sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostPipelineConfig {
    /// Base per-sample cost (crop + flip + normalize), seconds.
    pub augment_cost: f64,
    /// Mean additional JPEG decode cost, seconds (zero when the dataset
    /// is stored uncompressed).
    pub decode_cost: f64,
    /// Probability that a sample is a "large image" whose decode costs
    /// `decode_tail_multiplier` times more.
    pub tail_probability: f64,
    /// Cost multiplier of tail samples.
    pub decode_tail_multiplier: f64,
    /// Prefetch buffer capacity, in samples (0 disables prefetching).
    pub prefetch_capacity: usize,
    /// Parallel worker threads per host.
    pub workers: usize,
}

impl HostPipelineConfig {
    /// The compressed-JPEG ImageNet pipeline (decode dominates, heavy
    /// tail, as before the paper's optimization).
    pub fn compressed_imagenet() -> HostPipelineConfig {
        HostPipelineConfig {
            augment_cost: 50.0e-6,
            decode_cost: 400.0e-6,
            tail_probability: 0.02,
            decode_tail_multiplier: 10.0,
            prefetch_capacity: 64,
            workers: 16,
        }
    }

    /// The paper's uncompressed-image pipeline: decode eliminated, only
    /// crop/flip/normalize remain, and the freed throughput fills a large
    /// prefetch buffer.
    pub fn uncompressed_imagenet() -> HostPipelineConfig {
        HostPipelineConfig {
            augment_cost: 50.0e-6,
            decode_cost: 0.0,
            tail_probability: 0.0,
            decode_tail_multiplier: 1.0,
            prefetch_capacity: 1024,
            workers: 16,
        }
    }

    /// The legacy large-image JPEG pipeline the paper replaced (§3.5):
    /// full-size decodes dominate and oversized images cost 8× — the
    /// configuration behind the analytic step model's compressed-input
    /// stall.
    pub fn large_image_imagenet() -> HostPipelineConfig {
        HostPipelineConfig {
            augment_cost: 50.0e-6,
            decode_cost: 1.2e-3,
            tail_probability: 0.02,
            decode_tail_multiplier: 8.0,
            prefetch_capacity: 64,
            workers: 16,
        }
    }

    /// Expected per-sample cost, seconds: the augment cost plus the mean
    /// decode cost including the heavy-tail contribution. This is the
    /// deterministic per-sample figure the analytic step model and the
    /// task-graph input-fetch task charge (the stochastic
    /// [`simulate_run`] jitters around it).
    pub fn mean_sample_seconds(&self) -> f64 {
        self.augment_cost
            + self.decode_cost * (1.0 + self.tail_probability * (self.decode_tail_multiplier - 1.0))
    }

    fn sample_cost(&self, rng: &mut SmallRng) -> f64 {
        let mut cost = self.augment_cost;
        if self.decode_cost > 0.0 {
            let mult = if rng.gen_range(0.0..1.0) < self.tail_probability {
                self.decode_tail_multiplier
            } else {
                1.0
            };
            // Uniform jitter around the mean decode time.
            cost += self.decode_cost * mult * rng.gen_range(0.5..1.5);
        }
        cost
    }
}

/// Input-side statistics of a simulated training run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InputStats {
    /// Mean per-step input stall across all steps, seconds.
    pub mean_stall: f64,
    /// Worst per-step stall, seconds.
    pub max_stall: f64,
    /// Fraction of steps with any stall.
    pub stalled_fraction: f64,
    /// Sustained per-host throughput, samples/second.
    pub host_throughput: f64,
}

/// Simulates `steps` training steps on `hosts` hosts, each of which must
/// deliver `samples_per_host` samples every `step_time` seconds.
///
/// Hosts run `workers` parallel preprocessing threads into a prefetch
/// buffer; the accelerator step stalls when the buffer of *any* host is
/// empty at its deadline (input time is a per-step max across hosts).
///
/// # Errors
///
/// Returns [`InputError::EmptyRun`] when `hosts`, `steps` or
/// `samples_per_host` is zero.
pub fn simulate_run(
    config: &HostPipelineConfig,
    hosts: usize,
    samples_per_host: usize,
    step_time: f64,
    steps: usize,
    seed: u64,
) -> Result<InputStats, InputError> {
    simulate_run_observed(
        config,
        hosts,
        samples_per_host,
        step_time,
        steps,
        seed,
        None,
        None,
    )
}

/// [`simulate_run`] with an optional trace sink: each host's per-step
/// input work becomes an input span on that host's track (spans that
/// overrun the step deadline carry a `stall_seconds` argument).
///
/// # Errors
///
/// See [`simulate_run`].
pub fn simulate_run_traced(
    config: &HostPipelineConfig,
    hosts: usize,
    samples_per_host: usize,
    step_time: f64,
    steps: usize,
    seed: u64,
    sink: Option<&dyn TraceSink>,
) -> Result<InputStats, InputError> {
    simulate_run_observed(
        config,
        hosts,
        samples_per_host,
        step_time,
        steps,
        seed,
        sink,
        None,
    )
}

/// [`simulate_run_traced`] plus an optional telemetry sink recording
/// per-step stall histograms, stalled-step counters, and the sustained
/// host throughput gauge.
///
/// # Errors
///
/// See [`simulate_run`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_run_observed(
    config: &HostPipelineConfig,
    hosts: usize,
    samples_per_host: usize,
    step_time: f64,
    steps: usize,
    seed: u64,
    sink: Option<&dyn TraceSink>,
    telemetry: Option<&Telemetry>,
) -> Result<InputStats, InputError> {
    if hosts == 0 || steps == 0 || samples_per_host == 0 {
        return Err(InputError::EmptyRun {
            hosts,
            samples_per_host,
            steps,
        });
    }
    let mut total_stall = 0.0f64;
    let mut max_stall = 0.0f64;
    let mut stalled_steps = 0usize;
    let mut throughput_acc = 0.0f64;

    // Hosts are independent; the per-step stall is the max over hosts.
    // Simulate each host's producer/consumer timeline.
    let mut per_host_stalls = vec![vec![0.0f64; steps]; hosts];
    for (h, stall_row) in per_host_stalls.iter_mut().enumerate() {
        let mut rng = SmallRng::seed_from_u64(seed ^ (h as u64).wrapping_mul(0x9e37_79b9));
        // `ready_at` = when each produced sample becomes available.
        // Workers pipeline samples; the producer clock advances by
        // cost/workers per sample (steady-state parallel throughput).
        let mut producer_clock = 0.0f64;
        let mut buffered = 0usize;
        let mut produced_total = 0usize;
        let mut consumer_clock = 0.0f64;
        for (s, stall) in stall_row.iter_mut().enumerate() {
            // Produce as much as possible until the nominal deadline,
            // bounded by the prefetch capacity.
            let step_start = consumer_clock;
            let deadline = consumer_clock + step_time;
            while producer_clock < deadline && buffered < config.prefetch_capacity.max(1) {
                producer_clock += config.sample_cost(&mut rng) / config.workers as f64;
                buffered += 1;
                produced_total += 1;
            }
            // Consume the step's demand; produce on demand if short.
            if buffered >= samples_per_host {
                buffered -= samples_per_host;
                consumer_clock = deadline;
            } else {
                let mut missing = samples_per_host - buffered;
                buffered = 0;
                while missing > 0 {
                    producer_clock = producer_clock.max(deadline)
                        + config.sample_cost(&mut rng) / config.workers as f64;
                    produced_total += 1;
                    missing -= 1;
                }
                *stall = producer_clock - deadline;
                consumer_clock = producer_clock;
            }
            if let Some(sink) = sink {
                sink.record_span(
                    SpanEvent::new(
                        Track::Host { host: h as u32 },
                        SpanCategory::Input,
                        "step-input",
                        SimTime::from_seconds(step_start),
                        SimTime::from_seconds(consumer_clock),
                    )
                    .with_arg("step", s as f64)
                    .with_arg("stall_seconds", *stall),
                );
            }
        }
        throughput_acc += produced_total as f64 / consumer_clock.max(1e-12);
    }

    for s in 0..steps {
        let step_stall = per_host_stalls
            .iter()
            .map(|row| row[s])
            .fold(0.0f64, f64::max);
        total_stall += step_stall;
        max_stall = max_stall.max(step_stall);
        if step_stall > 0.0 {
            stalled_steps += 1;
        }
        if let Some(telemetry) = telemetry {
            telemetry.observe(
                MetricId::new(Subsystem::Input, "step_stall_seconds"),
                step_stall,
            );
        }
    }
    let stats = InputStats {
        mean_stall: total_stall / steps as f64,
        max_stall,
        stalled_fraction: stalled_steps as f64 / steps as f64,
        host_throughput: throughput_acc / hosts as f64,
    };
    if let Some(telemetry) = telemetry {
        telemetry.inc_counter(MetricId::new(Subsystem::Input, "steps"), steps as u64);
        telemetry.inc_counter(
            MetricId::new(Subsystem::Input, "stalled_steps"),
            stalled_steps as u64,
        );
        telemetry.set_gauge(
            MetricId::new(Subsystem::Input, "host_throughput_samples_per_second"),
            stats.host_throughput,
        );
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_sample_seconds_includes_the_decode_tail() {
        let fast = HostPipelineConfig::uncompressed_imagenet();
        assert_eq!(fast.mean_sample_seconds(), 50.0e-6);
        let slow = HostPipelineConfig::large_image_imagenet();
        // augment + decode × (1 + p × (mult − 1)).
        let expected: f64 = 50.0e-6 + 1.2e-3 * (1.0 + 0.02 * 7.0);
        assert_eq!(slow.mean_sample_seconds().to_bits(), expected.to_bits());
        assert!(
            slow.mean_sample_seconds()
                > HostPipelineConfig::compressed_imagenet().mean_sample_seconds()
        );
    }

    #[test]
    fn uncompressed_pipeline_eliminates_stalls() {
        // Near-capacity demand (32 samples per 1 ms step): the compressed
        // pipeline's decode tail stalls steps, the uncompressed one never
        // does.
        let steps = 200;
        let compressed = simulate_run(
            &HostPipelineConfig::compressed_imagenet(),
            64,
            32,
            1.0e-3,
            steps,
            7,
        )
        .unwrap();
        let uncompressed = simulate_run(
            &HostPipelineConfig::uncompressed_imagenet(),
            64,
            32,
            1.0e-3,
            steps,
            7,
        )
        .unwrap();
        assert!(uncompressed.mean_stall < 1e-6, "{uncompressed:?}");
        assert!(
            compressed.stalled_fraction > 0.2,
            "compressed={compressed:?}"
        );
        assert!(compressed.mean_stall > 1e-5, "compressed={compressed:?}");
    }

    #[test]
    fn imbalance_grows_with_host_count() {
        // More hosts → higher chance one host hits the decode tail in a
        // given step → larger max-over-hosts stall.
        let cfg = HostPipelineConfig {
            prefetch_capacity: 4, // shallow buffer exposes the tail
            ..HostPipelineConfig::compressed_imagenet()
        };
        let few = simulate_run(&cfg, 4, 32, 1.1e-3, 150, 11).unwrap();
        let many = simulate_run(&cfg, 256, 32, 1.1e-3, 150, 11).unwrap();
        assert!(
            many.stalled_fraction >= few.stalled_fraction,
            "few={few:?} many={many:?}"
        );
    }

    #[test]
    fn prefetch_buffer_absorbs_tail() {
        let shallow = HostPipelineConfig {
            prefetch_capacity: 1,
            ..HostPipelineConfig::compressed_imagenet()
        };
        let deep = HostPipelineConfig {
            prefetch_capacity: 512,
            ..HostPipelineConfig::compressed_imagenet()
        };
        // Demand below mean throughput, so buffering can work.
        let s_shallow = simulate_run(&shallow, 32, 32, 1.2e-3, 200, 3).unwrap();
        let s_deep = simulate_run(&deep, 32, 32, 1.2e-3, 200, 3).unwrap();
        assert!(
            s_deep.mean_stall <= s_shallow.mean_stall,
            "deep={s_deep:?} shallow={s_shallow:?}"
        );
    }

    #[test]
    fn overloaded_host_always_stalls() {
        // Demand beyond sustained throughput: every step stalls no matter
        // the buffering.
        let cfg = HostPipelineConfig::compressed_imagenet();
        // 16 workers, ~450 µs/sample → ~28 µs/sample effective;
        // 1000 samples per 1 ms step is far beyond capacity.
        let stats = simulate_run(&cfg, 8, 1000, 1.0e-3, 50, 5).unwrap();
        assert!(stats.stalled_fraction > 0.9);
        assert!(stats.mean_stall > 1.0e-3);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = HostPipelineConfig::compressed_imagenet();
        let a = simulate_run(&cfg, 16, 32, 10.0e-3, 100, 9).unwrap();
        let b = simulate_run(&cfg, 16, 32, 10.0e-3, 100, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn throughput_reported_positive() {
        let cfg = HostPipelineConfig::uncompressed_imagenet();
        let stats = simulate_run(&cfg, 4, 64, 5.0e-3, 100, 1).unwrap();
        // 16 workers at 50 µs/sample → ~320k samples/s.
        assert!(stats.host_throughput > 1e4);
    }

    #[test]
    fn empty_run_is_a_typed_error() {
        let cfg = HostPipelineConfig::uncompressed_imagenet();
        let err = simulate_run(&cfg, 0, 32, 1e-3, 10, 1).unwrap_err();
        assert_eq!(
            err,
            InputError::EmptyRun {
                hosts: 0,
                samples_per_host: 32,
                steps: 10,
            }
        );
        assert!(simulate_run(&cfg, 4, 32, 1e-3, 0, 1).is_err());
        assert!(simulate_run(&cfg, 4, 0, 1e-3, 10, 1).is_err());
    }

    #[test]
    fn telemetry_records_stall_metrics() {
        let cfg = HostPipelineConfig::compressed_imagenet();
        let telemetry = Telemetry::new();
        let stats =
            simulate_run_observed(&cfg, 8, 32, 1.0e-3, 100, 7, None, Some(&telemetry)).unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter(&MetricId::new(Subsystem::Input, "steps")), 100);
        let stalled = snap.counter(&MetricId::new(Subsystem::Input, "stalled_steps"));
        assert_eq!(stalled as f64 / 100.0, stats.stalled_fraction);
        let hist = snap
            .histogram(&MetricId::new(Subsystem::Input, "step_stall_seconds"))
            .unwrap();
        assert_eq!(hist.count, 100);
        assert_eq!(hist.max, stats.max_stall);
        assert_eq!(
            snap.gauge(&MetricId::new(
                Subsystem::Input,
                "host_throughput_samples_per_second"
            )),
            Some(stats.host_throughput)
        );
    }
}
