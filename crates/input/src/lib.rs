//! Host input pipeline simulation (§3.5).
//!
//! At multipod scale the host input pipelines become first-order
//! performance objects. The paper describes three problems and their
//! fixes, all reproduced here:
//!
//! * **ResNet-50 load imbalance** — JPEG decode times have a heavy tail,
//!   and with thousands of hosts *some* host is always slow; storing
//!   uncompressed images plus a deep prefetch buffer removes the
//!   imbalance ([`host_pipeline`]).
//! * **BERT shuffle quality** — `shuffle→repeat` at the file level plus a
//!   large sequence-level shuffle buffer gives both coverage and
//!   stochasticity; small buffers create biased batches and run-to-run
//!   convergence variance ([`shuffle`]).
//! * **DLRM input bound** — batch-granularity parsing and stacked PCIe
//!   transfers of the ~40 features ([`dlrm`]).

pub mod dlrm;
pub mod host_pipeline;
pub mod shuffle;

mod error;

pub use error::InputError;
