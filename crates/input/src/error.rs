//! Typed errors for the input-pipeline simulations.

use serde::{Deserialize, Serialize};

/// Why an input-pipeline simulation request was rejected.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputError {
    /// A run needs at least one host, one step, and one sample per host.
    EmptyRun {
        /// Requested host count.
        hosts: usize,
        /// Requested samples per host per step.
        samples_per_host: usize,
        /// Requested step count.
        steps: usize,
    },
    /// A shuffle buffer must hold at least one sample.
    ZeroShuffleCapacity,
    /// Batch statistics need the stream to cover at least one batch.
    BatchExceedsStream {
        /// Requested batch size (zero is also rejected).
        batch: usize,
        /// Length of the provided stream.
        stream_len: usize,
    },
    /// Coverage needs at least one file, host, and epoch.
    EmptyCoverage {
        /// Requested file count.
        files: usize,
        /// Requested host count.
        hosts: usize,
        /// Requested epoch count.
        epochs: usize,
    },
}

impl std::fmt::Display for InputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputError::EmptyRun {
                hosts,
                samples_per_host,
                steps,
            } => write!(
                f,
                "input run needs hosts, samples, and steps all positive, \
                 got hosts={hosts} samples_per_host={samples_per_host} steps={steps}"
            ),
            InputError::ZeroShuffleCapacity => {
                write!(f, "shuffle buffer capacity must be positive")
            }
            InputError::BatchExceedsStream { batch, stream_len } => write!(
                f,
                "batch size {batch} must be positive and no larger than the stream ({stream_len})"
            ),
            InputError::EmptyCoverage {
                files,
                hosts,
                epochs,
            } => write!(
                f,
                "coverage needs files, hosts, and epochs all positive, \
                 got files={files} hosts={hosts} epochs={epochs}"
            ),
        }
    }
}

impl std::error::Error for InputError {}
