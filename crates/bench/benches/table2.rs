//! Bench: Table-2 initialization-time model for both frameworks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}
use multipod_framework::{profiles, FrameworkKind, InitModel};

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    let model = InitModel::calibrated();
    for kind in [FrameworkKind::TensorFlow, FrameworkKind::Jax] {
        g.bench_function(format!("{:?}-all-benchmarks", kind), |b| {
            b.iter(|| {
                multipod_bench::paper::TABLE2
                    .iter()
                    .map(|&(name, chips, _, _)| {
                        let profile = profiles::by_name(name).expect("profile");
                        model.init_seconds(kind, &profile, chips)
                    })
                    .sum::<f64>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
