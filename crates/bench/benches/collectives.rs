//! Micro-bench: the collective substrate itself (numeric rings, 2-D
//! schedule, timing layer).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}
use multipod_collectives::timing::RingCosts;
use multipod_collectives::twod::{two_dim_all_reduce, two_dim_all_reduce_time};
use multipod_collectives::{ring, Precision};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::{Multipod, MultipodConfig};

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    let mut rng = TensorRng::seed(1);
    let inputs: Vec<Tensor> = (0..32)
        .map(|_| rng.uniform(Shape::vector(1 << 14), -1.0, 1.0))
        .collect();
    g.bench_function("numeric-ring-allreduce-32x16k", |b| {
        b.iter(|| {
            let mesh = Multipod::new(MultipodConfig::mesh(1, 32, true));
            let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
            let ring_y = net.mesh().y_ring(0);
            ring::all_reduce(&mut net, &ring_y, &inputs, Precision::F32, SimTime::ZERO).unwrap()
        })
    });
    let small: Vec<Tensor> = (0..64)
        .map(|_| rng.uniform(Shape::vector(256), -1.0, 1.0))
        .collect();
    g.bench_function("numeric-2d-allreduce-8x8", |b| {
        b.iter(|| {
            let mesh = Multipod::new(MultipodConfig::mesh(8, 8, true));
            let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
            two_dim_all_reduce(&mut net, &small, Precision::F32, 1, None).unwrap()
        })
    });
    let multipod = Network::new(
        Multipod::new(MultipodConfig::multipod(4)),
        NetworkConfig::tpu_v3(),
    );
    g.bench_function("timing-2d-allreduce-4096-chips", |b| {
        b.iter(|| two_dim_all_reduce_time(&multipod, 25_600_000, Precision::F32, 1))
    });
    g.bench_function("timing-ring-costs-from-topology", |b| {
        b.iter(|| RingCosts::from_ring(&multipod, &multipod.mesh().x_line(0), 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
