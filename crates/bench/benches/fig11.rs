//! Bench: Figure-11 normalized speedup computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig11_normalized_speedup");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}
use multipod_core::scaling::{standard_chip_counts, ScalingCurve};
use multipod_models::{catalog, GpuCluster, GpuGeneration};

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("tpu-and-gpu-speedups", |b| {
        b.iter(|| {
            let curve = ScalingCurve::sweep(&catalog::bert(), &standard_chip_counts(1024)).unwrap();
            let tpu = curve.end_to_end_speedups().last().unwrap().1;
            let base = GpuCluster::new(GpuGeneration::A100, 16)
                .expect("cluster")
                .end_to_end_minutes(&catalog::bert())
                .expect("e2e");
            let top = GpuCluster::new(GpuGeneration::A100, 1024)
                .expect("cluster")
                .end_to_end_minutes(&catalog::bert())
                .expect("e2e");
            tpu + base / top
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
