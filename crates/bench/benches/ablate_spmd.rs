//! Ablation bench: SPMD vs MPMD compile cost and naive vs optimized
//! communication (§4.4, §4.5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("ablate_spmd");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}
use multipod_hlo::{
    CommunicationOpt, GatherStrategy, HloBuilder, MpmdPartitioner, Sharding, SpmdPartitioner,
};
use multipod_tensor::{Shape, Tensor};

fn deep_graph(parts: usize) -> multipod_hlo::HloGraph {
    let mut b = HloBuilder::new();
    let mut x = b.parameter("x", Shape::of(&[64, 64]), Sharding::split(0, parts));
    for i in 0..16 {
        let w = b.parameter(&format!("w{i}"), Shape::of(&[64, 64]), Sharding::Replicated);
        x = b.matmul(x, w).unwrap();
        x = b.relu(x).unwrap();
    }
    b.build(vec![x]).unwrap()
}

fn gather_graph(parts: usize) -> multipod_hlo::HloGraph {
    let mut b = HloBuilder::new();
    let table = b.parameter("t", Shape::of(&[4096, 64]), Sharding::split(0, parts));
    let idx = b.constant(Tensor::from_slice(
        &(0..64).map(|i| (i * 61 % 4096) as f32).collect::<Vec<_>>(),
    ));
    let y = b.gather(table, idx).unwrap();
    b.build(vec![y]).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for strategy in [GatherStrategy::AllGather, GatherStrategy::OneHotMatMul] {
        g.bench_function(format!("gather-{strategy:?}-8-cores"), |b| {
            let graph = gather_graph(8);
            b.iter(|| {
                SpmdPartitioner::new(8)
                    .with_gather_strategy(strategy)
                    .partition(&graph)
                    .unwrap()
                    .comm_stats()
            })
        });
    }
    for parts in [2usize, 8] {
        g.bench_function(format!("spmd-partition-{parts}"), |b| {
            let graph = deep_graph(parts);
            b.iter(|| SpmdPartitioner::new(parts).partition(&graph).unwrap())
        });
        g.bench_function(format!("mpmd-partition-{parts}"), |b| {
            let graph = deep_graph(parts);
            b.iter(|| MpmdPartitioner::new(parts).partition(&graph).unwrap())
        });
        g.bench_function(format!("naive-comm-partition-{parts}"), |b| {
            let graph = deep_graph(parts);
            b.iter(|| {
                SpmdPartitioner::with_comm_opt(parts, CommunicationOpt::Naive)
                    .partition(&graph)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
