//! Bench: Figure-10 TPU-vs-GPU comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig10_tpu_vs_gpu");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}
use multipod_models::{catalog, GpuCluster, GpuGeneration};

/// Largest GPU count whose replica count still fits each model's batch
/// cap (MaskRCNN and DLRM cannot scale arbitrarily, Table 1).
fn gpu_cap(name: &str) -> u32 {
    match name {
        "MaskRCNN" => 256,
        "DLRM" => 64,
        "Transformer" => 512,
        _ => 512,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("gpu-baselines-all-models", |b| {
        b.iter(|| {
            catalog::all()
                .iter()
                .map(|w| {
                    let gpus = gpu_cap(w.name);
                    let a100 = GpuCluster::new(GpuGeneration::A100, gpus).expect("cluster");
                    let v100 = GpuCluster::new(GpuGeneration::V100, gpus).expect("cluster");
                    a100.end_to_end_minutes(w).expect("e2e")
                        + v100.end_to_end_minutes(w).expect("e2e")
                })
                .sum::<f64>()
        })
    });
    g.bench_function("tpu-headline-rows", |b| {
        b.iter(|| {
            [("ResNet-50", 4096u32), ("BERT", 4096), ("MaskRCNN", 512)]
                .iter()
                .map(|&(n, c)| {
                    multipod_bench::run(multipod_bench::preset_by_name(n, c)).end_to_end_minutes()
                })
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
