//! Bench: Figure-9 model-parallel speedup curves (SPMD partitioning
//! included).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig9_model_parallel");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}
use multipod_core::modelpar::speedup_curve;
use multipod_models::catalog;

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("ssd-1-8-cores", |b| {
        b.iter(|| speedup_curve(&catalog::ssd(), 1.0, &[1, 2, 4, 8]).unwrap())
    });
    g.bench_function("maskrcnn-1-8-cores", |b| {
        b.iter(|| speedup_curve(&catalog::maskrcnn(), 1.0, &[1, 2, 4, 8]).unwrap())
    });
    g.bench_function("transformer-1-4-cores", |b| {
        b.iter(|| speedup_curve(&catalog::transformer(), 1.0, &[1, 2, 4]).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
