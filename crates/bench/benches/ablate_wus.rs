//! Ablation bench: weight-update sharding on/off (§3.2), numeric and
//! timing layers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("ablate_wus");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}
use multipod_collectives::Precision;
use multipod_core::step::{step_breakdown, StepOptions};
use multipod_models::catalog;
use multipod_optim::wus::{replicated_step, sharded_step};
use multipod_optim::Lamb;
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::{Multipod, MultipodConfig};

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for wus in [false, true] {
        g.bench_function(format!("step-model-bert-512-wus-{wus}"), |b| {
            b.iter(|| {
                step_breakdown(
                    &catalog::bert(),
                    512,
                    &StepOptions {
                        weight_update_sharding: wus,
                        ..Default::default()
                    },
                )
            })
        });
    }
    // Numeric layers: actual tensor math + simulated collectives.
    let elems = 1 << 14;
    let n = 8u32;
    let mut rng = TensorRng::seed(1);
    let w0 = rng.uniform(Shape::vector(elems), -1.0, 1.0);
    let grads: Vec<Tensor> = (0..n)
        .map(|_| rng.uniform(Shape::vector(elems), -0.1, 0.1))
        .collect();
    g.bench_function("numeric-replicated-lamb", |b| {
        b.iter(|| {
            let mesh = Multipod::new(MultipodConfig::mesh(1, n, true));
            let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
            let ring = net.mesh().y_ring(0);
            let mut opt = Lamb::new(0.01, 0.01);
            let mut weights: Vec<Tensor> = (0..n).map(|_| w0.clone()).collect();
            replicated_step(
                &mut net,
                &ring,
                &mut opt,
                0,
                &mut weights,
                &grads,
                Precision::F32,
                SimTime::ZERO,
            )
            .unwrap()
        })
    });
    g.bench_function("numeric-sharded-lamb", |b| {
        b.iter(|| {
            let mesh = Multipod::new(MultipodConfig::mesh(1, n, true));
            let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
            let ring = net.mesh().y_ring(0);
            let mut opt = Lamb::new(0.01, 0.01);
            let mut weights: Vec<Tensor> = (0..n).map(|_| w0.clone()).collect();
            sharded_step(
                &mut net,
                &ring,
                &mut opt,
                0,
                &mut weights,
                &grads,
                Precision::F32,
                SimTime::ZERO,
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
