//! Bench: the scaling sweep behind fig8_bert_breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig8_bert_breakdown");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}
use multipod_core::scaling::{standard_chip_counts, ScalingCurve};
use multipod_models::catalog;

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("sweep-16-to-4096", |b| {
        b.iter(|| ScalingCurve::sweep(&catalog::bert(), &standard_chip_counts(4096)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
