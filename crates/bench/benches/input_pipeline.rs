//! Bench: §3.5 host input pipeline simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("input_pipeline");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}
use multipod_input::host_pipeline::{simulate_run, HostPipelineConfig};
use multipod_input::shuffle::{buffered_shuffle, run_to_run_spread};

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("compressed-64-hosts", |b| {
        b.iter(|| {
            simulate_run(
                &HostPipelineConfig::compressed_imagenet(),
                64,
                32,
                1.0e-3,
                100,
                7,
            )
            .unwrap()
        })
    });
    g.bench_function("uncompressed-64-hosts", |b| {
        b.iter(|| {
            simulate_run(
                &HostPipelineConfig::uncompressed_imagenet(),
                64,
                32,
                1.0e-3,
                100,
                7,
            )
            .unwrap()
        })
    });
    let corpus: Vec<f32> = (0..65536).map(|i| i as f32).collect();
    g.bench_function("shuffle-buffer-4096", |b| {
        b.iter(|| buffered_shuffle(&corpus, 4096, 3).unwrap())
    });
    g.bench_function("run-to-run-spread-study", |b| {
        b.iter(|| run_to_run_spread(8192, 256, 64, 8).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
