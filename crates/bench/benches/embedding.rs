//! Bench: the DLRM embedding substrate (§4.6).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use multipod_embedding::{masked_self_interaction, EmbeddingSpec, Placement, ShardedEmbedding};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_tensor::{Shape, TensorRng};
use multipod_topology::{Multipod, MultipodConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("embedding");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));

    let specs: Vec<EmbeddingSpec> = (0..8)
        .map(|i| EmbeddingSpec {
            rows: if i < 4 { 256 } else { 100_000 },
            dim: 16,
        })
        .collect();
    let placement = Placement::plan(&specs, 16, 64 * 1024);
    let emb = ShardedEmbedding::init(placement, 3).unwrap();
    let mut rng = SmallRng::seed_from_u64(9);
    let indices: Vec<Vec<usize>> = (0..512)
        .map(|_| {
            (0..8)
                .map(|t| rng.gen_range(0..if t < 4 { 256 } else { 100_000 }))
                .collect()
        })
        .collect();
    g.bench_function("distributed-lookup-512x8", |b| {
        b.iter(|| {
            let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
            let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
            emb.lookup(&mut net, &indices, SimTime::ZERO).unwrap()
        })
    });

    let mut trng = TensorRng::seed(4);
    let feats = trng.uniform(Shape::of(&[256, 26 * 16]), -1.0, 1.0);
    g.bench_function("masked-self-interaction-256x26", |b| {
        b.iter(|| masked_self_interaction(&feats, 16).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
