//! Bench: generating every Table-1 row (full executor runs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for &(name, chips, ..) in multipod_bench::paper::TABLE1 {
        g.bench_function(format!("{name}@{chips}"), |b| {
            b.iter(|| multipod_bench::run(multipod_bench::preset_by_name(name, chips)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
