//! Bench: §4.6 AUC implementations (the 60 s vs 2 s contrast, scaled
//! down to bench-friendly sizes).
//!
//! Note the regimes: at 4M samples the parallel-merge overhead roughly
//! cancels the threaded-sort win, so `fast` ≈ `exact`; the multithreaded
//! path pulls ahead past ~10M samples (at the paper's 90M-sample scale it
//! wins >2x — see `repro_auc`, which measures 20M).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("auc");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}
use multipod_metrics::auc::{auc_exact, auc_fast, auc_naive};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn synthetic(n: usize) -> (Vec<f32>, Vec<bool>) {
    let mut rng = SmallRng::seed_from_u64(42);
    let mut scores = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let label = rng.gen_range(0.0..1.0f32) < 0.25;
        let base: f32 = if label { 0.6 } else { 0.4 };
        scores.push((base + rng.gen_range(-0.4..0.4f32)).clamp(0.0, 1.0));
        labels.push(label);
    }
    (scores, labels)
}

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    let (scores, labels) = synthetic(4_000_000);
    g.bench_function("naive-4m", |b| b.iter(|| auc_naive(&scores, &labels)));
    g.bench_function("exact-4m", |b| b.iter(|| auc_exact(&scores, &labels)));
    g.bench_function("fast-8-threads-4m", |b| {
        b.iter(|| auc_fast(&scores, &labels, 8))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
