//! Ablation bench: 1-D snake ring vs the 2-D schedule (§3.3).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use multipod_collectives::Precision;
use multipod_core::ablate::{precision_ablation, summation_ablation};

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("ablate_summation");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}

fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("1d-vs-2d-sweep", |b| {
        b.iter(|| summation_ablation(25_600_000, Precision::F32, &[64, 1024, 4096]).unwrap())
    });
    g.bench_function("precision-sweep", |b| {
        b.iter(|| precision_ablation(334_000_000, &[256, 4096]).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
