//! The committed bench artifacts must exist and stay in the
//! [`BenchReport`] envelope.
//!
//! Every `repro_*` binary that defaults its `--json` output to a
//! repo-root `BENCH_*.json` commits that artifact as the reference for
//! EXPERIMENTS.md and for CI regression checks. A missing artifact (a
//! new repro binary landed without its artifact) or a stale format (the
//! envelope changed without regenerating) fails here, in plain
//! `cargo test`, before any CI regression step would silently compare
//! against nothing.

use std::path::{Path, PathBuf};

/// Default artifacts of the repro binaries, kept in sync with the
/// `--json` defaults in `crates/bench/src/bin/repro_*.rs`.
const COMMITTED_ARTIFACTS: &[&str] = &[
    "BENCH_ckpt.json",
    "BENCH_collectives.json",
    "BENCH_faults.json",
    "BENCH_overlap.json",
    "BENCH_profile.json",
    "BENCH_sched.json",
    "BENCH_serve.json",
    "BENCH_simnet.json",
];

fn repo_root() -> PathBuf {
    // crates/bench -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate lives two levels under the repo root")
        .to_path_buf()
}

#[test]
fn every_default_repro_artifact_is_committed_and_well_formed() {
    let root = repo_root();
    let mut problems = Vec::new();
    for name in COMMITTED_ARTIFACTS {
        let path = root.join(name);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                problems.push(format!("{name}: missing ({e})"));
                continue;
            }
        };
        let doc: serde_json::Value = match serde_json::from_str(&text) {
            Ok(d) => d,
            Err(e) => {
                problems.push(format!("{name}: not valid JSON ({e})"));
                continue;
            }
        };
        // The BenchReport envelope: name/mesh/chips plus gate and
        // measurement maps.
        for key in ["name", "mesh", "chips", "gates", "measurements"] {
            if doc.get(key).is_none() {
                problems.push(format!("{name}: stale format, missing `{key}`"));
            }
        }
        if let Some(serde_json::Value::Map(gates)) = doc.get("gates") {
            for (gate, value) in gates {
                // Unchecked gates serialize as null; checked ones must
                // have passed when the artifact was generated.
                if *value == serde_json::Value::Bool(false) {
                    problems.push(format!("{name}: committed with failing gate `{gate}`"));
                }
            }
        }
    }
    assert!(
        problems.is_empty(),
        "bench artifacts out of date — regenerate with the repro binaries:\n{}",
        problems.join("\n")
    );
}

#[test]
fn artifact_list_matches_the_repro_binaries() {
    // Every repro binary that defaults a BENCH_*.json output must be in
    // COMMITTED_ARTIFACTS, and vice versa.
    let bins = repo_root().join("crates/bench/src/bin");
    let mut defaults = Vec::new();
    for entry in std::fs::read_dir(&bins).expect("bin dir") {
        let path = entry.expect("dir entry").path();
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        for line in src.lines() {
            if let Some(start) = line.find("\"BENCH_") {
                let rest = &line[start + 1..];
                if let Some(end) = rest.find('"') {
                    defaults.push(rest[..end].to_string());
                }
            }
        }
    }
    defaults.sort();
    defaults.dedup();
    let mut expected: Vec<String> = COMMITTED_ARTIFACTS.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(
        defaults, expected,
        "repro binaries and COMMITTED_ARTIFACTS disagree — update the test list"
    );
}
