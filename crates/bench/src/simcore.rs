//! Simulator-core event replay: the shared workload behind
//! `repro_simnet` and the `simnet` section of `repro_all`.
//!
//! Drives the message pattern of one 2-D all-reduce step event by event,
//! on either side of the hardware-fast rewrite: the seed core (binary-heap
//! [`HeapEventQueue`] plus a network that re-derives the route, per-hop
//! latency, and hash-map link occupancy on every transfer) or the
//! optimized core (calendar [`EventQueue`] plus the memoized [`Network`]
//! with interned links, cached `Arc<Route>` paths, and dense occupancy
//! vectors). Both sides execute the same discrete-event simulation and
//! must agree on every event time, bit for bit.

use std::collections::HashMap;
use std::time::Instant;

use multipod_simnet::{EventQueue, HeapEventQueue, Network, NetworkConfig, SimTime};
use multipod_topology::{ChipId, Multipod, MultipodConfig, Ring};

/// One in-flight chain: ring `ring`'s member `member` finishing schedule
/// step `step`.
pub type Ev = (u32, u32, u32);

/// The two queue implementations expose the same API; the simulation is
/// generic over it so both sides run the exact same code.
pub trait EventSource {
    fn schedule(&mut self, time: SimTime, payload: Ev);
    fn pop(&mut self) -> Option<(SimTime, Ev)>;
}

impl EventSource for EventQueue<Ev> {
    fn schedule(&mut self, time: SimTime, payload: Ev) {
        EventQueue::schedule(self, time, payload);
    }
    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        EventQueue::pop(self)
    }
}

impl EventSource for HeapEventQueue<Ev> {
    fn schedule(&mut self, time: SimTime, payload: Ev) {
        HeapEventQueue::schedule(self, time, payload);
    }
    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        HeapEventQueue::pop(self)
    }
}

/// The timing core under test: something that can reserve a message on
/// the interconnect and report when it lands.
pub trait TimingCore {
    fn transfer(&mut self, from: ChipId, to: ChipId, bytes: u64, start: SimTime) -> SimTime;
}

impl TimingCore for Network {
    fn transfer(&mut self, from: ChipId, to: ChipId, bytes: u64, start: SimTime) -> SimTime {
        Network::transfer(self, from, to, bytes, start)
            .expect("live torus routes every pair")
            .finish
    }
}

/// The seed network, reconstructed: no route cache, no interned links —
/// every transfer re-derives the route, re-sums per-hop latency, and hits
/// a hash map per hop for occupancy. Arithmetic is identical to
/// [`Network::reserve`] (route-order latency sum, max over link free
/// times), so the two cores must agree bit for bit.
pub struct SeedNetwork {
    mesh: Multipod,
    config: NetworkConfig,
    busy: HashMap<(u32, u32), SimTime>,
}

impl SeedNetwork {
    pub fn new(cfg: &MultipodConfig) -> SeedNetwork {
        SeedNetwork {
            mesh: Multipod::new(cfg.clone()),
            config: NetworkConfig::tpu_v3(),
            busy: HashMap::new(),
        }
    }
}

impl TimingCore for SeedNetwork {
    fn transfer(&mut self, from: ChipId, to: ChipId, bytes: u64, start: SimTime) -> SimTime {
        let route = self.mesh.route(from, to).expect("live torus");
        let serialization = bytes as f64 / self.config.link_bandwidth;
        let mut latency = 0.0f64;
        let mut depart = start + self.config.message_overhead;
        for w in route.chips.windows(2) {
            let class = self.mesh.link_between(w[0], w[1]).expect("route link");
            latency += self.config.hop_latency * class.latency_multiplier();
            if let Some(&free) = self.busy.get(&(w[0].0, w[1].0)) {
                depart = depart.max(free);
            }
        }
        let finish = depart + latency + serialization;
        let busy_until = depart + serialization;
        for w in route.chips.windows(2) {
            self.busy.insert((w[0].0, w[1].0), busy_until);
        }
        finish
    }
}

/// The rings a 2-D all-reduce step touches: every Y-ring, then every
/// X-ring (reduce-scatter along Y, X; all-gather along X, Y).
pub fn all_reduce_rings(mesh: &Multipod) -> Vec<Ring> {
    let mut rings = Vec::new();
    for x in 0..mesh.x_len() {
        rings.push(mesh.y_ring(x));
    }
    for y in 0..mesh.y_len() {
        rings.push(mesh.x_line_strided(y, 0, 1));
    }
    rings.retain(|r| r.len() >= 2);
    rings
}

pub struct SimOutcome {
    pub events: u64,
    pub final_time: SimTime,
    /// FNV-1a over every popped event and its computed finish time, in
    /// pop order: equal digests mean observationally identical runs.
    pub digest: u64,
}

/// Runs the event-driven message pattern: each ring member's chain starts
/// at t = 0 and re-schedules itself after each of its 2(n-1) sends.
pub fn simulate<Q: EventSource, C: TimingCore>(
    queue: &mut Q,
    core: &mut C,
    rings: &[Ring],
    elems: usize,
) -> SimOutcome {
    let mut digest = 0xcbf29ce484222325u64;
    let mut fnv = |x: u64| {
        for b in x.to_le_bytes() {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x100000001b3);
        }
    };
    for (r, ring) in rings.iter().enumerate() {
        for m in 0..ring.len() {
            queue.schedule(SimTime::ZERO, (r as u32, m as u32, 0));
        }
    }
    let mut events = 0u64;
    let mut final_time = SimTime::ZERO;
    while let Some((t, (r, m, step))) = queue.pop() {
        events += 1;
        let ring = &rings[r as usize];
        let n = ring.len();
        let bytes = ((elems / n).max(1) * 4) as u64;
        let from = ring.members()[m as usize];
        let to = ring.members()[(m as usize + 1) % n];
        let finish = core.transfer(from, to, bytes, t);
        final_time = final_time.max(finish);
        fnv(((r as u64) << 40) | ((m as u64) << 16) | step as u64);
        fnv(finish.seconds().to_bits());
        if (step as usize) + 1 < 2 * (n - 1) {
            queue.schedule(finish, (r, m, step + 1));
        }
    }
    SimOutcome {
        events,
        final_time,
        digest,
    }
}

/// One full simulated step on the optimized core (calendar queue plus
/// memoized network).
pub fn run_optimized(cfg: &MultipodConfig, elems: usize) -> SimOutcome {
    let mut net = Network::new(Multipod::new(cfg.clone()), NetworkConfig::tpu_v3());
    let rings = all_reduce_rings(net.mesh());
    let mut queue = EventQueue::new();
    simulate(&mut queue, &mut net, &rings, elems)
}

/// One full simulated step on the seed core (binary-heap queue plus
/// uncached network).
pub fn run_baseline(cfg: &MultipodConfig, elems: usize) -> SimOutcome {
    let mesh = Multipod::new(cfg.clone());
    let rings = all_reduce_rings(&mesh);
    let mut core = SeedNetwork::new(cfg);
    let mut queue = HeapEventQueue::new();
    simulate(&mut queue, &mut core, &rings, elems)
}

/// Fastest-of-`iters` wall time for one full simulated step.
pub fn time_side(iters: usize, mut run: impl FnMut() -> SimOutcome) -> (SimOutcome, f64) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let outcome = run();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(outcome);
    }
    (last.expect("iters >= 1"), best)
}
