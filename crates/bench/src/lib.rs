//! Shared helpers for the repro binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a `repro_*`
//! binary (printing the same rows/series the paper reports, alongside the
//! paper's published values) and a Criterion bench measuring the
//! generator. [`paper`] records the published numbers so the binaries can
//! print paper-vs-measured side by side; `EXPERIMENTS.md` is generated
//! from the same data.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use multipod_core::step::record_step_trace;
use multipod_core::{presets, Executor, Preset, Report};
use multipod_simnet::SimTime;
use multipod_trace::Recorder;

/// The paper's published values, used for side-by-side output.
pub mod paper {
    /// One Table-1 row: (benchmark, chips, TF minutes, JAX minutes, v0.6
    /// speedup).
    pub type Table1Row = (&'static str, u32, f64, Option<f64>, Option<f64>);

    /// Table 1 — end-to-end minutes.
    pub const TABLE1: &[Table1Row] = &[
        ("ResNet-50", 4096, 0.48, Some(0.47), Some(2.67)),
        ("BERT", 4096, 0.39, Some(0.4), None),
        ("SSD", 4096, 0.46, None, Some(2.63)),
        ("SSD", 2048, 0.623, Some(0.55), Some(1.94)),
        ("Transformer", 4096, 0.32, Some(0.26), Some(2.65)),
        ("MaskRCNN", 512, 8.1, None, Some(4.4)),
        ("DLRM", 256, 2.4, None, None),
    ];

    /// Table 2 — initialization seconds: (benchmark, chips, TF, JAX).
    /// SSD's JAX column was measured at 2048 chips.
    pub const TABLE2: &[(&str, u32, f64, f64)] = &[
        ("ResNet-50", 4096, 498.0, 134.0),
        ("BERT", 4096, 1040.0, 190.0),
        ("SSD", 4096, 772.0, 122.0),
        ("Transformer", 4096, 868.0, 294.0),
    ];

    /// Figure 6/8 anchors: all-reduce share of device step time at 4096
    /// chips.
    pub const RESNET_ALLREDUCE_SHARE: f64 = 0.22;
    /// See [`RESNET_ALLREDUCE_SHARE`].
    pub const BERT_ALLREDUCE_SHARE: f64 = 0.273;

    /// §5: Transformer model-parallel speedup on 4 cores.
    pub const TRANSFORMER_4CORE_SPEEDUP: f64 = 2.3;

    /// §3.2: replicated LAMB update share of the BERT step at 512 chips.
    pub const BERT_WUS_SHARE: f64 = 0.18;
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Runs a preset and returns its report.
pub fn run(preset: Preset) -> Report {
    Executor::new(preset).run()
}

/// The preset for a named benchmark at a chip count.
///
/// # Panics
///
/// Panics on unknown names.
pub fn preset_by_name(name: &str, chips: u32) -> Preset {
    match name {
        "ResNet-50" => presets::resnet50(chips),
        "BERT" => presets::bert(chips),
        "SSD" => presets::ssd(chips),
        "Transformer" => presets::transformer(chips),
        "MaskRCNN" => presets::maskrcnn(chips),
        "DLRM" => presets::dlrm(chips),
        other => panic!("unknown benchmark '{other}'"),
    }
}

/// Parses a `--trace <path>` (or `--trace=<path>`) flag from the process
/// arguments, for repro binaries that can export a Chrome trace.
pub fn trace_flag() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            return args.next().map(PathBuf::from);
        }
        if let Some(path) = arg.strip_prefix("--trace=") {
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Records a reference numeric 2-D gradient summation (an 8×8 slice,
/// 4096 elements per chip, fixed seed) into `recorder`, so exported
/// traces contain real per-link transfer events and collective-phase
/// spans alongside the analytic step timelines.
pub fn record_reference_summation(recorder: Arc<Recorder>) {
    use multipod_collectives::{twod::two_dim_all_reduce, Precision};
    use multipod_simnet::{Network, NetworkConfig};
    use multipod_tensor::{Shape, TensorRng};
    use multipod_topology::{Multipod, MultipodConfig};
    let mut net = Network::new(
        Multipod::new(MultipodConfig::mesh(8, 8, true)),
        NetworkConfig::tpu_v3(),
    );
    net.set_trace_sink(recorder);
    let mut rng = TensorRng::seed(17);
    let inputs: Vec<_> = (0..net.mesh().num_chips())
        .map(|_| rng.uniform(Shape::vector(4096), -1.0, 1.0))
        .collect();
    two_dim_all_reduce(&mut net, &inputs, Precision::F32, 1, None).expect("reference summation");
}

/// Writes a Chrome trace to `path`: the first `steps_each` steps of every
/// report laid out back to back on the simulation track, followed by the
/// reference numeric summation (real link events). Output is fully
/// deterministic.
pub fn write_trace(path: &Path, reports: &[&Report], steps_each: u64) -> std::io::Result<()> {
    let recorder = Recorder::shared();
    let mut cursor = SimTime::ZERO;
    for report in reports {
        for s in 0..steps_each.min(report.steps) {
            cursor =
                record_step_trace(recorder.as_ref(), &report.name, &report.step, s + 1, cursor);
        }
    }
    record_reference_summation(recorder.clone());
    recorder.write_chrome_trace(path)
}

/// Prints a markdown-ish table header.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    println!("{}", columns.join(" | "));
    println!("{}", vec!["---"; columns.len()].join(" | "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_have_expected_shapes() {
        assert_eq!(paper::TABLE1.len(), 7);
        assert_eq!(paper::TABLE2.len(), 4);
    }

    #[test]
    fn preset_lookup_runs() {
        let r = run(preset_by_name("ResNet-50", 256));
        assert_eq!(r.name, "ResNet-50");
        assert!(r.end_to_end_minutes() > 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.225), "22.5%");
    }
}
