//! Shared helpers for the repro binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a `repro_*`
//! binary (printing the same rows/series the paper reports, alongside the
//! paper's published values) and a Criterion bench measuring the
//! generator. [`paper`] records the published numbers so the binaries can
//! print paper-vs-measured side by side; `EXPERIMENTS.md` is generated
//! from the same data.

pub mod simcore;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use multipod_core::step::{record_step_telemetry, record_step_trace};
use multipod_core::{presets, Executor, Preset, Report};
use multipod_simnet::SimTime;
use multipod_telemetry::{FlightReport, Telemetry};
use multipod_topology::MultipodConfig;
use multipod_trace::Recorder;
use serde_json::Value;

/// The paper's published values, used for side-by-side output.
pub mod paper {
    /// One Table-1 row: (benchmark, chips, TF minutes, JAX minutes, v0.6
    /// speedup).
    pub type Table1Row = (&'static str, u32, f64, Option<f64>, Option<f64>);

    /// Table 1 — end-to-end minutes.
    pub const TABLE1: &[Table1Row] = &[
        ("ResNet-50", 4096, 0.48, Some(0.47), Some(2.67)),
        ("BERT", 4096, 0.39, Some(0.4), None),
        ("SSD", 4096, 0.46, None, Some(2.63)),
        ("SSD", 2048, 0.623, Some(0.55), Some(1.94)),
        ("Transformer", 4096, 0.32, Some(0.26), Some(2.65)),
        ("MaskRCNN", 512, 8.1, None, Some(4.4)),
        ("DLRM", 256, 2.4, None, None),
    ];

    /// Table 2 — initialization seconds: (benchmark, chips, TF, JAX).
    /// SSD's JAX column was measured at 2048 chips.
    pub const TABLE2: &[(&str, u32, f64, f64)] = &[
        ("ResNet-50", 4096, 498.0, 134.0),
        ("BERT", 4096, 1040.0, 190.0),
        ("SSD", 4096, 772.0, 122.0),
        ("Transformer", 4096, 868.0, 294.0),
    ];

    /// Figure 6/8 anchors: all-reduce share of device step time at 4096
    /// chips.
    pub const RESNET_ALLREDUCE_SHARE: f64 = 0.22;
    /// See [`RESNET_ALLREDUCE_SHARE`].
    pub const BERT_ALLREDUCE_SHARE: f64 = 0.273;

    /// §5: Transformer model-parallel speedup on 4 cores.
    pub const TRANSFORMER_4CORE_SPEEDUP: f64 = 2.3;

    /// §3.2: replicated LAMB update share of the BERT step at 512 chips.
    pub const BERT_WUS_SHARE: f64 = 0.18;
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Runs a preset and returns its report.
///
/// # Panics
///
/// Panics if the preset's chip count does not form a valid slice — the
/// catalog presets used by the repro binaries always do. Use
/// [`Executor::run`] directly to handle the [`multipod_core::StepError`].
pub fn run(preset: Preset) -> Report {
    Executor::new(preset)
        .run()
        .expect("catalog presets define valid slices")
}

/// The preset for a named benchmark at a chip count.
///
/// # Panics
///
/// Panics on unknown names.
pub fn preset_by_name(name: &str, chips: u32) -> Preset {
    match name {
        "ResNet-50" => presets::resnet50(chips),
        "BERT" => presets::bert(chips),
        "SSD" => presets::ssd(chips),
        "Transformer" => presets::transformer(chips),
        "MaskRCNN" => presets::maskrcnn(chips),
        "DLRM" => presets::dlrm(chips),
        other => panic!("unknown benchmark '{other}'"),
    }
}

/// Parses a `--<name> <value>` (or `--<name>=<value>`) flag from the
/// process arguments.
pub fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next();
        }
        if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// Parses a `--trace <path>` (or `--trace=<path>`) flag from the process
/// arguments, for repro binaries that can export a Chrome trace.
pub fn trace_flag() -> Option<PathBuf> {
    arg_value("--trace").map(PathBuf::from)
}

/// Parses a `--profile <path>` (or `--profile=<path>`) flag, for repro
/// binaries that can export a flight-recorder report.
pub fn profile_flag() -> Option<PathBuf> {
    arg_value("--profile").map(PathBuf::from)
}

/// Parses `--mesh <WxH>` into a [`MultipodConfig`], defaulting to
/// `default` (usually the paper's 128×32 multipod).
///
/// # Panics
///
/// Panics when the spec is not `WxH` with integer extents.
pub fn mesh_flag(default: MultipodConfig) -> MultipodConfig {
    match arg_value("--mesh") {
        None => default,
        Some(spec) => {
            let (x, y) = spec
                .split_once('x')
                .unwrap_or_else(|| panic!("--mesh expects WxH, got '{spec}'"));
            MultipodConfig::mesh(
                x.parse().expect("mesh width"),
                y.parse().expect("mesh height"),
                true,
            )
        }
    }
}

/// Records a reference numeric 2-D gradient summation (an 8×8 slice,
/// 4096 elements per chip, fixed seed) into `recorder`, so exported
/// traces contain real per-link transfer events and collective-phase
/// spans alongside the analytic step timelines.
pub fn record_reference_summation(recorder: Arc<Recorder>) {
    use multipod_collectives::{twod::two_dim_all_reduce, Precision};
    use multipod_simnet::{Network, NetworkConfig};
    use multipod_tensor::{Shape, TensorRng};
    use multipod_topology::{Multipod, MultipodConfig};
    let mut net = Network::new(
        Multipod::new(MultipodConfig::mesh(8, 8, true)),
        NetworkConfig::tpu_v3(),
    );
    net.set_trace_sink(recorder);
    let mut rng = TensorRng::seed(17);
    let inputs: Vec<_> = (0..net.mesh().num_chips())
        .map(|_| rng.uniform(Shape::vector(4096), -1.0, 1.0))
        .collect();
    two_dim_all_reduce(&mut net, &inputs, Precision::F32, 1, None).expect("reference summation");
}

/// Writes a Chrome trace to `path`: the first `steps_each` steps of every
/// report laid out back to back on the simulation track, followed by the
/// reference numeric summation (real link events). Output is fully
/// deterministic.
pub fn write_trace(path: &Path, reports: &[&Report], steps_each: u64) -> std::io::Result<()> {
    let recorder = Recorder::shared();
    let mut cursor = SimTime::ZERO;
    for report in reports {
        for s in 0..steps_each.min(report.steps) {
            cursor =
                record_step_trace(recorder.as_ref(), &report.name, &report.step, s + 1, cursor);
        }
    }
    record_reference_summation(recorder.clone());
    recorder.write_chrome_trace(path)
}

/// Replays the first `steps_each` steps of each report through the trace
/// and telemetry layers, profiles the result, and writes the flight
/// report to `path`. Output is fully deterministic.
pub fn write_profile(path: &Path, reports: &[&Report], steps_each: u64) -> std::io::Result<()> {
    let recorder = Recorder::shared();
    let telemetry = Telemetry::shared();
    let mut cursor = SimTime::ZERO;
    for report in reports {
        for s in 0..steps_each.min(report.steps) {
            cursor =
                record_step_trace(recorder.as_ref(), &report.name, &report.step, s + 1, cursor);
            record_step_telemetry(&telemetry, &report.step);
        }
    }
    let flight = FlightReport {
        registry: telemetry.snapshot(),
        profile: multipod_telemetry::profile(&recorder.events()),
        drift: Vec::new(),
    };
    flight.write_json(path)
}

/// The common envelope of every `BENCH_*.json` artifact: what ran, on
/// which mesh, which pass/fail gates applied, and the measured values.
///
/// Gates and measurements serialize in insertion order, so reports stay
/// byte-stable run to run. An unchecked gate serializes as `null` and
/// never fails [`BenchReport::passed`].
#[derive(Clone, Debug)]
pub struct BenchReport {
    name: String,
    mesh: String,
    chips: usize,
    gates: Vec<(String, Option<bool>)>,
    measurements: Vec<(String, Value)>,
}

impl BenchReport {
    /// A report for benchmark `name` on a `mesh`-labelled machine.
    pub fn new(name: impl Into<String>, mesh: impl Into<String>, chips: usize) -> BenchReport {
        BenchReport {
            name: name.into(),
            mesh: mesh.into(),
            chips,
            gates: Vec::new(),
            measurements: Vec::new(),
        }
    }

    /// Records a pass/fail gate (`None` = not checked this run).
    pub fn gate(mut self, name: impl Into<String>, pass: impl Into<Option<bool>>) -> BenchReport {
        self.gates.push((name.into(), pass.into()));
        self
    }

    /// Records a measured value (build with `serde_json::json!`).
    pub fn measurement(mut self, name: impl Into<String>, value: Value) -> BenchReport {
        self.measurements.push((name.into(), value));
        self
    }

    /// Whether every checked gate passed.
    pub fn passed(&self) -> bool {
        self.gates.iter().all(|(_, g)| *g != Some(false))
    }

    /// Reads one measurement back (for `--check-regression` style gates).
    pub fn measured(&self, name: &str) -> Option<&Value> {
        self.measurements
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Writes the pretty-JSON rendering to `path` and echoes the path.
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written.
    pub fn write(&self, path: &str) {
        let body = serde_json::to_string_pretty(self).expect("bench report json");
        std::fs::write(path, body + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}

impl serde::Serialize for BenchReport {
    fn ser(&self) -> Value {
        Value::Map(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("mesh".to_string(), Value::Str(self.mesh.clone())),
            ("chips".to_string(), Value::U64(self.chips as u64)),
            (
                "gates".to_string(),
                Value::Map(
                    self.gates
                        .iter()
                        .map(|(k, g)| (k.clone(), g.map_or(Value::Null, Value::Bool)))
                        .collect(),
                ),
            ),
            (
                "measurements".to_string(),
                Value::Map(self.measurements.clone()),
            ),
        ])
    }
}

/// Reads a measurement from a committed `BENCH_*.json` document,
/// accepting both the enveloped layout (`measurements.<name>`) and the
/// pre-envelope layout (`<name>` at top level).
pub fn committed_measurement(doc: &Value, name: &str) -> Option<Value> {
    doc.get("measurements")
        .and_then(|m| m.get(name))
        .or_else(|| doc.get(name))
        .cloned()
}

/// Prints a markdown-ish table header.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    println!("{}", columns.join(" | "));
    println!("{}", vec!["---"; columns.len()].join(" | "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_have_expected_shapes() {
        assert_eq!(paper::TABLE1.len(), 7);
        assert_eq!(paper::TABLE2.len(), 4);
    }

    #[test]
    fn preset_lookup_runs() {
        let r = run(preset_by_name("ResNet-50", 256));
        assert_eq!(r.name, "ResNet-50");
        assert!(r.end_to_end_minutes() > 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.225), "22.5%");
    }

    #[test]
    fn bench_report_envelope_is_stable_and_gated() {
        let report = BenchReport::new("collectives", "8x8", 64)
            .gate("bit_identical", true)
            .gate("deterministic", None)
            .measurement("speedup", serde_json::json!(2.5));
        assert!(report.passed());
        let json = serde_json::to_string_pretty(&report).expect("json");
        let reparsed: Value = serde_json::from_str(&json).expect("reparse");
        assert_eq!(
            committed_measurement(&reparsed, "speedup").and_then(|v| v.as_f64()),
            Some(2.5)
        );
        assert!(json.contains("\"name\": \"collectives\""));
        assert!(json.contains("\"deterministic\": null"));
        assert!(!BenchReport::new("x", "1x1", 1).gate("g", false).passed());
        // Pre-envelope documents keep working for regression checks.
        let old: Value = serde_json::from_str(r#"{"speedup": 3.0}"#).expect("old doc");
        assert_eq!(
            committed_measurement(&old, "speedup").and_then(|v| v.as_f64()),
            Some(3.0)
        );
    }

    #[test]
    fn write_profile_emits_a_deterministic_flight_report() {
        let dir = std::env::temp_dir().join("multipod-bench-profile-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let report = run(preset_by_name("ResNet-50", 256));
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        write_profile(&a, &[&report], 2).expect("write profile a");
        write_profile(&b, &[&report], 2).expect("write profile b");
        let body_a = std::fs::read_to_string(&a).expect("read a");
        let body_b = std::fs::read_to_string(&b).expect("read b");
        assert_eq!(body_a, body_b, "profile export must be byte-identical");
        let doc: Value = serde_json::from_str(&body_a).expect("profile json");
        let steps = doc
            .get("profile")
            .and_then(|p| p.get("steps"))
            .and_then(|v| v.as_u64());
        assert_eq!(steps, Some(2));
    }
}
