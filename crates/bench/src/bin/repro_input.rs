//! §3.5 input-pipeline studies: uncompressed cache, shuffle quality,
//! DLRM input path.

use multipod_bench::header;
use multipod_input::dlrm::{DlrmInputConfig, ParseGranularity, PcieLayout};
use multipod_input::host_pipeline::{simulate_run, HostPipelineConfig};
use multipod_input::shuffle::{
    cross_epoch_stochasticity, file_stream, run_to_run_spread, FileOrder,
};

fn main() {
    header(
        "ResNet-50 host input pipeline (64 hosts, 32 samples/host/ms)",
        &["Pipeline", "Mean stall (us)", "Stalled steps"],
    );
    for (label, cfg) in [
        ("compressed JPEG", HostPipelineConfig::compressed_imagenet()),
        (
            "uncompressed cache",
            HostPipelineConfig::uncompressed_imagenet(),
        ),
    ] {
        let s = simulate_run(&cfg, 64, 32, 1.0e-3, 300, 7).expect("non-empty run");
        println!(
            "{label} | {:.1} | {:.0}%",
            1e6 * s.mean_stall,
            100.0 * s.stalled_fraction
        );
    }

    header(
        "BERT file-level shuffle (500 files, 4 epochs)",
        &["Order", "Cross-epoch stochasticity"],
    );
    for (label, order) in [
        ("shuffle -> repeat", FileOrder::ShuffleThenRepeat),
        ("repeat -> shuffle", FileOrder::RepeatThenShuffle),
    ] {
        let s = file_stream(500, 4, order, 1);
        println!("{label} | {:.2}", cross_epoch_stochasticity(&s, 500));
    }

    header(
        "BERT sequence shuffle-buffer size vs run-to-run spread",
        &["Buffer", "Final-loss spread (stddev)"],
    );
    for buffer in [16usize, 256, 4096] {
        let spread = run_to_run_spread(8192, buffer, 64, 12).expect("non-zero buffer");
        println!("{buffer} | {spread:.5}");
    }

    header(
        "DLRM host input path (batch 2048/host)",
        &["Path", "Time (us)"],
    );
    let cfg = DlrmInputConfig::criteo();
    for (label, g, l) in [
        (
            "per-sample parse + per-feature PCIe",
            ParseGranularity::PerSample,
            PcieLayout::PerFeature,
        ),
        (
            "batch parse + stacked PCIe",
            ParseGranularity::PerBatch,
            PcieLayout::Stacked,
        ),
    ] {
        println!("{label} | {:.1}", 1e6 * cfg.step_input_time(2048, g, l));
    }
}
