//! Regenerates Figure 7: BERT speedup vs chips.

use multipod_bench::header;
use multipod_core::scaling::{standard_chip_counts, ScalingCurve};
use multipod_models::catalog;

fn main() {
    let curve = ScalingCurve::sweep(&catalog::bert(), &standard_chip_counts(4096)).expect("sweep");
    header(
        "Figure 7: BERT speedup vs chips (base = 16 chips)",
        &["Chips", "End-to-end speedup", "Ideal"],
    );
    let e2e = curve.end_to_end_speedups();
    let ideal = curve.ideal_speedups();
    for i in 0..e2e.len() {
        println!("{} | {:.1} | {:.0}", e2e[i].0, e2e[i].1, ideal[i].1);
    }
    println!("(paper: BERT shows the highest scaling from 16 to 4096 chips)");
}
