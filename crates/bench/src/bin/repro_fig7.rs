//! Regenerates Figure 7: BERT speedup vs chips.
//!
//! Pass `--trace <out.json>` to also export a Chrome trace of the step
//! timeline at every swept chip count.

use multipod_bench::{header, trace_flag, write_trace};
use multipod_core::scaling::{standard_chip_counts, ScalingCurve};
use multipod_models::catalog;

fn main() {
    let curve = ScalingCurve::sweep(&catalog::bert(), &standard_chip_counts(4096)).expect("sweep");
    header(
        "Figure 7: BERT speedup vs chips (base = 16 chips)",
        &["Chips", "End-to-end speedup", "Ideal"],
    );
    let e2e = curve.end_to_end_speedups();
    let ideal = curve.ideal_speedups();
    for i in 0..e2e.len() {
        println!("{} | {:.1} | {:.0}", e2e[i].0, e2e[i].1, ideal[i].1);
    }
    println!("(paper: BERT shows the highest scaling from 16 to 4096 chips)");
    if let Some(path) = trace_flag() {
        let refs: Vec<_> = curve.points.iter().map(|p| &p.report).collect();
        write_trace(&path, &refs, 3).expect("write trace");
        println!("(wrote Chrome trace to {})", path.display());
    }
}
