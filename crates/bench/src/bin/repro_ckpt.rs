//! Sharded checkpointing: save cost, rollback recovery, and the
//! Young/Daly optimal interval on the simulated multipod.
//!
//! Runs the canned rollback campaign — periodic sharded checkpoints with
//! a mid-run chip loss recovered by restoring the last checkpoint onto
//! the survivor mesh — and contrasts it with the fault-free run,
//! emitting `BENCH_ckpt.json`.
//!
//! Flags:
//!   --mesh <WxH>          mesh instead of the 128×32 multipod (e.g. 4x4)
//!   --steps <n>           training steps (default 8)
//!   --interval <n>        checkpoint every n steps (default 3)
//!   --json <path>         output path (default BENCH_ckpt.json)
//!   --trace <path>        also export the campaign Chrome trace
//!   --check-determinism   run the campaign twice; exit 1 if the report
//!                         or trace exports differ by a single byte

use std::process::ExitCode;
use std::sync::Arc;

use multipod_bench::{arg_value, mesh_flag, trace_flag, BenchReport};
use multipod_ckpt::{
    interval_curve, run_rollback_campaign, young_daly_interval, RollbackConfig, RollbackReport,
};
use multipod_faults::{run_campaign, CampaignConfig, FaultPlan};
use multipod_simnet::SimTime;
use multipod_topology::{ChipId, Multipod, MultipodConfig};
use multipod_trace::{Recorder, TraceSink};
use serde_json::json;

fn campaign_trace(config: &RollbackConfig, plan: &FaultPlan) -> (RollbackReport, Arc<Recorder>) {
    let recorder = Recorder::shared();
    let report = run_rollback_campaign(config, plan, Some(recorder.clone() as Arc<dyn TraceSink>))
        .expect("rollback campaign must complete");
    (report, recorder)
}

fn main() -> ExitCode {
    // The paper's 128×32 machine unless --mesh overrides.
    let mesh_cfg = mesh_flag(MultipodConfig::multipod(4));
    let mut config = RollbackConfig::demo(mesh_cfg.clone());
    if let Some(steps) = arg_value("--steps") {
        config.steps = steps.parse().expect("--steps expects an integer");
    }
    if let Some(interval) = arg_value("--interval") {
        config.ckpt_interval = interval.parse().expect("--interval expects an integer");
    }
    let mesh = Multipod::new(mesh_cfg.clone());
    println!(
        "# Rollback campaign on {}x{} ({} chips), {} steps, checkpoint every {}",
        mesh.x_len(),
        mesh.y_len(),
        mesh.num_chips(),
        config.steps,
        config.ckpt_interval
    );

    // Baseline: checkpoints ride along but no fault ever lands.
    let clean =
        run_rollback_campaign(&config, &FaultPlan::new(), None).expect("fault-free campaign");

    // Canned fault: one chip dies mid-window — after the step following
    // the first checkpoint ran, so the rollback replays a non-empty
    // window on the survivor mesh.
    let fault_step = (config.ckpt_interval + 1).min(config.steps) as usize;
    let fault_at = clean
        .steps
        .get(fault_step)
        .map_or(clean.total_seconds, |s| s.start_seconds)
        + 1e-9;
    // Kill a chip off row 0: the dimension-ordered router cannot dogleg
    // around a dead chip that shares its row with the survivor-gather
    // root, so a row-0 victim would leave the mesh unroutable rather
    // than degraded. On a 4x4 mesh this is chip 5.
    let victim_y = if mesh.y_len() > 1 { 1 } else { 0 };
    let victim = ChipId(victim_y * mesh.x_len() + 1.min(mesh.x_len() - 1));
    let plan = FaultPlan::new().chip_down(SimTime::from_seconds(fault_at), victim);
    let (faulty, recorder) = campaign_trace(&config, &plan);

    let mean_save_seconds = clean.save_seconds / clean.checkpoints_saved as f64;
    let mtbf_seconds = faulty.total_seconds / faulty.rollbacks.max(1) as f64;
    let optimal_interval = young_daly_interval(mean_save_seconds, mtbf_seconds);
    let curve = interval_curve(mean_save_seconds, mtbf_seconds, 17);

    // The PR-2 contrast: the same fault absorbed by drop-and-renormalize
    // (no checkpoints, no replay). Rollback must cost strictly more
    // simulated time than dropping — that difference is the price of
    // exact-state recovery.
    let drop_config = CampaignConfig {
        mesh: mesh_cfg.clone(),
        steps: config.steps,
        elems: config.elems,
        lr: config.lr,
        host_seconds_per_step: config.host_seconds_per_step,
        bf16_gradients: config.bf16_gradients,
        fault_policy: config.fault_policy,
        seed: config.seed,
    };
    let dropped = run_campaign(&drop_config, &plan, None).expect("drop-policy campaign");

    let tolerance = 1e-3 * (1.0 + clean.final_loss.abs());
    let loss_within_tolerance = (faulty.final_loss - clean.final_loss).abs() <= tolerance;
    let strictly_slower = faulty.total_seconds > clean.total_seconds;
    let recovery_overhead_seconds = faulty.total_seconds - dropped.total_seconds;

    let determinism_checked = std::env::args().any(|a| a == "--check-determinism");
    let mut deterministic = true;
    if determinism_checked {
        let (report_again, trace_again) = campaign_trace(&config, &plan);
        let trace_a = serde_json::to_string(&recorder.chrome_trace().expect("trace json"))
            .expect("trace json");
        let trace_b = serde_json::to_string(&trace_again.chrome_trace().expect("trace json"))
            .expect("trace json");
        let report_a = serde_json::to_string(&faulty).expect("report json");
        let report_b = serde_json::to_string(&report_again).expect("report json");
        deterministic = trace_a == trace_b && report_a == report_b;
        println!(
            "determinism: {}",
            if deterministic {
                "byte-identical report and trace exports"
            } else {
                "MISMATCH — exports differ"
            }
        );
    }

    println!("config | total (ms) | ckpts | save (ms) | restore (ms) | replayed | final loss");
    println!(
        "fault-free | {:.3} | {} | {:.3} | - | 0 | {:.6}",
        1e3 * clean.total_seconds,
        clean.checkpoints_saved,
        1e3 * clean.save_seconds,
        clean.final_loss
    );
    println!(
        "rollback | {:.3} | {} | {:.3} | {:.3} | {} | {:.6}",
        1e3 * faulty.total_seconds,
        faulty.checkpoints_saved,
        1e3 * faulty.save_seconds,
        1e3 * faulty.restore_seconds,
        faulty.replayed_steps,
        faulty.final_loss
    );
    println!(
        "drop-policy | {:.3} | 0 | - | - | 0 | {:.6}",
        1e3 * dropped.total_seconds,
        dropped.final_loss
    );
    println!(
        "(rollbacks: {}; loss within bf16 tolerance of fault-free: {}; slower than fault-free: {}; recovery overhead vs drop: {:.3} ms)",
        faulty.rollbacks,
        loss_within_tolerance,
        strictly_slower,
        1e3 * recovery_overhead_seconds
    );
    println!(
        "young-daly: C = {:.3} ms, MTBF = {:.3} ms -> T* = {:.3} ms",
        1e3 * mean_save_seconds,
        1e3 * mtbf_seconds,
        1e3 * optimal_interval
    );

    let fault_free = json!({
        "total_seconds": clean.total_seconds,
        "checkpoints_saved": clean.checkpoints_saved,
        "save_seconds": clean.save_seconds,
        "final_loss": clean.final_loss,
    });
    let rollback = json!({
        "total_seconds": faulty.total_seconds,
        "checkpoints_saved": faulty.checkpoints_saved,
        "save_seconds": faulty.save_seconds,
        "restore_seconds": faulty.restore_seconds,
        "rollbacks": faulty.rollbacks,
        "replayed_steps": faulty.replayed_steps,
        "final_loss": faulty.final_loss,
    });
    let young_daly = json!({
        "ckpt_seconds": mean_save_seconds,
        "mtbf_seconds": mtbf_seconds,
        "optimal_interval_seconds": optimal_interval,
        "curve": curve,
    });
    let drop_policy = json!({
        "total_seconds": dropped.total_seconds,
        "final_loss": dropped.final_loss,
        "degraded_steps": dropped.degraded_steps,
    });
    let report = BenchReport::new(
        "ckpt",
        format!("{}x{}", mesh.x_len(), mesh.y_len()),
        mesh.num_chips(),
    )
    .gate(
        "deterministic",
        determinism_checked.then_some(deterministic),
    )
    .gate("loss_within_tolerance", loss_within_tolerance)
    .gate(
        "recovery_costs_more_than_drop",
        recovery_overhead_seconds > 0.0,
    )
    .measurement("steps", json!(config.steps))
    .measurement("ckpt_interval_steps", json!(config.ckpt_interval))
    .measurement("fault_free", fault_free)
    .measurement("rollback", rollback)
    .measurement("drop_policy", drop_policy)
    .measurement("strictly_slower_than_fault_free", json!(strictly_slower))
    .measurement(
        "recovery_overhead_seconds",
        json!(recovery_overhead_seconds),
    )
    .measurement("young_daly", young_daly);
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_ckpt.json".to_string());
    report.write(&json_path);

    if let Some(path) = trace_flag() {
        recorder.write_chrome_trace(&path).expect("write trace");
        println!("wrote {}", path.display());
    }

    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
