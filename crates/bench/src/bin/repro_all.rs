//! Runs every reproduction and dumps one JSON document (the source of
//! EXPERIMENTS.md's measured values).
//!
//! Pass `--trace <out.json>` to also export a Chrome trace of the Table-1
//! step timelines plus a reference numeric 2-D summation, and
//! `--profile <out.json>` to export the flight-recorder report over the
//! same timelines.

use multipod_bench::{
    paper, preset_by_name, profile_flag, simcore, trace_flag, write_profile, write_trace,
};
use multipod_ckpt::{run_rollback_campaign, young_daly_interval, RollbackConfig};
use multipod_collectives::Precision;
use multipod_core::ablate::{precision_ablation, summation_ablation, wus_ablation};
use multipod_core::modelpar::speedup_curve;
use multipod_core::scaling::{standard_chip_counts, ScalingCurve};
use multipod_core::{presets, Executor};
use multipod_faults::FaultPlan;
use multipod_framework::{profiles, FrameworkKind, InitModel};
use multipod_models::{catalog, GpuCluster, GpuGeneration};
use multipod_simnet::SimTime;
use multipod_topology::{ChipId, MultipodConfig};
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = trace_flag();
    let mut table1_reports = Vec::new();

    // Table 1.
    let mut table1 = Vec::new();
    for &(name, chips, tf_paper, jax_paper, v06_paper) in paper::TABLE1 {
        let tf = Executor::new(preset_by_name(name, chips)).run()?;
        let jax_ours = match jax_paper {
            Some(_) => {
                let mut p = preset_by_name(name, chips);
                p.framework = FrameworkKind::Jax;
                Some(Executor::new(p).run()?.end_to_end_minutes())
            }
            None => None,
        };
        let v06_ours = match v06_paper.and_then(|_| presets::v06(name)) {
            Some(p) => Some(Executor::new(p).run()?.end_to_end_minutes() / tf.end_to_end_minutes()),
            None => None,
        };
        table1.push(json!({
            "benchmark": name,
            "chips": chips,
            "tf_paper_minutes": tf_paper,
            "tf_ours_minutes": tf.end_to_end_minutes(),
            "jax_paper_minutes": jax_paper,
            "jax_ours_minutes": jax_ours,
            "v06_speedup_paper": v06_paper,
            "v06_speedup_ours": v06_ours,
            "steps": tf.steps,
            "global_batch": tf.global_batch,
            "allreduce_share": tf.step.all_reduce_fraction(),
        }));
        table1_reports.push(tf);
    }

    // Table 2.
    let model = InitModel::calibrated();
    let table2: Vec<_> = paper::TABLE2
        .iter()
        .map(|&(name, chips, tf_paper, jax_paper)| {
            let p = profiles::by_name(name)?;
            let jax_chips = if name == "SSD" { 2048 } else { chips };
            Ok(json!({
                "benchmark": name,
                "tf_paper": tf_paper,
                "tf_ours": model.init_seconds(FrameworkKind::TensorFlow, &p, chips),
                "jax_paper": jax_paper,
                "jax_ours": model.init_seconds(FrameworkKind::Jax, &p, jax_chips),
            }))
        })
        .collect::<Result<Vec<_>, multipod_framework::FrameworkError>>()?;

    // Figures 5-8 (sweeps).
    let sweep = |w: &multipod_models::Workload| {
        let curve = ScalingCurve::sweep(w, &standard_chip_counts(4096)).expect("standard sweep");
        let e2e = curve.end_to_end_speedups();
        let thr = curve.throughput_speedups();
        let rows: Vec<_> = curve
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                json!({
                    "chips": p.chips,
                    "e2e_speedup": e2e[i].1,
                    "throughput_speedup": thr[i].1,
                    "compute_ms": 1e3 * p.report.step.compute,
                    "allreduce_ms": 1e3 * p.report.step.gradient_comm.total(),
                    "allreduce_share": p.report.step.all_reduce_fraction(),
                })
            })
            .collect();
        rows
    };
    let fig5_6 = sweep(&catalog::resnet50());
    let fig7_8 = sweep(&catalog::bert());

    // Figure 9.
    let fig9 = json!({
        "ssd": speedup_curve(&catalog::ssd(), 1.0, &[1, 2, 4, 8]).expect("ssd sweep"),
        "maskrcnn": speedup_curve(&catalog::maskrcnn(), 1.0, &[1, 2, 4, 8]).expect("maskrcnn sweep"),
        "transformer": speedup_curve(&catalog::transformer(), 1.0, &[1, 2, 4]).expect("transformer sweep"),
    });

    // Figures 10-11 (GPU baselines).
    let fig10: Vec<_> = [
        ("ResNet-50", 4096u32, u32::MAX),
        ("BERT", 4096, u32::MAX),
        ("SSD", 4096, u32::MAX),
        ("Transformer", 4096, 512),
        ("MaskRCNN", 512, 256),
        ("DLRM", 256, 64),
    ]
    .into_iter()
    .map(|(name, chips, gpu_cap)| {
        let tpu = Executor::new(preset_by_name(name, chips)).run()?;
        let w = catalog::all().into_iter().find(|w| w.name == name).unwrap();
        let v100 = GpuCluster::new(GpuGeneration::V100, 1536.min(gpu_cap))?;
        let a100 = GpuCluster::new(GpuGeneration::A100, 2048.min(gpu_cap))?;
        Ok(json!({
            "benchmark": name,
            "tpu_minutes": tpu.end_to_end_minutes(),
            "v100_minutes": v100.end_to_end_minutes(&w)?,
            "a100_minutes": a100.end_to_end_minutes(&w)?,
        }))
    })
    .collect::<Result<Vec<_>, multipod_core::StepError>>()?;

    // Ablations.
    let mut bert_small = catalog::bert();
    bert_small.max_per_core_batch = 4;
    let wus_rows = wus_ablation(&bert_small, &[256, 512, 1024])?;
    let ablations = json!({
        "summation_1d_vs_2d":
            summation_ablation(25_600_000, Precision::F32, &[64, 256, 1024, 4096])
                .expect("healthy mesh ablation"),
        "payload_precision": precision_ablation(334_000_000, &[256, 1024, 4096])
            .expect("healthy mesh ablation"),
        "weight_update_sharding": wus_rows,
    });

    // Checkpoint/rollback recovery (multipod-ckpt): the canned 4x4
    // chip-loss campaign plus the Young/Daly interval derived from the
    // measured save cost and the campaign's failure rate.
    let ckpt_config = RollbackConfig::demo(MultipodConfig::mesh(4, 4, true));
    let ckpt_clean = run_rollback_campaign(&ckpt_config, &FaultPlan::new(), None)
        .expect("fault-free rollback campaign");
    let fault_at = ckpt_clean.steps[4].start_seconds + 1e-9;
    let ckpt_plan = FaultPlan::new().chip_down(SimTime::from_seconds(fault_at), ChipId(5));
    let ckpt_faulty =
        run_rollback_campaign(&ckpt_config, &ckpt_plan, None).expect("rollback campaign");
    let mean_save_seconds = ckpt_clean.save_seconds / ckpt_clean.checkpoints_saved as f64;
    let mtbf_seconds = ckpt_faulty.total_seconds / ckpt_faulty.rollbacks.max(1) as f64;
    let loss_tolerance = 1e-3 * (1.0 + ckpt_clean.final_loss.abs());
    let checkpointing = json!({
        "fault_free_total_seconds": ckpt_clean.total_seconds,
        "rollback_total_seconds": ckpt_faulty.total_seconds,
        "checkpoints_saved": ckpt_faulty.checkpoints_saved,
        "rollbacks": ckpt_faulty.rollbacks,
        "replayed_steps": ckpt_faulty.replayed_steps,
        "save_seconds": ckpt_faulty.save_seconds,
        "restore_seconds": ckpt_faulty.restore_seconds,
        "loss_within_tolerance":
            (ckpt_faulty.final_loss - ckpt_clean.final_loss).abs() <= loss_tolerance,
        "young_daly_ckpt_seconds": mean_save_seconds,
        "young_daly_mtbf_seconds": mtbf_seconds,
        "young_daly_optimal_interval_seconds":
            young_daly_interval(mean_save_seconds, mtbf_seconds),
    });

    // Comm/compute overlap (multipod-taskgraph): the 128x32 BERT-like
    // anchor of BENCH_overlap.json, summarized here for EXPERIMENTS.md.
    let overlapped = multipod_core::overlap::overlapped_step(
        &catalog::bert(),
        4096,
        &Default::default(),
        &multipod_core::OverlapConfig::default(),
    )?;
    let overlap = json!({
        "chips": 4096,
        "buckets": multipod_core::OverlapConfig::default().buckets,
        "serial_step_ms": 1e3 * overlapped.analytic.total(),
        "overlapped_step_ms": 1e3 * overlapped.step_seconds(),
        "compute_ms": 1e3 * overlapped.compute_seconds(),
        "comm_ms": 1e3 * overlapped.comm_seconds(),
        "overlap_ratio": overlapped.overlap_ratio(),
    });

    // Simulator-core event replay (multipod-simnet): the seed event core
    // (binary-heap queue, uncached network) against the hardware-fast one
    // (calendar queue, memoized network) on a 64x16 all-reduce step.
    // BENCH_simnet.json holds the full 128x32/256x64 ladder; this is the
    // small anchor summarized in EXPERIMENTS.md.
    let sim_cfg = MultipodConfig::mesh(64, 16, true);
    let sim_elems = 1 << 18;
    let (sim_base, sim_base_wall) =
        simcore::time_side(2, || simcore::run_baseline(&sim_cfg, sim_elems));
    let (sim_opt, sim_opt_wall) =
        simcore::time_side(2, || simcore::run_optimized(&sim_cfg, sim_elems));
    let simnet = json!({
        "mesh": "64x16",
        "events": sim_opt.events,
        "sim_seconds": sim_opt.final_time.seconds(),
        "bit_identical": sim_base.digest == sim_opt.digest
            && sim_base.final_time.seconds().to_bits()
                == sim_opt.final_time.seconds().to_bits(),
        "baseline_events_per_sec": (sim_base.events as f64 / sim_base_wall).round(),
        "optimized_events_per_sec": (sim_opt.events as f64 / sim_opt_wall).round(),
        "speedup": sim_base_wall / sim_opt_wall,
    });

    // Multi-tenant scheduling (multipod-sched): a small 32×32 overload
    // campaign — the full 128×32 heterogeneous campaign with canned
    // faults lives in BENCH_sched.json via repro_sched.
    let sched_config =
        multipod_sched::SchedConfig::demo(MultipodConfig::mesh(32, 32, true), 200, 42);
    let sched_report = multipod_sched::PodScheduler::new(sched_config)
        .run()
        .expect("scheduling campaign");
    let sched = json!({
        "mesh": "32x32",
        "jobs": sched_report.jobs,
        "completed": sched_report.completed,
        "preemptions": sched_report.preemptions,
        "restores_bit_identical": sched_report.restores_bit_identical,
        "makespan_seconds": sched_report.makespan_seconds,
        "mean_utilization": sched_report.mean_utilization,
        "queue_wait_p50_seconds": sched_report.queue_wait.p50,
        "queue_wait_p99_seconds": sched_report.queue_wait.p99,
        "preemption_overhead_mean_seconds": sched_report.preemption_overhead.mean,
    });

    // Online serving co-scheduled with training (multipod-serve): a
    // small 32×32 scenario — the full 128×32 one lives in
    // BENCH_serve.json via repro_serve.
    let mut serve_config =
        multipod_serve::ServeCampaignConfig::demo(MultipodConfig::mesh(32, 32, false), 100, 42);
    serve_config.dlrm.stream.queries = 500;
    let serve_report = multipod_serve::ServeCampaign::new(serve_config)
        .run()
        .expect("co-scheduled serving scenario");
    let serve = json!({
        "mesh": "32x32",
        "training_completed": serve_report.sched.completed,
        "training_utilization": serve_report.sched.mean_utilization,
        "dlrm_requests": serve_report.dlrm.requests,
        "dlrm_p50_seconds": serve_report.dlrm.latency.p50,
        "dlrm_p99_seconds": serve_report.dlrm.latency.p99,
        "dlrm_cache_hit_rate": serve_report.dlrm.cache_hit_rate,
        "dlrm_achieved_qps": serve_report.dlrm.achieved_qps,
        "rl_actor_p999_seconds": serve_report.rl.actor_latency.p999,
        "rl_learner_throughput": serve_report.rl.learner_throughput,
    });

    let doc = json!({
        "table1": table1,
        "table2": table2,
        "fig5_fig6_resnet": fig5_6,
        "fig7_fig8_bert": fig7_8,
        "fig9_model_parallel": fig9,
        "fig10_tpu_vs_gpu": fig10,
        "ablations": ablations,
        "checkpointing": checkpointing,
        "overlap": overlap,
        "simnet": simnet,
        "sched": sched,
        "serve": serve,
    });
    println!("{}", serde_json::to_string_pretty(&doc).unwrap());

    if let Some(path) = trace_path {
        let refs: Vec<_> = table1_reports.iter().collect();
        write_trace(&path, &refs, 3).expect("write trace");
        eprintln!("wrote Chrome trace to {}", path.display());
    }
    if let Some(path) = profile_flag() {
        let refs: Vec<_> = table1_reports.iter().collect();
        write_profile(&path, &refs, 3).expect("write profile");
        eprintln!("wrote flight report to {}", path.display());
    }
    Ok(())
}
