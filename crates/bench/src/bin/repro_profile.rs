//! Flight-recorder profile of the simulated multipod: step critical-path
//! decomposition, simnet telemetry counters, and α–β cost-model drift.
//!
//! Three deterministic stages, all in simulated time:
//!
//! 1. Replays the first steps of the ResNet-50 and BERT step timelines at
//!    the mesh's chip count through the trace + telemetry layers and runs
//!    the critical-path profiler over the recording.
//! 2. Runs a numeric 2-D gradient summation on the mesh with telemetry
//!    attached, populating the simnet transfer/hop/byte counters.
//! 3. Runs numeric bidirectional ring all-reduces along a Y ring at a
//!    ladder of payload sizes, fits `time = α + bytes/β` to the recorded
//!    collective spans, and checks the fit against the analytic
//!    `collectives::timing` model.
//!
//! Emits `BENCH_profile.json` in the shared envelope. Everything in the
//! document is a function of simulated time, so two runs are
//! byte-identical; wall-clock replay throughput is printed to stdout only.
//!
//! Flags:
//!   --mesh <WxH>          mesh instead of the 128×32 multipod (e.g. 4x4)
//!   --json <path>         output path (default BENCH_profile.json)
//!   --profile <path>      also export the full flight-recorder report
//!   --trace <path>        also export the step-timeline Chrome trace
//!   --check-determinism   run everything twice; exit 1 if the reports
//!                         differ by a single byte

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use multipod_bench::{arg_value, mesh_flag, profile_flag, trace_flag, BenchReport};
use multipod_collectives::timing::RingCosts;
use multipod_collectives::twod::two_dim_all_reduce;
use multipod_collectives::{ring, Precision};
use multipod_core::step::{record_step_telemetry, record_step_trace};
use multipod_core::{presets, Executor};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_telemetry::{
    check_drift, collective_samples, fit_alpha_beta, FlightReport, MetricId, Subsystem, Telemetry,
};
use multipod_tensor::{Shape, TensorRng};
use multipod_topology::{Multipod, MultipodConfig};
use multipod_trace::Recorder;
use serde::Serialize;
use serde_json::{json, Value};

/// Fractional drift tolerance for the α–β fit vs the analytic model.
const DRIFT_TOLERANCE: f64 = 0.15;

/// Elements per chip in the numeric 2-D summation stage: enough to split
/// across the Y rings, the X chains, and the bidirectional lanes of each.
fn summation_elems(mesh: &Multipod) -> usize {
    4 * mesh.x_len() as usize * mesh.y_len() as usize
}

/// One deterministic profiling pass over the configured mesh.
struct Outcome {
    flight: FlightReport,
    /// Step-timeline recorder (for `--trace`).
    recorder: Arc<Recorder>,
    /// Total simulated seconds across the numeric stages.
    sim_seconds: f64,
    /// Simnet transfers observed across the numeric stages.
    transfers: u64,
}

fn run_once(cfg: &MultipodConfig) -> Result<Outcome, multipod_core::StepError> {
    let telemetry = Telemetry::shared();
    let chips = Multipod::new(cfg.clone()).num_chips();

    // Stage 1: step timelines -> trace + telemetry -> profiler.
    let recorder = Recorder::shared();
    let mut cursor = SimTime::ZERO;
    for report in [
        Executor::new(presets::resnet50(chips as u32)).run()?,
        Executor::new(presets::bert(chips as u32)).run()?,
    ] {
        for s in 0..3.min(report.steps) {
            cursor =
                record_step_trace(recorder.as_ref(), &report.name, &report.step, s + 1, cursor);
            record_step_telemetry(&telemetry, &report.step);
        }
    }

    // Stage 2: numeric 2-D summation with telemetry attached.
    let mut net = Network::new(Multipod::new(cfg.clone()), NetworkConfig::tpu_v3());
    net.set_telemetry(telemetry.clone());
    let mut rng = TensorRng::seed(17);
    let elems = summation_elems(net.mesh());
    let inputs: Vec<_> = (0..net.mesh().num_chips())
        .map(|_| rng.uniform(Shape::vector(elems), -1.0, 1.0))
        .collect();
    let summation = two_dim_all_reduce(&mut net, &inputs, Precision::F32, 1, None)
        .expect("2-D summation on a healthy mesh");

    // Stage 3: ring all-reduce ladder along a Y ring, recorded separately
    // so its collective spans stay out of the step profiles.
    let ring_recorder = Recorder::shared();
    let mut ring_net = Network::new(Multipod::new(cfg.clone()), NetworkConfig::tpu_v3());
    ring_net.set_telemetry(telemetry.clone());
    ring_net.set_trace_sink(ring_recorder.clone());
    let y_ring = ring_net.mesh().y_ring(0);
    let n = y_ring.len();
    let mut ring_cursor = SimTime::ZERO;
    let mut drift = Vec::new();
    if n >= 2 {
        // Payloads divisible by 2n, so every run takes the bidirectional
        // path the analytic model prices.
        let sizes: Vec<usize> = (5..11).map(|k| (2 * n) << k).collect();
        for &elems in &sizes {
            let payloads: Vec<_> = (0..n)
                .map(|_| rng.uniform(Shape::vector(elems), -1.0, 1.0))
                .collect();
            let out = ring::all_reduce(
                &mut ring_net,
                &y_ring,
                &payloads,
                Precision::F32,
                ring_cursor,
            )
            .expect("ring all-reduce on a healthy mesh");
            ring_cursor = out.time;
        }
        let samples = collective_samples(&ring_recorder.events(), "all-reduce");
        let fit = fit_alpha_beta(&samples).expect("ladder spans distinct sizes");
        let costs =
            RingCosts::from_ring(&ring_net, &y_ring, 1).expect("ring costs on a healthy mesh");
        let ref_elems = *sizes.last().expect("ladder is non-empty");
        let model_alpha = 2.0 * costs.phase_alpha_seconds();
        let model_bps = Precision::F32.wire_bytes(ref_elems) as f64
            / (2.0 * costs.phase_beta_seconds(ref_elems, Precision::F32, true));
        drift.push(check_drift(
            "ring-all-reduce",
            fit,
            model_alpha,
            model_bps,
            DRIFT_TOLERANCE,
        ));
    }

    let registry = telemetry.snapshot();
    let transfers = registry.counter(&MetricId::new(Subsystem::Simnet, "transfers"));
    Ok(Outcome {
        flight: FlightReport {
            registry,
            profile: multipod_telemetry::profile(&recorder.events()),
            drift,
        },
        recorder,
        sim_seconds: summation.time.seconds() + ring_cursor.seconds(),
        transfers,
    })
}

/// Builds the deterministic report body (everything except the
/// `deterministic` gate, which depends on the comparison itself).
fn bench_report(outcome: &Outcome, mesh_label: &str, chips: usize) -> BenchReport {
    let profile = &outcome.flight.profile;
    let fraction_sum = |d: &multipod_telemetry::StepDecomposition| {
        d.compute_fraction
            + d.comm_fraction
            + d.overlap_fraction
            + d.input_fraction
            + d.idle_fraction
    };
    let fractions_ok = std::iter::once(&profile.mean_decomposition)
        .chain(profile.step_profiles.iter().map(|s| &s.decomposition))
        .all(|d| (fraction_sum(d) - 1.0).abs() <= 1e-6);
    let steps: Vec<Value> = profile
        .step_profiles
        .iter()
        .map(|s| {
            json!({
                "name": s.name,
                "step": s.step_index,
                "duration_seconds": s.duration_seconds,
                "critical_path_seconds": s.critical_path_seconds,
                "decomposition": s.decomposition.ser(),
            })
        })
        .collect();
    let registry = &outcome.flight.registry;
    let counter = |name| registry.counter(&MetricId::new(Subsystem::Simnet, name));
    let events_per_sim_second = if outcome.sim_seconds > 0.0 {
        outcome.transfers as f64 / outcome.sim_seconds
    } else {
        0.0
    };
    BenchReport::new("profile", mesh_label, chips)
        .gate("fractions_sum_to_one", fractions_ok)
        .gate(
            "alpha_beta_within_tolerance",
            outcome.flight.drift_within_tolerance(),
        )
        .measurement("steps", json!(profile.steps))
        .measurement("mean_step_seconds", json!(profile.mean_step_seconds))
        .measurement(
            "mean_critical_path_seconds",
            json!(profile.mean_critical_path_seconds),
        )
        .measurement("mean_decomposition", profile.mean_decomposition.ser())
        .measurement("step_profiles", Value::Seq(steps))
        .measurement("simnet_transfers", json!(outcome.transfers))
        .measurement("simnet_link_hops", json!(counter("link_hops")))
        .measurement("simnet_payload_bytes", json!(counter("payload_bytes")))
        .measurement("simnet_sim_seconds", json!(outcome.sim_seconds))
        .measurement("simnet_events_per_sim_second", json!(events_per_sim_second))
        .measurement(
            "drift",
            Value::Seq(outcome.flight.drift.iter().map(|d| d.ser()).collect()),
        )
}

fn main() -> ExitCode {
    // The paper's 128×32 machine unless --mesh overrides.
    let mesh_cfg = mesh_flag(MultipodConfig::multipod(4));
    let mesh = Multipod::new(mesh_cfg.clone());
    let mesh_label = format!("{}x{}", mesh.x_len(), mesh.y_len());
    let chips = mesh.num_chips();
    println!("# Flight-recorder profile on {mesh_label} ({chips} chips)");

    let wall = Instant::now();
    let outcome = match run_once(&mesh_cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("profile replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = bench_report(&outcome, &mesh_label, chips);

    let determinism_checked = std::env::args().any(|a| a == "--check-determinism");
    let mut deterministic = true;
    if determinism_checked {
        let again = run_once(&mesh_cfg).expect("first pass succeeded on the same mesh");
        let a = serde_json::to_string_pretty(&report).expect("report json");
        let b = serde_json::to_string_pretty(&bench_report(&again, &mesh_label, chips))
            .expect("report json");
        let flights_match = outcome.flight.to_json() == again.flight.to_json();
        deterministic = a == b && flights_match;
        println!(
            "determinism: {}",
            if deterministic {
                "byte-identical report"
            } else {
                "MISMATCH — reports differ"
            }
        );
    }
    let wall_seconds = wall.elapsed().as_secs_f64();

    print!("{}", outcome.flight.render_text());
    // Wall-clock throughput is the one non-reproducible number; it stays
    // on stdout so the JSON artifact remains byte-stable.
    let runs = if determinism_checked { 2.0 } else { 1.0 };
    println!(
        "replay rate: {:.0} simnet events/sec wall-clock ({:.2}s wall)",
        runs * outcome.transfers as f64 / wall_seconds.max(1e-9),
        wall_seconds
    );

    let report = report.gate(
        "deterministic",
        determinism_checked.then_some(deterministic),
    );
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_profile.json".to_string());
    report.write(&json_path);

    if let Some(path) = profile_flag() {
        outcome
            .flight
            .write_json(&path)
            .expect("write flight report");
        println!("wrote {}", path.display());
    }
    if let Some(path) = trace_flag() {
        outcome
            .recorder
            .write_chrome_trace(&path)
            .expect("write trace");
        println!("wrote {}", path.display());
    }

    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
