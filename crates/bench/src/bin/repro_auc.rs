//! §4.6: AUC at scale — interpreter-style baseline vs multithreaded
//! sort + loop fusion.

use std::time::Instant;

use multipod_bench::header;
use multipod_metrics::auc::{auc_exact, auc_fast, auc_naive};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 90M samples is the paper's eval set; scale down via --quick.
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 2_000_000 } else { 20_000_000 };
    let mut rng = SmallRng::seed_from_u64(42);
    let mut scores = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let label = rng.gen_range(0.0..1.0f32) < 0.25;
        let base: f32 = if label { 0.6 } else { 0.4 };
        scores.push((base + rng.gen_range(-0.4..0.4f32)).clamp(0.0, 1.0));
        labels.push(label);
    }
    header(
        &format!("AUC over {n} synthetic pCTR samples"),
        &["Implementation", "Seconds", "AUC"],
    );
    let t = Instant::now();
    let naive = auc_naive(&scores, &labels);
    println!(
        "interpreter-style baseline | {:.2} | {naive:.5}",
        t.elapsed().as_secs_f64()
    );
    let t = Instant::now();
    let exact = auc_exact(&scores, &labels);
    println!(
        "single-thread sort+fuse | {:.2} | {exact:.5}",
        t.elapsed().as_secs_f64()
    );
    let t = Instant::now();
    let fast = auc_fast(&scores, &labels, 8);
    println!(
        "multithreaded (8) sort+fuse | {:.2} | {fast:.5}",
        t.elapsed().as_secs_f64()
    );
    assert!((fast - naive).abs() < 1e-9);
    println!("(paper: 60 s python-class vs 2 s multithreaded C++ on 90M samples)");
}
