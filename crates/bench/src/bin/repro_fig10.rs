//! Regenerates Figure 10: MLPerf v0.7 end-to-end minutes, TPU-v3 multipod
//! vs V100/A100 GPU clusters.
//!
//! Pass `--trace <out.json>` to also export a Chrome trace (loadable in
//! Perfetto) of every benchmark's step timeline plus a reference numeric
//! 2-D gradient summation with per-link transfer events, and
//! `--profile <out.json>` to export the flight-recorder report (step
//! telemetry plus critical-path decomposition) over the same timelines.

use multipod_bench::{
    header, preset_by_name, profile_flag, run, trace_flag, write_profile, write_trace,
};
use multipod_models::{catalog, GpuCluster, GpuGeneration};

fn main() {
    let trace_path = trace_flag();
    let profile_path = profile_flag();
    let mut reports = Vec::new();
    header(
        "Figure 10: end-to-end minutes, TPU vs GPU",
        &[
            "Benchmark",
            "TPU chips",
            "TPU (ours)",
            "V100x1536",
            "A100x2048",
        ],
    );
    let rows = [
        ("ResNet-50", 4096),
        ("BERT", 4096),
        ("SSD", 4096),
        ("Transformer", 4096),
        ("MaskRCNN", 512),
        ("DLRM", 256),
    ];
    for (name, chips) in rows {
        let tpu = run(preset_by_name(name, chips));
        let w = catalog::all()
            .into_iter()
            .find(|w| w.name == name)
            .expect("catalog entry");
        let v100 = GpuCluster::new(GpuGeneration::V100, 1536.min(gpu_cap(name)))
            .expect("cluster")
            .end_to_end_minutes(&w)
            .expect("gpu baseline");
        let a100 = GpuCluster::new(GpuGeneration::A100, 2048.min(gpu_cap(name)))
            .expect("cluster")
            .end_to_end_minutes(&w)
            .expect("gpu baseline");
        println!(
            "{name} | {chips} | {:.2} | {:.2} | {:.2}",
            tpu.end_to_end_minutes(),
            v100,
            a100
        );
        reports.push(tpu);
    }
    println!("(paper: TPU multipod submissions lead at the largest scales)");
    if let Some(path) = trace_path {
        let refs: Vec<_> = reports.iter().collect();
        write_trace(&path, &refs, 3).expect("write trace");
        println!("(wrote Chrome trace to {})", path.display());
    }
    if let Some(path) = profile_path {
        let refs: Vec<_> = reports.iter().collect();
        write_profile(&path, &refs, 3).expect("write profile");
        println!("(wrote flight report to {})", path.display());
    }
}

/// GPU submissions also cannot exceed the models' batch-bound scale.
fn gpu_cap(name: &str) -> u32 {
    match name {
        "MaskRCNN" => 256,
        "DLRM" => 64,
        "Transformer" => 512,
        _ => u32::MAX,
    }
}
