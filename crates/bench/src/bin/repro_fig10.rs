//! Regenerates Figure 10: MLPerf v0.7 end-to-end minutes, TPU-v3 multipod
//! vs V100/A100 GPU clusters.

use multipod_bench::{header, preset_by_name, run};
use multipod_models::{catalog, GpuCluster, GpuGeneration};

fn main() {
    header(
        "Figure 10: end-to-end minutes, TPU vs GPU",
        &["Benchmark", "TPU chips", "TPU (ours)", "V100x1536", "A100x2048"],
    );
    let rows = [
        ("ResNet-50", 4096),
        ("BERT", 4096),
        ("SSD", 4096),
        ("Transformer", 4096),
        ("MaskRCNN", 512),
        ("DLRM", 256),
    ];
    for (name, chips) in rows {
        let tpu = run(preset_by_name(name, chips));
        let w = catalog::all()
            .into_iter()
            .find(|w| w.name == name)
            .expect("catalog entry");
        let v100 = GpuCluster::new(GpuGeneration::V100, 1536.min(gpu_cap(name)))
            .end_to_end_minutes(&w);
        let a100 = GpuCluster::new(GpuGeneration::A100, 2048.min(gpu_cap(name)))
            .end_to_end_minutes(&w);
        println!(
            "{name} | {chips} | {:.2} | {:.2} | {:.2}",
            tpu.end_to_end_minutes(),
            v100,
            a100
        );
    }
    println!("(paper: TPU multipod submissions lead at the largest scales)");
}

/// GPU submissions also cannot exceed the models' batch-bound scale.
fn gpu_cap(name: &str) -> u32 {
    match name {
        "MaskRCNN" => 256,
        "DLRM" => 64,
        "Transformer" => 512,
        _ => u32::MAX,
    }
}
