//! Multi-tenant scheduling campaign on the simulated multipod.
//!
//! Streams a heavy heterogeneous job mix — BERT / ResNet-50 / DLRM
//! training at MLPerf slice sizes under a tail of small high-priority
//! eval jobs — through the gang scheduler on the paper's 128×32 machine,
//! with preemption implemented as real sharded checkpoint saves and
//! bit-identical elastic restores, and a canned pair of chip-loss faults.
//! Emits `BENCH_sched.json`.
//!
//! Flags:
//!   --mesh <WxH>          mesh instead of the 128×32 multipod (e.g. 32x32)
//!   --jobs <n>            jobs in the arrival stream (default 2000)
//!   --seed <n>            arrival-stream seed (default 42)
//!   --json <path>         output path (default BENCH_sched.json)
//!   --trace <path>        also export the campaign Chrome trace
//!   --check-determinism   run the campaign twice; exit 1 if the report
//!                         or trace exports differ by a single byte
//!
//! Gates: mean mesh utilization ≥ 0.70 under the canned overload, every
//! elastic restore bit-identical to its save, per-event preemption
//! overhead fully accounted by checkpoint save+restore traffic, and
//! (with `--check-determinism`) byte-identical reruns.

use std::process::ExitCode;
use std::sync::Arc;

use multipod_bench::{arg_value, mesh_flag, trace_flag, BenchReport};
use multipod_faults::FaultPlan;
use multipod_sched::{PodScheduler, SchedConfig, SchedReport};
use multipod_simnet::SimTime;
use multipod_topology::{ChipId, Multipod, MultipodConfig};
use multipod_trace::{Recorder, TraceSink};
use serde_json::json;

/// Mean mesh utilization the canned overload campaign must sustain.
const UTILIZATION_FLOOR: f64 = 0.70;

fn campaign(config: &SchedConfig, plan: &FaultPlan) -> (SchedReport, Arc<Recorder>) {
    let recorder = Recorder::shared();
    let mut sched = PodScheduler::new(config.clone());
    sched.set_trace_sink(recorder.clone() as Arc<dyn TraceSink>);
    let report = sched
        .run_with_faults(plan)
        .expect("scheduling campaign must complete");
    (report, recorder)
}

fn main() -> ExitCode {
    // The paper's 128×32 machine unless --mesh overrides.
    let mesh_cfg = mesh_flag(MultipodConfig::multipod(4));
    let jobs: u32 =
        arg_value("--jobs").map_or(2000, |v| v.parse().expect("--jobs expects an integer"));
    let seed: u64 =
        arg_value("--seed").map_or(42, |v| v.parse().expect("--seed expects an integer"));
    let config = SchedConfig::demo(mesh_cfg.clone(), jobs, seed);
    let mesh = Multipod::new(mesh_cfg);
    println!(
        "# Scheduling campaign on {}x{} ({} chips), {} jobs, seed {}",
        mesh.x_len(),
        mesh.y_len(),
        mesh.num_chips(),
        jobs,
        seed
    );

    // Canned faults: two chips die mid-campaign, off row 0, scaled to
    // whatever mesh is under test. Each kills the slice's job back to
    // its last checkpoint.
    let victim_y = if mesh.y_len() > 1 { 1 } else { 0 };
    let fault_window = config.arrivals.mean_interarrival_seconds * f64::from(jobs);
    let plan = FaultPlan::new()
        .chip_down(
            SimTime::from_seconds(0.25 * fault_window),
            ChipId(victim_y * mesh.x_len() + 1.min(mesh.x_len() - 1)),
        )
        .chip_down(
            SimTime::from_seconds(0.75 * fault_window),
            ChipId(victim_y * mesh.x_len() + mesh.x_len() / 2),
        );

    let (report, recorder) = campaign(&config, &plan);

    let determinism_checked = std::env::args().any(|a| a == "--check-determinism");
    let mut deterministic = true;
    if determinism_checked {
        let (report_again, trace_again) = campaign(&config, &plan);
        let trace_a = serde_json::to_string(&recorder.chrome_trace().expect("trace json"))
            .expect("trace json");
        let trace_b = serde_json::to_string(&trace_again.chrome_trace().expect("trace json"))
            .expect("trace json");
        let report_a = serde_json::to_string(&report).expect("report json");
        let report_b = serde_json::to_string(&report_again).expect("report json");
        deterministic = trace_a == trace_b && report_a == report_b;
        println!(
            "determinism: {}",
            if deterministic {
                "byte-identical report and trace exports"
            } else {
                "MISMATCH — exports differ"
            }
        );
    }

    println!(
        "jobs {} | completed {} | preemptions {} | fault kills {} | restores {} (bit-identical: {})",
        report.jobs,
        report.completed,
        report.preemptions,
        report.fault_kills,
        report.restores,
        report.restores_bit_identical
    );
    println!(
        "makespan {:.3} s | mean utilization {:.1}% (floor {:.0}%)",
        report.makespan_seconds,
        1e2 * report.mean_utilization,
        1e2 * UTILIZATION_FLOOR
    );
    println!(
        "queue wait: mean {:.3} ms, p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
        1e3 * report.queue_wait.mean,
        1e3 * report.queue_wait.p50,
        1e3 * report.queue_wait.p90,
        1e3 * report.queue_wait.p99,
        1e3 * report.queue_wait.max
    );
    println!(
        "preemption overhead: {} events, mean {:.3} ms, p99 {:.3} ms (save {:.3} s + restore {:.3} s total)",
        report.preemption_overhead.count,
        1e3 * report.preemption_overhead.mean,
        1e3 * report.preemption_overhead.p99,
        report.save_seconds,
        report.restore_seconds
    );
    println!("kind | jobs | completed | mean wait (ms) | mean turnaround (ms)");
    for k in &report.per_kind {
        println!(
            "{} | {} | {} | {:.3} | {:.3}",
            k.kind,
            k.jobs,
            k.completed,
            1e3 * k.mean_queue_wait_seconds,
            1e3 * k.mean_turnaround_seconds
        );
    }

    // Preemption overhead must be exactly the checkpoint traffic: the
    // per-event sum never exceeds total simulated save+restore time.
    let overhead_sum = report.preemption_overhead.mean * report.preemption_overhead.count as f64;
    let ckpt_total = report.save_seconds + report.restore_seconds;
    let overhead_accounted = overhead_sum <= ckpt_total + 1e-9 * (1.0 + ckpt_total);

    let bench = BenchReport::new(
        "sched",
        format!("{}x{}", mesh.x_len(), mesh.y_len()),
        mesh.num_chips(),
    )
    .gate(
        "utilization_floor",
        report.mean_utilization >= UTILIZATION_FLOOR,
    )
    .gate("restores_bit_identical", report.restores_bit_identical)
    .gate("all_jobs_completed", report.completed == report.jobs)
    .gate("preemption_overhead_accounted", overhead_accounted)
    .gate(
        "deterministic",
        determinism_checked.then_some(deterministic),
    )
    .measurement("jobs", json!(report.jobs))
    .measurement("completed", json!(report.completed))
    .measurement("preemptions", json!(report.preemptions))
    .measurement("fault_kills", json!(report.fault_kills))
    .measurement("restores", json!(report.restores))
    .measurement("makespan_seconds", json!(report.makespan_seconds))
    .measurement("mean_utilization", json!(report.mean_utilization))
    .measurement("queue_wait_seconds", json!(report.queue_wait))
    .measurement(
        "preemption_overhead_seconds",
        json!(report.preemption_overhead),
    )
    .measurement("save_seconds", json!(report.save_seconds))
    .measurement("restore_seconds", json!(report.restore_seconds))
    .measurement("per_kind", json!(report.per_kind))
    .measurement("seed", json!(seed));
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_sched.json".to_string());
    bench.write(&json_path);

    if let Some(path) = trace_flag() {
        recorder.write_chrome_trace(&path).expect("write trace");
        println!("wrote {}", path.display());
    }

    if bench.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
