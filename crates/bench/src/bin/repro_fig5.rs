//! Regenerates Figure 5: ResNet-50 end-to-end and throughput speedup vs
//! chips (vs ideal scaling).
//!
//! Pass `--trace <out.json>` to also export a Chrome trace of the step
//! timeline at every swept chip count.

use multipod_bench::{header, trace_flag, write_trace};
use multipod_core::scaling::{standard_chip_counts, ScalingCurve};
use multipod_models::catalog;

fn main() {
    let curve =
        ScalingCurve::sweep(&catalog::resnet50(), &standard_chip_counts(4096)).expect("sweep");
    header(
        "Figure 5: ResNet-50 speedup vs chips (base = 16 chips)",
        &["Chips", "End-to-end speedup", "Throughput speedup", "Ideal"],
    );
    let e2e = curve.end_to_end_speedups();
    let thr = curve.throughput_speedups();
    let ideal = curve.ideal_speedups();
    for i in 0..e2e.len() {
        println!(
            "{} | {:.1} | {:.1} | {:.0}",
            e2e[i].0, e2e[i].1, thr[i].1, ideal[i].1
        );
    }
    println!("(paper: throughput tracks ideal more closely than end-to-end,");
    println!(" because the 64k batch needs 88 epochs vs 44 at 4k)");
    if let Some(path) = trace_flag() {
        let refs: Vec<_> = curve.points.iter().map(|p| &p.report).collect();
        write_trace(&path, &refs, 3).expect("write trace");
        println!("(wrote Chrome trace to {})", path.display());
    }
}
