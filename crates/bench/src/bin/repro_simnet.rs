//! Simulator-core micro-benchmark: seed event core vs the hardware-fast
//! core, driving the message pattern of one 2-D all-reduce step event by
//! event (see [`multipod_bench::simcore`] for the shared workload).
//!
//! The baseline re-implements the pre-optimization simulator faithfully: a
//! binary-heap event queue and a network that recomputes the route, per-hop
//! latency, and hash-map link occupancy on every transfer. The optimized
//! side runs the production calendar-queue `EventQueue` and the memoized
//! `Network` (interned links, cached `Arc<Route>` paths, dense occupancy
//! vectors). Both sides execute the same discrete-event simulation — every
//! ring member of every Y-ring and X-ring chains 2(n-1) forward sends, each
//! completion scheduling the next — and must agree on every event time, bit
//! for bit, or the run fails.
//!
//! Emits `BENCH_simnet.json`.
//!
//! Flags:
//!   --mesh <WxH>              run one mesh instead of the default pair
//!                             (128x32 and 256x64)
//!   --elems <n>               per-chip payload elements (default 262144)
//!   --iters <n>               timed iterations per side (default 3)
//!   --json <path>             output path (default BENCH_simnet.json)
//!   --check-determinism       replay the optimized simulation twice; exit
//!                             1 unless the event digests are identical
//!   --check-regression <path> compare against a committed report: exit 1
//!                             if the current speedup falls below 80% of
//!                             the committed one (wall times are machine
//!                             dependent; the baseline/optimized ratio on
//!                             the same host is not)
//!   --matrix                  diagnostic mode: time all four queue × core
//!                             combinations on the last mesh and exit

use std::process::ExitCode;

use multipod_bench::simcore::{
    all_reduce_rings, run_baseline, run_optimized, simulate, time_side, SeedNetwork, SimOutcome,
};
use multipod_bench::{arg_value, committed_measurement, BenchReport};
use multipod_simnet::{EventQueue, HeapEventQueue, Network, NetworkConfig};
use multipod_topology::{Multipod, MultipodConfig};
use serde_json::json;

/// One labelled queue × core combination for `--matrix`.
type Combo = (&'static str, Box<dyn Fn() -> SimOutcome>);

/// Diagnostic mode: time all four queue × core combinations, attributing
/// the speedup between the event queue and the network memoization.
fn matrix(cfg: &MultipodConfig, elems: usize, iters: usize) {
    let combos: Vec<Combo> = vec![
        ("heap+seed", {
            let cfg = cfg.clone();
            Box::new(move || run_baseline(&cfg, elems))
        }),
        ("cal+fast", {
            let cfg = cfg.clone();
            Box::new(move || run_optimized(&cfg, elems))
        }),
        ("heap+fast", {
            let cfg = cfg.clone();
            Box::new(move || {
                let mut net = Network::new(Multipod::new(cfg.clone()), NetworkConfig::tpu_v3());
                let rings = all_reduce_rings(net.mesh());
                let mut queue = HeapEventQueue::new();
                simulate(&mut queue, &mut net, &rings, elems)
            })
        }),
        ("cal+seed", {
            let cfg = cfg.clone();
            Box::new(move || {
                let mesh = Multipod::new(cfg.clone());
                let rings = all_reduce_rings(&mesh);
                let mut core = SeedNetwork::new(&cfg);
                let mut queue = EventQueue::new();
                simulate(&mut queue, &mut core, &rings, elems)
            })
        }),
    ];
    for (name, run) in combos {
        let (outcome, wall) = time_side(iters, run);
        println!(
            "{name:>10}: {:.2} ms, {:.0} events/s",
            wall * 1e3,
            outcome.events as f64 / wall
        );
    }
}

fn main() -> ExitCode {
    let elems: usize = arg_value("--elems").map_or(1 << 18, |v| v.parse().expect("--elems"));
    let iters: usize = arg_value("--iters")
        .map_or(3, |v| v.parse().expect("--iters"))
        .max(1);
    let meshes: Vec<(u32, u32)> = match arg_value("--mesh") {
        Some(spec) => {
            let (x, y) = spec
                .split_once('x')
                .unwrap_or_else(|| panic!("--mesh expects WxH, got '{spec}'"));
            vec![(
                x.parse().expect("mesh width"),
                y.parse().expect("mesh height"),
            )]
        }
        None => vec![(128, 32), (256, 64)],
    };

    if std::env::args().any(|a| a == "--matrix") {
        let &(x, y) = meshes.last().expect("at least one mesh");
        matrix(&MultipodConfig::mesh(x, y, true), elems, iters);
        return ExitCode::SUCCESS;
    }

    let mesh_label = meshes
        .iter()
        .map(|(x, y)| format!("{x}x{y}"))
        .collect::<Vec<_>>()
        .join("+");
    let total_chips: usize = meshes.iter().map(|&(x, y)| (x * y) as usize).sum();
    let mut report = BenchReport::new("simnet", mesh_label.clone(), total_chips);

    println!("# Simulator-core event throughput, {elems} elems/chip, {iters} iters/side");
    let mut bit_identical = true;
    let mut last_speedup = f64::NAN;
    let mut speedup_at_target: Option<bool> = None;
    for &(x, y) in &meshes {
        let cfg = MultipodConfig::mesh(x, y, true);
        let label = format!("{x}x{y}");

        let (base, base_wall) = time_side(iters, || run_baseline(&cfg, elems));
        let (opt, opt_wall) = time_side(iters, || run_optimized(&cfg, elems));

        let identical = base.digest == opt.digest
            && base.final_time.seconds().to_bits() == opt.final_time.seconds().to_bits()
            && base.events == opt.events;
        bit_identical &= identical;

        let base_eps = base.events as f64 / base_wall;
        let opt_eps = opt.events as f64 / opt_wall;
        let speedup = opt_eps / base_eps;
        last_speedup = speedup;
        if (x, y) == (256, 64) {
            speedup_at_target = Some(speedup >= 2.0);
        }
        println!(
            "{label}: {} events, sim {} s, bit-identical: {identical}",
            opt.events,
            opt.final_time.seconds()
        );
        println!(
            "  seed core      | {:>9.1} ms | {base_eps:>12.0} events/s",
            base_wall * 1e3
        );
        println!(
            "  hardware-fast  | {:>9.1} ms | {opt_eps:>12.0} events/s",
            opt_wall * 1e3
        );
        println!("  speedup: {speedup:.2}x");

        report = report
            .measurement(format!("events_{label}"), json!(opt.events))
            .measurement(
                format!("sim_seconds_{label}"),
                json!(opt.final_time.seconds()),
            )
            .measurement(format!("baseline_ms_{label}"), json!(base_wall * 1e3))
            .measurement(format!("optimized_ms_{label}"), json!(opt_wall * 1e3))
            .measurement(
                format!("baseline_events_per_sec_{label}"),
                json!(base_eps.round()),
            )
            .measurement(
                format!("optimized_events_per_sec_{label}"),
                json!(opt_eps.round()),
            )
            .measurement(format!("speedup_{label}"), json!(speedup));
        if !identical {
            eprintln!("FAIL: seed and hardware-fast cores disagree on {label}");
        }
    }

    let determinism_checked = std::env::args().any(|a| a == "--check-determinism");
    let mut deterministic = true;
    if determinism_checked {
        // Replay the optimized simulation on the last mesh twice more: the
        // event digest (every pop, every finish time) must not move.
        let &(x, y) = meshes.last().expect("at least one mesh");
        let cfg = MultipodConfig::mesh(x, y, true);
        let a = run_optimized(&cfg, elems);
        let b = run_optimized(&cfg, elems);
        deterministic = a.digest == b.digest
            && a.final_time.seconds().to_bits() == b.final_time.seconds().to_bits();
        println!(
            "determinism: {}",
            if deterministic {
                "byte-identical event digests"
            } else {
                "MISMATCH — replays differ"
            }
        );
    }

    report = report
        .gate("bit_identical", bit_identical)
        .gate(
            "deterministic",
            determinism_checked.then_some(deterministic),
        )
        .gate("speedup_target_2x", speedup_at_target)
        .measurement("speedup", json!(last_speedup));
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_simnet.json".to_string());
    report.write(&json_path);

    if !bit_identical || !deterministic || speedup_at_target == Some(false) {
        if speedup_at_target == Some(false) {
            eprintln!("FAIL: hardware-fast core below the 2x events/sec target at 256x64");
        }
        return ExitCode::FAILURE;
    }

    if let Some(committed) = arg_value("--check-regression") {
        let text =
            std::fs::read_to_string(&committed).unwrap_or_else(|e| panic!("read {committed}: {e}"));
        let prior: serde_json::Value = serde_json::from_str(&text).expect("committed report json");
        let prior_speedup = committed_measurement(&prior, "speedup")
            .and_then(|v| v.as_f64())
            .expect("committed report has a speedup measurement");
        let floor = prior_speedup * 0.8;
        println!(
            "regression gate: speedup {last_speedup:.2}x vs committed {prior_speedup:.2}x (floor {floor:.2}x)"
        );
        if last_speedup < floor {
            eprintln!("FAIL: simulator-core speedup regressed more than 20%");
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
