//! Zero-copy collective micro-benchmark: deep-copy vs handle-moving
//! all-reduce on one mesh, reporting wall time and speedup.
//!
//! The baseline re-implements the pre-zero-copy hot path faithfully: the
//! same ring schedules and the same arithmetic, but every place the old
//! `Vec<f32>`-backed tensor cloned its payload performs a real deep copy.
//! The zero-copy side runs the production [`multipod_collectives`] path,
//! where those sites are O(1) `Arc` handle bumps. Both sides execute the
//! full 2-D (Y-then-X) gradient summation numerically; outputs must be
//! bit-identical or the run fails.
//!
//! Emits `BENCH_collectives.json`.
//!
//! Flags:
//!   --mesh <WxH>              mesh (default 8x8)
//!   --elems <n>               per-chip payload elements (default 262144)
//!   --iters <n>               timed iterations per side (default 5)
//!   --json <path>             output path (default BENCH_collectives.json)
//!   --check-regression <path> compare against a committed report: exit 1
//!                             if the current speedup falls below 80% of
//!                             the committed one (wall times are machine
//!                             dependent; the baseline/zero-copy ratio on
//!                             the same host is not)

use std::process::ExitCode;
use std::time::Instant;

use multipod_bench::{arg_value, committed_measurement, mesh_flag, BenchReport};
use multipod_collectives::ring::Direction;
use multipod_collectives::twod::two_dim_all_reduce;
use multipod_collectives::{CollectiveError, Precision, Schedule};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::{ChipId, Multipod, MultipodConfig, Ring};
use serde_json::json;

/// A forced deep copy: what every `.clone()` cost before tensors shared
/// their storage.
fn deep(t: &Tensor) -> Tensor {
    Tensor::new(t.shape().clone(), t.data().to_vec())
}

// ---------------------------------------------------------------------------
// Baseline: the seed ring loops with their copies materialized.
// ---------------------------------------------------------------------------

fn baseline_flatten_chunks(
    inputs: &[Tensor],
    n: usize,
) -> Result<Vec<Vec<Tensor>>, CollectiveError> {
    inputs
        .iter()
        .map(|t| {
            let flat = deep(t).reshape(Shape::vector(t.len()))?;
            flat.split(0, n).map_err(CollectiveError::from)
        })
        .collect()
}

fn baseline_run_schedule(
    net: &mut Network,
    ring: &Ring,
    schedule: &Schedule,
    chunks: &mut [Vec<Tensor>],
    precision: Precision,
    start: SimTime,
) -> Result<SimTime, CollectiveError> {
    let members = ring.members();
    let mut t = start;
    for step in schedule.steps() {
        // The seed's quantize snapshot deep-copied the chunk even at F32.
        let payloads: Vec<Tensor> = step
            .iter()
            .map(|mv| deep(&precision.quantize(&chunks[mv.from][mv.chunk])))
            .collect();
        for (mv, payload) in step.iter().zip(&payloads) {
            if mv.reduce {
                chunks[mv.to][mv.chunk].axpy(1.0, payload)?;
            } else {
                chunks[mv.to][mv.chunk] = deep(payload);
            }
        }
        let msgs: Vec<(ChipId, ChipId, u64)> = step
            .iter()
            .map(|mv| {
                (
                    members[mv.from],
                    members[mv.to],
                    precision.wire_bytes(chunks[mv.from][mv.chunk].len()),
                )
            })
            .collect();
        t = net.parallel_transfers(&msgs, t)?;
    }
    Ok(t)
}

fn baseline_reduce_scatter(
    net: &mut Network,
    ring: &Ring,
    inputs: &[Tensor],
    precision: Precision,
    start: SimTime,
) -> Result<(Vec<Tensor>, Vec<usize>, SimTime), CollectiveError> {
    let n = ring.len();
    let mut chunks = baseline_flatten_chunks(inputs, n)?;
    let schedule = Schedule::reduce_scatter(n, Direction::Forward);
    let time = baseline_run_schedule(net, ring, &schedule, &mut chunks, precision, start)?;
    let chunk_of_member: Vec<usize> = (0..n).map(|i| schedule.owned_chunk(i)).collect();
    let shards = chunks
        .iter()
        .zip(&chunk_of_member)
        .map(|(row, &owned)| deep(&row[owned]))
        .collect();
    Ok((shards, chunk_of_member, time))
}

fn baseline_all_gather(
    net: &mut Network,
    ring: &Ring,
    shards: &[Tensor],
    precision: Precision,
    start: SimTime,
) -> Result<(Vec<Tensor>, SimTime), CollectiveError> {
    let n = ring.len();
    let schedule = Schedule::all_gather(n, Direction::Forward);
    let chunk_elems = shards[0].len();
    let mut chunks: Vec<Vec<Tensor>> = Vec::with_capacity(n);
    for (i, shard) in shards.iter().enumerate() {
        let mut row = vec![Tensor::zeros(Shape::vector(chunk_elems)); n];
        row[schedule.owned_chunk(i)] = deep(shard).reshape(Shape::vector(chunk_elems))?;
        chunks.push(row);
    }
    let time = baseline_run_schedule(net, ring, &schedule, &mut chunks, precision, start)?;
    let outputs = chunks
        .into_iter()
        .map(|row| Tensor::concat(&row, 0).map_err(CollectiveError::from))
        .collect::<Result<Vec<Tensor>, CollectiveError>>()?;
    Ok((outputs, time))
}

/// The seed 2-D Y-then-X summation with its per-phase shard clones
/// materialized as deep copies (stride 1, no weight update, no trace).
fn baseline_two_dim_all_reduce(
    net: &mut Network,
    inputs: &[Tensor],
    precision: Precision,
) -> Result<(Vec<Tensor>, SimTime), CollectiveError> {
    let mesh = net.mesh().clone();
    let shape = inputs[0].shape().clone();
    let x_len = mesh.x_len();
    let y_len = mesh.y_len();

    // Phase 1: reduce-scatter along Y.
    let mut y_shards: Vec<Option<Tensor>> = vec![None; inputs.len()];
    let mut y_rs_end = SimTime::ZERO;
    for x in 0..x_len {
        let ring_y = mesh.y_ring(x);
        let col_inputs: Vec<Tensor> = ring_y
            .members()
            .iter()
            .map(|c| deep(&inputs[c.index()]))
            .collect();
        let (shards, _, t) =
            baseline_reduce_scatter(net, &ring_y, &col_inputs, precision, SimTime::ZERO)?;
        for (member, shard) in ring_y.members().iter().zip(shards) {
            y_shards[member.index()] = Some(shard);
        }
        y_rs_end = y_rs_end.max(t);
    }

    // Phase 2: reduce-scatter along X.
    let mut x_shards: Vec<Option<Tensor>> = vec![None; inputs.len()];
    let mut x_rs_end = y_rs_end;
    for y in 0..y_len {
        let ring_x = mesh.x_line_strided(y, 0, 1);
        if ring_x.len() < 2 {
            for &member in ring_x.members() {
                x_shards[member.index()] = y_shards[member.index()].as_ref().map(deep);
            }
            continue;
        }
        let row_inputs: Vec<Tensor> = ring_x
            .members()
            .iter()
            .map(|c| deep(y_shards[c.index()].as_ref().expect("phase 1 filled")))
            .collect();
        let (shards, _, t) =
            baseline_reduce_scatter(net, &ring_x, &row_inputs, precision, y_rs_end)?;
        for (i, member) in ring_x.members().iter().enumerate() {
            x_shards[member.index()] = Some(deep(&shards[i]));
        }
        x_rs_end = x_rs_end.max(t);
    }

    // Phase 4a: all-gather along X.
    let mut x_full: Vec<Option<Tensor>> = vec![None; inputs.len()];
    let mut x_ag_end = x_rs_end;
    for y in 0..y_len {
        let ring_x = mesh.x_line_strided(y, 0, 1);
        if ring_x.len() < 2 {
            for &member in ring_x.members() {
                x_full[member.index()] = x_shards[member.index()].as_ref().map(deep);
            }
            continue;
        }
        let shards: Vec<Tensor> = ring_x
            .members()
            .iter()
            .map(|c| deep(x_shards[c.index()].as_ref().expect("phase 2 filled")))
            .collect();
        let (outs, t) = baseline_all_gather(net, &ring_x, &shards, precision, x_rs_end)?;
        for (i, member) in ring_x.members().iter().enumerate() {
            x_full[member.index()] = Some(deep(&outs[i]));
        }
        x_ag_end = x_ag_end.max(t);
    }

    // Phase 4b: all-gather along Y.
    let mut outputs: Vec<Option<Tensor>> = vec![None; inputs.len()];
    let mut y_ag_end = x_ag_end;
    for x in 0..x_len {
        let ring_y = mesh.y_ring(x);
        if ring_y.len() < 2 {
            for &member in ring_y.members() {
                outputs[member.index()] = x_full[member.index()].as_ref().map(deep);
            }
            continue;
        }
        let shards: Vec<Tensor> = ring_y
            .members()
            .iter()
            .map(|c| deep(x_full[c.index()].as_ref().expect("phase 4a filled")))
            .collect();
        let (outs, t) = baseline_all_gather(net, &ring_y, &shards, precision, x_ag_end)?;
        for (i, member) in ring_y.members().iter().enumerate() {
            outputs[member.index()] = Some(deep(&outs[i]));
        }
        y_ag_end = y_ag_end.max(t);
    }

    let mut reshaped: Vec<Tensor> = Vec::with_capacity(outputs.len());
    for t in outputs {
        reshaped.push(t.expect("phase 4b filled").reshape(shape.clone())?);
    }
    Ok((reshaped, y_ag_end))
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn fresh_net(cfg: &MultipodConfig) -> Network {
    Network::new(Multipod::new(cfg.clone()), NetworkConfig::tpu_v3())
}

fn random_inputs(n: usize, elems: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = TensorRng::seed(seed);
    (0..n)
        .map(|_| rng.uniform(Shape::vector(elems), -1.0, 1.0))
        .collect()
}

fn main() -> ExitCode {
    let mesh_cfg = mesh_flag(MultipodConfig::mesh(8, 8, true));
    let elems: usize = arg_value("--elems").map_or(1 << 18, |v| v.parse().expect("--elems"));
    let iters: usize = arg_value("--iters").map_or(5, |v| v.parse().expect("--iters"));
    let mesh = Multipod::new(mesh_cfg.clone());
    let n = mesh.num_chips();
    let inputs = random_inputs(n, elems, 42);
    println!(
        "# Zero-copy all-reduce on {}x{} ({} chips), {} elems/chip, {} iters/side",
        mesh.x_len(),
        mesh.y_len(),
        n,
        elems,
        iters
    );

    // Correctness gate first: the two implementations must agree bit for
    // bit in outputs and simulated time.
    let (base_out, base_time) =
        baseline_two_dim_all_reduce(&mut fresh_net(&mesh_cfg), &inputs, Precision::F32)
            .expect("baseline all-reduce");
    let zc = two_dim_all_reduce(&mut fresh_net(&mesh_cfg), &inputs, Precision::F32, 1, None)
        .expect("zero-copy all-reduce");
    let identical = base_out == zc.outputs && base_time == zc.time;
    println!(
        "outputs bit-identical: {identical} (sim time {} s)",
        zc.time.seconds()
    );
    if !identical {
        eprintln!("FAIL: deep-copy baseline and zero-copy path disagree");
        return ExitCode::FAILURE;
    }

    // Timed runs: fresh network each iteration so both sides pay the same
    // setup; keep the fastest iteration (least scheduler noise).
    let mut baseline_ms = f64::INFINITY;
    for _ in 0..iters {
        let mut net = fresh_net(&mesh_cfg);
        let t0 = Instant::now();
        baseline_two_dim_all_reduce(&mut net, &inputs, Precision::F32).expect("baseline");
        baseline_ms = baseline_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let mut zero_copy_ms = f64::INFINITY;
    for _ in 0..iters {
        let mut net = fresh_net(&mesh_cfg);
        let t0 = Instant::now();
        two_dim_all_reduce(&mut net, &inputs, Precision::F32, 1, None).expect("zero-copy");
        zero_copy_ms = zero_copy_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let speedup = baseline_ms / zero_copy_ms;

    println!("config | wall (ms)");
    println!("deep-copy baseline | {baseline_ms:.2}");
    println!("zero-copy | {zero_copy_ms:.2}");
    println!("speedup: {speedup:.2}x");

    let report = BenchReport::new(
        "collectives",
        format!("{}x{}", mesh.x_len(), mesh.y_len()),
        n,
    )
    .gate("bit_identical", identical)
    .measurement("elems_per_chip", json!(elems))
    .measurement("iters", json!(iters))
    .measurement("baseline_ms", json!(baseline_ms))
    .measurement("zero_copy_ms", json!(zero_copy_ms))
    .measurement("speedup", json!(speedup));
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_collectives.json".to_string());
    report.write(&json_path);

    if let Some(committed) = arg_value("--check-regression") {
        let text =
            std::fs::read_to_string(&committed).unwrap_or_else(|e| panic!("read {committed}: {e}"));
        let prior: serde_json::Value = serde_json::from_str(&text).expect("committed report json");
        let prior_speedup = committed_measurement(&prior, "speedup")
            .and_then(|v| v.as_f64())
            .expect("committed report has a speedup measurement");
        // Wall times vary by machine; the same-host baseline/zero-copy
        // ratio is the stable signal. >20% regression fails the gate.
        let floor = prior_speedup * 0.8;
        println!("regression gate: speedup {speedup:.2}x vs committed {prior_speedup:.2}x (floor {floor:.2}x)");
        if speedup < floor {
            eprintln!("FAIL: zero-copy speedup regressed more than 20%");
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
