//! Regenerates Figure 11: end-to-end speedups over 16 accelerator chips of
//! their own type (TPU-v3 vs A100).

use multipod_bench::header;
use multipod_core::scaling::{standard_chip_counts, ScalingCurve};
use multipod_models::{catalog, GpuCluster, GpuGeneration};

fn main() {
    header(
        "Figure 11: speedup over 16 accelerators of the same type",
        &[
            "Benchmark",
            "TPU chips",
            "TPU speedup",
            "GPU count",
            "GPU speedup",
        ],
    );
    for (w, tpu_max, gpu_max) in [
        (catalog::resnet50(), 4096u32, 2048u32),
        (catalog::bert(), 4096, 2048),
        (catalog::ssd(), 4096, 1024),
        (catalog::transformer(), 4096, 512),
    ] {
        let curve = ScalingCurve::sweep(&w, &standard_chip_counts(tpu_max)).expect("sweep");
        let tpu_speedup = curve.end_to_end_speedups().last().unwrap().1;
        let gpu_base = GpuCluster::new(GpuGeneration::A100, 16)
            .expect("cluster")
            .end_to_end_minutes(&w)
            .expect("gpu baseline");
        let gpu_top = GpuCluster::new(GpuGeneration::A100, gpu_max)
            .expect("cluster")
            .end_to_end_minutes(&w)
            .expect("gpu baseline");
        println!(
            "{} | {tpu_max} | {:.1} | {gpu_max} | {:.1}",
            w.name,
            tpu_speedup,
            gpu_base / gpu_top
        );
    }
    println!("(paper: TPUs achieve lower end-to-end times and higher speedups)");
}
