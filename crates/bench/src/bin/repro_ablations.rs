//! Ablations of the paper's design choices (DESIGN.md index): 1-D vs 2-D
//! gradient summation, f32 vs bf16 payloads, weight-update sharding.

use multipod_bench::header;
use multipod_collectives::Precision;
use multipod_core::ablate::{precision_ablation, summation_ablation, wus_ablation};
use multipod_models::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header(
        "Ablation: 1-D snake ring vs the 2-D Y-then-X schedule (ResNet-50 gradients)",
        &["Chips", "1-D ring (ms)", "2-D schedule (ms)", "2-D speedup"],
    );
    for r in summation_ablation(25_600_000, Precision::F32, &[64, 256, 1024, 4096])? {
        println!(
            "{} | {:.2} | {:.2} | {:.1}x",
            r.chips,
            1e3 * r.one_dim,
            1e3 * r.two_dim,
            r.speedup()
        );
    }

    header(
        "Ablation: gradient payload precision (BERT gradients, 2-D schedule)",
        &["Chips", "f32 (ms)", "bf16 (ms)", "saving"],
    );
    for r in precision_ablation(334_000_000, &[256, 1024, 4096])? {
        println!(
            "{} | {:.2} | {:.2} | {:.0}%",
            r.chips,
            1e3 * r.f32_time,
            1e3 * r.bf16_time,
            100.0 * (1.0 - r.bf16_time / r.f32_time)
        );
    }

    header(
        "Ablation: weight-update sharding (BERT at a ~4k global batch)",
        &[
            "Chips",
            "replicated step (ms)",
            "sharded step (ms)",
            "update share (repl.)",
        ],
    );
    let mut bert = catalog::bert();
    bert.max_per_core_batch = 4;
    for r in wus_ablation(&bert, &[256, 512, 1024])? {
        println!(
            "{} | {:.2} | {:.2} | {:.1}%",
            r.chips,
            1e3 * r.replicated_step,
            1e3 * r.sharded_step,
            100.0 * r.replicated_update_share
        );
    }
    Ok(())
}
