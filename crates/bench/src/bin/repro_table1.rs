//! Regenerates Table 1: end-to-end training minutes on the multipod.
//!
//! Pass `--trace <out.json>` to also export a Chrome trace of every row's
//! TensorFlow step timeline.

use multipod_bench::{header, paper, preset_by_name, run, trace_flag, write_trace};
use multipod_framework::FrameworkKind;

fn main() {
    let mut reports = Vec::new();
    header(
        "Table 1: end-to-end time (minutes)",
        &[
            "Benchmark",
            "Chips",
            "TF (paper)",
            "TF (ours)",
            "JAX (paper)",
            "JAX (ours)",
            "v0.6 speedup (paper)",
            "v0.6 speedup (ours)",
        ],
    );
    for &(name, chips, tf_paper, jax_paper, v06_paper) in paper::TABLE1 {
        let tf = run(preset_by_name(name, chips));
        let jax = jax_paper.map(|_| {
            let mut p = preset_by_name(name, chips);
            p.framework = FrameworkKind::Jax;
            run(p)
        });
        // The v0.6 baseline configuration (old batch caps, MPMD tiles,
        // compressed input, no WUS).
        let v06 = v06_paper.and_then(|_| multipod_core::presets::v06(name).map(run));
        println!(
            "{name} | {chips} | {tf_paper} | {:.2} | {} | {} | {} | {}",
            tf.end_to_end_minutes(),
            jax_paper.map_or("-".into(), |v| format!("{v}")),
            jax.as_ref()
                .map_or("-".into(), |r| format!("{:.2}", r.end_to_end_minutes())),
            v06_paper.map_or("-".into(), |v| format!("{v}")),
            v06.as_ref().map_or("-".into(), |r| format!(
                "{:.2}",
                r.end_to_end_minutes() / tf.end_to_end_minutes()
            )),
        );
        reports.push(tf);
    }
    if let Some(path) = trace_flag() {
        let refs: Vec<_> = reports.iter().collect();
        write_trace(&path, &refs, 3).expect("write trace");
        println!("(wrote Chrome trace to {})", path.display());
    }
}
