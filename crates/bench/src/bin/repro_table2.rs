//! Regenerates Table 2: initialization time, TensorFlow vs JAX.

use multipod_bench::{header, paper};
use multipod_framework::{profiles, FrameworkKind, InitModel};

fn main() {
    header(
        "Table 2: initialization time (seconds)",
        &[
            "Benchmark",
            "Chips",
            "TF (paper)",
            "TF (ours)",
            "JAX (paper)",
            "JAX (ours)",
        ],
    );
    let model = InitModel::calibrated();
    for &(name, chips, tf_paper, jax_paper) in paper::TABLE2 {
        let profile = profiles::by_name(name);
        // The paper measured SSD's JAX entry at 2048 chips.
        let jax_chips = if name == "SSD" { 2048 } else { chips };
        let tf = model.init_seconds(FrameworkKind::TensorFlow, &profile, chips);
        let jax = model.init_seconds(FrameworkKind::Jax, &profile, jax_chips);
        println!("{name} | {chips} | {tf_paper} | {tf:.0} | {jax_paper} | {jax:.0}");
    }
}
