//! Regenerates Table 2: initialization time, TensorFlow vs JAX.
//!
//! Pass `--trace <out.json>` to also export a Chrome trace of every row's
//! training step timeline (initialization itself is a closed-form model
//! with no recorded spans).

use multipod_bench::{header, paper, preset_by_name, run, trace_flag, write_trace};
use multipod_framework::{profiles, FrameworkKind, InitModel};

fn main() {
    header(
        "Table 2: initialization time (seconds)",
        &[
            "Benchmark",
            "Chips",
            "TF (paper)",
            "TF (ours)",
            "JAX (paper)",
            "JAX (ours)",
        ],
    );
    let model = InitModel::calibrated();
    for &(name, chips, tf_paper, jax_paper) in paper::TABLE2 {
        let profile = profiles::by_name(name).expect("profile");
        // The paper measured SSD's JAX entry at 2048 chips.
        let jax_chips = if name == "SSD" { 2048 } else { chips };
        let tf = model.init_seconds(FrameworkKind::TensorFlow, &profile, chips);
        let jax = model.init_seconds(FrameworkKind::Jax, &profile, jax_chips);
        println!("{name} | {chips} | {tf_paper} | {tf:.0} | {jax_paper} | {jax:.0}");
    }
    if let Some(path) = trace_flag() {
        let reports: Vec<_> = paper::TABLE2
            .iter()
            .map(|&(name, chips, _, _)| run(preset_by_name(name, chips)))
            .collect();
        let refs: Vec<_> = reports.iter().collect();
        write_trace(&path, &refs, 3).expect("write trace");
        println!("(wrote Chrome trace to {})", path.display());
    }
}
