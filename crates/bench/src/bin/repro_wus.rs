//! §3.2 ablation: weight-update sharding on/off for BERT at 512 chips.

use multipod_bench::{header, paper, pct};
use multipod_core::step::{step_breakdown, StepOptions};
use multipod_models::catalog;

fn main() -> Result<(), multipod_core::StepError> {
    let mut w = catalog::bert();
    w.max_per_core_batch = 4; // the ~4k-batch configuration of the anchor
    header(
        "Weight-update sharding ablation (BERT, 512 chips)",
        &["Config", "Step (ms)", "Update (ms)", "Update share"],
    );
    for (label, wus) in [("replicated", false), ("sharded (WUS)", true)] {
        let b = step_breakdown(
            &w,
            512,
            &StepOptions {
                weight_update_sharding: wus,
                ..Default::default()
            },
        )?;
        println!(
            "{label} | {:.2} | {:.3} | {}",
            1e3 * b.total(),
            1e3 * b.weight_update,
            pct(b.weight_update / b.total())
        );
    }
    println!(
        "(paper: the replicated LAMB update is ~{} of the step at 512 chips)",
        pct(paper::BERT_WUS_SHARE)
    );
    Ok(())
}
