//! Regenerates Figure 6: ResNet-50 per-step computation vs all-reduce time.
//!
//! Pass `--trace <out.json>` to also export a Chrome trace of the step
//! timeline at every swept chip count.

use multipod_bench::{header, paper, pct, trace_flag, write_trace};
use multipod_core::scaling::{standard_chip_counts, ScalingCurve};
use multipod_models::catalog;

fn main() {
    let curve =
        ScalingCurve::sweep(&catalog::resnet50(), &standard_chip_counts(4096)).expect("sweep");
    header(
        "Figure 6: ResNet-50 step-time breakdown (ms)",
        &[
            "Chips",
            "Batch/chip",
            "Compute",
            "All-reduce",
            "All-reduce share",
        ],
    );
    for p in &curve.points {
        let r = &p.report;
        println!(
            "{} | {} | {:.2} | {:.2} | {}",
            p.chips,
            r.global_batch / p.chips,
            1e3 * (r.step.compute + r.step.weight_update),
            1e3 * r.step.gradient_comm.total(),
            pct(r.step.all_reduce_fraction()),
        );
    }
    let last = curve.points.last().unwrap();
    println!(
        "(paper @4096: all-reduce = {}; ours = {})",
        pct(paper::RESNET_ALLREDUCE_SHARE),
        pct(last.report.step.all_reduce_fraction())
    );
    if let Some(path) = trace_flag() {
        let refs: Vec<_> = curve.points.iter().map(|p| &p.report).collect();
        write_trace(&path, &refs, 3).expect("write trace");
        println!("(wrote Chrome trace to {})", path.display());
    }
}
