//! Regenerates Figure 9: speedup via model parallelism (SSD, MaskRCNN,
//! Transformer).
//!
//! Pass `--trace <out.json>` to also export a Chrome trace of the three
//! benchmarks' step timelines at their Table-1 scales.

use multipod_bench::{header, paper, preset_by_name, run, trace_flag, write_trace};
use multipod_core::modelpar::speedup_curve;
use multipod_models::catalog;

fn main() {
    header(
        "Figure 9: model-parallel speedup over 1 core",
        &["Cores", "SSD", "MaskRCNN", "Transformer"],
    );
    let ssd = speedup_curve(&catalog::ssd(), 1.0, &[1, 2, 4, 8]).expect("ssd sweep");
    let mask = speedup_curve(&catalog::maskrcnn(), 1.0, &[1, 2, 4, 8]).expect("maskrcnn sweep");
    let tra = speedup_curve(&catalog::transformer(), 1.0, &[1, 2, 4]).expect("transformer sweep");
    for i in 0..4 {
        let t = if i < tra.len() {
            format!("{:.2}", tra[i].speedup)
        } else {
            "-".into()
        };
        println!(
            "{} | {:.2} | {:.2} | {}",
            ssd[i].cores, ssd[i].speedup, mask[i].speedup, t
        );
    }
    println!(
        "(paper: Transformer reaches {:.1}x on 4 cores; ours = {:.2}x)",
        paper::TRANSFORMER_4CORE_SPEEDUP,
        tra.last().unwrap().speedup
    );
    if let Some(path) = trace_flag() {
        let reports = [
            run(preset_by_name("SSD", 4096)),
            run(preset_by_name("MaskRCNN", 512)),
            run(preset_by_name("Transformer", 4096)),
        ];
        let refs: Vec<_> = reports.iter().collect();
        write_trace(&path, &refs, 3).expect("write trace");
        println!("(wrote Chrome trace to {})", path.display());
    }
}
