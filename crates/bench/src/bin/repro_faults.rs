//! Fault campaigns: fault-free vs degraded step time on a faulty mesh.
//!
//! Runs the canned campaign — a torus Y wrap-link outage plus one
//! straggler host over the middle of a short training run — and reports
//! clean vs degraded step time, emitting `BENCH_faults.json`.
//!
//! Flags:
//!   --mesh <WxH>          mesh instead of the 128×32 multipod (e.g. 4x4)
//!   --steps <n>           training steps (default 8)
//!   --json <path>         output path (default BENCH_faults.json)
//!   --trace <path>        also export the campaign Chrome trace
//!   --check-determinism   run the campaign twice; exit 1 if the trace
//!                         exports differ by a single byte

use std::process::ExitCode;
use std::sync::Arc;

use multipod_bench::{arg_value, mesh_flag, trace_flag, BenchReport};
use multipod_faults::{run_campaign, CampaignConfig, CampaignReport, FaultPlan};
use multipod_simnet::SimTime;
use multipod_topology::{Multipod, MultipodConfig};
use multipod_trace::{Recorder, TraceSink};
use serde_json::json;

fn campaign_trace(config: &CampaignConfig, plan: &FaultPlan) -> (CampaignReport, Arc<Recorder>) {
    let recorder = Recorder::shared();
    let report = run_campaign(config, plan, Some(recorder.clone() as Arc<dyn TraceSink>))
        .expect("campaign must complete");
    (report, recorder)
}

fn main() -> ExitCode {
    // The paper's 128×32 machine unless --mesh overrides.
    let mesh_cfg = mesh_flag(MultipodConfig::multipod(4));
    let mut config = CampaignConfig::demo(mesh_cfg.clone());
    if let Some(steps) = arg_value("--steps") {
        config.steps = steps.parse().expect("--steps expects an integer");
    }
    let mesh = Multipod::new(mesh_cfg);
    println!(
        "# Fault campaign on {}x{} ({} chips), {} steps",
        mesh.x_len(),
        mesh.y_len(),
        mesh.num_chips(),
        config.steps
    );

    // Baseline: no faults.
    let clean = run_campaign(&config, &FaultPlan::new(), None).expect("fault-free campaign");

    // Canned campaign: the wrap link of column 0 is down while host 1
    // straggles at 2×, from the start of step 2 to the start of step 6
    // (clamped for short runs).
    let t1 = clean.steps[1.min(clean.steps.len() - 1)].start_seconds;
    let t2 = clean
        .steps
        .get(5)
        .map_or(clean.total_seconds, |s| s.start_seconds);
    let plan = FaultPlan::wrap_outage_with_straggler(
        &mesh,
        0,
        SimTime::from_seconds(t1),
        SimTime::from_seconds(t2),
        1,
        2.0,
    );
    let (faulty, recorder) = campaign_trace(&config, &plan);

    let determinism_checked = std::env::args().any(|a| a == "--check-determinism");
    let mut deterministic = true;
    if determinism_checked {
        let (_, again) = campaign_trace(&config, &plan);
        let a = serde_json::to_string(&recorder.chrome_trace().expect("trace json"))
            .expect("trace json");
        let b =
            serde_json::to_string(&again.chrome_trace().expect("trace json")).expect("trace json");
        deterministic = a == b;
        println!(
            "determinism: {}",
            if deterministic {
                "byte-identical trace export"
            } else {
                "MISMATCH — trace exports differ"
            }
        );
    }

    println!("config | total (ms) | mean clean step (ms) | mean degraded step (ms) | final loss");
    println!(
        "fault-free | {:.3} | {:.3} | - | {:.6}",
        1e3 * clean.total_seconds,
        1e3 * clean.mean_clean_step_seconds().unwrap_or(0.0),
        clean.final_loss
    );
    println!(
        "campaign | {:.3} | {:.3} | {:.3} | {:.6}",
        1e3 * faulty.total_seconds,
        1e3 * faulty.mean_clean_step_seconds().unwrap_or(0.0),
        1e3 * faulty.mean_degraded_step_seconds().unwrap_or(0.0),
        faulty.final_loss
    );
    println!(
        "(degraded steps: {}/{}; same final loss as fault-free: {})",
        faulty.degraded_steps,
        faulty.steps.len(),
        faulty.final_loss == clean.final_loss
    );

    let fault_free = json!({
        "total_seconds": clean.total_seconds,
        "mean_step_seconds": clean.mean_clean_step_seconds(),
        "final_loss": clean.final_loss,
    });
    let campaign = json!({
        "total_seconds": faulty.total_seconds,
        "mean_clean_step_seconds": faulty.mean_clean_step_seconds(),
        "mean_degraded_step_seconds": faulty.mean_degraded_step_seconds(),
        "degraded_steps": faulty.degraded_steps,
        "final_loss": faulty.final_loss,
    });
    let report = BenchReport::new(
        "faults",
        format!("{}x{}", mesh.x_len(), mesh.y_len()),
        mesh.num_chips(),
    )
    .gate(
        "deterministic",
        determinism_checked.then_some(deterministic),
    )
    .measurement("steps", json!(config.steps))
    .measurement("fault_free", fault_free)
    .measurement("campaign", campaign)
    .measurement(
        "loss_matches_fault_free",
        json!(faulty.final_loss == clean.final_loss),
    );
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_faults.json".to_string());
    report.write(&json_path);

    if let Some(path) = trace_flag() {
        recorder.write_chrome_trace(&path).expect("write trace");
        println!("wrote {}", path.display());
    }

    if deterministic {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
