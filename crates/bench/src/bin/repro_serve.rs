//! Online serving co-scheduled with the training campaign.
//!
//! Reserves a 256-chip DLRM serving replica and a 128-chip RL
//! actor–learner group as long-lived high-priority slices on the
//! paper's 128×32 machine, streams the heavy heterogeneous training
//! campaign around them, then replays a deterministic open-loop DLRM
//! query stream (batched, cache-assisted sharded lookups, dense
//! forward) and a Podracer-style actor–learner loop on the granted
//! slices. Emits `BENCH_serve.json`.
//!
//! Flags:
//!   --mesh <WxH>          mesh instead of the 128×32 multipod (e.g. 32x32)
//!   --jobs <n>            training jobs in the arrival stream (default 2000)
//!   --queries <n>         DLRM queries to serve (default 2000)
//!   --seed <n>            campaign + stream seed (default 42)
//!   --json <path>         output path (default BENCH_serve.json)
//!   --trace <path>        also export the combined Chrome trace
//!   --check-determinism   run everything twice; exit 1 if the report
//!                         or trace exports differ by a single byte
//!
//! Gates: DLRM p99 latency under the 5 ms SLO, a warm embedding cache
//! (hit rate > 0), training utilization ≥ 0.70 with both reservations
//! carved out, all training jobs completed, and (with
//! `--check-determinism`) byte-identical reruns.

use std::process::ExitCode;
use std::sync::Arc;

use multipod_bench::{arg_value, mesh_flag, trace_flag, BenchReport};
use multipod_serve::{ServeCampaign, ServeCampaignConfig, ServeCampaignReport};
use multipod_topology::{Multipod, MultipodConfig};
use multipod_trace::{Recorder, TraceSink};
use serde_json::json;

/// Mean training-mesh utilization the co-scheduled campaign must keep.
const UTILIZATION_FLOOR: f64 = 0.70;
/// DLRM p99 latency ceiling, seconds.
const P99_SLO_SECONDS: f64 = 5.0e-3;

fn scenario(config: &ServeCampaignConfig) -> (ServeCampaignReport, Arc<Recorder>) {
    let recorder = Recorder::shared();
    let mut campaign = ServeCampaign::new(config.clone());
    campaign.set_trace_sink(recorder.clone() as Arc<dyn TraceSink>);
    let report = campaign.run().expect("co-scheduled campaign must complete");
    (report, recorder)
}

fn main() -> ExitCode {
    let mesh_cfg = mesh_flag(MultipodConfig::multipod(4));
    let jobs: u32 =
        arg_value("--jobs").map_or(2000, |v| v.parse().expect("--jobs expects an integer"));
    let queries: u32 =
        arg_value("--queries").map_or(2000, |v| v.parse().expect("--queries expects an integer"));
    let seed: u64 =
        arg_value("--seed").map_or(42, |v| v.parse().expect("--seed expects an integer"));
    let mut config = ServeCampaignConfig::demo(mesh_cfg.clone(), jobs, seed);
    config.dlrm.stream.queries = queries;
    let mesh = Multipod::new(mesh_cfg);
    println!(
        "# Serving co-scheduled with training on {}x{} ({} chips): {} jobs, {} queries, seed {}",
        mesh.x_len(),
        mesh.y_len(),
        mesh.num_chips(),
        jobs,
        queries,
        seed
    );

    let (report, recorder) = scenario(&config);

    let determinism_checked = std::env::args().any(|a| a == "--check-determinism");
    let mut deterministic = true;
    if determinism_checked {
        let (report_again, trace_again) = scenario(&config);
        let trace_a = serde_json::to_string(&recorder.chrome_trace().expect("trace json"))
            .expect("trace json");
        let trace_b = serde_json::to_string(&trace_again.chrome_trace().expect("trace json"))
            .expect("trace json");
        let report_a = serde_json::to_string(&report).expect("report json");
        let report_b = serde_json::to_string(&report_again).expect("report json");
        deterministic = trace_a == trace_b && report_a == report_b;
        println!(
            "determinism: {}",
            if deterministic {
                "byte-identical report and trace exports"
            } else {
                "MISMATCH — exports differ"
            }
        );
    }

    let dlrm = &report.dlrm;
    let rl = &report.rl;
    let sched = &report.sched;
    for s in &sched.services {
        println!(
            "service {} | {} chips granted as {}x{} | migrations {}",
            s.name, s.chips, s.shape.0, s.shape.1, s.migrations
        );
    }
    println!(
        "training: {} jobs, {} completed | utilization {:.1}% (floor {:.0}%) | makespan {:.3} s",
        sched.jobs,
        sched.completed,
        1e2 * sched.mean_utilization,
        1e2 * UTILIZATION_FLOOR,
        sched.makespan_seconds
    );
    println!(
        "dlrm: {} requests in {} batches (mean {:.1} samples) | {:.0} QPS | cache hit rate {:.1}%",
        dlrm.requests,
        dlrm.batches,
        dlrm.mean_batch_samples,
        dlrm.achieved_qps,
        1e2 * dlrm.cache_hit_rate
    );
    println!(
        "dlrm latency: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms (SLO {:.1} ms), p99.9 {:.3} ms",
        1e3 * dlrm.latency.p50,
        1e3 * dlrm.latency.p95,
        1e3 * dlrm.latency.p99,
        1e3 * P99_SLO_SECONDS,
        1e3 * dlrm.latency.p999
    );
    println!(
        "dlrm phases (mean ms): batch-wait {:.3} | queue {:.3} | lookup {:.3} | all-to-all {:.3} | dense {:.3}",
        1e3 * dlrm.phase_means.batch_wait,
        1e3 * dlrm.phase_means.queue,
        1e3 * dlrm.phase_means.lookup,
        1e3 * dlrm.phase_means.all_to_all,
        1e3 * dlrm.phase_means.dense
    );
    println!(
        "rl: {} actors × rounds = {} | actor p50 {:.3} ms, p99.9 {:.3} ms | learner {:.2} steps/s over {} broadcasts",
        rl.actors,
        rl.rounds,
        1e3 * rl.actor_latency.p50,
        1e3 * rl.actor_latency.p999,
        rl.learner_throughput,
        rl.broadcasts
    );

    let bench = BenchReport::new(
        "serve",
        format!("{}x{}", mesh.x_len(), mesh.y_len()),
        mesh.num_chips(),
    )
    .gate("dlrm_p99_slo", dlrm.latency.p99 <= P99_SLO_SECONDS)
    .gate("cache_warm", dlrm.cache_hit_rate > 0.0)
    .gate(
        "utilization_floor",
        sched.mean_utilization >= UTILIZATION_FLOOR,
    )
    .gate("all_jobs_completed", sched.completed == sched.jobs)
    .gate(
        "deterministic",
        determinism_checked.then_some(deterministic),
    )
    .measurement("training_jobs", json!(sched.jobs))
    .measurement("training_completed", json!(sched.completed))
    .measurement("training_utilization", json!(sched.mean_utilization))
    .measurement("training_makespan_seconds", json!(sched.makespan_seconds))
    .measurement("services", json!(sched.services))
    .measurement("dlrm_requests", json!(dlrm.requests))
    .measurement("dlrm_batches", json!(dlrm.batches))
    .measurement("dlrm_mean_batch_samples", json!(dlrm.mean_batch_samples))
    .measurement("dlrm_latency_seconds", json!(dlrm.latency))
    .measurement("dlrm_phase_means_seconds", json!(dlrm.phase_means))
    .measurement("dlrm_cache_hit_rate", json!(dlrm.cache_hit_rate))
    .measurement("dlrm_cache_hits", json!(dlrm.cache_hits))
    .measurement("dlrm_remote_rows", json!(dlrm.remote_rows))
    .measurement("dlrm_achieved_qps", json!(dlrm.achieved_qps))
    .measurement("rl_actors", json!(rl.actors))
    .measurement("rl_rounds", json!(rl.rounds))
    .measurement("rl_actor_latency_seconds", json!(rl.actor_latency))
    .measurement("rl_learner_throughput", json!(rl.learner_throughput))
    .measurement("rl_broadcasts", json!(rl.broadcasts))
    .measurement("seed", json!(seed));
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_serve.json".to_string());
    bench.write(&json_path);

    if let Some(path) = trace_flag() {
        recorder.write_chrome_trace(&path).expect("write trace");
        println!("wrote {}", path.display());
    }

    if bench.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
