//! Comm/compute overlap through the deferred task-graph runtime.
//!
//! Schedules one BERT-like training step on the multipod three ways —
//! the overlap-disabled serial chain, the analytic breakdown it must
//! reproduce bit for bit, and the bucketed overlapped graph — plus a
//! bucket-count sweep, and emits `BENCH_overlap.json`.
//!
//! The headline workload is a 4×-scaled BERT with a trimmed per-core
//! batch, so device compute and gradient summation are comparable and
//! the buckets stay bandwidth-dominated; that is where overlap pays
//! most (step time approaches `max(compute, comm)` instead of their
//! sum) and where the 0.7× gate below has teeth.
//!
//! Flags:
//!   --chips <n>           slice size (default 4096, the 128×32 machine)
//!   --buckets <n>         gradient buckets (default 20)
//!   --json <path>         output path (default BENCH_overlap.json)
//!   --trace <path>        also export the overlapped schedule as a
//!                         Chrome trace
//!   --check-determinism   build and run every schedule twice; exit 1 if
//!                         the reports differ by a single byte
//!   --check-regression <path>  compare against a committed report: exit
//!                         1 if the overlap ratio regressed > 10%
//!
//! Gates:
//!   serial_matches_analytic  serial makespan == analytic total, to the bit
//!   overlap_beats_0p7        overlapped step ≤ 0.7 × (compute + comm)
//!   within_resource_bounds   makespan ∈ [max busy, Σ busy]

use std::process::ExitCode;

use multipod_bench::{arg_value, committed_measurement, trace_flag, BenchReport};
use multipod_core::overlap::{overlapped_step, OverlapConfig, OverlappedStep};
use multipod_core::step::{step_breakdown, StepOptions};
use multipod_models::{catalog, Workload};
use multipod_simnet::SimTime;
use multipod_taskgraph::Resource;
use multipod_trace::Recorder;
use serde_json::json;

/// A 4×-scaled BERT (1.34B params, same architecture ratios) with the
/// per-core batch trimmed to 4. At 4096 chips the stock 334M-parameter
/// BERT's bucketed summation is α-dominated (the 128-chip X rings pay
/// per-bucket latency that swamps the payload), which caps how much a
/// pipelined schedule can win; the scaled model keeps the buckets
/// bandwidth-dominated, the regime the overlap runtime targets and the
/// one large-model training actually runs in.
fn bert_like() -> Workload {
    let mut w = catalog::bert();
    w.name = "BERT-like-4x";
    w.params *= 4;
    w.flops_per_sample *= 4.0;
    w.max_per_core_batch = 4;
    w
}

struct Outcome {
    serial: OverlappedStep,
    overlapped: OverlappedStep,
    sweep: Vec<(u32, f64)>,
}

fn run_once(w: &Workload, chips: u32, buckets: u32) -> Result<Outcome, multipod_core::StepError> {
    let opts = StepOptions::default();
    let serial = overlapped_step(
        w,
        chips,
        &opts,
        &OverlapConfig {
            overlap: false,
            ..Default::default()
        },
    )?;
    let overlapped = overlapped_step(
        w,
        chips,
        &opts,
        &OverlapConfig {
            buckets,
            ..Default::default()
        },
    )?;
    let mut sweep = Vec::new();
    for b in [1u32, 2, 4, 8, 16, 20, 24, 32] {
        let s = overlapped_step(
            w,
            chips,
            &opts,
            &OverlapConfig {
                buckets: b,
                ..Default::default()
            },
        )?;
        sweep.push((b, s.step_seconds()));
    }
    Ok(Outcome {
        serial,
        overlapped,
        sweep,
    })
}

fn bench_report(outcome: &Outcome, w: &Workload, chips: u32, buckets: u32) -> BenchReport {
    let analytic = step_breakdown(w, chips, &StepOptions::default())
        .expect("the slice validated when the schedules were built");
    let serial_matches = outcome.serial.step_seconds().to_bits() == analytic.total().to_bits();

    let s = &outcome.overlapped;
    let compute = s.compute_seconds();
    let comm = s.comm_seconds();
    let host = s.schedule.busy_seconds(Resource::Host);
    let pcie = s.schedule.busy_seconds(Resource::Pcie);
    let m = s.step_seconds();
    let lower = compute.max(comm).max(host).max(pcie);
    let upper = compute + comm + host + pcie;
    let within_bounds = m >= lower * (1.0 - 1e-12) && m <= upper * (1.0 + 1e-12);
    let beats_0p7 = m <= 0.7 * (compute + comm);

    let sweep: Vec<_> = outcome
        .sweep
        .iter()
        .map(|&(b, seconds)| json!({"buckets": b, "step_seconds": seconds}))
        .collect();

    BenchReport::new("overlap", format!("{chips}-chip slice"), chips as usize)
        .gate("serial_matches_analytic", serial_matches)
        .gate("overlap_beats_0p7", beats_0p7)
        .gate("within_resource_bounds", within_bounds)
        .measurement("buckets", json!(buckets))
        .measurement("analytic_step_seconds", json!(analytic.total()))
        .measurement("serial_step_seconds", json!(outcome.serial.step_seconds()))
        .measurement("overlapped_step_seconds", json!(m))
        .measurement("compute_seconds", json!(compute))
        .measurement("comm_seconds", json!(comm))
        .measurement("host_seconds", json!(host))
        .measurement("pcie_seconds", json!(pcie))
        .measurement("lower_bound_seconds", json!(lower))
        .measurement("overlap_ratio", json!(s.overlap_ratio()))
        .measurement("bucket_sweep", serde_json::Value::Seq(sweep))
}

fn main() -> ExitCode {
    let chips: u32 =
        arg_value("--chips").map_or(4096, |v| v.parse().expect("--chips expects an integer"));
    let buckets: u32 =
        arg_value("--buckets").map_or(20, |v| v.parse().expect("--buckets expects an integer"));
    let w = bert_like();
    println!(
        "# Task-graph overlap on a {chips}-chip slice ({}, {buckets} buckets)",
        w.name
    );

    let outcome = match run_once(&w, chips, buckets) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("overlap schedule failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = bench_report(&outcome, &w, chips, buckets);

    let determinism_checked = std::env::args().any(|a| a == "--check-determinism");
    let mut deterministic = true;
    if determinism_checked {
        let again = run_once(&w, chips, buckets).expect("first pass succeeded on the same slice");
        let a = serde_json::to_string_pretty(&report).expect("report json");
        let b = serde_json::to_string_pretty(&bench_report(&again, &w, chips, buckets))
            .expect("report json");
        deterministic = a == b && outcome.overlapped.schedule == again.overlapped.schedule;
        println!(
            "determinism: {}",
            if deterministic {
                "byte-identical report and schedule"
            } else {
                "MISMATCH — reports differ"
            }
        );
    }
    let report = report.gate(
        "deterministic",
        determinism_checked.then_some(deterministic),
    );

    println!("schedule | step (ms) | vs serial");
    let serial_ms = 1e3 * outcome.serial.step_seconds();
    println!("serial (overlap off) | {serial_ms:.3} | 1.00x");
    let m = outcome.overlapped.step_seconds();
    println!(
        "overlapped ({buckets} buckets) | {:.3} | {:.2}x",
        1e3 * m,
        outcome.serial.step_seconds() / m
    );
    println!(
        "(compute {:.3} ms, comm {:.3} ms, lower bound {:.3} ms)",
        1e3 * outcome.overlapped.compute_seconds(),
        1e3 * outcome.overlapped.comm_seconds(),
        1e3 * outcome
            .overlapped
            .compute_seconds()
            .max(outcome.overlapped.comm_seconds())
    );
    println!("buckets | step (ms)");
    for &(b, seconds) in &outcome.sweep {
        println!("{b} | {:.3}", 1e3 * seconds);
    }

    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_overlap.json".to_string());
    report.write(&json_path);

    if let Some(path) = trace_flag() {
        let recorder = Recorder::shared();
        outcome
            .overlapped
            .schedule
            .record_trace(recorder.as_ref(), SimTime::ZERO);
        recorder
            .write_chrome_trace(&path)
            .expect("write overlap trace");
        println!("wrote {}", path.display());
    }

    if let Some(committed) = arg_value("--check-regression") {
        let text =
            std::fs::read_to_string(&committed).unwrap_or_else(|e| panic!("read {committed}: {e}"));
        let prior: serde_json::Value = serde_json::from_str(&text).expect("committed report json");
        let prior_ratio = committed_measurement(&prior, "overlap_ratio")
            .and_then(|v| v.as_f64())
            .expect("committed report has an overlap_ratio measurement");
        let ratio = outcome.overlapped.overlap_ratio();
        // Everything here is simulated time, so the ratio is stable
        // across machines; >10% regression (toward 1.0 = no overlap)
        // fails the gate.
        let ceiling = prior_ratio * 1.1;
        println!(
            "regression gate: overlap ratio {ratio:.4} vs committed {prior_ratio:.4} (ceiling {ceiling:.4})"
        );
        if ratio > ceiling {
            eprintln!("FAIL: overlap ratio regressed more than 10%");
            return ExitCode::FAILURE;
        }
    }

    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
