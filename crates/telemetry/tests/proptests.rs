//! Property tests for the telemetry layer: histogram merge algebra and
//! recording-order invariance of the critical-path profiler.

use multipod_telemetry::{profile, LogHistogram};
use multipod_trace::{SimTime, SpanCategory, SpanEvent, TraceEvent, Track};
use proptest::prelude::*;

/// Strategy for an observation stream with values spanning many octaves,
/// including zeros and negatives (which land in the underflow bucket).
fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            -1e3f64..1e9f64,
            1e-9f64..1e-3f64,
            Just(0.0f64),
            Just(1.0f64),
        ],
        0..64,
    )
}

fn observe_all(values: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

/// The exactly-mergeable parts of a histogram (everything but the
/// float-accumulated `sum`).
fn exact_parts(h: &LogHistogram) -> (u64, f64, f64, Vec<(i32, u64)>) {
    (
        h.count,
        h.min,
        h.max,
        h.buckets.iter().map(|(&k, &v)| (k, v)).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting a stream anywhere and merging the parts gives the same
    /// buckets, count, min, and max as observing the whole stream, and the
    /// sum matches to float tolerance: merge is bucket-exact.
    #[test]
    fn histogram_merge_matches_whole_stream(stream in values(), cut in 0usize..65) {
        let cut = cut.min(stream.len());
        let whole = observe_all(&stream);
        let mut left = observe_all(&stream[..cut]);
        let right = observe_all(&stream[cut..]);
        left.merge(&right);
        prop_assert_eq!(exact_parts(&left), exact_parts(&whole));
        let scale = 1.0 + whole.sum.abs();
        prop_assert!((left.sum - whole.sum).abs() <= 1e-9 * scale);
    }

    /// Merge is commutative on the exact parts: a⊕b == b⊕a.
    #[test]
    fn histogram_merge_commutes(xs in values(), ys in values()) {
        let (a, b) = (observe_all(&xs), observe_all(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(exact_parts(&ab), exact_parts(&ba));
    }

    /// Merge is associative on the exact parts: (a⊕b)⊕c == a⊕(b⊕c).
    #[test]
    fn histogram_merge_associates(xs in values(), ys in values(), zs in values()) {
        let (a, b, c) = (observe_all(&xs), observe_all(&ys), observe_all(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(exact_parts(&left), exact_parts(&right));
    }

    /// The profiler's critical-path length and per-step decomposition are
    /// invariant under the order spans were recorded in.
    #[test]
    fn critical_path_invariant_under_recording_order(
        // Child spans as (start offset, duration, kind) within a 1s step.
        raw in prop::collection::vec(
            (0.0f64..0.8, 0.01f64..0.2, 0usize..4),
            1..12,
        ),
        seed in 0u64..1_000,
    ) {
        let step = TraceEvent::Span(SpanEvent::new(
            Track::Sim,
            SpanCategory::Step,
            "step",
            SimTime::ZERO,
            SimTime::from_seconds(1.0),
        ));
        let children: Vec<TraceEvent> = raw
            .iter()
            .map(|&(start, dur, kind)| {
                let (category, name) = match kind {
                    0 => (SpanCategory::StepPhase, "compute"),
                    1 => (SpanCategory::CollectivePhase, "y-reduce-scatter"),
                    2 => (SpanCategory::Optimizer, "weight-update"),
                    _ => (SpanCategory::Input, "step-input"),
                };
                TraceEvent::Span(SpanEvent::new(
                    Track::Sim,
                    category,
                    name,
                    SimTime::from_seconds(start),
                    SimTime::from_seconds((start + dur).min(1.0)),
                ))
            })
            .collect();

        let mut ordered: Vec<TraceEvent> = vec![step.clone()];
        ordered.extend(children.iter().cloned());

        // Deterministic pseudo-shuffle of the recording order.
        let mut shuffled = children;
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        shuffled.push(step);

        let a = profile(&ordered);
        let b = profile(&shuffled);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(
            a.step_profiles[0].critical_path_seconds.to_bits(),
            b.step_profiles[0].critical_path_seconds.to_bits(),
            "critical path must not depend on recording order"
        );
        prop_assert_eq!(&a.step_profiles[0].decomposition, &b.step_profiles[0].decomposition);
        let total = a.step_profiles[0].decomposition.total();
        prop_assert!((total - 1.0).abs() < 1e-9, "fractions sum to 1, got {}", total);
        prop_assert!(a.step_profiles[0].critical_path_seconds <= 1.0 + 1e-9);
    }
}
