//! Observability for the multipod simulator.
//!
//! Three layers, all deterministic in sim-time:
//!
//! * **Metrics registry** ([`registry`]) — counters, gauges, and
//!   log₂-bucketed mergeable histograms keyed by a typed [`MetricId`].
//!   Subsystems (`simnet`, `collectives`, `core`, `input`, `ckpt`) write
//!   through a shared [`Telemetry`] handle while a run executes; snapshots
//!   serialize to byte-identical JSON across runs.
//! * **Critical-path profiler** ([`profiler`]) — consumes a recorded
//!   [`multipod_trace`] span stream, builds the span dependency graph, and
//!   reports the per-step critical path, per-span slack, and a
//!   compute/comm/overlap/input decomposition of every step window. This is
//!   the baseline measurement for the planned task-graph overlap refactor.
//! * **α–β drift detection** ([`fit`]) — regresses measured collective
//!   times against message sizes and compares the fitted latency and
//!   bandwidth against the analytic cost models, flagging simulator/model
//!   drift.
//!
//! The [`report::FlightReport`] bundles all three into one JSON/text
//! document (the "flight recorder"), which `repro_profile` gates in CI.
//!
//! ```
//! use multipod_telemetry::{MetricId, Subsystem, Telemetry};
//!
//! let telemetry = Telemetry::shared();
//! telemetry.inc_counter(MetricId::new(Subsystem::Simnet, "transfers"), 3);
//! telemetry.observe(
//!     MetricId::new(Subsystem::Simnet, "queueing_delay_seconds"),
//!     2.5e-6,
//! );
//! let snapshot = telemetry.snapshot();
//! assert_eq!(snapshot.counter(&MetricId::new(Subsystem::Simnet, "transfers")), 3);
//! ```

pub mod dist;
pub mod fit;
pub mod profiler;
pub mod registry;
pub mod report;

pub use dist::DistSummary;
pub use fit::{check_drift, collective_samples, fit_alpha_beta, AlphaBetaFit, DriftReport};
pub use profiler::{profile, ProfileReport, SpanSlack, StepDecomposition, StepProfile};
pub use registry::{LogHistogram, MetricId, Registry, Subsystem, Telemetry};
pub use report::FlightReport;
