//! Post-hoc critical-path profiler over a recorded trace.
//!
//! Consumes the span stream a [`multipod_trace::Recorder`] captured, groups
//! spans under their enclosing [`SpanCategory::Step`] windows, builds the
//! span dependency graph (span `a` precedes span `b` when `a` ends no later
//! than `b` starts), and computes per step:
//!
//! * the **critical path** — the longest chain of dependent spans — and the
//!   **slack** of every span (how much it could stretch without lengthening
//!   the step);
//! * a **compute vs. communication vs. overlap decomposition** of the step
//!   window, measured as interval unions so concurrent spans are not double
//!   counted. This is the baseline number the ROADMAP's task-graph overlap
//!   refactor will move: today's sequential step schedule shows ~zero
//!   overlap, and the refactor's gate is this fraction rising while the
//!   critical path shrinks.
//!
//! The profiler is a pure function of the recorded spans and sorts them
//! internally, so its output is invariant under span-recording order (a
//! property test pins this down).

use serde::{Content, Serialize};

use multipod_trace::{SpanCategory, SpanEvent, TraceEvent};

/// Span classes for the step decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SpanClass {
    Compute,
    Comm,
    Input,
    Other,
}

/// Classifies a span for the compute/comm/input decomposition.
fn classify(span: &SpanEvent) -> SpanClass {
    match span.category {
        SpanCategory::Collective | SpanCategory::CollectivePhase => SpanClass::Comm,
        SpanCategory::StepPhase if span.name == "model-parallel-comm" => SpanClass::Comm,
        SpanCategory::StepPhase | SpanCategory::Optimizer => SpanClass::Compute,
        SpanCategory::Input => SpanClass::Input,
        _ => SpanClass::Other,
    }
}

/// Sorts and merges intervals into a disjoint union (empty intervals
/// dropped). All set operations below require this normal form.
fn normalize(mut intervals: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    intervals.sort_by(|a, b| a.partial_cmp(b).expect("trace times are never NaN"));
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for (start, end) in intervals {
        if end <= start {
            continue;
        }
        match merged.last_mut() {
            Some(last) if start <= last.1 => last.1 = last.1.max(end),
            _ => merged.push((start, end)),
        }
    }
    merged
}

/// Total length of a disjoint interval union.
fn measure(set: &[(f64, f64)]) -> f64 {
    set.iter().map(|&(s, e)| e - s).sum()
}

/// Intersection of two disjoint interval unions, itself disjoint.
fn intersection(a: &[(f64, f64)], b: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Fractions of a step window spent in each class. Concurrent spans count
/// once per class; `overlap_fraction` is time where compute and
/// communication run simultaneously. The five fractions sum to ~1.0.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct StepDecomposition {
    /// Compute (forward/backward, optimizer, embedding) with no concurrent
    /// communication.
    pub compute_fraction: f64,
    /// Communication (collectives, model-parallel exchange) with no
    /// concurrent compute.
    pub comm_fraction: f64,
    /// Compute and communication running simultaneously.
    pub overlap_fraction: f64,
    /// Input-pipeline stall not hidden behind compute or comm.
    pub input_fraction: f64,
    /// Remainder of the step window covered by no span.
    pub idle_fraction: f64,
}

/// One span's place on the step's dependency graph.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SpanSlack {
    /// Span name.
    pub name: String,
    /// Span category label.
    pub category: String,
    /// Start, seconds into the simulation.
    pub start_seconds: f64,
    /// Span duration in seconds.
    pub duration_seconds: f64,
    /// How much the span could stretch without lengthening the step's
    /// critical path.
    pub slack_seconds: f64,
    /// Whether the span sits on the critical path (zero slack).
    pub on_critical_path: bool,
}

/// Profile of one step window.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct StepProfile {
    /// Step-span name (usually the preset name).
    pub name: String,
    /// The step index recorded on the span (`step` arg), or the window's
    /// ordinal when absent.
    pub step_index: u64,
    /// Window start, seconds.
    pub start_seconds: f64,
    /// Window duration, seconds.
    pub duration_seconds: f64,
    /// Length of the longest dependent-span chain inside the window.
    pub critical_path_seconds: f64,
    /// Share of the window decomposed by span class.
    pub decomposition: StepDecomposition,
    /// Per-span slack, sorted by start time.
    pub spans: Vec<SpanSlack>,
}

/// Whole-trace profile: one [`StepProfile`] per recorded step window plus
/// means across steps.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ProfileReport {
    /// Number of step windows found.
    pub steps: u64,
    /// Mean critical-path length across steps, seconds.
    pub mean_critical_path_seconds: f64,
    /// Mean step duration, seconds.
    pub mean_step_seconds: f64,
    /// Decomposition fractions averaged across steps.
    pub mean_decomposition: StepDecomposition,
    /// Per-step profiles.
    pub step_profiles: Vec<StepProfile>,
}

impl ProfileReport {
    /// Serializes through `serde_json`.
    pub fn to_value(&self) -> Content {
        self.ser()
    }
}

/// Deterministic sort key so the profile is invariant under recording order.
fn span_key(s: &SpanEvent) -> (f64, f64, &'static str, &str) {
    (
        s.start.seconds(),
        s.end.seconds(),
        s.category.label(),
        s.name.as_str(),
    )
}

fn sort_spans(spans: &mut [SpanEvent]) {
    spans.sort_by(|a, b| {
        span_key(a)
            .partial_cmp(&span_key(b))
            .expect("trace times are never NaN")
    });
}

/// Longest chain of dependent spans plus per-span slack.
///
/// `spans` must be sorted by start time. Edge `a -> b` exists when
/// `a.end <= b.start`; the critical path maximizes total span duration
/// along a chain, and a span's slack is the path length minus the longest
/// chain running through it.
fn critical_path(spans: &[SpanEvent]) -> (f64, Vec<f64>) {
    let n = spans.len();
    let dur: Vec<f64> = spans.iter().map(|s| s.end - s.start).collect();
    // Longest chain ending at i (inclusive of i).
    let mut pre = dur.clone();
    for i in 0..n {
        for j in 0..i {
            if spans[j].end.seconds() <= spans[i].start.seconds() {
                pre[i] = pre[i].max(pre[j] + dur[i]);
            }
        }
    }
    // Longest chain starting at i (inclusive of i).
    let mut post = dur.clone();
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            if spans[i].end.seconds() <= spans[j].start.seconds() {
                post[i] = post[i].max(post[j] + dur[i]);
            }
        }
    }
    let length = pre.iter().cloned().fold(0.0, f64::max);
    let slack = (0..n)
        .map(|i| (length - (pre[i] + post[i] - dur[i])).max(0.0))
        .collect();
    (length, slack)
}

fn decompose(window: (f64, f64), spans: &[SpanEvent]) -> StepDecomposition {
    let duration = window.1 - window.0;
    if duration <= 0.0 {
        return StepDecomposition::default();
    }
    let class_intervals = |class: SpanClass| -> Vec<(f64, f64)> {
        spans
            .iter()
            .filter(|s| classify(s) == class)
            .map(|s| (s.start.seconds(), s.end.seconds()))
            .collect()
    };
    let compute = normalize(class_intervals(SpanClass::Compute));
    let comm = normalize(class_intervals(SpanClass::Comm));
    let input = normalize(class_intervals(SpanClass::Input));
    let compute_total = measure(&compute);
    let comm_total = measure(&comm);
    let overlap = measure(&intersection(&compute, &comm));
    // Busy = compute ∪ comm; input stall only counts where it hides
    // behind neither.
    let mut busy = compute.clone();
    busy.extend(comm.iter().copied());
    let busy = normalize(busy);
    let input_exposed = measure(&input) - measure(&intersection(&input, &busy));
    let covered = measure(&busy) + input_exposed;
    StepDecomposition {
        compute_fraction: (compute_total - overlap) / duration,
        comm_fraction: (comm_total - overlap) / duration,
        overlap_fraction: overlap / duration,
        input_fraction: input_exposed / duration,
        idle_fraction: ((duration - covered) / duration).max(0.0),
    }
}

/// Profiles a recorded trace: finds step windows, assigns each non-step
/// span to its smallest enclosing window, and computes critical path,
/// slack, and decomposition per step.
pub fn profile(events: &[TraceEvent]) -> ProfileReport {
    let mut steps: Vec<SpanEvent> = Vec::new();
    let mut others: Vec<SpanEvent> = Vec::new();
    for event in events {
        if let TraceEvent::Span(span) = event {
            if span.category == SpanCategory::Step {
                steps.push(span.clone());
            } else {
                others.push(span.clone());
            }
        }
    }
    sort_spans(&mut steps);
    sort_spans(&mut others);

    // Assign each span to the smallest step window that contains it, so
    // nested or back-to-back windows cannot double-claim a span.
    let mut children: Vec<Vec<SpanEvent>> = vec![Vec::new(); steps.len()];
    for span in others {
        let mut best: Option<(usize, f64)> = None;
        for (i, step) in steps.iter().enumerate() {
            let contains = step.start.seconds() <= span.start.seconds()
                && span.end.seconds() <= step.end.seconds();
            if contains {
                let width = step.end - step.start;
                if best.is_none_or(|(_, w)| width < w) {
                    best = Some((i, width));
                }
            }
        }
        if let Some((i, _)) = best {
            children[i].push(span);
        }
    }

    let mut step_profiles = Vec::with_capacity(steps.len());
    for (ordinal, (step, spans)) in steps.iter().zip(children).enumerate() {
        let window = (step.start.seconds(), step.end.seconds());
        let (path, slack) = critical_path(&spans);
        let decomposition = decompose(window, &spans);
        let step_index = step
            .args
            .iter()
            .find(|(k, _)| k == "step")
            .map(|&(_, v)| v as u64)
            .unwrap_or(ordinal as u64);
        let spans = spans
            .iter()
            .zip(&slack)
            .map(|(s, &slack_seconds)| SpanSlack {
                name: s.name.clone(),
                category: s.category.label().to_string(),
                start_seconds: s.start.seconds(),
                duration_seconds: s.end - s.start,
                slack_seconds,
                on_critical_path: slack_seconds <= 1e-12,
            })
            .collect();
        step_profiles.push(StepProfile {
            name: step.name.clone(),
            step_index,
            start_seconds: window.0,
            duration_seconds: window.1 - window.0,
            critical_path_seconds: path,
            decomposition,
            spans,
        });
    }

    let steps_len = step_profiles.len() as f64;
    let mut report = ProfileReport {
        steps: step_profiles.len() as u64,
        ..ProfileReport::default()
    };
    if !step_profiles.is_empty() {
        report.mean_critical_path_seconds = step_profiles
            .iter()
            .map(|p| p.critical_path_seconds)
            .sum::<f64>()
            / steps_len;
        report.mean_step_seconds = step_profiles
            .iter()
            .map(|p| p.duration_seconds)
            .sum::<f64>()
            / steps_len;
        let mean = |f: fn(&StepDecomposition) -> f64| {
            step_profiles
                .iter()
                .map(|p| f(&p.decomposition))
                .sum::<f64>()
                / steps_len
        };
        report.mean_decomposition = StepDecomposition {
            compute_fraction: mean(|d| d.compute_fraction),
            comm_fraction: mean(|d| d.comm_fraction),
            overlap_fraction: mean(|d| d.overlap_fraction),
            input_fraction: mean(|d| d.input_fraction),
            idle_fraction: mean(|d| d.idle_fraction),
        };
    }
    report.step_profiles = step_profiles;
    report
}

impl StepDecomposition {
    /// Sum of all five fractions — ~1.0 for a fully accounted window.
    pub fn total(&self) -> f64 {
        self.compute_fraction
            + self.comm_fraction
            + self.overlap_fraction
            + self.input_fraction
            + self.idle_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_trace::{SimTime, Track};

    fn span(cat: SpanCategory, name: &str, start: f64, end: f64) -> TraceEvent {
        TraceEvent::Span(SpanEvent::new(
            Track::Sim,
            cat,
            name,
            SimTime::from_seconds(start),
            SimTime::from_seconds(end),
        ))
    }

    fn sequential_step() -> Vec<TraceEvent> {
        vec![
            span(SpanCategory::Step, "demo", 0.0, 1.0),
            span(SpanCategory::StepPhase, "compute", 0.0, 0.6),
            span(SpanCategory::CollectivePhase, "y-reduce-scatter", 0.6, 0.9),
            span(SpanCategory::Optimizer, "weight-update", 0.9, 1.0),
        ]
    }

    #[test]
    fn sequential_spans_form_one_chain() {
        let report = profile(&sequential_step());
        assert_eq!(report.steps, 1);
        let step = &report.step_profiles[0];
        assert!((step.critical_path_seconds - 1.0).abs() < 1e-12);
        assert!(step.spans.iter().all(|s| s.on_critical_path));
        let d = &step.decomposition;
        assert!((d.compute_fraction - 0.7).abs() < 1e-12);
        assert!((d.comm_fraction - 0.3).abs() < 1e-12);
        assert_eq!(d.overlap_fraction, 0.0);
        assert!((d.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_comm_gets_slack() {
        // Compute 0..0.8 with comm 0.2..0.5 hidden behind it.
        let events = vec![
            span(SpanCategory::Step, "demo", 0.0, 0.8),
            span(SpanCategory::StepPhase, "compute", 0.0, 0.8),
            span(SpanCategory::CollectivePhase, "x-all-gather", 0.2, 0.5),
        ];
        let report = profile(&events);
        let step = &report.step_profiles[0];
        assert!((step.critical_path_seconds - 0.8).abs() < 1e-12);
        let comm = step
            .spans
            .iter()
            .find(|s| s.name == "x-all-gather")
            .unwrap();
        assert!(!comm.on_critical_path);
        assert!((comm.slack_seconds - 0.5).abs() < 1e-12);
        let d = &step.decomposition;
        assert!((d.overlap_fraction - 0.375).abs() < 1e-12);
        assert!((d.comm_fraction - 0.0).abs() < 1e-12);
        assert!((d.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spans_land_in_smallest_enclosing_window() {
        let events = vec![
            span(SpanCategory::Step, "outer", 0.0, 2.0),
            span(SpanCategory::Step, "inner", 0.5, 1.0),
            span(SpanCategory::StepPhase, "compute", 0.6, 0.9),
        ];
        let report = profile(&events);
        let inner = report
            .step_profiles
            .iter()
            .find(|p| p.name == "inner")
            .unwrap();
        let outer = report
            .step_profiles
            .iter()
            .find(|p| p.name == "outer")
            .unwrap();
        assert_eq!(inner.spans.len(), 1);
        assert_eq!(outer.spans.len(), 0);
    }

    #[test]
    fn profile_ignores_traces_without_steps() {
        let events = vec![span(SpanCategory::Input, "step-input", 0.0, 0.1)];
        let report = profile(&events);
        assert_eq!(report.steps, 0);
        assert!(report.step_profiles.is_empty());
    }
}
