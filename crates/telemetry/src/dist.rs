//! Exact distribution summaries (nearest-rank percentiles).
//!
//! [`DistSummary`] started life inside `multipod-sched` (queue-wait and
//! preemption-overhead distributions); the serving layer needs the same
//! summary for request latencies — with tail percentiles (p95, p99.9)
//! that matter for SLOs — so it lives here, below both crates.
//! `multipod-sched` re-exports it, keeping its public API unchanged.

use serde::{Deserialize, Serialize};

/// Summary statistics of one distribution (exact, from the raw samples).
///
/// Percentiles are nearest-rank order statistics — no interpolation — so
/// summaries are deterministic and byte-stable across reruns:
///
/// * `n = 0`: every field is zero (`count` distinguishes "no samples"
///   from "all samples were zero").
/// * `n = 1`: every percentile, the mean, and the max equal the single
///   sample.
/// * `p` of `n` samples: the `ceil(n · p)`-th smallest sample (1-based),
///   clamped into `[1, n]`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DistSummary {
    /// Sample count.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile (the serving-SLO tail).
    pub p999: f64,
    /// Largest sample.
    pub max: f64,
}

impl DistSummary {
    /// Summarizes `samples` (need not be sorted).
    pub fn of(mut samples: Vec<f64>) -> DistSummary {
        if samples.is_empty() {
            return DistSummary::default();
        }
        samples.sort_by(f64::total_cmp);
        let count = samples.len();
        // Nearest-rank percentiles: exact order statistics, no
        // interpolation. `ceil(n · p)` can land at 0 for tiny n·p and at
        // n + 1 through floating-point round-up, so the rank is clamped
        // into [1, n] — this is the n = 1 edge case (every percentile is
        // the sample itself).
        let pct = |p: f64| samples[((count as f64 * p).ceil() as usize).clamp(1, count) - 1];
        DistSummary {
            count: count as u64,
            mean: samples.iter().sum::<f64>() / count as f64,
            p50: pct(0.50),
            p90: pct(0.90),
            p95: pct(0.95),
            p99: pct(0.99),
            p999: pct(0.999),
            max: samples[count - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_distribution_is_all_zero() {
        let d = DistSummary::of(Vec::new());
        assert_eq!(d, DistSummary::default());
        assert_eq!(d.count, 0);
        assert_eq!(d.mean, 0.0);
        assert_eq!(d.p50, 0.0);
        assert_eq!(d.p999, 0.0);
        assert_eq!(d.max, 0.0);
    }

    #[test]
    fn single_sample_fills_every_field() {
        let d = DistSummary::of(vec![3.25]);
        assert_eq!(d.count, 1);
        for v in [d.mean, d.p50, d.p90, d.p95, d.p99, d.p999, d.max] {
            assert_eq!(v, 3.25);
        }
    }

    #[test]
    fn two_samples_split_nearest_rank() {
        // Ranks: p50 -> ceil(2·0.5) = 1st, p90/p95/p99/p999 -> 2nd.
        let d = DistSummary::of(vec![10.0, 2.0]);
        assert_eq!(d.count, 2);
        assert_eq!(d.mean, 6.0);
        assert_eq!(d.p50, 2.0);
        assert_eq!(d.p90, 10.0);
        assert_eq!(d.p95, 10.0);
        assert_eq!(d.p99, 10.0);
        assert_eq!(d.p999, 10.0);
        assert_eq!(d.max, 10.0);
    }

    #[test]
    fn percentiles_are_exact_order_statistics() {
        let d = DistSummary::of((1..=100).map(f64::from).collect());
        assert_eq!(d.count, 100);
        assert_eq!(d.mean, 50.5);
        assert_eq!(d.p50, 50.0);
        assert_eq!(d.p90, 90.0);
        assert_eq!(d.p95, 95.0);
        assert_eq!(d.p99, 99.0);
        assert_eq!(d.p999, 100.0);
        assert_eq!(d.max, 100.0);
    }

    #[test]
    fn p999_separates_from_p99_at_large_n() {
        // 2000 samples: p99 is the 1980th, p99.9 the 1998th.
        let d = DistSummary::of((1..=2000).map(f64::from).collect());
        assert_eq!(d.p99, 1980.0);
        assert_eq!(d.p999, 1998.0);
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let d = DistSummary::of(vec![5.0, 1.0, 4.0, 2.0, 3.0]);
        assert_eq!(d.p50, 3.0);
        assert_eq!(d.max, 5.0);
    }
}
