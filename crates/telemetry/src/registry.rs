//! The sim-time metrics registry: counters, gauges, and log-bucketed
//! mergeable histograms, keyed by a typed [`MetricId`].
//!
//! Unlike the string-keyed [`multipod_trace::MetricsRegistry`] (a small
//! export convenience), this registry is the instrumentation substrate the
//! simulator's subsystems write into while a run executes: every hook site
//! names its metric with a `(subsystem, name[, label])` triple so collisions
//! are impossible and reports group naturally. All state is ordinary
//! `BTreeMap`s, so snapshots serialize in sorted key order and two runs of
//! the same simulation produce byte-identical JSON.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Content, Serialize};

/// The subsystem a metric belongs to. The variant order fixes the sorted
/// report order (simnet first, then the layers above it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subsystem {
    /// The simulated ICI network and event queues.
    Simnet,
    /// Collective schedules (ring phases, 2-D summation).
    Collectives,
    /// Trainer / executor step loop.
    Core,
    /// Host input pipeline.
    Input,
    /// Checkpoint save/restore traffic.
    Ckpt,
    /// The deferred task-graph scheduler (comm/compute overlap).
    Sched,
    /// The multi-tenant pod scheduler (slices, gang scheduling,
    /// preemption).
    Pod,
    /// Online serving (query batching, embedding cache, request
    /// latency phases, RL actor rounds).
    Serve,
}

impl Subsystem {
    /// Stable lowercase label used in rendered metric names.
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::Simnet => "simnet",
            Subsystem::Collectives => "collectives",
            Subsystem::Core => "core",
            Subsystem::Input => "input",
            Subsystem::Ckpt => "ckpt",
            Subsystem::Sched => "sched",
            Subsystem::Pod => "pod",
            Subsystem::Serve => "serve",
        }
    }
}

/// Typed metric key: a subsystem, a static metric name, and an optional
/// dynamic label (e.g. a collective phase name).
///
/// ```
/// use multipod_telemetry::{MetricId, Subsystem};
///
/// let plain = MetricId::new(Subsystem::Simnet, "transfers");
/// assert_eq!(plain.render(), "simnet.transfers");
/// let labeled = MetricId::labeled(Subsystem::Collectives, "phase_seconds", "y-reduce-scatter");
/// assert_eq!(labeled.render(), "collectives.phase_seconds{y-reduce-scatter}");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// Owning subsystem.
    pub subsystem: Subsystem,
    /// Metric name within the subsystem.
    pub name: &'static str,
    /// Optional instance label (phase name, link class, …).
    pub label: Option<String>,
}

impl MetricId {
    /// An unlabeled metric id.
    pub const fn new(subsystem: Subsystem, name: &'static str) -> MetricId {
        MetricId {
            subsystem,
            name,
            label: None,
        }
    }

    /// A labeled metric id.
    pub fn labeled(subsystem: Subsystem, name: &'static str, label: impl Into<String>) -> MetricId {
        MetricId {
            subsystem,
            name,
            label: Some(label.into()),
        }
    }

    /// Renders the id as `subsystem.name` or `subsystem.name{label}`.
    pub fn render(&self) -> String {
        match &self.label {
            Some(label) => format!("{}.{}{{{label}}}", self.subsystem.label(), self.name),
            None => format!("{}.{}", self.subsystem.label(), self.name),
        }
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Bucket key for values that are zero, negative, or otherwise below every
/// power-of-two bucket.
const UNDERFLOW_BUCKET: i32 = i32::MIN;

/// Power-of-two-bucketed streaming histogram.
///
/// A positive value lands in the bucket keyed by its base-2 exponent
/// `floor(log2(v))`, extracted exactly from the f64 bit pattern — no
/// floating-point log, so bucketing is deterministic and
/// [`LogHistogram::merge`] is exact: bucket counts, `count`, `min`, and
/// `max` combine associatively and commutatively regardless of how an
/// observation stream was split. (`sum` is a float accumulation and is
/// only reproducible for a fixed observation order.)
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LogHistogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (order-sensitive float accumulation).
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Observation count per base-2 exponent bucket.
    pub buckets: BTreeMap<i32, u64>,
}

/// `floor(log2(value))` for positive finite values, from the exponent bits.
/// Subnormals and non-positive values map to the underflow bucket.
fn bucket_of(value: f64) -> i32 {
    if value <= 0.0 || !value.is_finite() {
        return UNDERFLOW_BUCKET;
    }
    let biased = ((value.to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        UNDERFLOW_BUCKET // subnormal
    } else {
        biased - 1023
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        *self.buckets.entry(bucket_of(value)).or_insert(0) += 1;
    }

    /// Folds another histogram into this one. Bucket counts, `count`,
    /// `min`, and `max` merge exactly; `sum` adds in float.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (&bucket, &n) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += n;
        }
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

impl Serialize for LogHistogram {
    fn ser(&self) -> Content {
        let buckets = self
            .buckets
            .iter()
            .map(|(&exp, &n)| {
                let key = if exp == UNDERFLOW_BUCKET {
                    "underflow".to_string()
                } else {
                    format!("2^{exp}")
                };
                (key, Content::U64(n))
            })
            .collect();
        Content::Map(vec![
            ("count".to_string(), Content::U64(self.count)),
            ("sum".to_string(), Content::F64(self.sum)),
            ("min".to_string(), Content::F64(self.min)),
            ("max".to_string(), Content::F64(self.max)),
            ("buckets".to_string(), Content::Map(buckets)),
        ])
    }
}

/// Snapshot of counters, gauges, and histograms keyed by [`MetricId`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<MetricId, u64>,
    gauges: BTreeMap<MetricId, f64>,
    histograms: BTreeMap<MetricId, LogHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `by` to a counter, creating it at zero.
    pub fn inc_counter(&mut self, id: MetricId, by: u64) {
        *self.counters.entry(id).or_insert(0) += by;
    }

    /// Current counter value (0 when absent).
    pub fn counter(&self, id: &MetricId) -> u64 {
        self.counters.get(id).copied().unwrap_or(0)
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, id: MetricId, value: f64) {
        self.gauges.insert(id, value);
    }

    /// Current gauge value.
    pub fn gauge(&self, id: &MetricId) -> Option<f64> {
        self.gauges.get(id).copied()
    }

    /// Records one observation into a histogram, creating it on first use.
    pub fn observe(&mut self, id: MetricId, value: f64) {
        self.histograms.entry(id).or_default().observe(value);
    }

    /// A histogram by id.
    pub fn histogram(&self, id: &MetricId) -> Option<&LogHistogram> {
        self.histograms.get(id)
    }

    /// Sorted counter entries.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricId, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Sorted gauge entries.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricId, f64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// Sorted histogram entries.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricId, &LogHistogram)> {
        self.histograms.iter()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's value, histograms merge per [`LogHistogram::merge`].
    pub fn merge(&mut self, other: &Registry) {
        for (id, &value) in &other.counters {
            *self.counters.entry(id.clone()).or_insert(0) += value;
        }
        for (id, &value) in &other.gauges {
            self.gauges.insert(id.clone(), value);
        }
        for (id, hist) in &other.histograms {
            self.histograms.entry(id.clone()).or_default().merge(hist);
        }
    }
}

impl Serialize for Registry {
    fn ser(&self) -> Content {
        let counters = self
            .counters
            .iter()
            .map(|(id, &v)| (id.render(), Content::U64(v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(id, &v)| (id.render(), Content::F64(v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(id, h)| (id.render(), h.ser()))
            .collect();
        Content::Map(vec![
            ("counters".to_string(), Content::Map(counters)),
            ("gauges".to_string(), Content::Map(gauges)),
            ("histograms".to_string(), Content::Map(histograms)),
        ])
    }
}

/// Shared, thread-safe handle the subsystems write metrics through.
///
/// The simulator threads its `Arc<Telemetry>` through `Network`,
/// the executor, and the input pipeline; each hook site locks briefly,
/// records, and unlocks. [`Telemetry::snapshot`] clones the registry out
/// for reporting.
#[derive(Debug, Default)]
pub struct Telemetry {
    inner: Mutex<Registry>,
}

impl Telemetry {
    /// A fresh, empty telemetry sink.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// A fresh sink behind an `Arc`, ready to share across subsystems.
    pub fn shared() -> Arc<Telemetry> {
        Arc::new(Telemetry::new())
    }

    /// Adds `by` to a counter.
    pub fn inc_counter(&self, id: MetricId, by: u64) {
        self.inner.lock().inc_counter(id, by);
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, id: MetricId, value: f64) {
        self.inner.lock().set_gauge(id, value);
    }

    /// Records a histogram observation.
    pub fn observe(&self, id: MetricId, value: f64) {
        self.inner.lock().observe(id, value);
    }

    /// Clones the current registry state out.
    pub fn snapshot(&self) -> Registry {
        self.inner.lock().clone()
    }

    /// Discards all recorded metrics.
    pub fn clear(&self) {
        *self.inner.lock() = Registry::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_id_renders() {
        assert_eq!(
            MetricId::new(Subsystem::Core, "steps").render(),
            "core.steps"
        );
        assert_eq!(
            MetricId::labeled(Subsystem::Collectives, "phase_bytes", "x-all-gather").render(),
            "collectives.phase_bytes{x-all-gather}"
        );
    }

    #[test]
    fn bucket_of_is_floor_log2() {
        assert_eq!(bucket_of(1.0), 0);
        assert_eq!(bucket_of(1.5), 0);
        assert_eq!(bucket_of(2.0), 1);
        assert_eq!(bucket_of(0.5), -1);
        assert_eq!(bucket_of(3e-6), -19);
        assert_eq!(bucket_of(0.0), UNDERFLOW_BUCKET);
        assert_eq!(bucket_of(-4.0), UNDERFLOW_BUCKET);
    }

    #[test]
    fn histogram_observes_and_merges() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.observe(1.0);
        a.observe(3.0);
        b.observe(0.25);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 0.25);
        assert_eq!(a.max, 3.0);
        assert_eq!(a.buckets[&0], 1);
        assert_eq!(a.buckets[&1], 1);
        assert_eq!(a.buckets[&-2], 1);
        assert_eq!(a.mean(), Some((1.0 + 3.0 + 0.25) / 3.0));
    }

    #[test]
    fn registry_records_and_merges() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        let steps = MetricId::new(Subsystem::Core, "steps");
        let util = MetricId::new(Subsystem::Simnet, "utilization");
        let lat = MetricId::new(Subsystem::Simnet, "queueing_delay_seconds");
        a.inc_counter(steps.clone(), 2);
        b.inc_counter(steps.clone(), 3);
        b.set_gauge(util.clone(), 0.75);
        a.observe(lat.clone(), 1e-6);
        b.observe(lat.clone(), 2e-6);
        a.merge(&b);
        assert_eq!(a.counter(&steps), 5);
        assert_eq!(a.gauge(&util), Some(0.75));
        assert_eq!(a.histogram(&lat).unwrap().count, 2);
    }

    #[test]
    fn telemetry_sink_snapshots() {
        let t = Telemetry::shared();
        let id = MetricId::new(Subsystem::Input, "stalled_steps");
        t.inc_counter(id.clone(), 4);
        t.observe(MetricId::new(Subsystem::Input, "stall_seconds"), 5e-4);
        let snap = t.snapshot();
        assert_eq!(snap.counter(&id), 4);
        t.clear();
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn registry_serializes_deterministically() {
        let mut r = Registry::new();
        r.inc_counter(MetricId::new(Subsystem::Simnet, "transfers"), 7);
        r.set_gauge(MetricId::new(Subsystem::Core, "throughput"), 2.5);
        r.observe(MetricId::new(Subsystem::Ckpt, "save_seconds"), 0.125);
        let a = serde_json::to_string(&r).unwrap();
        let b = serde_json::to_string(&r.clone()).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("simnet.transfers"));
        assert!(a.contains("2^-3"));
    }
}
