//! The "flight recorder" report: one deterministic document bundling the
//! metrics registry snapshot, the critical-path profile, and any α–β drift
//! checks, renderable as JSON or human-readable text.

use std::io;
use std::path::Path;

use serde::{Content, Serialize};

use crate::fit::DriftReport;
use crate::profiler::ProfileReport;
use crate::registry::Registry;

/// Bundled observability output of one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlightReport {
    /// Metrics registry snapshot.
    pub registry: Registry,
    /// Critical-path profile of the recorded trace.
    pub profile: ProfileReport,
    /// Cost-model drift checks.
    pub drift: Vec<DriftReport>,
}

impl Serialize for FlightReport {
    fn ser(&self) -> Content {
        Content::Map(vec![
            ("registry".to_string(), self.registry.ser()),
            ("profile".to_string(), self.profile.ser()),
            (
                "drift".to_string(),
                Content::Seq(self.drift.iter().map(|d| d.ser()).collect()),
            ),
        ])
    }
}

impl FlightReport {
    /// Pretty JSON rendering (deterministic: sorted metric keys, recorded
    /// span order fixed by the profiler's internal sort).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("flight report always serializes")
    }

    /// Writes the JSON rendering to `path`.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Whether every drift check passed (vacuously true with none).
    pub fn drift_within_tolerance(&self) -> bool {
        self.drift.iter().all(|d| d.within_tolerance)
    }

    /// Compact text rendering for terminal output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let d = &self.profile.mean_decomposition;
        out.push_str(&format!(
            "profile: {} steps | mean step {:.3} ms | critical path {:.3} ms\n",
            self.profile.steps,
            1e3 * self.profile.mean_step_seconds,
            1e3 * self.profile.mean_critical_path_seconds,
        ));
        out.push_str(&format!(
            "  compute {:.1}% | comm {:.1}% | overlap {:.1}% | input {:.1}% | idle {:.1}%\n",
            100.0 * d.compute_fraction,
            100.0 * d.comm_fraction,
            100.0 * d.overlap_fraction,
            100.0 * d.input_fraction,
            100.0 * d.idle_fraction,
        ));
        for (id, value) in self.registry.counters() {
            out.push_str(&format!("  {id} = {value}\n"));
        }
        for (id, value) in self.registry.gauges() {
            out.push_str(&format!("  {id} = {value:.6}\n"));
        }
        for (id, hist) in self.registry.histograms() {
            out.push_str(&format!(
                "  {id}: n={} mean={:.3e} min={:.3e} max={:.3e}\n",
                hist.count,
                hist.mean().unwrap_or(0.0),
                hist.min,
                hist.max,
            ));
        }
        for drift in &self.drift {
            out.push_str(&format!(
                "  drift[{}]: alpha {:.2e}s vs model {:.2e}s ({:+.1}%), bw {:.3e} B/s vs model {:.3e} B/s ({:+.1}%) -> {}\n",
                drift.kind,
                drift.fit.alpha_seconds,
                drift.model_alpha_seconds,
                100.0 * drift.alpha_drift_fraction,
                drift.fit.bytes_per_second,
                drift.model_bytes_per_second,
                100.0 * drift.beta_drift_fraction,
                if drift.within_tolerance { "ok" } else { "DRIFT" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricId, Subsystem};

    #[test]
    fn report_serializes_and_renders() {
        let mut report = FlightReport::default();
        report
            .registry
            .inc_counter(MetricId::new(Subsystem::Simnet, "transfers"), 12);
        let json = report.to_json();
        assert!(json.contains("\"registry\""));
        assert!(json.contains("simnet.transfers"));
        let text = report.render_text();
        assert!(text.contains("simnet.transfers = 12"));
        assert!(report.drift_within_tolerance());
    }
}
