//! α–β cost-model drift detection.
//!
//! The analytic collective models in `multipod-collectives::timing` predict
//! `time = α_total + bytes / effective_bandwidth` for each collective kind.
//! This module regresses *measured* collective times (from the numeric
//! simulator or a recorded trace) against message sizes and compares the
//! fitted α and β against the analytic prediction — a standing correctness
//! check that the closed-form models and the event-level simulator have not
//! drifted apart.

use serde::Serialize;

use multipod_trace::{SpanCategory, TraceEvent};

/// Least-squares fit of `time = alpha + bytes / bytes_per_second`.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct AlphaBetaFit {
    /// Fitted fixed cost (latency term), seconds.
    pub alpha_seconds: f64,
    /// Fitted effective bandwidth, bytes per second.
    pub bytes_per_second: f64,
    /// RMS residual of the fit divided by the mean measured time.
    pub residual_fraction: f64,
    /// Number of (bytes, seconds) samples.
    pub samples: u64,
}

/// Fits `time = alpha + bytes / bps` by ordinary least squares over
/// `(bytes, seconds)` samples. Returns `None` with fewer than two distinct
/// message sizes or a non-positive fitted slope (no meaningful bandwidth).
pub fn fit_alpha_beta(samples: &[(f64, f64)]) -> Option<AlphaBetaFit> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let mean_b = samples.iter().map(|&(b, _)| b).sum::<f64>() / n;
    let mean_t = samples.iter().map(|&(_, t)| t).sum::<f64>() / n;
    let var_b = samples
        .iter()
        .map(|&(b, _)| (b - mean_b) * (b - mean_b))
        .sum::<f64>();
    if var_b <= 0.0 {
        return None;
    }
    let cov = samples
        .iter()
        .map(|&(b, t)| (b - mean_b) * (t - mean_t))
        .sum::<f64>();
    let slope = cov / var_b;
    if slope <= 0.0 {
        return None;
    }
    let alpha = mean_t - slope * mean_b;
    let rss = samples
        .iter()
        .map(|&(b, t)| {
            let err = t - (alpha + slope * b);
            err * err
        })
        .sum::<f64>();
    let rms = (rss / n).sqrt();
    Some(AlphaBetaFit {
        alpha_seconds: alpha,
        bytes_per_second: 1.0 / slope,
        residual_fraction: if mean_t > 0.0 { rms / mean_t } else { 0.0 },
        samples: samples.len() as u64,
    })
}

/// Extracts `(wire bytes, seconds)` samples from recorded collective spans
/// whose name matches `name` exactly (e.g. `"2d-all-reduce"` or
/// `"reduce-scatter"`). Spans with zero recorded bytes are skipped.
pub fn collective_samples(events: &[TraceEvent], name: &str) -> Vec<(f64, f64)> {
    let mut samples: Vec<(f64, f64)> = events
        .iter()
        .filter_map(|event| match event {
            TraceEvent::Span(span)
                if matches!(
                    span.category,
                    SpanCategory::Collective | SpanCategory::CollectivePhase
                ) && span.name == name
                    && span.bytes > 0 =>
            {
                Some((span.bytes as f64, span.end - span.start))
            }
            _ => None,
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("trace times are never NaN"));
    samples
}

/// Comparison of a measured fit against the analytic model.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DriftReport {
    /// Which collective the fit covers (e.g. `"ring-all-reduce"`).
    pub kind: String,
    /// The measured fit.
    pub fit: AlphaBetaFit,
    /// Analytic fixed cost, seconds.
    pub model_alpha_seconds: f64,
    /// Analytic effective bandwidth, bytes per second.
    pub model_bytes_per_second: f64,
    /// `|fit α − model α| / model α`.
    pub alpha_drift_fraction: f64,
    /// `|fit bps − model bps| / model bps`.
    pub beta_drift_fraction: f64,
    /// The tolerance both drift fractions were checked against.
    pub tolerance: f64,
    /// Whether both drifts are within tolerance.
    pub within_tolerance: bool,
}

/// Compares `fit` against the analytic `(model_alpha, model_bps)` pair,
/// flagging drift beyond `tolerance` (a fraction, e.g. `0.1` for 10%).
pub fn check_drift(
    kind: impl Into<String>,
    fit: AlphaBetaFit,
    model_alpha_seconds: f64,
    model_bytes_per_second: f64,
    tolerance: f64,
) -> DriftReport {
    let alpha_drift = if model_alpha_seconds > 0.0 {
        (fit.alpha_seconds - model_alpha_seconds).abs() / model_alpha_seconds
    } else {
        fit.alpha_seconds.abs()
    };
    let beta_drift = if model_bytes_per_second > 0.0 {
        (fit.bytes_per_second - model_bytes_per_second).abs() / model_bytes_per_second
    } else {
        fit.bytes_per_second.abs()
    };
    DriftReport {
        kind: kind.into(),
        fit,
        model_alpha_seconds,
        model_bytes_per_second,
        alpha_drift_fraction: alpha_drift,
        beta_drift_fraction: beta_drift,
        tolerance,
        within_tolerance: alpha_drift <= tolerance && beta_drift <= tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_model() {
        // time = 3e-6 + bytes / 70e9, sampled at power-of-two sizes.
        let samples: Vec<(f64, f64)> = (10..18)
            .map(|e| {
                let bytes = (1u64 << e) as f64;
                (bytes, 3e-6 + bytes / 70e9)
            })
            .collect();
        let fit = fit_alpha_beta(&samples).unwrap();
        assert!((fit.alpha_seconds - 3e-6).abs() < 1e-12);
        assert!((fit.bytes_per_second - 70e9).abs() / 70e9 < 1e-9);
        assert!(fit.residual_fraction < 1e-9);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(fit_alpha_beta(&[]).is_none());
        assert!(fit_alpha_beta(&[(1024.0, 1e-3)]).is_none());
        // Same size twice: no slope information.
        assert!(fit_alpha_beta(&[(1024.0, 1e-3), (1024.0, 2e-3)]).is_none());
        // Negative slope: time shrinking with size is not a bandwidth.
        assert!(fit_alpha_beta(&[(1024.0, 2e-3), (2048.0, 1e-3)]).is_none());
    }

    #[test]
    fn drift_check_flags_mismatch() {
        let fit = AlphaBetaFit {
            alpha_seconds: 1e-5,
            bytes_per_second: 70e9,
            residual_fraction: 0.0,
            samples: 8,
        };
        let ok = check_drift("ring", fit.clone(), 1.05e-5, 70e9, 0.1);
        assert!(ok.within_tolerance);
        let bad = check_drift("ring", fit, 2e-5, 70e9, 0.1);
        assert!(!bad.within_tolerance);
        assert!(bad.alpha_drift_fraction > 0.4);
    }
}
