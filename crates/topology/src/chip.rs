//! Chip, core and host identities.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Implements a `"name{index}"` Debug/Display body for an id newtype.
macro_rules! fmt_id {
    ($name:literal) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, concat!($name, "{}"), self.0)
        }
    };
}

/// Number of TensorCores per TPU-v3 chip (Jouppi et al. 2020).
pub const CORES_PER_CHIP: usize = 2;

/// Chips attached to a single host machine in a TPU-v3 pod.
///
/// A 1024-chip pod has 256 hosts; the paper's input-pipeline discussion
/// (§3.5) counts ~128 hosts for a mid-scale (512-chip) system, consistent
/// with 4 chips per host.
pub const CHIPS_PER_HOST: usize = 4;

/// A chip's (x, y) position in the 2-D multipod mesh.
///
/// X runs along the pod-concatenation direction (0..128 on the 4-pod
/// machine), Y along the torus direction (0..32).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Position along the mesh (pod-concatenation) dimension.
    pub x: u32,
    /// Position along the torus dimension.
    pub y: u32,
}

impl Coord {
    /// Builds a coordinate.
    pub fn new(x: u32, y: u32) -> Coord {
        Coord { x, y }
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A dense chip index, `y * x_len + x`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChipId(pub u32);

impl ChipId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ChipId {
    fmt_id!("chip");
}

impl fmt::Display for ChipId {
    fmt_id!("chip");
}

/// One of the two TensorCores on a chip.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId {
    /// The chip the core lives on.
    pub chip: ChipId,
    /// Core index within the chip (0 or 1).
    pub core: u8,
}

impl CoreId {
    /// Builds a core id.
    ///
    /// # Panics
    ///
    /// Panics if `core >= CORES_PER_CHIP`.
    pub fn new(chip: ChipId, core: u8) -> CoreId {
        assert!((core as usize) < CORES_PER_CHIP, "core index out of range");
        CoreId { chip, core }
    }

    /// Global dense core index.
    pub fn index(self) -> usize {
        self.chip.index() * CORES_PER_CHIP + self.core as usize
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}.{}", self.chip.0, self.core)
    }
}

/// A host machine feeding [`CHIPS_PER_HOST`] chips.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl HostId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The host that feeds the given chip.
    pub fn of_chip(chip: ChipId) -> HostId {
        HostId((chip.index() / CHIPS_PER_HOST) as u32)
    }
}

impl fmt::Debug for HostId {
    fmt_id!("host");
}

impl fmt::Display for HostId {
    fmt_id!("host");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_display() {
        assert_eq!(Coord::new(3, 7).to_string(), "(3,7)");
    }

    #[test]
    fn core_index_is_dense() {
        let c0 = CoreId::new(ChipId(5), 0);
        let c1 = CoreId::new(ChipId(5), 1);
        assert_eq!(c0.index(), 10);
        assert_eq!(c1.index(), 11);
    }

    #[test]
    #[should_panic(expected = "core index")]
    fn core_index_validated() {
        CoreId::new(ChipId(0), 2);
    }

    #[test]
    fn host_of_chip_groups_by_four() {
        assert_eq!(HostId::of_chip(ChipId(0)), HostId(0));
        assert_eq!(HostId::of_chip(ChipId(3)), HostId(0));
        assert_eq!(HostId::of_chip(ChipId(4)), HostId(1));
        assert_eq!(HostId::of_chip(ChipId(4095)), HostId(1023));
    }

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(ChipId(9).to_string(), "chip9");
        assert_eq!(HostId(2).to_string(), "host2");
        assert_eq!(format!("{:?}", CoreId::new(ChipId(1), 1)), "core1.1");
    }
}
