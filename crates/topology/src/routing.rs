//! Sparse routing.
//!
//! "As the TPU-v3 chip only had 1024 entries in the routing table, we used a
//! sparse routing scheme where only neighbors along rows and columns were
//! visible to each chip. This was sufficient for achieving peak throughput
//! in the all-reduce communication operations." (§1)
//!
//! This module reproduces that constraint: a [`RoutingTable`] per chip that
//! must fit in [`ROUTING_TABLE_CAPACITY`] entries, and dimension-ordered
//! routes that only traverse row/column-visible chips.

use serde::{Deserialize, Serialize};

use crate::{ChipId, Coord, LinkClass, Multipod, TopologyError};

/// Hardware routing-table capacity of a TPU-v3 chip.
pub const ROUTING_TABLE_CAPACITY: usize = 1024;

/// The set of destinations a chip can address directly.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingTable {
    owner: ChipId,
    entries: Vec<ChipId>,
}

impl RoutingTable {
    /// The paper's sparse scheme: only chips in the owner's row and column
    /// are visible.
    pub fn sparse(mesh: &Multipod, owner: ChipId) -> RoutingTable {
        let c = mesh.coord_of(owner);
        let mut entries = Vec::new();
        for x in 0..mesh.x_len() {
            if x != c.x {
                entries.push(mesh.chip_at(Coord::new(x, c.y)));
            }
        }
        for y in 0..mesh.y_len() {
            if y != c.y {
                entries.push(mesh.chip_at(Coord::new(c.x, y)));
            }
        }
        RoutingTable { owner, entries }
    }

    /// A dense (all-destinations) table; does **not** fit on the multipod
    /// and exists to demonstrate why the sparse scheme is needed.
    pub fn dense(mesh: &Multipod, owner: ChipId) -> RoutingTable {
        let entries = mesh.chips().filter(|&c| c != owner).collect();
        RoutingTable { owner, entries }
    }

    /// The chip owning this table.
    pub fn owner(&self) -> ChipId {
        self.owner
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the table fits in the TPU-v3 hardware capacity.
    pub fn fits(&self) -> bool {
        self.len() <= ROUTING_TABLE_CAPACITY
    }

    /// Whether `dest` is directly addressable.
    pub fn visible(&self, dest: ChipId) -> bool {
        dest == self.owner || self.entries.contains(&dest)
    }
}

/// A hop-by-hop route between two chips.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Every chip on the route, endpoints included.
    pub chips: Vec<ChipId>,
}

impl Route {
    /// Number of links traversed.
    pub fn num_hops(&self) -> usize {
        self.chips.len().saturating_sub(1)
    }

    /// The link classes along the route.
    ///
    /// # Panics
    ///
    /// Panics if consecutive chips on the route are not adjacent in `mesh`
    /// (which indicates the route was computed for a different topology).
    pub fn link_classes(&self, mesh: &Multipod) -> Vec<LinkClass> {
        self.chips
            .windows(2)
            .map(|w| {
                mesh.link_between(w[0], w[1])
                    .expect("route traverses non-adjacent chips")
            })
            .collect()
    }
}

impl Multipod {
    /// Computes the dimension-ordered (X then Y) route between two chips,
    /// using the shorter torus direction along Y and honouring the sparse
    /// visibility rule (every intermediate turn happens at the row/column
    /// intersection).
    ///
    /// When a link on the primary route has failed, the Y-then-X detour is
    /// tried.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoRoute`] when both dimension orders are
    /// blocked by failed links.
    pub fn route(&self, from: ChipId, to: ChipId) -> Result<Route, TopologyError> {
        if from == to {
            return Ok(Route { chips: vec![from] });
        }
        // Try both dimension orders with the shortest Y direction, then
        // fall back to the long way around the torus (a failed wrap link
        // must not partition a column).
        self.route_dim_order(from, to, true, false)
            .or_else(|_| self.route_dim_order(from, to, false, false))
            .or_else(|_| self.route_dim_order(from, to, true, true))
            .or_else(|_| self.route_dim_order(from, to, false, true))
            .map_err(|_| TopologyError::NoRoute { from, to })
    }

    /// Route with an explicit dimension order (`x_first` or Y first) and
    /// Y-direction choice (`long_y` walks against the shorter torus
    /// direction).
    fn route_dim_order(
        &self,
        from: ChipId,
        to: ChipId,
        x_first: bool,
        long_y: bool,
    ) -> Result<Route, TopologyError> {
        let mut chips = vec![from];
        let mut cur = self.coord_of(from);
        let dst = self.coord_of(to);
        let walk_x = |chips: &mut Vec<ChipId>, cur: &mut Coord| -> Result<(), TopologyError> {
            while cur.x != dst.x {
                let next_x = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
                let next = self.chip_at(Coord::new(next_x, cur.y));
                let prev = self.chip_at(*cur);
                if self.link_between(prev, next).is_none() {
                    return Err(TopologyError::NoRoute { from, to });
                }
                chips.push(next);
                cur.x = next_x;
            }
            Ok(())
        };
        let walk_y = |this: &Multipod,
                      chips: &mut Vec<ChipId>,
                      cur: &mut Coord|
         -> Result<(), TopologyError> {
            // Pick the direction once (recomputing per hop would
            // oscillate when walking the long way around).
            let up_dist = (cur.y + this.y_len() - dst.y) % this.y_len();
            let down_dist = (dst.y + this.y_len() - cur.y) % this.y_len();
            let prefer_down = down_dist <= up_dist;
            let go_down = if long_y { !prefer_down } else { prefer_down };
            while cur.y != dst.y {
                let next_y = if !this.torus_y() {
                    if dst.y > cur.y {
                        cur.y + 1
                    } else {
                        cur.y - 1
                    }
                } else if go_down {
                    (cur.y + 1) % this.y_len()
                } else {
                    (cur.y + this.y_len() - 1) % this.y_len()
                };
                let next = this.chip_at(Coord::new(cur.x, next_y));
                let prev = this.chip_at(*cur);
                if this.link_between(prev, next).is_none() {
                    return Err(TopologyError::NoRoute { from, to });
                }
                chips.push(next);
                cur.y = next_y;
            }
            Ok(())
        };
        if x_first {
            walk_x(&mut chips, &mut cur)?;
            walk_y(self, &mut chips, &mut cur)?;
        } else {
            walk_y(self, &mut chips, &mut cur)?;
            walk_x(&mut chips, &mut cur)?;
        }
        Ok(Route { chips })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultipodConfig;

    #[test]
    fn sparse_tables_fit_on_the_multipod_dense_do_not() {
        let m = Multipod::new(MultipodConfig::multipod(4));
        let chip = m.chip_at(Coord::new(64, 16));
        let sparse = RoutingTable::sparse(&m, chip);
        assert_eq!(sparse.len(), 127 + 31);
        assert!(sparse.fits());
        let dense = RoutingTable::dense(&m, chip);
        assert_eq!(dense.len(), 4095);
        assert!(!dense.fits());
    }

    #[test]
    fn sparse_visibility_is_row_and_column() {
        let m = Multipod::new(MultipodConfig::mesh(8, 4, true));
        let chip = m.chip_at(Coord::new(2, 1));
        let t = RoutingTable::sparse(&m, chip);
        assert!(t.visible(m.chip_at(Coord::new(7, 1))));
        assert!(t.visible(m.chip_at(Coord::new(2, 3))));
        assert!(!t.visible(m.chip_at(Coord::new(3, 2))));
        assert!(t.visible(chip));
    }

    #[test]
    fn route_is_dimension_ordered_and_adjacent() {
        let m = Multipod::new(MultipodConfig::mesh(8, 8, true));
        let from = m.chip_at(Coord::new(1, 1));
        let to = m.chip_at(Coord::new(5, 6));
        let r = m.route(from, to).unwrap();
        // Adjacency along the whole route.
        let classes = r.link_classes(&m);
        assert_eq!(classes.len(), r.num_hops());
        // X distance 4 + torus-Y distance min(5, 3)=3.
        assert_eq!(r.num_hops(), 4 + 3);
    }

    #[test]
    fn route_uses_torus_shortcut() {
        let m = Multipod::new(MultipodConfig::mesh(4, 8, true));
        let from = m.chip_at(Coord::new(0, 0));
        let to = m.chip_at(Coord::new(0, 7));
        let r = m.route(from, to).unwrap();
        assert_eq!(r.num_hops(), 1);
        assert_eq!(r.link_classes(&m), vec![LinkClass::TorusWrap]);
    }

    #[test]
    fn route_without_torus_walks_the_column() {
        let m = Multipod::new(MultipodConfig::mesh(4, 8, false));
        let from = m.chip_at(Coord::new(0, 0));
        let to = m.chip_at(Coord::new(0, 7));
        let r = m.route(from, to).unwrap();
        assert_eq!(r.num_hops(), 7);
    }

    #[test]
    fn route_detours_around_failed_link() {
        let mut m = Multipod::new(MultipodConfig::mesh(4, 4, false));
        let from = m.chip_at(Coord::new(0, 0));
        let to = m.chip_at(Coord::new(2, 2));
        let a = m.chip_at(Coord::new(1, 0));
        let b = m.chip_at(Coord::new(2, 0));
        m.fail_link(a, b);
        let r = m.route(from, to).unwrap();
        assert_eq!(r.num_hops(), 4); // Y-then-X detour has equal length.
        assert!(!r
            .chips
            .windows(2)
            .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a)));
    }

    #[test]
    fn route_fails_when_fully_blocked() {
        let mut m = Multipod::new(MultipodConfig::mesh(2, 1, false));
        let from = m.chip_at(Coord::new(0, 0));
        let to = m.chip_at(Coord::new(1, 0));
        m.fail_link(from, to);
        assert!(matches!(
            m.route(from, to),
            Err(TopologyError::NoRoute { .. })
        ));
    }

    #[test]
    fn self_route_is_trivial() {
        let m = Multipod::new(MultipodConfig::mesh(4, 4, true));
        let c = m.chip_at(Coord::new(1, 1));
        let r = m.route(c, c).unwrap();
        assert_eq!(r.num_hops(), 0);
    }

    #[test]
    fn cross_pod_routes_use_optical_links() {
        let m = Multipod::new(MultipodConfig::multipod(2));
        let from = m.chip_at(Coord::new(30, 0));
        let to = m.chip_at(Coord::new(34, 0));
        let r = m.route(from, to).unwrap();
        let classes = r.link_classes(&m);
        assert_eq!(
            classes
                .iter()
                .filter(|&&c| c == LinkClass::CrossPodOptical)
                .count(),
            1
        );
    }
}
