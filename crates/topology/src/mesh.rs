//! The multipod mesh itself.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ChipId, Coord, HostId, Link, LinkClass, CHIPS_PER_HOST, CORES_PER_CHIP};

/// Error raised by topology construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Requested dimensions were zero or otherwise unusable.
    InvalidDimensions {
        /// Offending X extent.
        x_len: u32,
        /// Offending Y extent.
        y_len: u32,
    },
    /// A chip id outside the mesh was used.
    ChipOutOfRange {
        /// The bad id.
        chip: ChipId,
        /// Number of chips in the mesh.
        num_chips: usize,
    },
    /// No path exists between two chips (only possible with failed links).
    NoRoute {
        /// Source chip.
        from: ChipId,
        /// Destination chip.
        to: ChipId,
    },
    /// A slice was requested for a chip count the paper's sweeps cannot
    /// carve (not a power of two, or below 2).
    InvalidSliceShape {
        /// The rejected chip count.
        chips: u32,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidDimensions { x_len, y_len } => {
                write!(f, "invalid mesh dimensions {x_len}x{y_len}")
            }
            TopologyError::ChipOutOfRange { chip, num_chips } => {
                write!(f, "{chip} out of range for {num_chips}-chip mesh")
            }
            TopologyError::NoRoute { from, to } => {
                write!(f, "no route from {from} to {to}")
            }
            TopologyError::InvalidSliceShape { chips } => {
                write!(f, "slice needs a power-of-two chip count >= 2, got {chips}")
            }
        }
    }
}

impl Error for TopologyError {}

/// Configuration for building a [`Multipod`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultipodConfig {
    /// Number of 32×32 pods concatenated along X.
    pub pods: u32,
    /// X extent of a single pod (32 for TPU-v3).
    pub pod_x_len: u32,
    /// Y extent of a single pod (32 for TPU-v3).
    pub pod_y_len: u32,
    /// Whether the Y edges carry torus wrap links (true on TPU-v3 pods).
    pub torus_y: bool,
}

impl MultipodConfig {
    /// The paper's multipod: `pods` 32×32 TPU-v3 pods in a row with torus
    /// wrap along Y. `MultipodConfig::multipod(4)` is the 4096-chip machine.
    pub fn multipod(pods: u32) -> MultipodConfig {
        MultipodConfig {
            pods,
            pod_x_len: 32,
            pod_y_len: 32,
            torus_y: true,
        }
    }

    /// An arbitrary single-pod mesh, mostly for tests and small sweeps.
    pub fn mesh(x_len: u32, y_len: u32, torus_y: bool) -> MultipodConfig {
        MultipodConfig {
            pods: 1,
            pod_x_len: x_len,
            pod_y_len: y_len,
            torus_y,
        }
    }

    /// The smallest slice holding `chips` chips, as used by the paper's
    /// scaling sweeps (16, 32, …, 4096). Slices of at most 1024 chips are
    /// cut from a single pod; larger counts concatenate whole pods.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is not a power of two or is smaller than 2; use
    /// [`MultipodConfig::try_slice`] to get a typed error instead.
    pub fn slice(chips: u32) -> MultipodConfig {
        MultipodConfig::try_slice(chips).unwrap_or_else(|_| {
            panic!("chips must be a power of two >= 2, got {chips}");
        })
    }

    /// Fallible [`MultipodConfig::slice`]: returns
    /// [`TopologyError::InvalidSliceShape`] when `chips` is not a power of
    /// two ≥ 2 instead of panicking.
    ///
    /// # Errors
    ///
    /// See above.
    pub fn try_slice(chips: u32) -> Result<MultipodConfig, TopologyError> {
        if !(chips.is_power_of_two() && chips >= 2) {
            return Err(TopologyError::InvalidSliceShape { chips });
        }
        Ok(if chips <= 1024 {
            // Cut the most square power-of-two slice with y ≤ 32, matching
            // how TPU-v3 slices are carved (4x4, 8x8, 16x16, 16x32, 32x32).
            let mut y = 1u32;
            while y * 2 <= 32 && (y * 2) * (y * 2) <= chips {
                y *= 2;
            }
            let x = chips / y;
            MultipodConfig::mesh(x, y, true)
        } else {
            MultipodConfig::multipod(chips / 1024)
        })
    }
}

/// A 2-D mesh of TPU chips, possibly spanning several pods.
///
/// Chips are laid out with `x` in `0..x_len` (across pods) and `y` in
/// `0..y_len`. Dense ids are `y * x_len + x`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Multipod {
    config: MultipodConfig,
    x_len: u32,
    y_len: u32,
    /// Canonical failed links, stored as ordered chip-id pairs.
    failed_links: Vec<(ChipId, ChipId)>,
    /// Bumped on every link mutation so consumers caching topology-derived
    /// state (routes, link occupancy) can detect staleness. Serialized like
    /// any other field: a deserialized mesh resumes at the recorded count,
    /// which is just as valid a staleness baseline as zero.
    version: u64,
}

impl Multipod {
    /// Builds the mesh described by `config`.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions; use [`Multipod::try_new`] for a fallible
    /// variant.
    pub fn new(config: MultipodConfig) -> Multipod {
        Multipod::try_new(config).expect("invalid multipod config")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidDimensions`] when any extent is zero.
    pub fn try_new(config: MultipodConfig) -> Result<Multipod, TopologyError> {
        let x_len = config.pods * config.pod_x_len;
        let y_len = config.pod_y_len;
        if x_len == 0 || y_len == 0 {
            return Err(TopologyError::InvalidDimensions { x_len, y_len });
        }
        Ok(Multipod {
            config,
            x_len,
            y_len,
            failed_links: Vec::new(),
            version: 0,
        })
    }

    /// The configuration the mesh was built from.
    pub fn config(&self) -> &MultipodConfig {
        &self.config
    }

    /// Total X extent (all pods).
    pub fn x_len(&self) -> u32 {
        self.x_len
    }

    /// Y extent.
    pub fn y_len(&self) -> u32 {
        self.y_len
    }

    /// Whether Y wrap links exist.
    pub fn torus_y(&self) -> bool {
        self.config.torus_y && self.y_len > 2
    }

    /// Number of chips.
    pub fn num_chips(&self) -> usize {
        (self.x_len * self.y_len) as usize
    }

    /// Number of TensorCores.
    pub fn num_cores(&self) -> usize {
        self.num_chips() * CORES_PER_CHIP
    }

    /// Number of input hosts.
    pub fn num_hosts(&self) -> usize {
        self.num_chips().div_ceil(CHIPS_PER_HOST)
    }

    /// The chip at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is outside the mesh.
    pub fn chip_at(&self, coord: Coord) -> ChipId {
        assert!(
            coord.x < self.x_len && coord.y < self.y_len,
            "coordinate {coord} outside {}x{} mesh",
            self.x_len,
            self.y_len
        );
        ChipId(coord.y * self.x_len + coord.x)
    }

    /// The coordinate of a chip.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn coord_of(&self, chip: ChipId) -> Coord {
        assert!(
            chip.index() < self.num_chips(),
            "{chip} out of range for {} chips",
            self.num_chips()
        );
        Coord::new(chip.0 % self.x_len, chip.0 / self.x_len)
    }

    /// The pod index (0-based along X) a chip belongs to.
    pub fn pod_of(&self, chip: ChipId) -> u32 {
        self.coord_of(chip).x / self.config.pod_x_len
    }

    /// The host feeding a chip.
    pub fn host_of(&self, chip: ChipId) -> HostId {
        HostId::of_chip(chip)
    }

    /// Classifies the link between two chips, or `None` when they are not
    /// physically adjacent (or the link has been failed).
    pub fn link_between(&self, a: ChipId, b: ChipId) -> Option<LinkClass> {
        if self.is_failed(a, b) {
            return None;
        }
        let ca = self.coord_of(a);
        let cb = self.coord_of(b);
        if ca.y == cb.y && ca.x.abs_diff(cb.x) == 1 {
            // X neighbours: cross-pod when they straddle a pod boundary.
            let pod_a = ca.x / self.config.pod_x_len;
            let pod_b = cb.x / self.config.pod_x_len;
            return Some(if pod_a == pod_b {
                LinkClass::IntraPod
            } else {
                LinkClass::CrossPodOptical
            });
        }
        if ca.x == cb.x {
            if ca.y.abs_diff(cb.y) == 1 {
                return Some(LinkClass::IntraPod);
            }
            if self.torus_y() && ca.y.abs_diff(cb.y) == self.y_len - 1 {
                return Some(LinkClass::TorusWrap);
            }
        }
        None
    }

    /// All physical neighbours of a chip with their link classes.
    pub fn neighbors(&self, chip: ChipId) -> Vec<(ChipId, LinkClass)> {
        let c = self.coord_of(chip);
        let mut out = Vec::with_capacity(4);
        let mut push = |coord: Coord| {
            let other = self.chip_at(coord);
            if let Some(class) = self.link_between(chip, other) {
                out.push((other, class));
            }
        };
        if c.x > 0 {
            push(Coord::new(c.x - 1, c.y));
        }
        if c.x + 1 < self.x_len {
            push(Coord::new(c.x + 1, c.y));
        }
        if c.y > 0 {
            push(Coord::new(c.x, c.y - 1));
        } else if self.torus_y() {
            push(Coord::new(c.x, self.y_len - 1));
        }
        if c.y + 1 < self.y_len {
            push(Coord::new(c.x, c.y + 1));
        } else if self.torus_y() && self.y_len > 1 && c.y == self.y_len - 1 {
            push(Coord::new(c.x, 0));
        }
        out
    }

    /// All directed links in the mesh.
    pub fn links(&self) -> Vec<Link> {
        let mut out = Vec::new();
        for id in 0..self.num_chips() as u32 {
            let chip = ChipId(id);
            for (other, class) in self.neighbors(chip) {
                out.push(Link::new(chip, other, class));
            }
        }
        out
    }

    /// Marks the (undirected) link between `a` and `b` as failed.
    ///
    /// Subsequent [`Multipod::link_between`] / [`Multipod::neighbors`] calls
    /// no longer see it; routing must detour.
    pub fn fail_link(&mut self, a: ChipId, b: ChipId) {
        let key = if a <= b { (a, b) } else { (b, a) };
        if !self.failed_links.contains(&key) {
            self.failed_links.push(key);
            self.version += 1;
        }
    }

    /// Marks every link incident to `chip` as failed (whole-chip loss:
    /// the chip is still addressable but unreachable).
    pub fn fail_chip(&mut self, chip: ChipId) {
        let neighbors: Vec<ChipId> = self.neighbors(chip).into_iter().map(|(c, _)| c).collect();
        for other in neighbors {
            self.fail_link(chip, other);
        }
    }

    /// Restores the (undirected) link between `a` and `b`, leaving every
    /// other failed link down — the per-link counterpart of
    /// [`Multipod::heal_all_links`], so a fault campaign can heal one
    /// repaired link without resurrecting the rest of its failure set.
    pub fn heal_link(&mut self, a: ChipId, b: ChipId) {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(pos) = self.failed_links.iter().position(|&k| k == key) {
            self.failed_links.remove(pos);
            self.version += 1;
        }
    }

    /// Restores all failed links.
    pub fn heal_all_links(&mut self) {
        if !self.failed_links.is_empty() {
            self.failed_links.clear();
            self.version += 1;
        }
    }

    /// The currently-failed links as canonical (min, max) chip-id pairs,
    /// in failure order.
    pub fn failed_links(&self) -> &[(ChipId, ChipId)] {
        &self.failed_links
    }

    /// Monotone counter bumped by every effective link mutation
    /// ([`Multipod::fail_link`], [`Multipod::heal_link`],
    /// [`Multipod::heal_all_links`]). Consumers caching topology-derived
    /// state compare versions to invalidate automatically.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether `chip` has no live links left (e.g. after
    /// [`Multipod::fail_chip`]); single-chip meshes are trivially isolated.
    pub fn is_isolated(&self, chip: ChipId) -> bool {
        self.neighbors(chip).is_empty()
    }

    fn is_failed(&self, a: ChipId, b: ChipId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.failed_links.contains(&key)
    }

    /// Iterates over all chip ids.
    pub fn chips(&self) -> impl Iterator<Item = ChipId> + '_ {
        (0..self.num_chips() as u32).map(ChipId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_multipod_dimensions() {
        let m = Multipod::new(MultipodConfig::multipod(4));
        assert_eq!(m.num_chips(), 4096);
        assert_eq!(m.x_len(), 128);
        assert_eq!(m.y_len(), 32);
        assert_eq!(m.num_cores(), 8192);
        assert_eq!(m.num_hosts(), 1024);
        assert!(m.torus_y());
    }

    #[test]
    fn slice_configs_cover_scaling_sweep() {
        for chips in [16u32, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
            let m = Multipod::new(MultipodConfig::slice(chips));
            assert_eq!(m.num_chips() as u32, chips, "chips={chips}");
        }
    }

    #[test]
    fn try_slice_rejects_bad_chip_counts_with_typed_errors() {
        for chips in [0u32, 1, 3, 6, 100, 4095] {
            assert_eq!(
                MultipodConfig::try_slice(chips),
                Err(TopologyError::InvalidSliceShape { chips }),
                "chips={chips}"
            );
        }
        assert_eq!(
            MultipodConfig::try_slice(4096),
            Ok(MultipodConfig::multipod(4))
        );
        assert_eq!(MultipodConfig::try_slice(16), Ok(MultipodConfig::slice(16)));
    }

    #[test]
    fn coords_round_trip() {
        let m = Multipod::new(MultipodConfig::multipod(2));
        for chip in m.chips() {
            assert_eq!(m.chip_at(m.coord_of(chip)), chip);
        }
    }

    #[test]
    fn cross_pod_links_at_pod_boundaries() {
        let m = Multipod::new(MultipodConfig::multipod(2));
        let a = m.chip_at(Coord::new(31, 5));
        let b = m.chip_at(Coord::new(32, 5));
        assert_eq!(m.link_between(a, b), Some(LinkClass::CrossPodOptical));
        let c = m.chip_at(Coord::new(30, 5));
        assert_eq!(m.link_between(c, a), Some(LinkClass::IntraPod));
    }

    #[test]
    fn torus_wrap_on_y_edges_only() {
        let m = Multipod::new(MultipodConfig::multipod(1));
        let top = m.chip_at(Coord::new(3, 0));
        let bottom = m.chip_at(Coord::new(3, 31));
        assert_eq!(m.link_between(top, bottom), Some(LinkClass::TorusWrap));
        // No X wrap: the mesh edge chips in X are not adjacent.
        let left = m.chip_at(Coord::new(0, 3));
        let right = m.chip_at(Coord::new(31, 3));
        assert_eq!(m.link_between(left, right), None);
    }

    #[test]
    fn interior_chips_have_four_neighbors() {
        let m = Multipod::new(MultipodConfig::multipod(1));
        let mid = m.chip_at(Coord::new(16, 16));
        assert_eq!(m.neighbors(mid).len(), 4);
        // Corner chip still has 3 (2 mesh + 1 wrap).
        let corner = m.chip_at(Coord::new(0, 0));
        assert_eq!(m.neighbors(corner).len(), 3);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let m = Multipod::new(MultipodConfig::mesh(8, 4, true));
        for chip in m.chips() {
            for (other, class) in m.neighbors(chip) {
                assert_eq!(m.link_between(other, chip), Some(class));
            }
        }
    }

    #[test]
    fn pod_of_tracks_x() {
        let m = Multipod::new(MultipodConfig::multipod(4));
        assert_eq!(m.pod_of(m.chip_at(Coord::new(0, 0))), 0);
        assert_eq!(m.pod_of(m.chip_at(Coord::new(33, 0))), 1);
        assert_eq!(m.pod_of(m.chip_at(Coord::new(127, 31))), 3);
    }

    #[test]
    fn failed_link_disappears_and_heals() {
        let mut m = Multipod::new(MultipodConfig::mesh(4, 4, false));
        let a = m.chip_at(Coord::new(0, 0));
        let b = m.chip_at(Coord::new(1, 0));
        assert!(m.link_between(a, b).is_some());
        m.fail_link(a, b);
        assert!(m.link_between(a, b).is_none());
        assert!(m.link_between(b, a).is_none());
        assert!(!m.neighbors(a).iter().any(|(c, _)| *c == b));
        m.heal_all_links();
        assert!(m.link_between(a, b).is_some());
    }

    #[test]
    fn try_new_rejects_zero_dims() {
        assert!(matches!(
            Multipod::try_new(MultipodConfig::mesh(0, 4, false)),
            Err(TopologyError::InvalidDimensions { .. })
        ));
    }

    #[test]
    fn small_mesh_without_torus_has_no_wrap() {
        let m = Multipod::new(MultipodConfig::mesh(4, 2, true));
        // y_len = 2: wrap would duplicate the existing mesh link; torus_y()
        // reports false.
        assert!(!m.torus_y());
        let a = m.chip_at(Coord::new(0, 0));
        assert_eq!(m.neighbors(a).len(), 2);
    }

    #[test]
    fn links_enumeration_is_consistent() {
        let m = Multipod::new(MultipodConfig::mesh(4, 4, true));
        let links = m.links();
        // Every directed link's reverse is present.
        for l in &links {
            assert!(links.iter().any(|r| r.from == l.to && r.to == l.from));
        }
        // Interior count check: 4x4 torus-Y mesh has 3*4 X-links *2 dirs
        // + 4 columns * 4 Y-links (3 mesh + 1 wrap) * 2 dirs.
        assert_eq!(links.len(), 2 * (3 * 4) + 2 * (4 * 4));
    }
}
