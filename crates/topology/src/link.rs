//! Inter-chip links.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ChipId;

/// The physical class of an inter-chip interconnect (ICI) link.
///
/// The paper distinguishes standard within-pod links from the longer
/// cross-pod optical links added to assemble the multipod (§1, Figure 2),
/// plus the torus wrap links on the Y edges that the 2-D gradient-summation
/// schedule exploits (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// A standard within-pod ICI link between adjacent chips.
    IntraPod,
    /// A longer optical link connecting the facing edges of two pods.
    CrossPodOptical,
    /// A torus wrap link connecting the Y=0 and Y=max rows of a pod.
    TorusWrap,
}

impl LinkClass {
    /// Relative propagation-latency multiplier versus an intra-pod link.
    ///
    /// Cross-pod links are physically longer (they leave the pod enclosure
    /// and traverse the datacenter floor), which we model as a latency
    /// multiplier; bandwidth is the same fiber rate.
    pub fn latency_multiplier(self) -> f64 {
        match self {
            LinkClass::IntraPod => 1.0,
            LinkClass::CrossPodOptical => 4.0,
            LinkClass::TorusWrap => 2.0,
        }
    }
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkClass::IntraPod => "intra-pod",
            LinkClass::CrossPodOptical => "cross-pod-optical",
            LinkClass::TorusWrap => "torus-wrap",
        };
        f.write_str(s)
    }
}

/// A directed link between two adjacent chips.
///
/// The topology stores links in canonical (undirected) form but collective
/// schedules consume them directionally; each physical link is
/// full-duplex with independent bandwidth per direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Source chip.
    pub from: ChipId,
    /// Destination chip.
    pub to: ChipId,
    /// Physical class.
    pub class: LinkClass,
}

impl Link {
    /// Builds a link.
    pub fn new(from: ChipId, to: ChipId, class: LinkClass) -> Link {
        Link { from, to, class }
    }

    /// The same link in the opposite direction.
    pub fn reversed(self) -> Link {
        Link {
            from: self.to,
            to: self.from,
            class: self.class,
        }
    }

    /// A canonical key identifying the *directed* link (used by the
    /// event-driven network to track per-direction occupancy).
    pub fn directed_key(self) -> (u32, u32) {
        (self.from.0, self.to.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_pod_links_are_slower() {
        assert!(
            LinkClass::CrossPodOptical.latency_multiplier()
                > LinkClass::IntraPod.latency_multiplier()
        );
        assert!(
            LinkClass::TorusWrap.latency_multiplier() > LinkClass::IntraPod.latency_multiplier()
        );
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let l = Link::new(ChipId(1), ChipId(2), LinkClass::IntraPod);
        let r = l.reversed();
        assert_eq!(r.from, ChipId(2));
        assert_eq!(r.to, ChipId(1));
        assert_eq!(r.class, l.class);
        assert_ne!(l.directed_key(), r.directed_key());
    }

    #[test]
    fn display_names() {
        assert_eq!(LinkClass::CrossPodOptical.to_string(), "cross-pod-optical");
    }
}
