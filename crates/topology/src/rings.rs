//! Ring enumerations used by the collective schedules.
//!
//! The paper's gradient summation (§3.3, Figure 4) is built from three ring
//! families:
//!
//! 1. **Y rings** — bidirectional rings along the torus dimension, one per
//!    column, carrying the bulk of the reduce-scatter (red rings in Fig. 4).
//! 2. **X lines** — open chains along the mesh dimension (no X wrap),
//!    carrying the second-phase reduce-scatter whose payload is `1/y_len`
//!    of the gradients.
//! 3. **Model-peer rings** — chains along X that *hop over* model-parallel
//!    neighbours (stride = tile width; dotted blue line in Fig. 4), plus the
//!    short within-tile rings used by the model-parallel forward pass
//!    (black ring in Fig. 4).

use serde::{Deserialize, Serialize};

use crate::{ChipId, Coord, Multipod};

/// Direction of travel around a ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RingDirection {
    /// Increasing member index.
    Forward,
    /// Decreasing member index.
    Backward,
}

/// An ordered set of chips traversed by a ring (or open-chain) collective.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ring {
    members: Vec<ChipId>,
    /// Whether the last member connects back to the first by a physical link.
    wraps: bool,
    /// Physical hops between consecutive members (1 for dense rings,
    /// `tile_width` for peer rings that hop over model neighbours).
    stride: u32,
}

impl Ring {
    /// Builds a ring from an explicit member order.
    ///
    /// # Panics
    ///
    /// Panics when `members` is empty or `stride` is zero.
    pub fn new(members: Vec<ChipId>, wraps: bool, stride: u32) -> Ring {
        assert!(!members.is_empty(), "ring must have members");
        assert!(stride > 0, "ring stride must be positive");
        Ring {
            members,
            wraps,
            stride,
        }
    }

    /// The members in ring order.
    pub fn members(&self) -> &[ChipId] {
        &self.members
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always `false`: construction rejects empty member lists, so this
    /// exists only to satisfy the `len`/`is_empty` API convention.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the ring physically wraps.
    pub fn wraps(&self) -> bool {
        self.wraps
    }

    /// Physical hops between consecutive members.
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// The neighbour of `idx` in the given direction (wrapping logically;
    /// on open chains the caller is responsible for honouring the ends).
    pub fn neighbor(&self, idx: usize, dir: RingDirection) -> usize {
        let n = self.members.len();
        match dir {
            RingDirection::Forward => (idx + 1) % n,
            RingDirection::Backward => (idx + n - 1) % n,
        }
    }
}

/// A tile of `width` neighbouring chips along X sharing model-parallel
/// shards (§3.1, §3.3).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelTile {
    members: Vec<ChipId>,
    /// The tile's 0-based index within its row.
    pub tile_index: u32,
    /// The row (Y coordinate) the tile sits on.
    pub row: u32,
}

impl ModelTile {
    /// The chips in the tile, ordered by X.
    pub fn members(&self) -> &[ChipId] {
        &self.members
    }

    /// The tile width.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// The chip holding shard `peer` of the model.
    ///
    /// # Panics
    ///
    /// Panics when `peer >= width()`.
    pub fn peer(&self, peer: usize) -> ChipId {
        self.members[peer]
    }

    /// The short within-tile ring used for forward/backward-pass
    /// all-reduces of partial matmul results (black ring in Figure 4).
    pub fn forward_ring(&self) -> Ring {
        Ring::new(self.members.clone(), false, 1)
    }
}

impl Multipod {
    /// The Y ring for column `x` (red rings in Figure 4).
    ///
    /// Wraps when the pod has torus Y links.
    ///
    /// # Panics
    ///
    /// Panics when `x >= x_len`.
    pub fn y_ring(&self, x: u32) -> Ring {
        assert!(x < self.x_len(), "column {x} out of range");
        let members = (0..self.y_len())
            .map(|y| self.chip_at(Coord::new(x, y)))
            .collect();
        Ring::new(members, self.torus_y(), 1)
    }

    /// The open X chain for row `y`.
    ///
    /// # Panics
    ///
    /// Panics when `y >= y_len`.
    pub fn x_line(&self, y: u32) -> Ring {
        assert!(y < self.y_len(), "row {y} out of range");
        let members = (0..self.x_len())
            .map(|x| self.chip_at(Coord::new(x, y)))
            .collect();
        Ring::new(members, false, 1)
    }

    /// The X chain for row `y` restricted to chips at
    /// `x ≡ offset (mod stride)` — the gradient ring among model-parallel
    /// peers that hops over model neighbours (dotted blue line in Figure 4).
    ///
    /// # Panics
    ///
    /// Panics when the row is out of range, `stride` is zero, does not
    /// divide `x_len`, or `offset >= stride`.
    pub fn x_line_strided(&self, y: u32, offset: u32, stride: u32) -> Ring {
        assert!(y < self.y_len(), "row {y} out of range");
        assert!(stride > 0, "stride must be positive");
        assert!(offset < stride, "offset must be < stride");
        assert_eq!(
            self.x_len() % stride,
            0,
            "stride {stride} must divide x_len {}",
            self.x_len()
        );
        let members = (0..self.x_len() / stride)
            .map(|i| self.chip_at(Coord::new(offset + i * stride, y)))
            .collect();
        Ring::new(members, false, stride)
    }

    /// A single Hamiltonian "snake" ring over every chip: row 0 left to
    /// right, row 1 right to left, and so on — the 1-D alternative to the
    /// 2-D schedule that §3.3 improves on. Consecutive members are always
    /// physically adjacent; the wrap edge (last chip back to the first)
    /// must be routed across the mesh.
    pub fn snake_ring(&self) -> Ring {
        let mut members = Vec::with_capacity(self.num_chips());
        for y in 0..self.y_len() {
            if y % 2 == 0 {
                for x in 0..self.x_len() {
                    members.push(self.chip_at(Coord::new(x, y)));
                }
            } else {
                for x in (0..self.x_len()).rev() {
                    members.push(self.chip_at(Coord::new(x, y)));
                }
            }
        }
        Ring::new(members, false, 1)
    }

    /// Partitions the mesh into model-parallel tiles of `width` neighbouring
    /// chips along X.
    ///
    /// # Panics
    ///
    /// Panics when `width` is zero or does not divide `x_len`.
    pub fn model_tiles(&self, width: u32) -> Vec<ModelTile> {
        assert!(width > 0, "tile width must be positive");
        assert_eq!(
            self.x_len() % width,
            0,
            "tile width {width} must divide x_len {}",
            self.x_len()
        );
        let tiles_per_row = self.x_len() / width;
        let mut out = Vec::with_capacity((tiles_per_row * self.y_len()) as usize);
        for y in 0..self.y_len() {
            for t in 0..tiles_per_row {
                let members = (0..width)
                    .map(|i| self.chip_at(Coord::new(t * width + i, y)))
                    .collect();
                out.push(ModelTile {
                    members,
                    tile_index: t,
                    row: y,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultipodConfig;

    fn pod() -> Multipod {
        Multipod::new(MultipodConfig::mesh(8, 4, true))
    }

    #[test]
    fn y_ring_wraps_and_is_adjacent() {
        let m = pod();
        let r = m.y_ring(3);
        assert_eq!(r.len(), 4);
        assert!(r.wraps());
        for w in r.members().windows(2) {
            assert!(m.link_between(w[0], w[1]).is_some());
        }
        // Wrap edge is physical too.
        assert!(m
            .link_between(*r.members().last().unwrap(), r.members()[0])
            .is_some());
    }

    #[test]
    fn x_line_is_open_chain() {
        let m = pod();
        let r = m.x_line(2);
        assert_eq!(r.len(), 8);
        assert!(!r.wraps());
        for w in r.members().windows(2) {
            assert!(m.link_between(w[0], w[1]).is_some());
        }
        assert!(m
            .link_between(*r.members().last().unwrap(), r.members()[0])
            .is_none());
    }

    #[test]
    fn strided_line_hops_over_peers() {
        let m = pod();
        let r = m.x_line_strided(1, 2, 4);
        assert_eq!(r.len(), 2);
        assert_eq!(r.stride(), 4);
        let xs: Vec<u32> = r.members().iter().map(|&c| m.coord_of(c).x).collect();
        assert_eq!(xs, vec![2, 6]);
    }

    #[test]
    fn model_tiles_partition_the_mesh() {
        let m = pod();
        let tiles = m.model_tiles(4);
        assert_eq!(tiles.len(), 2 * 4); // 2 tiles per row × 4 rows
        let mut seen = std::collections::HashSet::new();
        for t in &tiles {
            assert_eq!(t.width(), 4);
            for &c in t.members() {
                assert!(seen.insert(c), "chip in two tiles");
            }
        }
        assert_eq!(seen.len(), m.num_chips());
    }

    #[test]
    fn tile_forward_ring_is_contiguous() {
        let m = pod();
        let t = &m.model_tiles(4)[1];
        let r = t.forward_ring();
        for w in r.members().windows(2) {
            assert!(m.link_between(w[0], w[1]).is_some());
        }
    }

    #[test]
    fn ring_neighbor_wraps_logically() {
        let r = Ring::new(vec![ChipId(0), ChipId(1), ChipId(2)], true, 1);
        assert_eq!(r.neighbor(2, RingDirection::Forward), 0);
        assert_eq!(r.neighbor(0, RingDirection::Backward), 2);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn model_tiles_validate_width() {
        pod().model_tiles(3);
    }

    #[test]
    fn snake_ring_visits_every_chip_adjacently() {
        let m = pod();
        let r = m.snake_ring();
        assert_eq!(r.len(), m.num_chips());
        let mut seen = std::collections::HashSet::new();
        for w in r.members().windows(2) {
            assert!(
                m.link_between(w[0], w[1]).is_some(),
                "snake must be adjacent"
            );
            seen.insert(w[0]);
        }
        seen.insert(*r.members().last().unwrap());
        assert_eq!(seen.len(), m.num_chips());
        assert!(!r.wraps());
    }

    #[test]
    fn paper_machine_ring_counts() {
        let m = Multipod::new(MultipodConfig::multipod(4));
        assert_eq!(m.y_ring(0).len(), 32);
        assert_eq!(m.x_line(0).len(), 128);
        // 4-way model parallelism as in the Transformer benchmark.
        assert_eq!(m.model_tiles(4).len(), 32 * 32);
        let peers = m.x_line_strided(0, 0, 4);
        assert_eq!(peers.len(), 32);
    }
}
