//! TPU-v3 multipod topology.
//!
//! The paper's machine is a 4096-chip "multipod": four 1024-chip TPU-v3 pods
//! placed side by side along the X dimension, forming a 128×32 2-D mesh with
//! torus wrap links on the Y edges and *cross-pod optical links* stitching
//! neighbouring pods together (Figures 1–2). Because the TPU-v3 chip has only
//! 1024 routing-table entries, a **sparse routing scheme** is used in which
//! each chip only sees neighbours along its own row and column (§1).
//!
//! This crate models that machine explicitly: chips with coordinates, typed
//! links, pods, hosts, ring enumerations used by the collective schedules,
//! model-parallel tiles, and the sparse routing tables with their entry-count
//! constraint.
//!
//! ```
//! use multipod_topology::{Multipod, MultipodConfig};
//!
//! // The paper's benchmarking machine: 4 pods, 128x32 mesh, 4096 chips.
//! let pod = Multipod::new(MultipodConfig::multipod(4));
//! assert_eq!(pod.num_chips(), 4096);
//! assert_eq!(pod.x_len(), 128);
//! assert_eq!(pod.y_len(), 32);
//! ```

mod chip;
mod link;
mod mesh;
mod rings;
mod routing;

pub use chip::{ChipId, Coord, CoreId, HostId, CHIPS_PER_HOST, CORES_PER_CHIP};
pub use link::{Link, LinkClass};
pub use mesh::{Multipod, MultipodConfig, TopologyError};
pub use rings::{ModelTile, Ring, RingDirection};
pub use routing::{Route, RoutingTable, ROUTING_TABLE_CAPACITY};
