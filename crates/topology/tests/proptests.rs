//! Property tests for the multipod topology.

use multipod_topology::{ChipId, Multipod, MultipodConfig, RoutingTable};
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = Multipod> {
    (1u32..10, 1u32..10, any::<bool>())
        .prop_map(|(x, y, torus)| Multipod::new(MultipodConfig::mesh(x, y, torus)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Routes connect their endpoints through physically adjacent chips
    /// and never exceed the (torus-aware) Manhattan distance.
    #[test]
    fn routes_are_adjacent_and_shortest(
        mesh in arb_mesh(),
        a_sel in 0usize..10_000,
        b_sel in 0usize..10_000,
    ) {
        let n = mesh.num_chips();
        let a = ChipId((a_sel % n) as u32);
        let b = ChipId((b_sel % n) as u32);
        let route = mesh.route(a, b).unwrap();
        prop_assert_eq!(*route.chips.first().unwrap(), a);
        prop_assert_eq!(*route.chips.last().unwrap(), b);
        for w in route.chips.windows(2) {
            prop_assert!(mesh.link_between(w[0], w[1]).is_some());
        }
        let ca = mesh.coord_of(a);
        let cb = mesh.coord_of(b);
        let dx = ca.x.abs_diff(cb.x);
        let dy_plain = ca.y.abs_diff(cb.y);
        let dy = if mesh.torus_y() {
            dy_plain.min(mesh.y_len() - dy_plain)
        } else {
            dy_plain
        };
        prop_assert_eq!(route.num_hops() as u32, dx + dy);
    }

    /// Sparse routing tables always fit the hardware limit on meshes up
    /// to multipod scale, and exactly enumerate the row + column.
    #[test]
    fn sparse_tables_fit_and_cover(mesh in arb_mesh(), sel in 0usize..10_000) {
        let chip = ChipId((sel % mesh.num_chips()) as u32);
        let table = RoutingTable::sparse(&mesh, chip);
        prop_assert!(table.fits());
        prop_assert_eq!(
            table.len() as u32,
            (mesh.x_len() - 1) + (mesh.y_len() - 1)
        );
        // Everything in the same row/column is visible; one off-row,
        // off-column chip (if any) is not.
        let c = mesh.coord_of(chip);
        for other in mesh.chips() {
            let co = mesh.coord_of(other);
            let visible = table.visible(other);
            let same_line = co.x == c.x || co.y == c.y;
            prop_assert_eq!(visible, same_line || other == chip);
        }
    }

    /// After failing one random link, every surviving route is still
    /// valid and avoids the failed link.
    #[test]
    fn failed_links_are_never_traversed(
        mesh in arb_mesh(),
        fail_sel in 0usize..10_000,
        a_sel in 0usize..10_000,
        b_sel in 0usize..10_000,
    ) {
        let mut mesh = mesh;
        let links = mesh.links();
        prop_assume!(!links.is_empty());
        let bad = links[fail_sel % links.len()];
        mesh.fail_link(bad.from, bad.to);
        let n = mesh.num_chips();
        let a = ChipId((a_sel % n) as u32);
        let b = ChipId((b_sel % n) as u32);
        if let Ok(route) = mesh.route(a, b) {
            for w in route.chips.windows(2) {
                prop_assert!(mesh.link_between(w[0], w[1]).is_some());
                let is_bad = (w[0] == bad.from && w[1] == bad.to)
                    || (w[0] == bad.to && w[1] == bad.from);
                prop_assert!(!is_bad);
            }
        }
    }

    /// The snake ring is a Hamiltonian path with adjacent steps on every
    /// mesh shape.
    #[test]
    fn snake_ring_is_hamiltonian(mesh in arb_mesh()) {
        let ring = mesh.snake_ring();
        prop_assert_eq!(ring.len(), mesh.num_chips());
        let mut seen = std::collections::HashSet::new();
        for &m in ring.members() {
            prop_assert!(seen.insert(m));
        }
        for w in ring.members().windows(2) {
            prop_assert!(mesh.link_between(w[0], w[1]).is_some());
        }
    }

    /// Model tiles partition the mesh for every divisor width.
    #[test]
    fn model_tiles_partition(x_pow in 0u32..4, y in 1u32..6, width_pow in 0u32..4) {
        let x = 1u32 << x_pow;
        let width = 1u32 << (width_pow % (x_pow + 1));
        let mesh = Multipod::new(MultipodConfig::mesh(x, y, true));
        let tiles = mesh.model_tiles(width);
        let mut seen = std::collections::HashSet::new();
        for t in &tiles {
            prop_assert_eq!(t.width() as u32, width);
            for &c in t.members() {
                prop_assert!(seen.insert(c));
            }
        }
        prop_assert_eq!(seen.len(), mesh.num_chips());
    }
}
