//! Property tests for the tensor substrate.

use multipod_tensor::{Bf16, Shape, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..4)
}

proptest! {
    /// bf16 round-trip never increases relative error beyond epsilon/2.
    #[test]
    fn bf16_relative_error_bounded(x in -1e30f32..1e30f32) {
        prop_assume!(x.is_finite() && x != 0.0);
        let r = Bf16::round_trip(x);
        prop_assert!(((r - x) / x).abs() <= Bf16::EPSILON / 2.0 + 1e-9);
    }

    /// bf16 round-trip is idempotent: quantizing twice equals once.
    #[test]
    fn bf16_idempotent(x in proptest::num::f32::NORMAL) {
        let once = Bf16::round_trip(x);
        prop_assert_eq!(once, Bf16::round_trip(once));
    }

    /// bf16 conversion is monotone.
    #[test]
    fn bf16_monotone(a in -1e20f32..1e20f32, b in -1e20f32..1e20f32) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::round_trip(lo) <= Bf16::round_trip(hi));
    }

    /// split followed by concat is the identity, for every axis and any
    /// divisor of the axis extent.
    #[test]
    fn split_concat_roundtrip(dims in small_dims(), axis_sel in 0usize..4, parts_sel in 1usize..5) {
        let axis = axis_sel % dims.len();
        // Force divisibility by scaling the chosen axis.
        let mut dims = dims;
        dims[axis] *= parts_sel;
        let shape = Shape::of(&dims);
        let data: Vec<f32> = (0..shape.len()).map(|i| i as f32).collect();
        let t = Tensor::new(shape, data);
        let parts = t.split(axis, parts_sel).unwrap();
        prop_assert_eq!(parts.len(), parts_sel);
        let back = Tensor::concat(&parts, axis).unwrap();
        prop_assert_eq!(back, t);
    }

    /// sum_all equals per-element manual summation.
    #[test]
    fn sum_all_matches_reference(
        n in 1usize..6,
        len in 1usize..20,
        seedv in 0u64..1000,
    ) {
        use multipod_tensor::TensorRng;
        let mut rng = TensorRng::seed(seedv);
        let ts: Vec<Tensor> = (0..n)
            .map(|_| rng.uniform(Shape::of(&[len]), -10.0, 10.0))
            .collect();
        let s = Tensor::sum_all(&ts).unwrap();
        for i in 0..len {
            let manual: f32 = ts.iter().map(|t| t.data()[i]).sum();
            prop_assert!((s.data()[i] - manual).abs() < 1e-4);
        }
    }

    /// matmul distributes over a split of the contracting dimension:
    /// A·B == Σ_k A_k·B_k — the identity that model-parallel partial
    /// matmul + all-reduce relies on (§3.1).
    #[test]
    fn matmul_partial_sums(
        m in 1usize..5, k2 in 1usize..4, n in 1usize..5, parts in 1usize..4, seedv in 0u64..100
    ) {
        use multipod_tensor::TensorRng;
        let k = k2 * parts;
        let mut rng = TensorRng::seed(seedv);
        let a = rng.uniform(Shape::of(&[m, k]), -1.0, 1.0);
        let b = rng.uniform(Shape::of(&[k, n]), -1.0, 1.0);
        let full = a.matmul(&b).unwrap();
        let a_parts = a.split(1, parts).unwrap();
        let b_parts = b.split(0, parts).unwrap();
        let partials: Vec<Tensor> = a_parts
            .iter()
            .zip(&b_parts)
            .map(|(ap, bp)| ap.matmul(bp).unwrap())
            .collect();
        let summed = Tensor::sum_all(&partials).unwrap();
        prop_assert!(full.max_abs_diff(&summed) < 1e-4);
    }
}
