//! Chunked, autovectorizer-friendly slice kernels.
//!
//! The simulator's numerically real work — collective reductions, optimizer
//! trust ratios, partial matmuls — bottoms out in the loops here. Each
//! kernel processes fixed-width lanes ([`LANES`] elements) through
//! `chunks_exact`, which gives the compiler provably uniform trip counts to
//! vectorize, then handles the remainder scalar.
//!
//! Two determinism classes, chosen per kernel:
//!
//! * **Bit-exact under chunking** — elementwise kernels ([`axpy`],
//!   [`scale_into`], [`zip_into`]): every output element depends on exactly
//!   one input element, so lane width cannot change results. Collective
//!   golden tests pin these bits.
//! * **Fixed reassociation** — reductions ([`sum`], [`sum_squares`],
//!   [`dot`]): the sequential fold is reassociated into [`LANES`] partial
//!   accumulators combined in a fixed tree. Results can differ from the
//!   sequential fold by rounding ulps but are identical run to run and
//!   across platforms.

/// Lane width of every chunked kernel: 8 × f32 is one AVX2 register, two
/// NEON registers, and divides every tensor extent in the model catalog.
pub const LANES: usize = 8;

/// In-place `dst[i] += alpha * src[i]` (BLAS axpy). Bit-exact under
/// chunking.
///
/// # Panics
///
/// Panics when the slices differ in length (caller validates shapes).
pub fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "axpy length mismatch");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in d.by_ref().zip(s.by_ref()) {
        for i in 0..LANES {
            dc[i] += alpha * sc[i];
        }
    }
    for (dv, &sv) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dv += alpha * sv;
    }
}

/// Appends `a[i] * alpha` to `out`. Bit-exact under chunking.
pub fn scale_into(out: &mut Vec<f32>, a: &[f32], alpha: f32) {
    out.reserve(a.len());
    let mut c = a.chunks_exact(LANES);
    for ac in c.by_ref() {
        for &v in ac {
            out.push(v * alpha);
        }
    }
    for &v in c.remainder() {
        out.push(v * alpha);
    }
}

/// Appends `f(a[i], b[i])` to `out` for every element pair. Bit-exact
/// under chunking for any pure elementwise `f`.
///
/// # Panics
///
/// Panics when the slices differ in length (caller validates shapes).
#[inline]
pub fn zip_into(out: &mut Vec<f32>, a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32 + Copy) {
    assert_eq!(a.len(), b.len(), "zip length mismatch");
    out.reserve(a.len());
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (ac, bc) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..LANES {
            out.push(f(ac[i], bc[i]));
        }
    }
    for (&av, &bv) in ca.remainder().iter().zip(cb.remainder()) {
        out.push(f(av, bv));
    }
}

/// Combines [`LANES`] partial accumulators in a fixed pairwise tree, so
/// reduction results do not depend on how the optimizer schedules the
/// lane sums.
#[inline]
fn fold_lanes_f32(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

#[inline]
fn fold_lanes_f64(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// Sum of all elements, in [`LANES`] f32 partial accumulators.
pub fn sum(values: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut c = values.chunks_exact(LANES);
    for vc in c.by_ref() {
        for i in 0..LANES {
            acc[i] += vc[i];
        }
    }
    let mut tail = 0.0f32;
    for &v in c.remainder() {
        tail += v;
    }
    fold_lanes_f32(acc) + tail
}

/// Sum of squares in f64, in [`LANES`] partial accumulators — the inner
/// loop of the L2 norms behind LARS/LAMB trust ratios.
pub fn sum_squares(values: &[f32]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut c = values.chunks_exact(LANES);
    for vc in c.by_ref() {
        for i in 0..LANES {
            let v = vc[i] as f64;
            acc[i] += v * v;
        }
    }
    let mut tail = 0.0f64;
    for &v in c.remainder() {
        tail += (v as f64) * (v as f64);
    }
    fold_lanes_f64(acc) + tail
}

/// Dot product accumulated in f64, in [`LANES`] partial accumulators.
///
/// # Panics
///
/// Panics when the slices differ in length (caller validates shapes).
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (ac, bc) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..LANES {
            acc[i] += (ac[i] as f64) * (bc[i] as f64);
        }
    }
    let mut tail = 0.0f64;
    for (&av, &bv) in ca.remainder().iter().zip(cb.remainder()) {
        tail += (av as f64) * (bv as f64);
    }
    fold_lanes_f64(acc) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_scalar_loop_bit_for_bit() {
        for n in [0, 1, 7, 8, 9, 31, 64, 100] {
            let src: Vec<f32> = (0..n).map(|i| (i as f32).sin() * 1e3).collect();
            let mut dst: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
            let mut reference = dst.clone();
            for (d, s) in reference.iter_mut().zip(&src) {
                *d += 0.37 * s;
            }
            axpy(&mut dst, 0.37, &src);
            assert_eq!(
                dst.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn elementwise_kernels_are_bit_exact() {
        for n in [3, 8, 17] {
            let a: Vec<f32> = (0..n).map(|i| i as f32 * 0.1).collect();
            let b: Vec<f32> = (0..n).map(|i| 1.0 - i as f32).collect();
            let mut out = Vec::new();
            zip_into(&mut out, &a, &b, |x, y| x * y);
            let expect: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
            assert_eq!(out, expect);
            let mut scaled = Vec::new();
            scale_into(&mut scaled, &a, 2.5);
            let expect: Vec<f32> = a.iter().map(|x| x * 2.5).collect();
            assert_eq!(scaled, expect);
        }
    }

    #[test]
    fn reductions_stay_close_to_sequential_fold() {
        let values: Vec<f32> = (0..1000).map(|i| ((i * 37) % 101) as f32 - 50.0).collect();
        let seq: f32 = values.iter().sum();
        assert!((sum(&values) - seq).abs() <= 1e-3 * seq.abs().max(1.0));
        let seq_sq: f64 = values.iter().map(|&v| (v as f64) * (v as f64)).sum();
        assert!((sum_squares(&values) - seq_sq).abs() <= 1e-9 * seq_sq);
        let seq_dot: f64 = values.iter().map(|&v| (v as f64) * (v as f64)).sum();
        assert!((dot(&values, &values) - seq_dot).abs() <= 1e-9 * seq_dot.abs());
    }

    #[test]
    fn reductions_are_deterministic_across_calls() {
        let values: Vec<f32> = (0..997).map(|i| (i as f32).sin() * 1e6).collect();
        assert_eq!(sum(&values).to_bits(), sum(&values).to_bits());
        assert_eq!(
            sum_squares(&values).to_bits(),
            sum_squares(&values).to_bits()
        );
    }
}
