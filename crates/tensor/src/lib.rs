//! Dense tensors and software bfloat16.
//!
//! The paper's gradient summation and optimizer math run on TPU HBM in
//! `f32` with `bfloat16` used for activation/gradient payloads (§3.3, §4.1).
//! This crate provides the minimal numeric substrate the rest of the
//! workspace builds on: a flat-storage [`Tensor`] over [`Shape`]d data,
//! a round-to-nearest-even [`Bf16`] type, basic BLAS-like kernels and a
//! deterministic fill RNG.
//!
//! ```
//! use multipod_tensor::{Tensor, Shape};
//!
//! let a = Tensor::fill(Shape::of(&[2, 3]), 1.5);
//! let b = Tensor::fill(Shape::of(&[3, 2]), 2.0);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! assert!((c.data()[0] - 9.0).abs() < 1e-6);
//! ```

mod bf16;
mod error;
pub mod kernels;
mod ops;
mod rng;
mod shape;
mod tensor;

pub use bf16::Bf16;
pub use error::TensorError;
pub use rng::TensorRng;
pub use shape::Shape;
pub use tensor::Tensor;
