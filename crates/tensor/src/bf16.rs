//! Software bfloat16.
//!
//! TPUs natively compute in bfloat16 (Wang & Kanwar 2019); the paper uses it
//! for activations and gradient all-reduce payloads (§3.3, §4.1, §4.3) to
//! halve communication bytes. This module implements the format in software:
//! the top 16 bits of an IEEE-754 `f32` with round-to-nearest-even.

use std::fmt;

/// A 16-bit brain floating point number.
///
/// `Bf16` keeps the `f32` exponent range (8 bits) but only 7 mantissa bits.
/// Conversion from `f32` rounds to nearest, ties to even, matching TPU
/// hardware behaviour.
///
/// ```
/// use multipod_tensor::Bf16;
///
/// let x = Bf16::from_f32(1.0 + 1.0 / 256.0);
/// // 1 + 2^-8 is exactly halfway between two bf16 values; ties go to even,
/// // which here is 1.0.
/// assert_eq!(x.to_f32(), 1.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3f80);
    /// The machine epsilon of the format (2⁻⁷).
    pub const EPSILON: f32 = 1.0 / 128.0;

    /// Branch-free bf16 bit pattern of an `f32` bit pattern: the
    /// round-to-nearest-even path and the quiet-NaN path are both
    /// computed and selected by mask, so the quantize loop vectorizes as
    /// straight integer arithmetic.
    #[inline]
    fn demote_bits(bits: u32) -> u16 {
        // NaN: exponent all ones, non-zero mantissa. Preserve the payload
        // and force a quiet bit that survives truncation.
        let is_nan_mask = 0u32.wrapping_sub(((bits & 0x7fff_ffff) > 0x7f80_0000) as u32);
        let nan = (bits >> 16) | 0x0040;
        // Round to nearest even on the 16 discarded bits.
        let lsb = (bits >> 16) & 1;
        let rne = bits.wrapping_add(0x0000_7fff + lsb) >> 16;
        ((nan & is_nan_mask) | (rne & !is_nan_mask)) as u16
    }

    /// Converts an `f32` to `Bf16` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Bf16 {
        Bf16(Bf16::demote_bits(value.to_bits()))
    }

    /// Converts back to `f32` (exact; bf16 values are a subset of f32).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Builds a `Bf16` from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// Returns `true` when the value is NaN.
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }

    /// Rounds an `f32` through bf16 precision and back.
    ///
    /// This is the operation applied to every element of a gradient buffer
    /// when the all-reduce payload is demoted to bf16.
    pub fn round_trip(value: f32) -> f32 {
        Bf16::from_f32(value).to_f32()
    }

    /// Applies [`Bf16::round_trip`] to every element of a slice in place.
    ///
    /// This is the inner loop of every payload demotion on the collective
    /// hot path; it runs [`Bf16::demote_bits`] over fixed-width chunks so
    /// the branch-free integer rounding vectorizes.
    pub fn quantize_slice(values: &mut [f32]) {
        const LANES: usize = 8;
        let mut chunks = values.chunks_exact_mut(LANES);
        for c in chunks.by_ref() {
            for v in c.iter_mut() {
                *v = f32::from_bits((Bf16::demote_bits(v.to_bits()) as u32) << 16);
            }
        }
        for v in chunks.into_remainder() {
            *v = Bf16::round_trip(*v);
        }
    }
}

impl From<f32> for Bf16 {
    fn from(value: f32) -> Bf16 {
        Bf16::from_f32(value)
    }
}

impl From<Bf16> for f32 {
    fn from(value: Bf16) -> f32 {
        value.to_f32()
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl std::ops::Add for Bf16 {
    type Output = Bf16;
    fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl std::ops::Sub for Bf16 {
    type Output = Bf16;
    fn sub(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl std::ops::Mul for Bf16 {
    type Output = Bf16;
    fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl std::ops::Div for Bf16 {
    type Output = Bf16;
    fn div(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl std::ops::Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16::from_f32(-self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_round_trip_exactly() {
        assert_eq!(Bf16::from_f32(0.0).to_f32(), 0.0);
        assert_eq!(Bf16::from_f32(1.0).to_f32(), 1.0);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
    }

    #[test]
    fn negative_values_keep_sign() {
        assert_eq!(Bf16::from_f32(-2.5).to_f32(), -2.5);
        assert!(Bf16::from_f32(-1e-20).to_f32() <= 0.0);
    }

    #[test]
    fn rounds_to_nearest() {
        // 1.0 + 2^-7 is representable; 1.0 + 2^-9 rounds down to 1.0,
        // 1.0 + 3*2^-9 rounds up to 1.0 + 2^-7.
        assert_eq!(Bf16::round_trip(1.0 + 1.0 / 128.0), 1.0 + 1.0 / 128.0);
        assert_eq!(Bf16::round_trip(1.0 + 1.0 / 512.0), 1.0);
        assert_eq!(Bf16::round_trip(1.0 + 3.0 / 512.0), 1.0 + 1.0 / 128.0);
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2^-8 is exactly between 1.0 (mantissa 0, even) and 1 + 2^-7.
        assert_eq!(Bf16::round_trip(1.0 + 1.0 / 256.0), 1.0);
        // 1 + 3*2^-8 is between 1+2^-7 (odd mantissa) and 1+2^-6 (even).
        assert_eq!(Bf16::round_trip(1.0 + 3.0 / 256.0), 1.0 + 1.0 / 64.0);
    }

    #[test]
    fn nan_and_infinity_survive() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
    }

    #[test]
    fn large_values_do_not_overflow_prematurely() {
        // bf16 keeps the full f32 exponent range: values near f32::MAX stay
        // finite (within bf16 relative precision) instead of overflowing.
        let r = Bf16::round_trip(3.0e38);
        assert!(r.is_finite());
        assert!(((r - 3.0e38) / 3.0e38).abs() <= Bf16::EPSILON / 2.0);
        assert!(Bf16::round_trip(1e38).is_finite());
    }

    #[test]
    fn relative_error_is_bounded_by_epsilon() {
        for &x in &[1.0f32, 3.25, 1234.5, 1e-6, 7.7e20] {
            let r = Bf16::round_trip(x);
            assert!(((r - x) / x).abs() <= Bf16::EPSILON / 2.0 + 1e-9, "x={x}");
        }
    }

    #[test]
    fn quantize_slice_quantizes_every_element() {
        let mut v = vec![1.0f32 + 1.0 / 512.0; 8];
        Bf16::quantize_slice(&mut v);
        assert!(v.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn branch_free_demotion_matches_reference_rounding() {
        // Every high half-word against a spread of discarded low halves,
        // NaNs and infinities included: the mask-select demotion must
        // agree bit for bit with the branchy reference.
        for hi in 0..=u16::MAX {
            for lo in [0u16, 1, 0x7fff, 0x8000, 0x8001, 0xffff] {
                let bits = ((hi as u32) << 16) | lo as u32;
                let v = f32::from_bits(bits);
                let reference = if v.is_nan() {
                    ((bits >> 16) as u16) | 0x0040
                } else {
                    let lsb = (bits >> 16) & 1;
                    (bits.wrapping_add(0x0000_7fff + lsb) >> 16) as u16
                };
                assert_eq!(Bf16::from_f32(v).to_bits(), reference, "bits={bits:#010x}");
            }
        }
    }

    #[test]
    fn quantize_slice_matches_scalar_round_trip_across_chunk_remainders() {
        for n in [0usize, 1, 7, 8, 9, 17, 64] {
            let mut v: Vec<f32> = (0..n).map(|i| (i as f32).exp() * 1.001).collect();
            if n > 2 {
                v[1] = f32::NAN;
                v[2] = f32::INFINITY;
            }
            let reference: Vec<u32> = v.iter().map(|&x| Bf16::round_trip(x).to_bits()).collect();
            Bf16::quantize_slice(&mut v);
            let got: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, reference, "n={n}");
        }
    }

    #[test]
    fn arithmetic_goes_through_f32() {
        let a = Bf16::from_f32(1.5);
        let b = Bf16::from_f32(2.0);
        assert_eq!((a + b).to_f32(), 3.5);
        assert_eq!((a * b).to_f32(), 3.0);
        assert_eq!((a - b).to_f32(), -0.5);
        assert_eq!((a / b).to_f32(), 0.75);
        assert_eq!((-a).to_f32(), -1.5);
    }
}
