//! Software bfloat16.
//!
//! TPUs natively compute in bfloat16 (Wang & Kanwar 2019); the paper uses it
//! for activations and gradient all-reduce payloads (§3.3, §4.1, §4.3) to
//! halve communication bytes. This module implements the format in software:
//! the top 16 bits of an IEEE-754 `f32` with round-to-nearest-even.

use std::fmt;

/// A 16-bit brain floating point number.
///
/// `Bf16` keeps the `f32` exponent range (8 bits) but only 7 mantissa bits.
/// Conversion from `f32` rounds to nearest, ties to even, matching TPU
/// hardware behaviour.
///
/// ```
/// use multipod_tensor::Bf16;
///
/// let x = Bf16::from_f32(1.0 + 1.0 / 256.0);
/// // 1 + 2^-8 is exactly halfway between two bf16 values; ties go to even,
/// // which here is 1.0.
/// assert_eq!(x.to_f32(), 1.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3f80);
    /// The machine epsilon of the format (2⁻⁷).
    pub const EPSILON: f32 = 1.0 / 128.0;

    /// Converts an `f32` to `Bf16` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Bf16 {
        let bits = value.to_bits();
        if value.is_nan() {
            // Preserve NaN; force a quiet NaN payload that survives truncation.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the 16 discarded bits.
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7fff + lsb);
        let _ = round_bit;
        Bf16((rounded >> 16) as u16)
    }

    /// Converts back to `f32` (exact; bf16 values are a subset of f32).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Builds a `Bf16` from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// Returns `true` when the value is NaN.
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }

    /// Rounds an `f32` through bf16 precision and back.
    ///
    /// This is the operation applied to every element of a gradient buffer
    /// when the all-reduce payload is demoted to bf16.
    pub fn round_trip(value: f32) -> f32 {
        Bf16::from_f32(value).to_f32()
    }

    /// Applies [`Bf16::round_trip`] to every element of a slice in place.
    pub fn quantize_slice(values: &mut [f32]) {
        for v in values.iter_mut() {
            *v = Bf16::round_trip(*v);
        }
    }
}

impl From<f32> for Bf16 {
    fn from(value: f32) -> Bf16 {
        Bf16::from_f32(value)
    }
}

impl From<Bf16> for f32 {
    fn from(value: Bf16) -> f32 {
        value.to_f32()
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl std::ops::Add for Bf16 {
    type Output = Bf16;
    fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl std::ops::Sub for Bf16 {
    type Output = Bf16;
    fn sub(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl std::ops::Mul for Bf16 {
    type Output = Bf16;
    fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl std::ops::Div for Bf16 {
    type Output = Bf16;
    fn div(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl std::ops::Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16::from_f32(-self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_round_trip_exactly() {
        assert_eq!(Bf16::from_f32(0.0).to_f32(), 0.0);
        assert_eq!(Bf16::from_f32(1.0).to_f32(), 1.0);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
    }

    #[test]
    fn negative_values_keep_sign() {
        assert_eq!(Bf16::from_f32(-2.5).to_f32(), -2.5);
        assert!(Bf16::from_f32(-1e-20).to_f32() <= 0.0);
    }

    #[test]
    fn rounds_to_nearest() {
        // 1.0 + 2^-7 is representable; 1.0 + 2^-9 rounds down to 1.0,
        // 1.0 + 3*2^-9 rounds up to 1.0 + 2^-7.
        assert_eq!(Bf16::round_trip(1.0 + 1.0 / 128.0), 1.0 + 1.0 / 128.0);
        assert_eq!(Bf16::round_trip(1.0 + 1.0 / 512.0), 1.0);
        assert_eq!(Bf16::round_trip(1.0 + 3.0 / 512.0), 1.0 + 1.0 / 128.0);
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2^-8 is exactly between 1.0 (mantissa 0, even) and 1 + 2^-7.
        assert_eq!(Bf16::round_trip(1.0 + 1.0 / 256.0), 1.0);
        // 1 + 3*2^-8 is between 1+2^-7 (odd mantissa) and 1+2^-6 (even).
        assert_eq!(Bf16::round_trip(1.0 + 3.0 / 256.0), 1.0 + 1.0 / 64.0);
    }

    #[test]
    fn nan_and_infinity_survive() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
    }

    #[test]
    fn large_values_do_not_overflow_prematurely() {
        // bf16 keeps the full f32 exponent range: values near f32::MAX stay
        // finite (within bf16 relative precision) instead of overflowing.
        let r = Bf16::round_trip(3.0e38);
        assert!(r.is_finite());
        assert!(((r - 3.0e38) / 3.0e38).abs() <= Bf16::EPSILON / 2.0);
        assert!(Bf16::round_trip(1e38).is_finite());
    }

    #[test]
    fn relative_error_is_bounded_by_epsilon() {
        for &x in &[1.0f32, 3.25, 1234.5, 1e-6, 7.7e20] {
            let r = Bf16::round_trip(x);
            assert!(((r - x) / x).abs() <= Bf16::EPSILON / 2.0 + 1e-9, "x={x}");
        }
    }

    #[test]
    fn quantize_slice_quantizes_every_element() {
        let mut v = vec![1.0f32 + 1.0 / 512.0; 8];
        Bf16::quantize_slice(&mut v);
        assert!(v.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn arithmetic_goes_through_f32() {
        let a = Bf16::from_f32(1.5);
        let b = Bf16::from_f32(2.0);
        assert_eq!((a + b).to_f32(), 3.5);
        assert_eq!((a * b).to_f32(), 3.0);
        assert_eq!((a - b).to_f32(), -0.5);
        assert_eq!((a / b).to_f32(), 0.75);
        assert_eq!((-a).to_f32(), -1.5);
    }
}
