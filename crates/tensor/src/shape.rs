//! Tensor shapes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The extents of a tensor, one entry per dimension.
///
/// Rank-0 (scalar) shapes are allowed and have one element.
///
/// ```
/// use multipod_tensor::Shape;
///
/// let s = Shape::of(&[4, 8, 3]);
/// assert_eq!(s.len(), 96);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Builds a shape from a slice of extents.
    pub fn of(dims: &[usize]) -> Shape {
        Shape(dims.to_vec())
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Shape {
        Shape(Vec::new())
    }

    /// A rank-1 shape of the given length.
    pub fn vector(len: usize) -> Shape {
        Shape(vec![len])
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of one dimension.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-index into a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0usize;
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} (dim {d})");
            off = off * d + i;
        }
        off
    }

    /// Returns a copy with `axis` replaced by `extent`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn with_dim(&self, axis: usize, extent: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[axis] = extent;
        Shape(dims)
    }

    /// Splits `axis` into `parts` equal chunks, returning the chunk shape.
    ///
    /// Returns `None` when the extent is not divisible by `parts`.
    pub fn split_axis(&self, axis: usize, parts: usize) -> Option<Shape> {
        if axis >= self.rank() || parts == 0 || !self.0[axis].is_multiple_of(parts) {
            return None;
        }
        Some(self.with_dim(axis, self.0[axis] / parts))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Shape {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Shape {
        Shape(dims.to_vec())
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::of(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::of(&[7]).len(), 7);
        assert_eq!(Shape::of(&[5, 0, 2]).len(), 0);
        assert!(Shape::of(&[5, 0, 2]).is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::of(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::of(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::of(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[1, 0, 2]), 14);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_panics_out_of_bounds() {
        Shape::of(&[2, 2]).offset(&[0, 2]);
    }

    #[test]
    fn split_axis_divides_evenly_or_fails() {
        let s = Shape::of(&[8, 6]);
        assert_eq!(s.split_axis(0, 4), Some(Shape::of(&[2, 6])));
        assert_eq!(s.split_axis(1, 3), Some(Shape::of(&[8, 2])));
        assert_eq!(s.split_axis(1, 4), None);
        assert_eq!(s.split_axis(2, 2), None);
        assert_eq!(s.split_axis(0, 0), None);
    }

    #[test]
    fn display_uses_times_sign() {
        assert_eq!(Shape::of(&[2, 3]).to_string(), "[2×3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
