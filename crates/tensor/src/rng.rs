//! Deterministic tensor initialization.
//!
//! Every simulated experiment must be reproducible from a seed; this thin
//! wrapper around a small PRNG produces model weights, gradients and
//! synthetic datasets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Shape, Tensor};

/// A seeded generator for tensors.
///
/// ```
/// use multipod_tensor::{Shape, TensorRng};
///
/// let mut rng = TensorRng::seed(7);
/// let a = rng.uniform(Shape::of(&[8]), -1.0, 1.0);
/// let b = TensorRng::seed(7).uniform(Shape::of(&[8]), -1.0, 1.0);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    rng: SmallRng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> TensorRng {
        TensorRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A tensor with elements uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, shape: Shape, lo: f32, hi: f32) -> Tensor {
        assert!(lo < hi, "uniform requires lo < hi");
        let len = shape.len();
        let data = (0..len).map(|_| self.rng.gen_range(lo..hi)).collect();
        Tensor::new(shape, data)
    }

    /// A tensor with approximately standard-normal elements
    /// (12-uniform-sum approximation; adequate for synthetic workloads).
    pub fn normal(&mut self, shape: Shape, mean: f32, std: f32) -> Tensor {
        let len = shape.len();
        let data = (0..len)
            .map(|_| {
                let s: f32 = (0..12).map(|_| self.rng.gen_range(0.0f32..1.0)).sum();
                mean + std * (s - 6.0)
            })
            .collect();
        Tensor::new(shape, data)
    }

    /// A single uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f32 {
        self.rng.gen_range(0.0..1.0)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TensorRng::seed(42);
        let mut b = TensorRng::seed(42);
        assert_eq!(
            a.uniform(Shape::of(&[16]), 0.0, 1.0),
            b.uniform(Shape::of(&[16]), 0.0, 1.0)
        );
        assert_eq!(a.index(100), b.index(100));
    }

    #[test]
    fn different_seeds_differ() {
        let a = TensorRng::seed(1).uniform(Shape::of(&[32]), 0.0, 1.0);
        let b = TensorRng::seed(2).uniform(Shape::of(&[32]), 0.0, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = TensorRng::seed(3).uniform(Shape::of(&[1000]), -2.0, 5.0);
        assert!(t.data().iter().all(|&v| (-2.0..5.0).contains(&v)));
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let t = TensorRng::seed(4).normal(Shape::of(&[20000]), 1.0, 2.0);
        let mean = t.sum() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean={mean}");
        let var = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((var.sqrt() - 2.0).abs() < 0.2, "std={}", var.sqrt());
    }
}
