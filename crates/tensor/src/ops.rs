//! Elementwise and linear-algebra kernels on [`Tensor`].
//!
//! These back the numerically real parts of the reproduction: optimizer
//! steps (LAMB/LARS need norms and axpy), collective reductions, partial
//! matmuls in the model-parallel forward pass, and evaluation metrics.

use crate::{kernels, Shape, Tensor, TensorError};

impl Tensor {
    /// Elementwise sum, consuming neither operand.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// In-place `self += alpha * rhs` (BLAS axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<(), TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape().clone(),
                rhs: rhs.shape().clone(),
            });
        }
        kernels::axpy(self.data_mut(), alpha, rhs.data());
        Ok(())
    }

    /// Returns `self * alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let mut data = Vec::new();
        kernels::scale_into(&mut data, self.data(), alpha);
        Tensor::new(self.shape().clone(), data)
    }

    /// Applies a function to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data().iter().map(|&v| f(v)).collect();
        Tensor::new(self.shape().clone(), data)
    }

    /// Sum of all elements (chunked lane accumulators; deterministic, may
    /// differ from a sequential fold by rounding ulps).
    pub fn sum(&self) -> f32 {
        kernels::sum(self.data())
    }

    /// Euclidean (L2) norm of the flattened tensor.
    ///
    /// LARS and LAMB use per-layer weight and update norms for their trust
    /// ratios. Accumulated in f64 lane accumulators with a fixed fold
    /// order.
    pub fn norm2(&self) -> f32 {
        kernels::sum_squares(self.data()).sqrt() as f32
    }

    /// Dot product of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32, TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.shape().clone(),
                rhs: rhs.shape().clone(),
            });
        }
        Ok(kernels::dot(self.data(), rhs.data()) as f32)
    }

    /// Rank-2 matrix multiplication.
    ///
    /// Model-parallel layers compute *partial* matmuls on weight shards and
    /// then all-reduce (§3.1); tests use this kernel as the ground truth the
    /// sharded computation must reproduce.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `self` is `[m×k]`
    /// and `rhs` is `[k×n]` (non-rank-2 operands or disagreeing inner
    /// dimensions).
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2
            || rhs.shape().rank() != 2
            || self.shape().dim(1) != rhs.shape().dim(0)
        {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape().clone(),
                rhs: rhs.shape().clone(),
            });
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let n = rhs.shape().dim(1);
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = rhs.data();
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                // Row-times-scalar accumulation is exactly the chunked
                // axpy kernel (bit-exact under chunking).
                kernels::axpy(&mut out[i * n..(i + 1) * n], aip, &b[p * n..(p + 1) * n]);
            }
        }
        Ok(Tensor::new(Shape::of(&[m, n]), out))
    }

    /// Sums a list of same-shape tensors; the scalar reference that every
    /// all-reduce implementation is tested against.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] on an empty list and
    /// [`TensorError::ShapeMismatch`] when shapes disagree.
    pub fn sum_all(tensors: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = tensors
            .first()
            .ok_or(TensorError::EmptyInput { op: "sum_all" })?;
        let mut acc = first.clone();
        for t in &tensors[1..] {
            acc.axpy(1.0, t)?;
        }
        Ok(acc)
    }

    /// Maximum absolute difference between two tensors.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn max_abs_diff(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.shape(), rhs.shape(), "max_abs_diff shape mismatch");
        self.data()
            .iter()
            .zip(rhs.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32 + Copy,
    ) -> Result<Tensor, TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape().clone(),
                rhs: rhs.shape().clone(),
            });
        }
        let mut data = Vec::new();
        kernels::zip_into(&mut data, self.data(), rhs.data(), f);
        Ok(Tensor::new(self.shape().clone(), data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops_work() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-3.0, -3.0, -3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn elementwise_ops_reject_mismatch() {
        let a = Tensor::from_slice(&[1.0]);
        let b = Tensor::from_slice(&[1.0, 2.0]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 2.5]);
    }

    #[test]
    fn norms_and_dot() {
        let a = Tensor::from_slice(&[3.0, 4.0]);
        assert!((a.norm2() - 5.0).abs() < 1e-6);
        assert_eq!(a.dot(&a).unwrap(), 25.0);
        assert_eq!(a.sum(), 7.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::new(Shape::of(&[2, 3]), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::new(Shape::of(&[3, 2]), vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_identity() {
        let a = Tensor::new(Shape::of(&[2, 2]), vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::new(Shape::of(&[2, 2]), vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_shapes_as_typed_errors() {
        let a = Tensor::zeros(Shape::of(&[2, 3]));
        let b = Tensor::zeros(Shape::of(&[2, 2]));
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
        let flat = Tensor::zeros(Shape::of(&[4]));
        assert!(matches!(
            flat.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
        assert!(matches!(
            b.matmul(&flat),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn sum_all_is_associative_reference() {
        let ts: Vec<Tensor> = (0..5)
            .map(|i| Tensor::fill(Shape::of(&[4]), i as f32))
            .collect();
        let s = Tensor::sum_all(&ts).unwrap();
        assert_eq!(s.data(), &[10.0; 4]);
    }

    #[test]
    fn sum_all_reports_empty_and_mismatched_inputs() {
        assert!(matches!(
            Tensor::sum_all(&[]),
            Err(TensorError::EmptyInput { op: "sum_all" })
        ));
        let ts = [
            Tensor::zeros(Shape::of(&[2])),
            Tensor::zeros(Shape::of(&[3])),
        ];
        assert!(matches!(
            Tensor::sum_all(&ts),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn map_and_scale() {
        let a = Tensor::from_slice(&[1.0, -2.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
    }

    #[test]
    fn max_abs_diff_finds_worst_element() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[1.0, 2.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
