//! Error type for tensor operations.

use std::error::Error;
use std::fmt;

use crate::Shape;

/// Error returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Shape,
        /// Shape of the right-hand operand.
        rhs: Shape,
    },
    /// An axis argument was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A dimension was not divisible by the requested number of parts.
    NotDivisible {
        /// The dimension size.
        dim: usize,
        /// The requested number of parts.
        parts: usize,
    },
    /// An operation that needs at least one tensor received none.
    EmptyInput {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs} vs {rhs}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::NotDivisible { dim, parts } => {
                write!(f, "dimension {dim} not divisible into {parts} parts")
            }
            TensorError::EmptyInput { op } => {
                write!(f, "{op} requires at least one input tensor")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: Shape::of(&[2, 3]),
            rhs: Shape::of(&[4, 5]),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TensorError>();
    }
}
