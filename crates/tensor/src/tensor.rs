//! The dense tensor type.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{Bf16, Shape, TensorError};

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is the numeric currency of the workspace: collective payloads,
/// optimizer state and evaluation buffers are all `Tensor`s. Storage is a
/// flat `Arc<Vec<f32>>` with copy-on-write semantics.
///
/// # Copy-on-write invariants
///
/// * [`Tensor::clone`] is O(1): it bumps the `Arc` refcount and shares the
///   underlying buffer with the original. Ring collectives exploit this to
///   move chunks by handle instead of copying payload bytes on every hop.
/// * Shared storage is never mutated. [`Tensor::data_mut`] and
///   [`Tensor::at_mut`] go through [`Arc::make_mut`], which detaches
///   (deep-copies) the buffer first *iff* it is shared; a uniquely owned
///   tensor mutates in place with no copy. Holders of other handles can
///   therefore never observe a write through this one.
/// * Reads ([`Tensor::data`], [`Tensor::at`]) never copy or detach.
/// * [`Tensor::reshape`] only rewrites the shape; the buffer (and any
///   sharing) is preserved. [`Tensor::split`] and [`Tensor::concat`]
///   materialize fresh, uniquely owned buffers.
///
/// Numerics are unaffected: detaching copies bits verbatim, so CoW tensors
/// are bit-identical to the eagerly copied representation they replaced.
#[derive(Clone, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Tensor) -> bool {
        self.shape == other.shape
            && (Arc::ptr_eq(&self.data, &other.data) || self.data == other.data)
    }
}

impl Tensor {
    /// Creates a tensor from a shape and matching data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn new(shape: Shape, data: Vec<f32>) -> Tensor {
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: Shape) -> Tensor {
        let len = shape.len();
        Tensor::new(shape, vec![0.0; len])
    }

    /// A tensor filled with a constant.
    pub fn fill(shape: Shape, value: f32) -> Tensor {
        let len = shape.len();
        Tensor::new(shape, vec![value; len])
    }

    /// A rank-1 tensor from a slice.
    pub fn from_slice(values: &[f32]) -> Tensor {
        Tensor::new(Shape::vector(values.len()), values.to_vec())
    }

    /// A rank-0 tensor holding one value.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::new(Shape::scalar(), vec![value])
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat data. Never copies or detaches.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    ///
    /// Detaches (deep-copies) the buffer first when it is shared with other
    /// handles, so writes are never visible through another `Tensor`.
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the tensor and returns its flat storage, copying only if
    /// the buffer is shared with another handle.
    pub fn into_data(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Whether two tensors share the same underlying buffer (a
    /// copy-on-write alias). Diagnostic; numerics never depend on this.
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Element access by multi-index.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds (see [`Shape::offset`]).
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element access by multi-index.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut Arc::make_mut(&mut self.data)[off]
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if element counts differ.
    pub fn reshape(mut self, shape: Shape) -> Result<Tensor, TensorError> {
        if shape.len() != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape",
                lhs: self.shape.clone(),
                rhs: shape,
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Splits the tensor into `parts` equal chunks along `axis`, cloning
    /// the data of each chunk.
    ///
    /// This is the data movement behind both SPMD sharding and
    /// reduce-scatter sharding.
    ///
    /// # Errors
    ///
    /// Returns an error when `axis` is out of range or the extent is not
    /// divisible by `parts`.
    pub fn split(&self, axis: usize, parts: usize) -> Result<Vec<Tensor>, TensorError> {
        if axis >= self.shape.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.shape.rank(),
            });
        }
        let extent = self.shape.dim(axis);
        if parts == 0 || !extent.is_multiple_of(parts) {
            return Err(TensorError::NotDivisible { dim: extent, parts });
        }
        let chunk_shape = self.shape.with_dim(axis, extent / parts);
        let outer: usize = self.shape.dims()[..axis].iter().product();
        let inner: usize = self.shape.dims()[axis + 1..].iter().product();
        let chunk_extent = extent / parts;
        let mut out = Vec::with_capacity(parts);
        for p in 0..parts {
            let mut data = Vec::with_capacity(chunk_shape.len());
            for o in 0..outer {
                let base = (o * extent + p * chunk_extent) * inner;
                data.extend_from_slice(&self.data[base..base + chunk_extent * inner]);
            }
            out.push(Tensor::new(chunk_shape.clone(), data));
        }
        Ok(out)
    }

    /// Concatenates tensors along `axis`; the inverse of [`Tensor::split`].
    ///
    /// # Errors
    ///
    /// Returns an error when the list is empty, shapes disagree off-axis,
    /// or `axis` is out of range.
    pub fn concat(parts: &[Tensor], axis: usize) -> Result<Tensor, TensorError> {
        let first = parts
            .first()
            .ok_or(TensorError::NotDivisible { dim: 0, parts: 0 })?;
        let rank = first.shape.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let mut total_axis = 0usize;
        for p in parts {
            if p.shape.rank() != rank
                || p.shape
                    .dims()
                    .iter()
                    .enumerate()
                    .any(|(i, &d)| i != axis && d != first.shape.dim(i))
            {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.shape.clone(),
                    rhs: p.shape.clone(),
                });
            }
            total_axis += p.shape.dim(axis);
        }
        let out_shape = first.shape.with_dim(axis, total_axis);
        let outer: usize = first.shape.dims()[..axis].iter().product();
        let inner: usize = first.shape.dims()[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(out_shape.len());
        for o in 0..outer {
            for p in parts {
                let e = p.shape.dim(axis);
                let base = o * e * inner;
                data.extend_from_slice(&p.data[base..base + e * inner]);
            }
        }
        Ok(Tensor::new(out_shape, data))
    }

    /// Quantizes every element through bf16 and back (lossy).
    ///
    /// Models demoting a gradient buffer to bfloat16 for the all-reduce
    /// payload (§3.3).
    pub fn to_bf16_precision(&self) -> Tensor {
        let mut data = (*self.data).clone();
        Bf16::quantize_slice(&mut data);
        Tensor::new(self.shape.clone(), data)
    }

    /// Payload size in bytes at the given element width.
    pub fn size_bytes(&self, bytes_per_element: usize) -> usize {
        self.len() * bytes_per_element
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 8 {
            write!(f, "Tensor({} {:?})", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor({} [{} elements, first={}])",
                self.shape,
                self.len(),
                self.data[0]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: &[usize]) -> Tensor {
        let s = Shape::of(shape);
        let data = (0..s.len()).map(|i| i as f32).collect();
        Tensor::new(s, data)
    }

    #[test]
    fn constructors_agree_on_len() {
        assert_eq!(Tensor::zeros(Shape::of(&[3, 4])).len(), 12);
        assert_eq!(Tensor::fill(Shape::of(&[2]), 7.0).data(), &[7.0, 7.0]);
        assert_eq!(Tensor::scalar(5.0).len(), 1);
        assert_eq!(Tensor::from_slice(&[1.0, 2.0]).shape().dims(), &[2]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn new_rejects_wrong_length() {
        Tensor::new(Shape::of(&[2, 2]), vec![0.0; 3]);
    }

    #[test]
    fn indexing_is_row_major() {
        let t = iota(&[2, 3]);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[0, 2]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
    }

    #[test]
    fn split_axis0_gives_contiguous_chunks() {
        let t = iota(&[4, 2]);
        let parts = t.split(0, 2).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(parts[1].data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn split_axis1_interleaves() {
        let t = iota(&[2, 4]);
        let parts = t.split(1, 2).unwrap();
        assert_eq!(parts[0].data(), &[0.0, 1.0, 4.0, 5.0]);
        assert_eq!(parts[1].data(), &[2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn concat_inverts_split_on_every_axis() {
        let t = iota(&[4, 6, 2]);
        for axis in 0..3 {
            let parts = t.split(axis, 2).unwrap();
            let back = Tensor::concat(&parts, axis).unwrap();
            assert_eq!(back, t, "axis {axis}");
        }
    }

    #[test]
    fn split_errors_are_precise() {
        let t = iota(&[4, 3]);
        assert!(matches!(
            t.split(5, 2),
            Err(TensorError::AxisOutOfRange { axis: 5, rank: 2 })
        ));
        assert!(matches!(
            t.split(1, 2),
            Err(TensorError::NotDivisible { dim: 3, parts: 2 })
        ));
    }

    #[test]
    fn concat_rejects_mismatched_shapes() {
        let a = iota(&[2, 2]);
        let b = iota(&[3, 3]);
        assert!(Tensor::concat(&[a, b], 0).is_err());
        assert!(Tensor::concat(&[], 0).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = iota(&[2, 6]);
        let r = t.clone().reshape(Shape::of(&[3, 4])).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(Shape::of(&[5])).is_err());
    }

    #[test]
    fn bf16_precision_is_lossy_but_close() {
        let t = Tensor::from_slice(&[1.0 + 1.0 / 512.0, 2.0, -3.25]);
        let q = t.to_bf16_precision();
        assert_eq!(q.data()[0], 1.0);
        assert_eq!(q.data()[1], 2.0);
        assert_eq!(q.data()[2], -3.25);
    }

    #[test]
    fn size_bytes_scales_with_width() {
        let t = Tensor::zeros(Shape::of(&[100]));
        assert_eq!(t.size_bytes(4), 400);
        assert_eq!(t.size_bytes(2), 200);
    }

    #[test]
    fn clone_shares_storage() {
        let t = iota(&[4, 4]);
        let c = t.clone();
        assert!(t.shares_storage(&c));
        assert_eq!(t, c);
        // Reshape keeps the buffer shared.
        let r = c.clone().reshape(Shape::of(&[16])).unwrap();
        assert!(r.shares_storage(&t));
    }

    #[test]
    fn mutation_detaches_shared_storage() {
        let t = iota(&[4]);
        let mut c = t.clone();
        c.data_mut()[0] = 99.0;
        assert!(!t.shares_storage(&c));
        assert_eq!(t.data()[0], 0.0, "original must not see the write");
        assert_eq!(c.data()[0], 99.0);
        let mut d = t.clone();
        *d.at_mut(&[1]) = -1.0;
        assert_eq!(t.data()[1], 1.0);
        assert_eq!(d.data()[1], -1.0);
    }

    #[test]
    fn unique_tensor_mutates_without_copy() {
        let mut t = iota(&[4]);
        let before = t.data().as_ptr();
        t.data_mut()[2] = 7.0;
        assert_eq!(t.data().as_ptr(), before, "unshared mutation is in place");
    }

    #[test]
    fn into_data_avoids_copy_when_unique() {
        let t = iota(&[3]);
        let ptr = t.data().as_ptr();
        let v = t.into_data();
        assert_eq!(v.as_ptr(), ptr);
        // Shared: falls back to a copy, original unaffected.
        let t = iota(&[3]);
        let c = t.clone();
        let v = c.into_data();
        assert_eq!(v, t.data());
    }
}
