//! The deterministic open-loop query-stream generator.
//!
//! Serving experiments are open-loop: requests arrive on their own
//! schedule regardless of how fast the replica drains them, which is
//! what exposes queueing tails. The generator draws inter-arrival gaps,
//! per-request sample counts and skewed embedding keys from one seeded
//! generator, so a [`QueryStreamConfig`] *is* the request log — the same
//! config always replays byte-for-byte the same stream.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use multipod_simnet::SimTime;

use crate::ServeError;

/// Parameters of the deterministic query stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryStreamConfig {
    /// Requests to generate.
    pub queries: u32,
    /// Seed for the stream.
    pub seed: u64,
    /// Mean inter-arrival gap in simulated seconds (exponential).
    pub mean_interarrival_seconds: f64,
    /// Mean samples per request (shifted-exponential, ≥ 1).
    pub mean_samples: f64,
    /// Hard cap on samples per request.
    pub max_samples: usize,
    /// Embedding tables each sample indexes.
    pub tables: usize,
    /// Rows per table.
    pub rows_per_table: usize,
    /// Key skew exponent: row = rows · u^skew for uniform u, so
    /// `skew > 1` concentrates traffic on low row ids (the hot head a
    /// serving cache exploits); `skew = 1` is uniform.
    pub skew: f64,
}

impl QueryStreamConfig {
    /// A canned DLRM-shaped stream: Criteo's 26 sparse features over
    /// moderately hot keys, a few thousand QPS offered.
    pub fn dlrm(queries: u32, seed: u64) -> QueryStreamConfig {
        QueryStreamConfig {
            queries,
            seed,
            mean_interarrival_seconds: 2.0e-4,
            mean_samples: 4.0,
            max_samples: 64,
            tables: 26,
            rows_per_table: 100_000,
            skew: 3.0,
        }
    }
}

/// One inference request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id, in arrival order.
    pub id: u64,
    /// When the request arrives.
    pub arrival: SimTime,
    /// `samples[i][t]` is sample `i`'s row in table `t`.
    pub samples: Vec<Vec<usize>>,
}

/// Generates the request log for `config`. Deterministic: the same
/// config always yields the same stream.
///
/// # Errors
///
/// [`ServeError::InvalidConfig`] when a parameter is non-positive,
/// non-finite, or inconsistent (e.g. `mean_samples` above
/// `max_samples`).
pub fn query_stream(config: &QueryStreamConfig) -> Result<Vec<Request>, ServeError> {
    if config.queries == 0 {
        return Err(ServeError::InvalidConfig {
            field: "queries",
            value: 0.0,
        });
    }
    let gap = config.mean_interarrival_seconds;
    if !(gap.is_finite() && gap > 0.0) {
        return Err(ServeError::InvalidConfig {
            field: "mean_interarrival_seconds",
            value: gap,
        });
    }
    if !(config.mean_samples.is_finite() && config.mean_samples >= 1.0) {
        return Err(ServeError::InvalidConfig {
            field: "mean_samples",
            value: config.mean_samples,
        });
    }
    if config.max_samples == 0 || (config.max_samples as f64) < config.mean_samples {
        return Err(ServeError::InvalidConfig {
            field: "max_samples",
            value: config.max_samples as f64,
        });
    }
    if config.tables == 0 {
        return Err(ServeError::InvalidConfig {
            field: "tables",
            value: 0.0,
        });
    }
    if config.rows_per_table == 0 {
        return Err(ServeError::InvalidConfig {
            field: "rows_per_table",
            value: 0.0,
        });
    }
    if !(config.skew.is_finite() && config.skew > 0.0) {
        return Err(ServeError::InvalidConfig {
            field: "skew",
            value: config.skew,
        });
    }

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut at = 0.0f64;
    let mut requests = Vec::with_capacity(config.queries as usize);
    for id in 0..u64::from(config.queries) {
        at += -gap * (1.0 - rng.gen_range(0.0..1.0f64)).ln();
        // Samples per request: 1 + Exp(mean - 1), truncated at the cap.
        let extra = -(config.mean_samples - 1.0) * (1.0 - rng.gen_range(0.0..1.0f64)).ln();
        let n = (1 + extra.floor() as usize).min(config.max_samples);
        let samples = (0..n)
            .map(|_| {
                (0..config.tables)
                    .map(|_| {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        ((config.rows_per_table as f64 * u.powf(config.skew)) as usize)
                            .min(config.rows_per_table - 1)
                    })
                    .collect()
            })
            .collect();
        requests.push(Request {
            id,
            arrival: SimTime::from_seconds(at),
            samples,
        });
    }
    Ok(requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let config = QueryStreamConfig::dlrm(300, 7);
        assert_eq!(
            query_stream(&config).unwrap(),
            query_stream(&config).unwrap()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = query_stream(&QueryStreamConfig::dlrm(100, 1)).unwrap();
        let b = query_stream(&QueryStreamConfig::dlrm(100, 2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_monotone_and_samples_bounded() {
        let config = QueryStreamConfig::dlrm(500, 42);
        let requests = query_stream(&config).unwrap();
        assert_eq!(requests.len(), 500);
        let mut last = SimTime::ZERO;
        for r in &requests {
            assert!(r.arrival >= last);
            last = r.arrival;
            assert!(!r.samples.is_empty() && r.samples.len() <= config.max_samples);
            for s in &r.samples {
                assert_eq!(s.len(), config.tables);
                assert!(s.iter().all(|&row| row < config.rows_per_table));
            }
        }
    }

    #[test]
    fn skew_concentrates_keys_on_the_head() {
        let mut hot = QueryStreamConfig::dlrm(400, 9);
        hot.skew = 4.0;
        let mut uniform = hot.clone();
        uniform.skew = 1.0;
        let head_share = |requests: &[Request]| {
            let head = hot.rows_per_table / 10;
            let (mut in_head, mut total) = (0u64, 0u64);
            for r in requests {
                for s in &r.samples {
                    for &row in s {
                        total += 1;
                        if row < head {
                            in_head += 1;
                        }
                    }
                }
            }
            in_head as f64 / total as f64
        };
        let hot_share = head_share(&query_stream(&hot).unwrap());
        let uni_share = head_share(&query_stream(&uniform).unwrap());
        assert!(
            hot_share > 2.0 * uni_share,
            "skewed head share {hot_share:.3} vs uniform {uni_share:.3}"
        );
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let ok = QueryStreamConfig::dlrm(10, 0);
        for (mutate, field) in [
            (
                Box::new(|c: &mut QueryStreamConfig| c.queries = 0)
                    as Box<dyn Fn(&mut QueryStreamConfig)>,
                "queries",
            ),
            (
                Box::new(|c: &mut QueryStreamConfig| c.mean_interarrival_seconds = 0.0),
                "mean_interarrival_seconds",
            ),
            (
                Box::new(|c: &mut QueryStreamConfig| c.mean_samples = 0.5),
                "mean_samples",
            ),
            (
                Box::new(|c: &mut QueryStreamConfig| c.max_samples = 2),
                "max_samples",
            ),
            (Box::new(|c: &mut QueryStreamConfig| c.tables = 0), "tables"),
            (
                Box::new(|c: &mut QueryStreamConfig| c.rows_per_table = 0),
                "rows_per_table",
            ),
            (
                Box::new(|c: &mut QueryStreamConfig| c.skew = f64::NAN),
                "skew",
            ),
        ] {
            let mut bad = ok.clone();
            mutate(&mut bad);
            match query_stream(&bad) {
                Err(ServeError::InvalidConfig { field: got, .. }) => assert_eq!(got, field),
                other => panic!("expected InvalidConfig for {field}, got {other:?}"),
            }
        }
    }
}
