//! Typed serving errors.

use std::error::Error;
use std::fmt;

use multipod_core::StepError;
use multipod_embedding::EmbeddingError;
use multipod_models::ModelError;
use multipod_sched::SchedError;
use multipod_simnet::NetworkError;
use multipod_taskgraph::TaskGraphError;

/// A serving simulation failed.
#[derive(Debug)]
pub enum ServeError {
    /// A stream/batching/slice parameter was out of range.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A single request carries more samples than one batch may hold —
    /// it could never be dispatched.
    RequestExceedsBatchCap {
        /// The offending request id.
        request: u64,
        /// Samples the request carries.
        samples: usize,
        /// The batch cap.
        cap: usize,
    },
    /// The embedding layer rejected a lookup.
    Embedding(EmbeddingError),
    /// The machine model rejected a compute-time query.
    Model(ModelError),
    /// The step-time model rejected the learner's slice.
    Step(StepError),
    /// The serving task graph could not be built.
    TaskGraph(TaskGraphError),
    /// A transfer could not be routed.
    Network(NetworkError),
    /// The co-scheduled training campaign failed.
    Sched(SchedError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig { field, value } => {
                write!(f, "serving config field '{field}' is out of range: {value}")
            }
            ServeError::RequestExceedsBatchCap {
                request,
                samples,
                cap,
            } => write!(
                f,
                "request {request} carries {samples} samples, above the batch cap {cap}"
            ),
            ServeError::Embedding(e) => write!(f, "embedding lookup failed: {e}"),
            ServeError::Model(e) => write!(f, "machine model rejected the config: {e}"),
            ServeError::Step(e) => write!(f, "learner step model rejected the slice: {e}"),
            ServeError::TaskGraph(e) => write!(f, "serving task graph is invalid: {e}"),
            ServeError::Network(e) => write!(f, "serving transfer failed: {e}"),
            ServeError::Sched(e) => write!(f, "co-scheduled campaign failed: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Embedding(e) => Some(e),
            ServeError::Model(e) => Some(e),
            ServeError::Step(e) => Some(e),
            ServeError::TaskGraph(e) => Some(e),
            ServeError::Network(e) => Some(e),
            ServeError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EmbeddingError> for ServeError {
    fn from(e: EmbeddingError) -> ServeError {
        ServeError::Embedding(e)
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> ServeError {
        ServeError::Model(e)
    }
}

impl From<StepError> for ServeError {
    fn from(e: StepError) -> ServeError {
        ServeError::Step(e)
    }
}

impl From<TaskGraphError> for ServeError {
    fn from(e: TaskGraphError) -> ServeError {
        ServeError::TaskGraph(e)
    }
}

impl From<NetworkError> for ServeError {
    fn from(e: NetworkError) -> ServeError {
        ServeError::Network(e)
    }
}

impl From<SchedError> for ServeError {
    fn from(e: SchedError) -> ServeError {
        ServeError::Sched(e)
    }
}
