//! # multipod-serve — online inference serving on the mesh
//!
//! The paper multiplexes a multipod across thousands of *training* jobs;
//! this crate adds the other tenant class production pods actually
//! carry: latency-bound serving. Two workloads share the mesh with the
//! training campaign through [`multipod_sched`]'s long-lived service
//! reservations:
//!
//! * **DLRM query serving** ([`dlrm`]) — a deterministic open-loop
//!   query stream ([`stream`]) feeds a bounded-window batcher
//!   ([`batch`]); each batch runs sharded embedding lookups as a
//!   small-batch all-to-all over the simulated interconnect, with a
//!   per-host LRU embedding cache short-circuiting hot rows, then a
//!   dense MLP forward. Per-request latency decomposes exactly into
//!   batch-wait / queue / lookup / all-to-all / dense phases.
//! * **RL actor–learner** ([`rl`]) — Podracer-style co-location:
//!   inference actors issue latency-bound observation pushes against a
//!   learner running throughput-bound training steps on the head of the
//!   same slice, with periodic parameter broadcasts contending on the
//!   shared links.
//!
//! [`campaign`] ties both to the scheduler: the training stream packs
//! around the reservations, and the slices the scheduler actually
//! granted parameterize the serving runs. Everything is seeded and
//! event-ordered, so a full co-scheduled scenario replays byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod campaign;
pub mod dlrm;
mod error;
pub mod rl;
pub mod stream;

pub use batch::{assemble, Batch, BatchingConfig};
pub use campaign::{ServeCampaign, ServeCampaignConfig, ServeCampaignReport};
pub use dlrm::{DlrmServeConfig, DlrmServeReport, DlrmServer, PhaseMeans};
pub use error::ServeError;
pub use rl::{RlServeConfig, RlServeReport, RlServer};
pub use stream::{query_stream, QueryStreamConfig, Request};
