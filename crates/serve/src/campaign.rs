//! Co-scheduling serving and training on one pod.
//!
//! The paper's campaign multiplexes thousands of training jobs over a
//! multipod; here two long-lived serving reservations — a DLRM replica
//! and an RL actor–learner group — ride the same [`PodScheduler`] as
//! high-priority slices, and the training stream packs around them. The
//! campaign runs first; the slices the scheduler actually granted then
//! parameterize the serving simulations, so displacement (faults,
//! migrations) feeds straight into serving capacity.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use multipod_sched::{PodScheduler, SchedConfig, SchedReport, ServiceSpec};
use multipod_telemetry::Telemetry;
use multipod_topology::MultipodConfig;
use multipod_trace::TraceSink;

use crate::dlrm::{DlrmServeConfig, DlrmServeReport, DlrmServer};
use crate::rl::{RlServeConfig, RlServeReport, RlServer};
use crate::ServeError;

/// The full co-scheduled scenario: one training campaign plus two
/// serving reservations.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeCampaignConfig {
    /// The training campaign; `services` must name the two serving
    /// reservations (DLRM first, RL second).
    pub sched: SchedConfig,
    /// The DLRM replica. Its `slice` is overwritten with whatever shape
    /// the scheduler granted the first service.
    pub dlrm: DlrmServeConfig,
    /// The RL group. Its `slice` is overwritten with the second
    /// service's granted shape.
    pub rl: RlServeConfig,
}

impl ServeCampaignConfig {
    /// The canned co-scheduled scenario: the paper-scale training
    /// campaign with a 256-chip DLRM replica and a 128-chip RL group
    /// reserved out of the same mesh.
    pub fn demo(mesh: MultipodConfig, jobs: u32, seed: u64) -> ServeCampaignConfig {
        let mut sched = SchedConfig::demo(mesh, jobs, seed);
        sched.services = vec![
            ServiceSpec {
                name: "dlrm-serve".to_string(),
                chips: 256,
            },
            ServiceSpec {
                name: "rl-serve".to_string(),
                chips: 128,
            },
        ];
        ServeCampaignConfig {
            sched,
            // Placeholder slices; `run` substitutes the granted shapes.
            dlrm: DlrmServeConfig::demo(MultipodConfig::mesh(16, 16, false), 2000, seed),
            rl: RlServeConfig::demo(MultipodConfig::mesh(16, 8, false)),
        }
    }
}

/// What the co-scheduled scenario did.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeCampaignReport {
    /// The training campaign around the reservations.
    pub sched: SchedReport,
    /// The DLRM replica on its granted slice.
    pub dlrm: DlrmServeReport,
    /// The RL group on its granted slice.
    pub rl: RlServeReport,
}

/// Runs training and both serving workloads co-scheduled on one mesh.
pub struct ServeCampaign {
    config: ServeCampaignConfig,
    telemetry: Option<Arc<Telemetry>>,
    trace: Option<Arc<dyn TraceSink>>,
}

impl ServeCampaign {
    /// A co-scheduled scenario over `config`.
    pub fn new(config: ServeCampaignConfig) -> ServeCampaign {
        ServeCampaign {
            config,
            telemetry: None,
            trace: None,
        }
    }

    /// Attaches a telemetry registry, shared by scheduler and servers.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Attaches a trace sink, shared by scheduler and servers.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Runs the campaign, then each serving workload on the slice the
    /// scheduler granted it.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when `sched.services` does not hold
    /// exactly the two expected reservations or a granted slice came
    /// back empty; scheduler and serving errors pass through.
    pub fn run(&self) -> Result<ServeCampaignReport, ServeError> {
        if self.config.sched.services.len() != 2 {
            return Err(ServeError::InvalidConfig {
                field: "sched.services",
                value: self.config.sched.services.len() as f64,
            });
        }
        let mut scheduler = PodScheduler::new(self.config.sched.clone());
        if let Some(t) = &self.telemetry {
            scheduler.set_telemetry(t.clone());
        }
        if let Some(sink) = &self.trace {
            scheduler.set_trace_sink(sink.clone());
        }
        let sched_report = scheduler.run()?;

        let granted = |i: usize| -> Result<MultipodConfig, ServeError> {
            let (w, h) = sched_report.services[i].shape;
            if w == 0 || h == 0 {
                return Err(ServeError::InvalidConfig {
                    field: "sched.services.shape",
                    value: i as f64,
                });
            }
            Ok(MultipodConfig::mesh(w, h, false))
        };

        let mut dlrm_config = self.config.dlrm.clone();
        dlrm_config.slice = granted(0)?;
        let mut dlrm = DlrmServer::new(dlrm_config);
        if let Some(t) = &self.telemetry {
            dlrm.set_telemetry(t.clone());
        }
        if let Some(sink) = &self.trace {
            dlrm.set_trace_sink(sink.clone());
        }
        let dlrm_report = dlrm.run()?;

        let mut rl_config = self.config.rl.clone();
        rl_config.slice = granted(1)?;
        let mut rl = RlServer::new(rl_config);
        if let Some(t) = &self.telemetry {
            rl.set_telemetry(t.clone());
        }
        if let Some(sink) = &self.trace {
            rl.set_trace_sink(sink.clone());
        }
        let rl_report = rl.run()?;

        Ok(ServeCampaignReport {
            sched: sched_report,
            dlrm: dlrm_report,
            rl: rl_report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ServeCampaignConfig {
        let mut c = ServeCampaignConfig::demo(MultipodConfig::mesh(32, 32, false), 60, 11);
        c.dlrm.stream.queries = 300;
        c.dlrm.stream.tables = 8;
        c.dlrm.stream.rows_per_table = 8192;
        c.rl.learner_chips = 64;
        c.rl.learner_steps = 30;
        c.rl.actor_rounds = 20;
        c
    }

    #[test]
    fn training_packs_around_the_reservations() {
        let report = ServeCampaign::new(small()).run().expect("campaign");
        assert_eq!(report.sched.completed, 60);
        assert_eq!(report.sched.services.len(), 2);
        // Both reservations held their full grant to campaign end.
        assert_eq!(
            report.sched.services[0].shape.0 * report.sched.services[0].shape.1,
            256
        );
        assert_eq!(
            report.sched.services[1].shape.0 * report.sched.services[1].shape.1,
            128
        );
        assert!(report.dlrm.requests > 0);
        assert!(report.rl.rounds > 0);
    }

    #[test]
    fn co_scheduled_campaign_is_deterministic() {
        let run = || ServeCampaign::new(small()).run().expect("campaign");
        assert_eq!(run(), run());
    }

    #[test]
    fn missing_reservations_are_a_typed_error() {
        let mut c = small();
        c.sched.services.pop();
        assert!(matches!(
            ServeCampaign::new(c).run(),
            Err(ServeError::InvalidConfig {
                field: "sched.services",
                ..
            })
        ));
    }
}
