//! The DLRM online-serving path over the simulated mesh.
//!
//! Each dispatched batch pays three phases on the serving slice, modeled
//! as a released task graph over the deterministic list scheduler:
//!
//! 1. **lookup** (host): per-sample cache probes plus local HBM gathers
//!    for replicated/owned/cached rows;
//! 2. **all-to-all** (ICI): the small-batch exchange fetching remote
//!    partitioned rows that missed the per-host cache, priced on a
//!    slice-shaped network;
//! 3. **dense** (MXU): the interaction + top-MLP forward pass.
//!
//! Batches are pinned to their dispatch times with task *release* times,
//! so the schedule reproduces open-loop queueing: a late batch waits for
//! the host/ICI/MXU pipeline to drain, and per-request latency decomposes
//! exactly into batch-wait / queue / lookup / all-to-all / dense.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use multipod_embedding::{EmbeddingCache, EmbeddingSpec, Placement, ShardedEmbedding};
use multipod_models::{catalog, TpuV3};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_taskgraph::{Resource, TaskGraph, TaskKind};
use multipod_telemetry::{DistSummary, MetricId, Subsystem, Telemetry};
use multipod_topology::{Multipod, MultipodConfig};
use multipod_trace::TraceSink;

use crate::batch::{assemble, BatchingConfig};
use crate::stream::{query_stream, QueryStreamConfig};
use crate::ServeError;

/// Fixed host-side cost per batch lookup: probe the cache, build the
/// gather lists, launch the kernels.
const LOOKUP_OVERHEAD_SECONDS: f64 = 2.0e-5;

/// DLRM serving parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DlrmServeConfig {
    /// The serving slice (a rectangle carved out of the pod).
    pub slice: MultipodConfig,
    /// The query stream.
    pub stream: QueryStreamConfig,
    /// The batching policy.
    pub batching: BatchingConfig,
    /// Embedding dimension of every table.
    pub embedding_dim: usize,
    /// Per-host embedding-cache capacity in rows (0 disables caching).
    pub cache_rows_per_chip: usize,
    /// Replication budget handed to [`Placement::plan`], bytes per chip.
    pub replication_budget_bytes: u64,
    /// Seed for the table initialization.
    pub table_seed: u64,
}

impl DlrmServeConfig {
    /// A canned serving replica: the given slice, the canned DLRM stream
    /// and batching policy, warm 4096-row caches.
    pub fn demo(slice: MultipodConfig, queries: u32, seed: u64) -> DlrmServeConfig {
        DlrmServeConfig {
            slice,
            stream: QueryStreamConfig::dlrm(queries, seed),
            batching: BatchingConfig::demo(),
            embedding_dim: 32,
            cache_rows_per_chip: 4096,
            replication_budget_bytes: 1 << 20,
            table_seed: 99,
        }
    }
}

/// Mean seconds per phase across requests. The five phases sum to the
/// mean end-to-end latency exactly.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseMeans {
    /// Waiting for the batch to close (accumulation window).
    pub batch_wait: f64,
    /// Waiting for the host lookup stage to start after dispatch.
    pub queue: f64,
    /// Host cache probes + local gathers.
    pub lookup: f64,
    /// Remote-row all-to-all, including any stall for the ICI stage.
    pub all_to_all: f64,
    /// Dense forward, including any stall for the MXU stage.
    pub dense: f64,
}

/// What a serving run did.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DlrmServeReport {
    /// Requests served.
    pub requests: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean samples per batch.
    pub mean_batch_samples: f64,
    /// End-to-end request latency (arrival → dense finish), seconds.
    pub latency: DistSummary,
    /// Mean per-phase decomposition, seconds.
    pub phase_means: PhaseMeans,
    /// Embedding-cache hit rate over all remote-row accesses.
    pub cache_hit_rate: f64,
    /// Remote rows served from per-host caches.
    pub cache_hits: u64,
    /// Remote rows that crossed the mesh.
    pub remote_rows: u64,
    /// Completed requests per simulated second.
    pub achieved_qps: f64,
    /// When the last dense pass finished, seconds.
    pub makespan_seconds: f64,
}

/// The DLRM serving replica simulator.
pub struct DlrmServer {
    config: DlrmServeConfig,
    telemetry: Option<Arc<Telemetry>>,
    trace: Option<Arc<dyn TraceSink>>,
}

impl DlrmServer {
    /// A replica over `config`.
    pub fn new(config: DlrmServeConfig) -> DlrmServer {
        DlrmServer {
            config,
            telemetry: None,
            trace: None,
        }
    }

    /// Attaches a telemetry registry (`serve.*` metrics).
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Attaches a trace sink: every batch's lookup/all-to-all/dense span
    /// lands on the `Serve` category.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Runs the stream to completion. Deterministic: the same config
    /// yields a byte-identical report.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the stream, batching policy, slice or
    /// embedding layout is invalid.
    pub fn run(&self) -> Result<DlrmServeReport, ServeError> {
        let requests = query_stream(&self.config.stream)?;
        let batches = assemble(&requests, &self.config.batching)?;

        let mesh = Multipod::new(self.config.slice.clone());
        let chips = mesh.num_chips();
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let dim = self.config.embedding_dim;
        if dim == 0 {
            return Err(ServeError::InvalidConfig {
                field: "embedding_dim",
                value: 0.0,
            });
        }
        let specs = vec![
            EmbeddingSpec {
                rows: self.config.stream.rows_per_table,
                dim,
            };
            self.config.stream.tables
        ];
        let placement = Placement::plan(&specs, chips, self.config.replication_budget_bytes);
        let emb = ShardedEmbedding::init(placement, self.config.table_seed)?;
        let mut cache = EmbeddingCache::new(chips, self.config.cache_rows_per_chip);

        let tpu = TpuV3::new();
        let workload = catalog::dlrm();
        let mut remote_rows = 0u64;

        // Build one released task graph over every batch: lookup (host)
        // → all-to-all (ICI) → dense (MXU), each stage priced up front.
        let mut graph = TaskGraph::new();
        let mut stages = Vec::with_capacity(batches.len());
        for (i, b) in batches.iter().enumerate() {
            let indices: Vec<Vec<usize>> = b
                .requests
                .iter()
                .flat_map(|&r| requests[r].samples.iter().cloned())
                .collect();
            let outcome = emb.lookup_cached(&mut net, &indices, SimTime::ZERO, &mut cache)?;
            net.reset();
            remote_rows += outcome.remote_rows as u64;
            let all_to_all_s = outcome.time.seconds();
            let local_row_bytes =
                ((outcome.local_rows + outcome.cache_hits) * dim * 4) as f64 / chips as f64;
            let lookup_s = LOOKUP_OVERHEAD_SECONDS + local_row_bytes / tpu.hbm_bandwidth;
            let per_core_batch = (b.samples as f64 / chips as f64).max(1.0);
            let eff = workload.efficiency.at(per_core_batch)?;
            let dense_flops = b.samples as f64 * workload.flops_per_sample / chips as f64;
            let dense_s = tpu.core_compute_time(dense_flops, eff)?;

            let batch_id = i as u32;
            let lookup = graph.add_released(
                TaskKind::ServeLookup { batch: batch_id },
                Resource::Host,
                lookup_s,
                b.dispatch,
                &[],
            )?;
            let a2a = graph.add(
                TaskKind::ServeAllToAll { batch: batch_id },
                Resource::Ici,
                all_to_all_s,
                &[lookup],
            )?;
            let dense = graph.add(
                TaskKind::ServeDense { batch: batch_id },
                Resource::Mxu,
                dense_s,
                &[a2a],
            )?;
            stages.push((lookup, a2a, dense));
        }

        let schedule = graph.run();
        if let Some(sink) = &self.trace {
            schedule.record_trace(sink.as_ref(), SimTime::ZERO);
        }

        // Decompose every request's latency into the five phases.
        let mut latencies = Vec::with_capacity(requests.len());
        let mut means = PhaseMeans::default();
        for (b, &(lookup, a2a, dense)) in batches.iter().zip(&stages) {
            let lk = &schedule.tasks[lookup.0];
            let aa = &schedule.tasks[a2a.0];
            let de = &schedule.tasks[dense.0];
            for &r in &b.requests {
                let arrival = requests[r].arrival;
                means.batch_wait += b.dispatch - arrival;
                means.queue += lk.start - b.dispatch;
                means.lookup += lk.end - lk.start;
                means.all_to_all += aa.end - lk.end;
                means.dense += de.end - aa.end;
                let latency = de.end - arrival;
                if let Some(t) = &self.telemetry {
                    t.observe(MetricId::new(Subsystem::Serve, "latency_seconds"), latency);
                }
                latencies.push(latency);
            }
        }
        let n = requests.len() as f64;
        means.batch_wait /= n;
        means.queue /= n;
        means.lookup /= n;
        means.all_to_all /= n;
        means.dense /= n;

        let makespan = schedule.makespan.seconds();
        let report = DlrmServeReport {
            requests: requests.len() as u64,
            batches: batches.len() as u64,
            mean_batch_samples: batches.iter().map(|b| b.samples as f64).sum::<f64>()
                / batches.len() as f64,
            latency: DistSummary::of(latencies),
            phase_means: means,
            cache_hit_rate: cache.hit_rate(),
            cache_hits: cache.hits(),
            remote_rows,
            achieved_qps: requests.len() as f64 / makespan.max(f64::MIN_POSITIVE),
            makespan_seconds: makespan,
        };
        if let Some(t) = &self.telemetry {
            t.set_gauge(
                MetricId::new(Subsystem::Serve, "cache_hit_rate"),
                report.cache_hit_rate,
            );
            t.set_gauge(
                MetricId::new(Subsystem::Serve, "achieved_qps"),
                report.achieved_qps,
            );
            t.inc_counter(MetricId::new(Subsystem::Serve, "requests"), report.requests);
            t.inc_counter(MetricId::new(Subsystem::Serve, "batches"), report.batches);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(queries: u32, seed: u64) -> DlrmServeConfig {
        let mut c = DlrmServeConfig::demo(MultipodConfig::mesh(4, 4, false), queries, seed);
        // Small tables keep the unit test fast; a tiny replication
        // budget keeps them partitioned so remote traffic exists.
        c.stream.tables = 4;
        c.stream.rows_per_table = 4096;
        c.replication_budget_bytes = 1024;
        c
    }

    #[test]
    fn serving_run_reports_and_decomposes() {
        let server = DlrmServer::new(demo(300, 42));
        let report = server.run().expect("serving run");
        assert_eq!(report.requests, 300);
        assert!(report.batches > 0 && report.batches <= 300);
        assert!(report.makespan_seconds > 0.0);
        assert!(report.achieved_qps > 0.0);
        assert!(
            report.cache_hit_rate > 0.0,
            "skewed keys must hit the cache"
        );
        assert_eq!(report.latency.count, 300);
        // The five phases sum to the mean latency exactly (same additions
        // in a different grouping, so allow only rounding slack).
        let m = &report.phase_means;
        let sum = m.batch_wait + m.queue + m.lookup + m.all_to_all + m.dense;
        assert!(
            (sum - report.latency.mean).abs() < 1e-9,
            "phase sum {sum} vs mean latency {}",
            report.latency.mean
        );
        assert!(report.latency.p999 >= report.latency.p99);
        assert!(report.latency.p99 >= report.latency.p50);
    }

    #[test]
    fn serving_is_deterministic() {
        let run = || DlrmServer::new(demo(200, 7)).run().expect("serving run");
        assert_eq!(run(), run());
    }

    #[test]
    fn bigger_cache_never_hurts_hit_rate() {
        let rate = |rows: usize| {
            let mut c = demo(200, 11);
            c.cache_rows_per_chip = rows;
            DlrmServer::new(c)
                .run()
                .expect("serving run")
                .cache_hit_rate
        };
        let small = rate(64);
        let large = rate(4096);
        assert!(large >= small, "hit rate regressed: {large} < {small}");
    }

    #[test]
    fn no_cache_means_no_hits() {
        let mut c = demo(100, 3);
        c.cache_rows_per_chip = 0;
        let report = DlrmServer::new(c).run().expect("serving run");
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.cache_hit_rate, 0.0);
    }

    #[test]
    fn zero_dim_is_a_typed_error() {
        let mut c = demo(10, 1);
        c.embedding_dim = 0;
        assert!(matches!(
            DlrmServer::new(c).run(),
            Err(ServeError::InvalidConfig {
                field: "embedding_dim",
                ..
            })
        ));
    }
}
