//! A Podracer-style RL actor–learner workload sharing one slice.
//!
//! The learner occupies the head of the slice and runs throughput-bound
//! training steps; the remaining chips run inference actors in closed
//! loop, each round a small policy forward, a latency-bound observation
//! push to the learner's corner chip, and an action reply back. Every
//! few learner steps the updated parameters broadcast back out to every
//! actor — traffic that contends with the action replies on the shared
//! ICI links and shows up as tail spikes in actor latency.
//!
//! Events interleave on one sim-time queue and transfers reserve links
//! in pop order, so the whole co-located timeline is deterministic.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use multipod_core::step::step_breakdown;
use multipod_core::StepOptions;
use multipod_models::{catalog, TpuV3};
use multipod_simnet::{EventQueue, Network, NetworkConfig, SimTime};
use multipod_telemetry::{DistSummary, MetricId, Subsystem, Telemetry};
use multipod_topology::{ChipId, Multipod, MultipodConfig};
use multipod_trace::{SpanCategory, SpanEvent, TraceSink, Track};

use crate::ServeError;

/// RL co-location parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RlServeConfig {
    /// The shared slice.
    pub slice: MultipodConfig,
    /// Chips at the head of the slice running the learner.
    pub learner_chips: u32,
    /// Training steps the learner runs.
    pub learner_steps: u32,
    /// Closed-loop inference rounds per actor.
    pub actor_rounds: u32,
    /// Policy-forward FLOPs per actor round (one chip).
    pub actor_flops: f64,
    /// Observation payload each round pushes to the learner, bytes.
    pub obs_bytes: u64,
    /// Action reply the learner sends back each round, bytes.
    pub action_bytes: u64,
    /// Parameter payload broadcast to every actor, bytes.
    pub param_bytes: u64,
    /// Learner steps between parameter broadcasts.
    pub broadcast_every: u32,
}

impl RlServeConfig {
    /// A canned co-located workload on a 16×8 slice: a 64-chip learner
    /// under 64 single-chip actors.
    pub fn demo(slice: MultipodConfig) -> RlServeConfig {
        RlServeConfig {
            slice,
            learner_chips: 64,
            learner_steps: 200,
            actor_rounds: 100,
            actor_flops: 2.0e8,
            obs_bytes: 64 << 10,
            action_bytes: 4 << 10,
            param_bytes: 8 << 20,
            broadcast_every: 20,
        }
    }
}

/// What the co-located RL run did.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RlServeReport {
    /// Actors in the slice.
    pub actors: u64,
    /// Total actor inference rounds completed.
    pub rounds: u64,
    /// Per-round actor latency (compute + observation push), seconds.
    pub actor_latency: DistSummary,
    /// Learner steps completed.
    pub learner_steps: u64,
    /// Seconds of one learner step (throughput-bound, excludes
    /// broadcast stalls).
    pub learner_step_seconds: f64,
    /// Parameter broadcasts performed.
    pub broadcasts: u64,
    /// Learner steps per simulated second, including broadcast stalls.
    pub learner_throughput: f64,
    /// When the last event finished, seconds.
    pub makespan_seconds: f64,
}

#[derive(Clone, Debug)]
enum RlEvent {
    /// Actor `actor` begins inference round `round`.
    Actor { actor: usize, round: u32 },
    /// Learner step `step` begins.
    Learner { step: u32 },
    /// Learner step `step`'s compute finished; its parameter broadcast
    /// issues now, so transfers enter the network in causal order.
    Broadcast { step: u32 },
}

/// The co-located actor–learner simulator.
pub struct RlServer {
    config: RlServeConfig,
    telemetry: Option<Arc<Telemetry>>,
    trace: Option<Arc<dyn TraceSink>>,
}

impl RlServer {
    /// A co-located workload over `config`.
    pub fn new(config: RlServeConfig) -> RlServer {
        RlServer {
            config,
            telemetry: None,
            trace: None,
        }
    }

    /// Attaches a telemetry registry (`serve.*` metrics).
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Attaches a trace sink: actor rounds and broadcasts land on the
    /// `Serve` category.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Runs actors and learner to completion on the shared slice.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when the learner claims the whole
    /// slice (or more), or a rate parameter is out of range; pricing and
    /// routing errors from the underlying models otherwise.
    pub fn run(&self) -> Result<RlServeReport, ServeError> {
        let mesh = Multipod::new(self.config.slice.clone());
        let total_chips = mesh.num_chips() as u32;
        if self.config.learner_chips == 0 || self.config.learner_chips >= total_chips {
            return Err(ServeError::InvalidConfig {
                field: "learner_chips",
                value: f64::from(self.config.learner_chips),
            });
        }
        if self.config.broadcast_every == 0 {
            return Err(ServeError::InvalidConfig {
                field: "broadcast_every",
                value: 0.0,
            });
        }
        if !(self.config.actor_flops.is_finite() && self.config.actor_flops > 0.0) {
            return Err(ServeError::InvalidConfig {
                field: "actor_flops",
                value: self.config.actor_flops,
            });
        }

        // The learner owns the first chips in row-major order; its corner
        // chip is the rendezvous for observations and broadcasts.
        let chips: Vec<ChipId> = mesh.chips().collect();
        let learner_corner = chips[0];
        let actor_chips: Vec<ChipId> = chips[self.config.learner_chips as usize..].to_vec();
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        if let Some(t) = &self.telemetry {
            net.set_telemetry(t.clone());
        }

        // Throughput-bound learner step: the analytic step model on the
        // learner's sub-slice.
        let step_seconds = step_breakdown(
            &catalog::resnet50(),
            self.config.learner_chips,
            &StepOptions::default(),
        )?
        .total();
        // Latency-bound actor round: a small policy forward at small-batch
        // efficiency on one chip.
        let tpu = TpuV3::new();
        let actor_compute = tpu.core_compute_time(self.config.actor_flops, 0.1)?;

        let mut queue: EventQueue<RlEvent> = EventQueue::new();
        for (i, _) in actor_chips.iter().enumerate() {
            queue.schedule(SimTime::ZERO, RlEvent::Actor { actor: i, round: 0 });
        }
        queue.schedule(SimTime::ZERO, RlEvent::Learner { step: 0 });

        let mut latencies = Vec::new();
        let mut broadcasts = 0u64;
        let mut learner_done = SimTime::ZERO;
        let mut makespan = SimTime::ZERO;
        while let Some((now, event)) = queue.pop() {
            match event {
                RlEvent::Actor { actor, round } => {
                    let compute_end = now + actor_compute;
                    let push = net.transfer(
                        actor_chips[actor],
                        learner_corner,
                        self.config.obs_bytes,
                        compute_end,
                    )?;
                    // The action reply travels learner→actor, the same
                    // link direction as parameter broadcasts — that is
                    // where co-location contention bites.
                    let reply = net.transfer(
                        learner_corner,
                        actor_chips[actor],
                        self.config.action_bytes,
                        push.finish,
                    )?;
                    let finish = reply.finish;
                    latencies.push(finish - now);
                    if let Some(t) = &self.telemetry {
                        t.observe(
                            MetricId::new(Subsystem::Serve, "actor_round_seconds"),
                            finish - now,
                        );
                    }
                    if let Some(sink) = &self.trace {
                        sink.record_span(SpanEvent::new(
                            Track::Sim,
                            SpanCategory::Serve,
                            "rl-actor-round",
                            now,
                            finish,
                        ));
                    }
                    makespan = makespan.max(finish);
                    if round + 1 < self.config.actor_rounds {
                        queue.schedule(
                            finish,
                            RlEvent::Actor {
                                actor,
                                round: round + 1,
                            },
                        );
                    }
                }
                RlEvent::Learner { step } => {
                    let end = now + step_seconds;
                    if (step + 1) % self.config.broadcast_every == 0 {
                        // Defer the broadcast to its own event so link
                        // reservations issue at the broadcast's actual
                        // sim time, interleaved with actor traffic.
                        queue.schedule(end, RlEvent::Broadcast { step });
                    } else {
                        learner_done = learner_done.max(end);
                        makespan = makespan.max(end);
                        if step + 1 < self.config.learner_steps {
                            queue.schedule(end, RlEvent::Learner { step: step + 1 });
                        }
                    }
                }
                RlEvent::Broadcast { step } => {
                    let messages: Vec<(ChipId, ChipId, u64)> = actor_chips
                        .iter()
                        .map(|&c| (learner_corner, c, self.config.param_bytes))
                        .collect();
                    let end = net.parallel_transfers(&messages, now)?;
                    if let Some(sink) = &self.trace {
                        sink.record_span(SpanEvent::new(
                            Track::Sim,
                            SpanCategory::Serve,
                            "rl-param-broadcast",
                            now,
                            end,
                        ));
                    }
                    broadcasts += 1;
                    learner_done = learner_done.max(end);
                    makespan = makespan.max(end);
                    if step + 1 < self.config.learner_steps {
                        queue.schedule(end, RlEvent::Learner { step: step + 1 });
                    }
                }
            }
        }

        let report = RlServeReport {
            actors: actor_chips.len() as u64,
            rounds: latencies.len() as u64,
            actor_latency: DistSummary::of(latencies),
            learner_steps: u64::from(self.config.learner_steps),
            learner_step_seconds: step_seconds,
            broadcasts,
            learner_throughput: f64::from(self.config.learner_steps)
                / learner_done.seconds().max(f64::MIN_POSITIVE),
            makespan_seconds: makespan.seconds(),
        };
        if let Some(t) = &self.telemetry {
            t.set_gauge(
                MetricId::new(Subsystem::Serve, "learner_throughput"),
                report.learner_throughput,
            );
            t.inc_counter(
                MetricId::new(Subsystem::Serve, "param_broadcasts"),
                broadcasts,
            );
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> RlServeConfig {
        let mut c = RlServeConfig::demo(MultipodConfig::mesh(8, 4, false));
        c.learner_chips = 16;
        c.learner_steps = 40;
        c.actor_rounds = 30;
        c.broadcast_every = 10;
        c
    }

    #[test]
    fn actors_and_learner_share_the_slice() {
        let report = RlServer::new(demo()).run().expect("rl run");
        assert_eq!(report.actors, 16);
        assert_eq!(report.rounds, 16 * 30);
        assert_eq!(report.broadcasts, 4);
        assert!(report.learner_throughput > 0.0);
        assert!(report.actor_latency.mean > 0.0);
        assert!(report.makespan_seconds > 0.0);
    }

    #[test]
    fn broadcast_contention_shows_up_in_the_tail() {
        // With broadcasts the actor tail (p999) degrades relative to an
        // otherwise-identical run whose broadcasts are negligible. The
        // learner step is ~50 ms and an actor round ~0.2 ms, so actors
        // need enough rounds to still be running when the first
        // broadcast lands.
        let overlapping = || {
            let mut c = demo();
            c.learner_steps = 2;
            c.broadcast_every = 1;
            c.actor_rounds = 600;
            c
        };
        let quiet = {
            let mut c = overlapping();
            c.param_bytes = 1;
            RlServer::new(c).run().expect("rl run")
        };
        let noisy = {
            let mut c = overlapping();
            c.param_bytes = 64 << 20;
            RlServer::new(c).run().expect("rl run")
        };
        assert!(
            noisy.actor_latency.p999 > quiet.actor_latency.p999,
            "broadcast traffic must lengthen the actor tail: {} vs {}",
            noisy.actor_latency.p999,
            quiet.actor_latency.p999
        );
    }

    #[test]
    fn rl_run_is_deterministic() {
        let run = || RlServer::new(demo()).run().expect("rl run");
        assert_eq!(run(), run());
    }

    #[test]
    fn learner_cannot_claim_the_whole_slice() {
        let mut c = demo();
        c.learner_chips = 32;
        assert!(matches!(
            RlServer::new(c).run(),
            Err(ServeError::InvalidConfig {
                field: "learner_chips",
                ..
            })
        ));
    }
}
