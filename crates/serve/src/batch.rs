//! Bounded-window request batching.
//!
//! A serving replica trades latency for MXU efficiency by accumulating
//! requests into batches: a batch dispatches when its accumulation
//! window expires or its sample cap fills, whichever comes first. The
//! batcher is a pure function of the request log, so the batch plan is
//! deterministic.

use serde::{Deserialize, Serialize};

use multipod_simnet::SimTime;

use crate::stream::Request;
use crate::ServeError;

/// Batching policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchingConfig {
    /// Most samples one batch may hold.
    pub max_batch_samples: usize,
    /// Accumulation window: a batch dispatches at most this long after
    /// the request that opened it arrived.
    pub window_seconds: f64,
}

impl BatchingConfig {
    /// A canned serving policy: 256-sample batches, 2 ms windows.
    pub fn demo() -> BatchingConfig {
        BatchingConfig {
            max_batch_samples: 256,
            window_seconds: 2.0e-3,
        }
    }
}

/// One dispatched batch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    /// Indices into the request log, in arrival order.
    pub requests: Vec<usize>,
    /// Total samples across member requests.
    pub samples: usize,
    /// Arrival of the request that opened the batch.
    pub opened_at: SimTime,
    /// When the batch dispatches: the arrival of the request that filled
    /// the cap, or `opened_at + window` when the window expired first.
    /// Never before any member's arrival.
    pub dispatch: SimTime,
}

/// Assembles the request log into batches under `config`.
///
/// Invariants (property-tested): every request lands in exactly one
/// batch, no batch exceeds the sample cap, and no batch dispatches
/// before one of its members has arrived.
///
/// # Errors
///
/// * [`ServeError::InvalidConfig`] for a non-positive cap or a
///   non-finite/negative window.
/// * [`ServeError::RequestExceedsBatchCap`] when a single request could
///   never fit any batch.
pub fn assemble(requests: &[Request], config: &BatchingConfig) -> Result<Vec<Batch>, ServeError> {
    if config.max_batch_samples == 0 {
        return Err(ServeError::InvalidConfig {
            field: "max_batch_samples",
            value: 0.0,
        });
    }
    if !(config.window_seconds.is_finite() && config.window_seconds >= 0.0) {
        return Err(ServeError::InvalidConfig {
            field: "window_seconds",
            value: config.window_seconds,
        });
    }
    let cap = config.max_batch_samples;
    let mut batches: Vec<Batch> = Vec::new();
    let mut open: Option<Batch> = None;
    for (i, r) in requests.iter().enumerate() {
        let n = r.samples.len();
        if n > cap {
            return Err(ServeError::RequestExceedsBatchCap {
                request: r.id,
                samples: n,
                cap,
            });
        }
        // Close the open batch if its window expired before this arrival,
        // or if this request does not fit (it then waits out its window).
        if let Some(b) = &mut open {
            let deadline = b.opened_at + config.window_seconds;
            if r.arrival >= deadline || b.samples + n > cap {
                b.dispatch = deadline;
                batches.push(open.take().expect("open batch"));
            }
        }
        match &mut open {
            None => {
                open = Some(Batch {
                    requests: vec![i],
                    samples: n,
                    opened_at: r.arrival,
                    // Placeholder; set on close.
                    dispatch: r.arrival,
                });
            }
            Some(b) => {
                b.requests.push(i);
                b.samples += n;
            }
        }
        // A full batch dispatches immediately on the filling arrival.
        let b = open.as_mut().expect("just opened");
        if b.samples == cap {
            b.dispatch = r.arrival;
            batches.push(open.take().expect("open batch"));
        }
    }
    if let Some(mut b) = open {
        // The stream ended; the replica still waits out the window.
        b.dispatch = b.opened_at + config.window_seconds;
        batches.push(b);
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, at: f64, samples: usize) -> Request {
        Request {
            id,
            arrival: SimTime::from_seconds(at),
            samples: vec![vec![0]; samples],
        }
    }

    #[test]
    fn window_expiry_closes_a_batch() {
        let requests = vec![request(0, 0.0, 2), request(1, 0.5, 2)];
        let config = BatchingConfig {
            max_batch_samples: 16,
            window_seconds: 0.1,
        };
        let batches = assemble(&requests, &config).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].dispatch, SimTime::from_seconds(0.1));
        assert_eq!(batches[1].dispatch, SimTime::from_seconds(0.6));
    }

    #[test]
    fn cap_fill_dispatches_immediately() {
        let requests = vec![request(0, 0.0, 3), request(1, 0.01, 5)];
        let config = BatchingConfig {
            max_batch_samples: 8,
            window_seconds: 1.0,
        };
        let batches = assemble(&requests, &config).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].samples, 8);
        assert_eq!(batches[0].dispatch, SimTime::from_seconds(0.01));
    }

    #[test]
    fn overflow_opens_the_next_batch() {
        // The second request does not fit; the first batch waits out its
        // window while the second accumulates in parallel.
        let requests = vec![request(0, 0.0, 6), request(1, 0.01, 6)];
        let config = BatchingConfig {
            max_batch_samples: 8,
            window_seconds: 0.05,
        };
        let batches = assemble(&requests, &config).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].requests, vec![0]);
        assert_eq!(batches[0].dispatch, SimTime::from_seconds(0.05));
        assert_eq!(batches[1].requests, vec![1]);
        // Same float expression as the batcher computes, to the bit.
        assert_eq!(
            batches[1].dispatch,
            SimTime::from_seconds(0.01) + config.window_seconds
        );
    }

    #[test]
    fn oversized_request_is_a_typed_error() {
        let requests = vec![request(7, 0.0, 9)];
        let config = BatchingConfig {
            max_batch_samples: 8,
            window_seconds: 0.05,
        };
        assert!(matches!(
            assemble(&requests, &config),
            Err(ServeError::RequestExceedsBatchCap {
                request: 7,
                samples: 9,
                cap: 8
            })
        ));
    }

    #[test]
    fn zero_cap_is_a_typed_error() {
        let config = BatchingConfig {
            max_batch_samples: 0,
            window_seconds: 0.05,
        };
        assert!(matches!(
            assemble(&[], &config),
            Err(ServeError::InvalidConfig {
                field: "max_batch_samples",
                ..
            })
        ));
    }
}
