//! Property tests for the serving layer.
//!
//! Three invariants the serving results hang on:
//!
//! * the per-host embedding cache is a true LRU, so a bigger cache never
//!   serves fewer hits on the same access sequence (the inclusion
//!   property) — without it the "bigger cache, fewer remote rows" story
//!   in the bench would be noise;
//! * the batcher conserves requests and respects both the sample cap
//!   and causality (no batch dispatches before a member has arrived),
//!   for arbitrary request logs;
//! * the query-stream generator is a pure function of its config — the
//!   replayable request log the whole serving pipeline leans on.

use multipod_embedding::LruCache;
use multipod_serve::{assemble, query_stream, BatchingConfig, QueryStreamConfig, Request};
use multipod_simnet::SimTime;
use proptest::prelude::*;

fn access_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    // Small key universe so sequences actually revisit rows.
    prop::collection::vec((0usize..4, 0usize..64), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LRU inclusion: on any access sequence, hits are nondecreasing in
    /// cache capacity.
    #[test]
    fn lru_hits_are_monotone_in_capacity(accesses in access_strategy()) {
        let mut last_hits = 0u64;
        for capacity in [0usize, 1, 4, 16, 64, 256] {
            let mut cache = LruCache::new(capacity);
            for &(table, row) in &accesses {
                cache.access(table, row);
            }
            prop_assert!(
                cache.hits() >= last_hits,
                "capacity {} served {} hits, smaller cache served {}",
                capacity, cache.hits(), last_hits
            );
            last_hits = cache.hits();
        }
    }

    /// The batcher partitions the request log exactly, never overfills a
    /// batch, and never dispatches before a member has arrived.
    #[test]
    fn batches_conserve_requests_and_respect_the_cap(
        gaps in prop::collection::vec((0.0f64..0.02, 1usize..12), 1..60),
        cap in 12usize..64,
        window in 0.0f64..0.05,
    ) {
        let mut at = 0.0;
        let requests: Vec<Request> = gaps
            .iter()
            .enumerate()
            .map(|(id, &(gap, samples))| {
                at += gap;
                Request {
                    id: id as u64,
                    arrival: SimTime::from_seconds(at),
                    samples: vec![vec![0]; samples],
                }
            })
            .collect();
        let config = BatchingConfig {
            max_batch_samples: cap,
            window_seconds: window,
        };
        let batches = assemble(&requests, &config).unwrap();

        let mut seen = vec![false; requests.len()];
        for b in &batches {
            prop_assert!(b.samples <= cap, "batch holds {} samples over cap {}", b.samples, cap);
            prop_assert_eq!(
                b.samples,
                b.requests.iter().map(|&i| requests[i].samples.len()).sum::<usize>()
            );
            for &i in &b.requests {
                prop_assert!(!seen[i], "request {} landed in two batches", i);
                seen[i] = true;
                prop_assert!(
                    b.dispatch >= requests[i].arrival,
                    "batch dispatches at {:?} before member {} arrives at {:?}",
                    b.dispatch, i, requests[i].arrival
                );
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "a request fell out of the batch plan");
    }
}

/// The request log replays byte-for-byte across seeds 0..500: the same
/// config serializes to the same JSON both times, and distinct seeds
/// do not collide.
#[test]
fn request_log_replays_byte_identical_over_seeds() {
    let mut previous: Option<String> = None;
    for seed in 0..500u64 {
        let mut config = QueryStreamConfig::dlrm(20, seed);
        // Keep each stream small; 500 seeds still cover the generator.
        config.tables = 4;
        config.rows_per_table = 1000;
        let a = serde_json::to_string(&query_stream(&config).unwrap()).unwrap();
        let b = serde_json::to_string(&query_stream(&config).unwrap()).unwrap();
        assert_eq!(a, b, "seed {seed} did not replay byte-identically");
        if let Some(p) = &previous {
            assert_ne!(p, &a, "seeds {} and {} collide", seed - 1, seed);
        }
        previous = Some(a);
    }
}
