//! Pipelined checkpoint saves hidden behind the training step.
//!
//! [`crate::checkpoint::save_checkpoint`] is a blocking save: training
//! stops while shards gather over ICI and stream over PCIe. This module
//! derives the same per-host PCIe stream costs from a [`ShardPlacement`]
//! and hands them to the task-graph step model
//! ([`multipod_core::overlap`]) as [`CheckpointOverlap`] shard writes, so
//! each host's writes start as soon as the weights they cover finish
//! updating and ride the otherwise-idle PCIe resource concurrently with
//! the step.
//!
//! The overlapped model's single `Pcie` resource stands for the
//! *critical* host's link (hosts stream concurrently, so the slowest
//! host bounds the save); [`checkpoint_overlap`] therefore prices the
//! busiest host's shard queue, not the fleet total.

use multipod_core::overlap::{overlapped_step, CheckpointOverlap, OverlapConfig, OverlappedStep};
use multipod_core::step::{StepError, StepOptions};
use multipod_models::Workload;
use multipod_topology::{Multipod, MultipodConfig};

use crate::checkpoint::PcieCost;
use crate::error::CkptError;
use crate::placement::ShardPlacement;

/// Report of one step with a checkpoint save pipelined into it.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelinedSave {
    /// The scheduled step with the shard writes inside it.
    pub step: OverlappedStep,
    /// The same step scheduled without any checkpoint tasks.
    pub baseline_seconds: f64,
    /// The critical host's blocking write cost (what a stop-the-world
    /// save of the same shards would add to the step).
    pub blocking_save_seconds: f64,
}

impl PipelinedSave {
    /// Seconds of save cost that leaked into the step (0 when the
    /// writes hid completely behind compute and communication).
    pub fn exposed_save_seconds(&self) -> f64 {
        (self.step.step_seconds() - self.baseline_seconds).max(0.0)
    }

    /// Fraction of the blocking save cost hidden by pipelining. 1.0 when
    /// the writes vanished into idle PCIe time; 0.0 (not NaN) when there
    /// was nothing to hide.
    pub fn hidden_fraction(&self) -> f64 {
        if self.blocking_save_seconds == 0.0 {
            return 0.0;
        }
        1.0 - self.exposed_save_seconds() / self.blocking_save_seconds
    }
}

/// Prices `placement`'s shard writes for the overlapped step model: the
/// busiest host's queue of per-chip shard writes on one PCIe link.
pub fn checkpoint_overlap(placement: &ShardPlacement, pcie: &PcieCost) -> CheckpointOverlap {
    let mut shards = 1u32;
    let mut seconds = 0.0f64;
    for host in &placement.hosts {
        let host_seconds: f64 = host
            .shards
            .iter()
            .map(|r| pcie.time(4 * r.len() as u64))
            .sum();
        if host_seconds > seconds {
            seconds = host_seconds;
            shards = host.shards.len().max(1) as u32;
        }
    }
    CheckpointOverlap {
        shards,
        seconds_per_shard: seconds / shards as f64,
    }
}

/// Schedules one training step with a full-model checkpoint save
/// pipelined into it, next to the save-free baseline.
///
/// `elems` is the flattened model + optimizer state size; the placement
/// spans every live chip of the `chips`-chip slice.
///
/// # Errors
///
/// [`CkptError::EmptyState`] for a zero-element state, and the
/// [`StepError`] of the step model (e.g. a non-power-of-two `chips`)
/// mapped through [`CkptError::Step`].
pub fn pipelined_save_step(
    workload: &Workload,
    chips: u32,
    elems: usize,
    options: &StepOptions,
    overlap: &OverlapConfig,
    pcie: &PcieCost,
) -> Result<PipelinedSave, CkptError> {
    let mesh = Multipod::new(
        MultipodConfig::try_slice(chips)
            .map_err(|_| CkptError::Step(StepError::InvalidSliceShape { chips }))?,
    );
    let placement = ShardPlacement::plan(&mesh, &[], elems)?;
    let ckpt = checkpoint_overlap(&placement, pcie);
    let with_save = OverlapConfig {
        checkpoint: Some(ckpt),
        ..*overlap
    };
    let without_save = OverlapConfig {
        checkpoint: None,
        ..*overlap
    };
    let baseline = overlapped_step(workload, chips, options, &without_save)?;
    let step = overlapped_step(workload, chips, options, &with_save)?;
    Ok(PipelinedSave {
        step,
        baseline_seconds: baseline.step_seconds(),
        blocking_save_seconds: ckpt.shards as f64 * ckpt.seconds_per_shard,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_models::catalog;
    use multipod_topology::CHIPS_PER_HOST;

    #[test]
    fn busiest_host_prices_the_overlap() {
        let mesh = Multipod::new(MultipodConfig::mesh(8, 8, true));
        let placement = ShardPlacement::plan(&mesh, &[], 1_000_000).unwrap();
        let ckpt = checkpoint_overlap(&placement, &PcieCost::criteo());
        assert_eq!(ckpt.shards as usize, CHIPS_PER_HOST);
        assert!(ckpt.seconds_per_shard > 0.0);
    }

    #[test]
    fn small_saves_hide_almost_completely() {
        // A modest state on a big slice: per-host bytes are tiny next to
        // the step, so pipelining should hide nearly all of the write.
        let r = pipelined_save_step(
            &catalog::bert(),
            1024,
            4_000_000,
            &StepOptions::default(),
            &OverlapConfig::default(),
            &PcieCost::criteo(),
        )
        .unwrap();
        assert!(r.blocking_save_seconds > 0.0);
        assert!(
            r.hidden_fraction() > 0.5,
            "hidden={} exposed={} blocking={}",
            r.hidden_fraction(),
            r.exposed_save_seconds(),
            r.blocking_save_seconds
        );
    }

    #[test]
    fn invalid_slices_and_empty_states_are_typed_errors() {
        let e = pipelined_save_step(
            &catalog::bert(),
            100,
            1,
            &StepOptions::default(),
            &OverlapConfig::default(),
            &PcieCost::criteo(),
        )
        .unwrap_err();
        assert_eq!(
            e,
            CkptError::Step(StepError::InvalidSliceShape { chips: 100 })
        );
        let e = pipelined_save_step(
            &catalog::bert(),
            256,
            0,
            &StepOptions::default(),
            &OverlapConfig::default(),
            &PcieCost::criteo(),
        )
        .unwrap_err();
        assert_eq!(e, CkptError::EmptyState);
    }
}
