//! Checkpoint/rollback recovery campaigns.
//!
//! [`run_rollback_campaign`] trains the same synthetic quadratic
//! objective as the fault campaigns in `multipod-faults`, but under
//! [`RecoveryMode::Rollback`]: periodic sharded checkpoints ride along
//! with training, and when a chip dies the trainer *escalates* instead
//! of absorbing the loss — the campaign restores the last checkpoint
//! onto the survivor mesh, rolls the step counter back, and replays the
//! lost window on the degraded machine.
//!
//! Contrast with the drop-and-renormalize policy (PR 2): rollback pays
//! save + restore + replay time but resumes from exact pre-fault state,
//! while drop-and-renormalize keeps going instantly at the cost of the
//! dead replicas' samples. Both end at the same loss on this objective
//! (its gradient depends only on `w`), which is precisely what makes the
//! time difference the interesting measurement.

use std::sync::Arc;

use serde::Serialize;

use multipod_collectives::CollectiveError;
use multipod_core::trainer::{DataParallelTrainer, FaultPolicy, RecoveryMode};
use multipod_optim::{LrSchedule, SgdMomentum};
use multipod_simnet::SimTime;
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::MultipodConfig;
use multipod_trace::{SpanCategory, SpanEvent, TraceSink, Track};

use multipod_faults::{FaultDriver, FaultPlan};

use crate::checkpoint::{restore_checkpoint, save_checkpoint, Checkpoint, PcieCost, StateBundle};
use crate::error::CkptError;
use crate::placement::ShardPlacement;

/// What to train, and how often to checkpoint it.
#[derive(Clone, Debug)]
pub struct RollbackConfig {
    /// The machine.
    pub mesh: MultipodConfig,
    /// Number of training steps.
    pub steps: u64,
    /// Weight payload size in elements; must divide across replicas.
    pub elems: usize,
    /// Constant learning rate for the synthetic quadratic objective.
    pub lr: f32,
    /// Save a checkpoint every this many completed steps.
    pub ckpt_interval: u64,
    /// Healthy per-step host compute time; stragglers multiply this.
    pub host_seconds_per_step: f64,
    /// Quantize gradient payloads to bf16 on the wire.
    pub bf16_gradients: bool,
    /// Retry/backoff policy; `recovery` is forced to
    /// [`RecoveryMode::Rollback`] by the campaign.
    pub fault_policy: FaultPolicy,
    /// Seed for the synthetic target weights.
    pub seed: u64,
    /// Host-link cost model for checkpoint streaming.
    pub pcie: PcieCost,
}

impl RollbackConfig {
    /// The canned demo campaign on `mesh`: mirrors
    /// `CampaignConfig::demo` (8 steps, one weight element per replica,
    /// seed 17) with a checkpoint every 3 steps.
    pub fn demo(mesh: MultipodConfig) -> RollbackConfig {
        let replicas = (mesh.pods * mesh.pod_x_len * mesh.pod_y_len) as usize;
        RollbackConfig {
            mesh,
            steps: 8,
            elems: replicas,
            lr: 0.05,
            ckpt_interval: 3,
            host_seconds_per_step: 1e-3,
            bf16_gradients: false,
            fault_policy: FaultPolicy::default(),
            seed: 17,
            pcie: PcieCost::criteo(),
        }
    }
}

/// One training step of a rollback campaign.
#[derive(Clone, Debug, Serialize)]
pub struct RollbackStep {
    /// Step ordinal (1-based). Replayed ordinals appear twice.
    pub step: u64,
    /// Campaign time when the step began.
    pub start_seconds: f64,
    /// Wall time of the step: `max(comm, compute × slowdown)`.
    pub step_seconds: f64,
    /// Whether this execution re-ran a step lost to a rollback.
    pub replayed: bool,
    /// Whether the step ran on a degraded (survivor) mesh.
    pub degraded: bool,
    /// Mean-squared distance to the synthetic target after the step.
    pub loss: f64,
}

/// The outcome of a rollback campaign.
#[derive(Clone, Debug, Serialize)]
pub struct RollbackReport {
    /// Per-executed-step reports, in execution order.
    pub steps: Vec<RollbackStep>,
    /// Total simulated campaign time, including saves and restores.
    pub total_seconds: f64,
    /// Loss after the final step.
    pub final_loss: f64,
    /// Checkpoints saved (including the step-0 baseline).
    pub checkpoints_saved: usize,
    /// Simulated seconds spent saving checkpoints.
    pub save_seconds: f64,
    /// Simulated seconds spent restoring checkpoints.
    pub restore_seconds: f64,
    /// Rollback recoveries performed.
    pub rollbacks: usize,
    /// Steps that had to be re-executed after rollbacks.
    pub replayed_steps: u64,
}

/// Runs `plan` against a checkpointed training loop under the rollback
/// recovery policy.
///
/// # Errors
///
/// Checkpoint-layer failures surface as their [`CkptError`] variants;
/// trainer errors other than the escalated chip-loss signal (which the
/// campaign handles by rolling back) are wrapped in
/// [`CkptError::Collective`]. A mesh that keeps failing past one
/// recovery per planned fault event (plus a small budget) aborts rather
/// than looping forever.
pub fn run_rollback_campaign(
    config: &RollbackConfig,
    plan: &FaultPlan,
    sink: Option<Arc<dyn TraceSink>>,
) -> Result<RollbackReport, CkptError> {
    let policy = FaultPolicy {
        recovery: RecoveryMode::Rollback,
        ..config.fault_policy
    };
    let mut trainer = DataParallelTrainer::new(
        config.mesh.clone(),
        SgdMomentum::new(1.0, 0.0),
        LrSchedule::Constant { lr: config.lr },
    )
    .with_fault_policy(policy);
    if config.bf16_gradients {
        trainer = trainer.with_bf16_gradients();
    }
    if let Some(sink) = sink.clone() {
        trainer.set_trace_sink(sink);
    }
    let n = trainer.replicas();
    let mut rng = TensorRng::seed(config.seed);
    let target = rng.uniform(Shape::vector(config.elems), -1.0, 1.0);
    let mut w = Tensor::zeros(Shape::vector(config.elems));

    let mut driver = FaultDriver::new(plan.clone());
    let mut now = SimTime::ZERO;
    let mut steps: Vec<RollbackStep> = Vec::with_capacity(config.steps as usize);
    let mut save_seconds = 0.0;
    let mut restore_seconds = 0.0;
    let mut rollbacks = 0usize;
    let mut replayed_steps = 0u64;
    let mut replay_until = 0u64;
    let max_rollbacks = plan.events().len() + 4;

    // Baseline checkpoint before any training, so a fault in the first
    // window has something to roll back to.
    let mut last_ckpt: Checkpoint;
    {
        let dead = trainer.dead_replicas();
        let placement = ShardPlacement::plan(trainer.network().mesh(), &dead, config.elems)?;
        let bundle = StateBundle::from_optimizer(0, &w, trainer.optimizer(), n)?;
        let saved = save_checkpoint(
            trainer.network_mut(),
            &placement,
            &bundle,
            &config.pcie,
            now,
        )?;
        save_seconds += saved.finish - now;
        now = saved.finish;
        last_ckpt = saved.checkpoint;
    }
    let mut checkpoints_saved = 1usize;

    while trainer.current_step() < config.steps {
        driver.advance(trainer.network_mut(), now);
        // Gradient of ‖w − target‖²/2, split evenly across replicas; the
        // trainer renormalizes survivor sums, so replayed steps on the
        // degraded mesh apply the same effective update.
        let grad = w.sub(&target)?.scale(1.0 / n as f32);
        let grads = vec![grad; n];
        match trainer.step(&mut w, &grads) {
            Ok(stats) => {
                let slowdown = driver.max_slowdown();
                let compute_seconds = config.host_seconds_per_step * slowdown;
                let step_seconds = stats.comm_seconds.max(compute_seconds);
                let end = now + step_seconds;
                let replayed = stats.step <= replay_until;
                if replayed {
                    replayed_steps += 1;
                }
                if let Some(sink) = &sink {
                    sink.record_span(
                        SpanEvent::new(Track::Sim, SpanCategory::Step, "campaign-step", now, end)
                            .with_arg("step", stats.step as f64)
                            .with_arg("replayed", f64::from(u8::from(replayed)))
                            .with_arg("dead_replicas", stats.dead_replicas as f64)
                            .with_arg("degraded", f64::from(u8::from(stats.degraded))),
                    );
                }
                let loss = {
                    let err = w.sub(&target)?;
                    let norm = f64::from(err.norm2());
                    norm * norm / config.elems as f64
                };
                steps.push(RollbackStep {
                    step: stats.step,
                    start_seconds: now.seconds(),
                    step_seconds,
                    replayed,
                    degraded: stats.degraded || slowdown > 1.0,
                    loss,
                });
                now = end;
                if stats.step % config.ckpt_interval == 0 && stats.step < config.steps {
                    let dead = trainer.dead_replicas();
                    let placement =
                        ShardPlacement::plan(trainer.network().mesh(), &dead, config.elems)?;
                    let bundle =
                        StateBundle::from_optimizer(stats.step, &w, trainer.optimizer(), n)?;
                    let saved = save_checkpoint(
                        trainer.network_mut(),
                        &placement,
                        &bundle,
                        &config.pcie,
                        now,
                    )?;
                    save_seconds += saved.finish - now;
                    now = saved.finish;
                    last_ckpt = saved.checkpoint;
                    checkpoints_saved += 1;
                }
            }
            Err(CollectiveError::Network(err)) => {
                // The trainer escalated a chip loss (RecoveryMode::Rollback):
                // restore the last checkpoint onto the survivor mesh and
                // replay the window since it.
                rollbacks += 1;
                if let Some(telemetry) = trainer.network().telemetry() {
                    telemetry.inc_counter(
                        multipod_telemetry::MetricId::new(
                            multipod_telemetry::Subsystem::Ckpt,
                            "rollbacks",
                        ),
                        1,
                    );
                }
                if rollbacks > max_rollbacks {
                    return Err(CkptError::Network(err));
                }
                let failed_at = trainer.current_step();
                let dead = trainer.dead_replicas();
                let survivor = ShardPlacement::plan(trainer.network().mesh(), &dead, config.elems)?;
                let restored = restore_checkpoint(
                    trainer.network_mut(),
                    &survivor,
                    &last_ckpt,
                    &config.pcie,
                    now,
                )?;
                w = restored.bundle.weights.clone();
                restored
                    .bundle
                    .restore_optimizer(trainer.optimizer_mut(), n)?;
                trainer.rollback_to(restored.bundle.step);
                replay_until = failed_at;
                if let Some(sink) = &sink {
                    sink.record_span(
                        SpanEvent::new(
                            Track::Sim,
                            SpanCategory::Checkpoint,
                            "rollback",
                            now,
                            restored.finish,
                        )
                        .with_arg("failed_at_step", failed_at as f64)
                        .with_arg("restored_step", restored.bundle.step as f64)
                        .with_arg("survivor_shards", survivor.num_shards as f64),
                    );
                }
                restore_seconds += restored.finish - now;
                now = restored.finish;
            }
            Err(e) => return Err(CkptError::Collective(e)),
        }
    }
    Ok(RollbackReport {
        total_seconds: now.seconds(),
        final_loss: steps.last().map_or(f64::INFINITY, |s| s.loss),
        checkpoints_saved,
        save_seconds,
        restore_seconds,
        rollbacks,
        replayed_steps,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_topology::ChipId;
    use multipod_trace::{Recorder, TraceEvent};

    fn demo() -> RollbackConfig {
        RollbackConfig::demo(MultipodConfig::mesh(4, 4, true))
    }

    #[test]
    fn fault_free_rollback_campaign_just_pays_for_checkpoints() {
        let report = run_rollback_campaign(&demo(), &FaultPlan::new(), None).unwrap();
        assert_eq!(report.steps.len(), 8);
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.replayed_steps, 0);
        // Step 0 baseline + saves after steps 3 and 6.
        assert_eq!(report.checkpoints_saved, 3);
        assert!(report.save_seconds > 0.0);
        assert_eq!(report.restore_seconds, 0.0);
        assert!(report.final_loss < report.steps[0].loss);
    }

    #[test]
    fn chip_loss_rolls_back_replays_and_matches_fault_free_loss() {
        let config = demo();
        let clean = run_rollback_campaign(&config, &FaultPlan::new(), None).unwrap();

        // Kill a chip mid-window: after step 4 ran, before step 5.
        let t = SimTime::from_seconds(clean.steps[4].start_seconds + 1e-9);
        let plan = FaultPlan::new().chip_down(t, ChipId(5));
        let recorder = Recorder::shared();
        let faulty = run_rollback_campaign(&config, &plan, Some(recorder.clone())).unwrap();

        assert_eq!(faulty.rollbacks, 1);
        assert!(faulty.replayed_steps >= 1, "the lost window must replay");
        assert!(faulty.steps.iter().any(|s| s.replayed));
        assert!(faulty.steps.iter().any(|s| s.degraded));
        // Same objective, survivor renormalization → same final loss up
        // to f32 rounding (well inside bf16 tolerance).
        let tol = 1e-3 * (1.0 + clean.final_loss.abs());
        assert!(
            (faulty.final_loss - clean.final_loss).abs() <= tol,
            "rollback must reconverge: {} vs {}",
            faulty.final_loss,
            clean.final_loss
        );
        // Recovery costs strictly more simulated time.
        assert!(faulty.total_seconds > clean.total_seconds);
        assert!(faulty.restore_seconds > 0.0);
        // The rollback window is visible as a traced span.
        let rollback_spans = recorder
            .events()
            .into_iter()
            .filter(|e| {
                matches!(e, TraceEvent::Span(s)
                    if s.category == SpanCategory::Checkpoint && s.name == "rollback")
            })
            .count();
        assert_eq!(rollback_spans, 1);
    }

    #[test]
    fn rollback_campaign_is_deterministic() {
        let config = demo();
        let t = SimTime::from_seconds(0.004);
        let plan = FaultPlan::new().chip_down(t, ChipId(9));
        let a = run_rollback_campaign(&config, &plan, None).unwrap();
        let b = run_rollback_campaign(&config, &plan, None).unwrap();
        assert_eq!(a.final_loss, b.final_loss);
        assert_eq!(a.total_seconds, b.total_seconds);
        assert_eq!(a.steps.len(), b.steps.len());
    }
}
