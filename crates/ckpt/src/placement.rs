//! Shard placement: which live chip owns which slice of the global
//! state, and which host stores it.
//!
//! The placement mirrors weight-update sharding (§3.2): every live chip
//! owns one contiguous shard of the flattened model + optimizer state, in
//! chip-id order, so the chip that applies a weight shard's update is the
//! chip that serializes it. Shards are grouped by host ([`HostId::of_chip`],
//! one host per [`multipod_topology::CHIPS_PER_HOST`] chips): each host
//! designates its first live chip as the **gather chip** through which the
//! host's shards funnel over ICI before streaming to host memory over
//! PCIe.

use serde::{Deserialize, Serialize};

use multipod_topology::{ChipId, HostId, Multipod};

use crate::error::CkptError;

/// One contiguous slice of the flattened global state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRange {
    /// Global shard index (= position of the owning chip in live-chip
    /// order).
    pub index: usize,
    /// First element of the slice.
    pub start: usize,
    /// One past the last element.
    pub end: usize,
}

impl ShardRange {
    /// Elements in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the shard is empty (more live chips than elements).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The equivalent slice of a tensor with `len` total elements,
    /// re-partitioned by the same balanced rule. Optimizer slots have
    /// their own lengths; slicing them through the *weight* shard's
    /// index keeps every slot aligned with its owning chip.
    pub fn scaled_to(&self, len: usize, shards: usize) -> ShardRange {
        ShardRange {
            index: self.index,
            start: self.index * len / shards,
            end: (self.index + 1) * len / shards,
        }
    }
}

/// The shards one host stores, and the chip they funnel through.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostShards {
    /// The storing host.
    pub host: HostId,
    /// First live chip of the host: ICI gather point on save, scatter
    /// point on restore.
    pub gather_chip: ChipId,
    /// Live chips of this host, in chip-id order (aligned with
    /// `shards`).
    pub chips: Vec<ChipId>,
    /// One shard per live chip.
    pub shards: Vec<ShardRange>,
}

/// A partition of `elems` state elements across the live chips of a
/// mesh, grouped by host.
///
/// Balanced contiguous ranges (`start = i·elems/s`) keep every shard
/// within one element of the others with no divisibility requirement, so
/// the same state re-shards cleanly onto a survivor mesh of any size.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlacement {
    /// Total elements partitioned.
    pub elems: usize,
    /// Number of shards (= live chips).
    pub num_shards: usize,
    /// Per-host shard groups, in host order.
    pub hosts: Vec<HostShards>,
}

impl ShardPlacement {
    /// Plans a placement over the live chips of `mesh`.
    ///
    /// `dead` lists chip indices excluded from the placement (replicas a
    /// trainer has dropped); chips the mesh itself reports isolated are
    /// excluded as well.
    ///
    /// # Errors
    ///
    /// [`CkptError::EmptyState`] when `elems` is zero,
    /// [`CkptError::EmptyPlacement`] when no chip survives the
    /// exclusions.
    pub fn plan(
        mesh: &Multipod,
        dead: &[usize],
        elems: usize,
    ) -> Result<ShardPlacement, CkptError> {
        if elems == 0 {
            return Err(CkptError::EmptyState);
        }
        let mut live: Vec<ChipId> = mesh
            .chips()
            .filter(|c| !dead.contains(&c.index()) && !mesh.is_isolated(*c))
            .collect();
        if live.is_empty() {
            return Err(CkptError::EmptyPlacement);
        }
        // Column-major shard order, matching the trainer's survivor
        // rings: consecutive same-column chips can detour around a dead
        // chip over the torus Y wrap, which the dimension-ordered router
        // cannot do for same-row pairs. This keeps the restore broadcast
        // routable on degraded meshes.
        live.sort_by_key(|&c| {
            let coord = mesh.coord_of(c);
            (coord.x, coord.y)
        });
        let shards = live.len();
        let mut hosts: Vec<HostShards> = Vec::new();
        for (i, &chip) in live.iter().enumerate() {
            let host = HostId::of_chip(chip);
            let range = ShardRange {
                index: i,
                start: i * elems / shards,
                end: (i + 1) * elems / shards,
            };
            match hosts.iter_mut().find(|h| h.host == host) {
                Some(h) => {
                    h.chips.push(chip);
                    h.shards.push(range);
                }
                None => hosts.push(HostShards {
                    host,
                    gather_chip: chip,
                    chips: vec![chip],
                    shards: vec![range],
                }),
            }
        }
        Ok(ShardPlacement {
            elems,
            num_shards: shards,
            hosts,
        })
    }

    /// All shard ranges in shard-index order.
    pub fn ranges(&self) -> Vec<ShardRange> {
        let mut out: Vec<ShardRange> = self.hosts.iter().flat_map(|h| h.shards.clone()).collect();
        out.sort_by_key(|r| r.index);
        out
    }

    /// All live chips in shard-index order.
    pub fn chips(&self) -> Vec<ChipId> {
        let mut chips: Vec<(usize, ChipId)> = self
            .hosts
            .iter()
            .flat_map(|h| h.chips.iter().copied().zip(h.shards.iter()))
            .map(|(chip, range)| (range.index, chip))
            .collect();
        chips.sort_by_key(|(index, _)| *index);
        chips.into_iter().map(|(_, chip)| chip).collect()
    }

    /// Number of storing hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_topology::{MultipodConfig, CHIPS_PER_HOST};

    #[test]
    fn full_mesh_placement_covers_everything_once() {
        let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
        let p = ShardPlacement::plan(&mesh, &[], 64).unwrap();
        assert_eq!(p.num_shards, 16);
        assert_eq!(p.num_hosts(), 16 / CHIPS_PER_HOST);
        let ranges = p.ranges();
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 64);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "contiguous, non-overlapping");
        }
        for h in &p.hosts {
            assert_eq!(h.gather_chip, h.chips[0]);
            for c in &h.chips {
                assert_eq!(HostId::of_chip(*c), h.host);
            }
        }
    }

    #[test]
    fn survivor_placement_excludes_dead_chips_and_rebalances() {
        let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
        let p = ShardPlacement::plan(&mesh, &[5], 64).unwrap();
        assert_eq!(p.num_shards, 15);
        assert!(!p.chips().contains(&ChipId(5)));
        let ranges = p.ranges();
        assert_eq!(ranges.last().unwrap().end, 64);
        // Balanced: 64 over 15 chips → shards of 4 or 5 elements.
        assert!(ranges.iter().all(|r| (4..=5).contains(&r.len())));
    }

    #[test]
    fn indivisible_and_tiny_states_still_partition() {
        let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
        let p = ShardPlacement::plan(&mesh, &[], 3).unwrap();
        let total: usize = p.ranges().iter().map(ShardRange::len).sum();
        assert_eq!(total, 3);
        assert!(p.ranges().iter().filter(|r| r.is_empty()).count() >= 13);
    }

    #[test]
    fn scaled_ranges_follow_the_same_partition_rule() {
        let r = ShardRange {
            index: 2,
            start: 8,
            end: 12,
        };
        let scaled = r.scaled_to(16, 16);
        assert_eq!((scaled.start, scaled.end), (2, 3));
        let identity = r.scaled_to(64, 16);
        assert_eq!((identity.start, identity.end), (8, 12));
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        let mesh = Multipod::new(MultipodConfig::mesh(2, 2, true));
        assert_eq!(
            ShardPlacement::plan(&mesh, &[], 0),
            Err(CkptError::EmptyState)
        );
        assert_eq!(
            ShardPlacement::plan(&mesh, &[0, 1, 2, 3], 8),
            Err(CkptError::EmptyPlacement)
        );
    }
}
