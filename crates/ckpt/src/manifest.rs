//! Content-hashed, versioned checkpoint manifests.
//!
//! A manifest records what a checkpoint *is* — its format version, the
//! training step it snapshots, the shard layout, and an FNV-1a content
//! hash per shard plus one over the whole checkpoint — so a restore can
//! verify integrity and version compatibility before any simulated byte
//! moves.

use serde::{Deserialize, Serialize};

use multipod_tensor::Tensor;

use crate::placement::{ShardPlacement, ShardRange};

/// Manifest format version this build reads and writes.
pub const CKPT_FORMAT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// FNV-1a over a byte slice: tiny, dependency-free, and deterministic
/// across platforms (unlike `DefaultHasher`, whose seed is unstable).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a tensor's f32 payload in little-endian byte order.
pub fn hash_tensor(t: &Tensor) -> u64 {
    let mut h = FNV_OFFSET;
    for v in t.data() {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Folds several hashes into one (order-sensitive).
pub fn combine_hashes(hashes: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for x in hashes {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// One shard's entry in the manifest.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Shard index.
    pub shard: usize,
    /// First weight element of the shard.
    pub start: usize,
    /// One past the last weight element.
    pub end: usize,
    /// Index of the host storing the shard.
    pub host: u32,
    /// FNV-1a over the shard's weight and optimizer payloads.
    pub hash: u64,
}

impl ShardEntry {
    /// The weight-range view of the entry.
    pub fn range(&self) -> ShardRange {
        ShardRange {
            index: self.shard,
            start: self.start,
            end: self.end,
        }
    }
}

/// Everything needed to validate and re-shard a checkpoint.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version the checkpoint was written with.
    pub format_version: u32,
    /// Training step the checkpoint snapshots.
    pub step: u64,
    /// Total weight elements.
    pub elems: usize,
    /// Optimizer slot names and their global lengths, sorted by name.
    pub optim_slots: Vec<(String, usize)>,
    /// Per-shard entries, in shard order.
    pub shards: Vec<ShardEntry>,
    /// Hash folding every shard hash, in shard order.
    pub content_hash: u64,
}

impl Manifest {
    /// Builds a manifest from a placement and per-shard payload hashes
    /// (one per shard, in shard-index order).
    pub fn new(
        step: u64,
        placement: &ShardPlacement,
        optim_slots: Vec<(String, usize)>,
        shard_hashes: &[u64],
    ) -> Manifest {
        let mut shards = Vec::with_capacity(placement.num_shards);
        for host in &placement.hosts {
            for range in &host.shards {
                shards.push(ShardEntry {
                    shard: range.index,
                    start: range.start,
                    end: range.end,
                    host: host.host.0,
                    hash: shard_hashes[range.index],
                });
            }
        }
        shards.sort_by_key(|s| s.shard);
        let content_hash = combine_hashes(shards.iter().map(|s| s.hash));
        Manifest {
            format_version: CKPT_FORMAT_VERSION,
            step,
            elems: placement.elems,
            optim_slots,
            shards,
            content_hash,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_topology::{Multipod, MultipodConfig};

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn tensor_hash_is_content_sensitive() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let c = Tensor::from_slice(&[1.0, 2.0, 3.5]);
        assert_eq!(hash_tensor(&a), hash_tensor(&b));
        assert_ne!(hash_tensor(&a), hash_tensor(&c));
    }

    #[test]
    fn manifest_orders_shards_and_folds_content_hash() {
        let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
        let placement = crate::placement::ShardPlacement::plan(&mesh, &[], 32).unwrap();
        let hashes: Vec<u64> = (0..placement.num_shards as u64).map(|i| i + 100).collect();
        let m = Manifest::new(7, &placement, vec![("velocity".into(), 32)], &hashes);
        assert_eq!(m.format_version, CKPT_FORMAT_VERSION);
        assert_eq!(m.step, 7);
        assert_eq!(m.elems, 32);
        assert_eq!(m.shards.len(), 16);
        for (i, s) in m.shards.iter().enumerate() {
            assert_eq!(s.shard, i);
            assert_eq!(s.hash, i as u64 + 100);
        }
        assert_eq!(m.content_hash, combine_hashes(hashes));
        // Serializable for export alongside BENCH json.
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"format_version\":1"));
    }
}
