//! Young/Daly optimal checkpoint-interval analysis.
//!
//! With a measured checkpoint cost `C` and a mean time between failures
//! `M`, Young's first-order approximation puts the optimal interval at
//! `√(2·C·M)`; the expected overhead of checkpointing every `T` seconds
//! is `C/T` (time spent saving) plus `T/(2·M)` (expected rework after a
//! failure). The bench sweeps `T` around the optimum to show the
//! U-shaped overhead curve on the simulated multipod.

use serde::Serialize;

/// Young's optimal checkpoint interval `√(2·C·M)` in seconds.
///
/// Degenerate inputs (non-positive cost or MTBF) return 0.0 rather than
/// NaN so downstream JSON stays finite.
pub fn young_daly_interval(ckpt_seconds: f64, mtbf_seconds: f64) -> f64 {
    if ckpt_seconds <= 0.0 || mtbf_seconds <= 0.0 {
        return 0.0;
    }
    (2.0 * ckpt_seconds * mtbf_seconds).sqrt()
}

/// First-order expected overhead fraction of checkpointing every
/// `interval_seconds`: `C/T + T/(2·M)`.
pub fn overhead_fraction(interval_seconds: f64, ckpt_seconds: f64, mtbf_seconds: f64) -> f64 {
    if interval_seconds <= 0.0 || mtbf_seconds <= 0.0 {
        return f64::INFINITY;
    }
    ckpt_seconds / interval_seconds + interval_seconds / (2.0 * mtbf_seconds)
}

/// One point of an interval sweep.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct IntervalPoint {
    /// Checkpoint interval, seconds.
    pub interval_seconds: f64,
    /// Expected overhead fraction at this interval.
    pub overhead: f64,
    /// Whether this is the Young/Daly optimum of the sweep.
    pub optimal: bool,
}

/// Sweeps `points` intervals geometrically spaced across
/// `[optimum/8, optimum·8]` and marks the point nearest the optimum.
pub fn interval_curve(ckpt_seconds: f64, mtbf_seconds: f64, points: usize) -> Vec<IntervalPoint> {
    let optimum = young_daly_interval(ckpt_seconds, mtbf_seconds);
    if optimum <= 0.0 || points == 0 {
        return Vec::new();
    }
    let lo = optimum / 8.0;
    let hi = optimum * 8.0;
    let mut curve: Vec<IntervalPoint> = (0..points)
        .map(|i| {
            let f = if points == 1 {
                0.5
            } else {
                i as f64 / (points - 1) as f64
            };
            let t = lo * (hi / lo).powf(f);
            IntervalPoint {
                interval_seconds: t,
                overhead: overhead_fraction(t, ckpt_seconds, mtbf_seconds),
                optimal: false,
            }
        })
        .collect();
    let nearest = curve
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let da = (a.interval_seconds - optimum).abs();
            let db = (b.interval_seconds - optimum).abs();
            da.partial_cmp(&db).expect("finite sweep intervals")
        })
        .map(|(i, _)| i);
    if let Some(i) = nearest {
        curve[i].optimal = true;
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_matches_the_closed_form() {
        // C = 2s, M = 400s → T* = √(2·2·400) = 40s.
        let t = young_daly_interval(2.0, 400.0);
        assert!((t - 40.0).abs() < 1e-12);
        assert_eq!(young_daly_interval(0.0, 400.0), 0.0);
        assert_eq!(young_daly_interval(2.0, 0.0), 0.0);
    }

    #[test]
    fn overhead_curve_has_its_minimum_at_the_optimum() {
        let (c, m) = (2.0, 400.0);
        let optimum = young_daly_interval(c, m);
        let curve = interval_curve(c, m, 33);
        assert_eq!(curve.len(), 33);
        let best = curve
            .iter()
            .min_by(|a, b| a.overhead.partial_cmp(&b.overhead).unwrap())
            .unwrap();
        // The sweep's overhead minimum sits at (or adjacent to) the
        // marked Young/Daly point.
        assert!(
            (best.interval_seconds / optimum).ln().abs() < 0.3,
            "minimum {} should be near optimum {optimum}",
            best.interval_seconds
        );
        assert_eq!(curve.iter().filter(|p| p.optimal).count(), 1);
        // Both extremes are strictly worse than the optimum.
        let at_opt = overhead_fraction(optimum, c, m);
        assert!(curve[0].overhead > at_opt);
        assert!(curve.last().unwrap().overhead > at_opt);
    }

    #[test]
    fn degenerate_sweeps_are_empty_not_nan() {
        assert!(interval_curve(0.0, 100.0, 9).is_empty());
        assert!(interval_curve(1.0, 100.0, 0).is_empty());
        assert!(overhead_fraction(0.0, 1.0, 1.0).is_infinite());
    }
}
