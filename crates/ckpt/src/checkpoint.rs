//! Sharded checkpoint save and restore, timed on the simulated network.
//!
//! **Save** follows the hardware path a real multipod would use: every
//! live chip owns one shard of the flattened model + optimizer state
//! (mirroring weight-update sharding), shards funnel over ICI to each
//! host's gather chip, and each host streams its shards to host memory
//! over PCIe using the same cost model as the input pipeline. The result
//! is a [`Checkpoint`]: shard payloads plus a content-hashed, versioned
//! [`Manifest`].
//!
//! **Restore** is elastic: the stored shards re-assemble into the global
//! state (pure concatenation — bit-exact regardless of the original
//! shard count) and re-shard onto whatever placement the *surviving*
//! mesh supports. Timing models hosts streaming shards back up over
//! PCIe, routed ICI transfers into a restore root, and a ring broadcast
//! propagating the state to every live chip.

use multipod_collectives::{ring, Precision};
use multipod_optim::{Optimizer, StateKey, StateSlot};
use multipod_simnet::{Network, SimTime};
use multipod_telemetry::{MetricId, Subsystem};
use multipod_tensor::Tensor;
use multipod_topology::{ChipId, HostId, Ring};
use multipod_trace::{SpanCategory, SpanEvent, Track};

use crate::error::CkptError;
use crate::manifest::{combine_hashes, hash_tensor, Manifest, CKPT_FORMAT_VERSION};
use crate::placement::{ShardPlacement, ShardRange};

/// Host-link cost model for checkpoint streaming: one latency charge per
/// host transfer plus bytes over bandwidth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcieCost {
    /// Per-transfer latency, seconds.
    pub latency_seconds: f64,
    /// Host link bandwidth, bytes/second.
    pub bandwidth_bytes_per_sec: f64,
}

impl PcieCost {
    /// The PCIe figures the input pipeline uses for Criteo ingestion
    /// (`DlrmInputConfig::criteo`): 10 µs latency, 12 GB/s.
    pub fn criteo() -> PcieCost {
        let dlrm = multipod_input::dlrm::DlrmInputConfig::criteo();
        PcieCost {
            latency_seconds: dlrm.pcie_latency,
            bandwidth_bytes_per_sec: dlrm.pcie_bandwidth,
        }
    }

    /// Seconds to move `bytes` across the host link.
    pub fn time(&self, bytes: u64) -> f64 {
        self.latency_seconds + bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

impl Default for PcieCost {
    fn default() -> PcieCost {
        PcieCost::criteo()
    }
}

/// The global training state a checkpoint snapshots: weights plus
/// whole-slot optimizer tensors, all flattened.
#[derive(Clone, Debug, PartialEq)]
pub struct StateBundle {
    /// Training step the state belongs to.
    pub step: u64,
    /// Flattened model weights.
    pub weights: Tensor,
    /// Optimizer slots as `(name, global tensor)`, sorted by name. Each
    /// global tensor concatenates the optimizer's per-shard tensors in
    /// shard order.
    pub optim: Vec<(String, Tensor)>,
}

impl StateBundle {
    /// Gathers an optimizer's exported state into whole-slot tensors.
    ///
    /// The trainer keys optimizer state as `{layer: 0, shard: 0..n}`
    /// with one entry per replica, so every slot name must export
    /// exactly `shards` tensors; they concatenate in shard order into
    /// one global tensor per slot.
    ///
    /// # Errors
    ///
    /// [`CkptError::OptimStateMismatch`] when a slot's shard count
    /// disagrees with `shards`.
    pub fn from_optimizer<O: Optimizer>(
        step: u64,
        weights: &Tensor,
        optimizer: &O,
        shards: usize,
    ) -> Result<StateBundle, CkptError> {
        let exported = optimizer.export_state();
        let mut optim: Vec<(String, Tensor)> = Vec::new();
        let mut i = 0;
        while i < exported.len() {
            let name = exported[i].name.clone();
            let group: Vec<&StateSlot> = exported[i..]
                .iter()
                .take_while(|s| s.name == name)
                .collect();
            let count = group.len();
            if count != shards {
                return Err(CkptError::OptimStateMismatch {
                    slot: name,
                    expected_shards: shards,
                    got_shards: count,
                });
            }
            // export_state is (name, key)-sorted, so the group is already
            // in shard order; flatten regardless of per-shard rank (LAMB's
            // step counter exports rank-0 scalars).
            let mut data = Vec::new();
            for slot in &group {
                data.extend_from_slice(slot.tensor.data());
            }
            optim.push((name, Tensor::from_slice(&data)));
            i += count;
        }
        Ok(StateBundle {
            step,
            weights: weights.clone(),
            optim,
        })
    }

    /// Scatters the whole-slot tensors back into an optimizer as
    /// `shards` evenly-split state entries (the inverse of
    /// [`StateBundle::from_optimizer`]).
    ///
    /// # Errors
    ///
    /// [`CkptError::Tensor`] when a slot does not split evenly across
    /// `shards` (the trainer always shards state evenly).
    pub fn restore_optimizer<O: Optimizer>(
        &self,
        optimizer: &mut O,
        shards: usize,
    ) -> Result<(), CkptError> {
        let mut slots = Vec::new();
        for (name, global) in &self.optim {
            let parts = global.split(0, shards)?;
            for (s, part) in parts.into_iter().enumerate() {
                slots.push(StateSlot {
                    key: StateKey { layer: 0, shard: s },
                    name: name.clone(),
                    tensor: part,
                });
            }
        }
        optimizer.import_state(&slots);
        Ok(())
    }

    /// Total elements across weights and optimizer slots.
    pub fn total_elems(&self) -> usize {
        self.weights.len() + self.optim.iter().map(|(_, t)| t.len()).sum::<usize>()
    }

    /// Slot names with their global lengths, for the manifest.
    pub fn slot_lens(&self) -> Vec<(String, usize)> {
        self.optim
            .iter()
            .map(|(n, t)| (n.clone(), t.len()))
            .collect()
    }
}

/// One shard's payload: a weight slice plus the matching slice of every
/// optimizer slot.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardData {
    /// The weight range this shard covers.
    pub range: ShardRange,
    /// Weight slice.
    pub weights: Tensor,
    /// Per-slot slices, in bundle slot order.
    pub optim: Vec<(String, Tensor)>,
}

impl ShardData {
    /// Elements in the shard across weights and optimizer slices.
    pub fn elems(&self) -> usize {
        self.weights.len() + self.optim.iter().map(|(_, t)| t.len()).sum::<usize>()
    }

    /// Bytes on the wire / host link for this shard (f32 payloads).
    pub fn bytes(&self) -> u64 {
        4 * self.elems() as u64
    }

    /// Content hash over the shard's payloads, in slot order.
    pub fn hash(&self) -> u64 {
        combine_hashes(
            std::iter::once(hash_tensor(&self.weights))
                .chain(self.optim.iter().map(|(_, t)| hash_tensor(t))),
        )
    }
}

/// A saved checkpoint: manifest plus shard payloads, in shard order.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Integrity and layout metadata.
    pub manifest: Manifest,
    /// Shard payloads, indexed by shard.
    pub shards: Vec<ShardData>,
}

/// What a save cost.
#[derive(Clone, Debug)]
pub struct SaveOutcome {
    /// The checkpoint produced.
    pub checkpoint: Checkpoint,
    /// When the slowest host finished streaming.
    pub finish: SimTime,
    /// Total bytes streamed to hosts.
    pub bytes: u64,
    /// ICI gather portion of the critical path, seconds.
    pub ici_seconds: f64,
    /// PCIe streaming portion of the critical path, seconds.
    pub pcie_seconds: f64,
}

impl SaveOutcome {
    /// Total simulated save cost in seconds.
    pub fn seconds(&self, start: SimTime) -> f64 {
        self.finish - start
    }
}

/// What a restore produced and cost.
#[derive(Clone, Debug)]
pub struct RestoreOutcome {
    /// The re-assembled global state.
    pub bundle: StateBundle,
    /// When the restore broadcast completed on the slowest chip.
    pub finish: SimTime,
    /// Total bytes streamed up from hosts.
    pub bytes: u64,
    /// PCIe portion of the critical path, seconds.
    pub pcie_seconds: f64,
    /// Ring-broadcast portion of the critical path, seconds.
    pub broadcast_seconds: f64,
}

fn shard_slice(bundle: &StateBundle, range: ShardRange, num_shards: usize) -> ShardData {
    let weights = Tensor::from_slice(&bundle.weights.data()[range.start..range.end]);
    let optim = bundle
        .optim
        .iter()
        .map(|(name, global)| {
            let r = range.scaled_to(global.len(), num_shards);
            (
                name.clone(),
                Tensor::from_slice(&global.data()[r.start..r.end]),
            )
        })
        .collect();
    ShardData {
        range,
        weights,
        optim,
    }
}

/// Saves `bundle` as a sharded checkpoint over `placement`, timing the
/// ICI gather and PCIe streaming on `net`.
///
/// # Errors
///
/// [`CkptError::StateSizeMismatch`] when the bundle's weight length
/// disagrees with the placement; [`CkptError::Network`] when a gather
/// route is unavailable on the (possibly degraded) mesh.
pub fn save_checkpoint(
    net: &mut Network,
    placement: &ShardPlacement,
    bundle: &StateBundle,
    pcie: &PcieCost,
    start: SimTime,
) -> Result<SaveOutcome, CkptError> {
    if bundle.weights.len() != placement.elems {
        return Err(CkptError::StateSizeMismatch {
            expected: placement.elems,
            got: bundle.weights.len(),
        });
    }
    net.reset();
    let mut shards: Vec<ShardData> = placement
        .ranges()
        .into_iter()
        .map(|r| shard_slice(bundle, r, placement.num_shards))
        .collect();
    shards.sort_by_key(|s| s.range.index);

    let mut finish = start;
    let mut total_bytes = 0u64;
    let mut ici_seconds = 0.0f64;
    let mut pcie_seconds = 0.0f64;
    for host in &placement.hosts {
        // Funnel every non-gather chip's shard to the host's gather chip
        // over ICI; link occupancy accumulates across hosts, so gathers
        // that share links contend.
        let messages: Vec<(ChipId, ChipId, u64)> = host
            .chips
            .iter()
            .zip(&host.shards)
            .filter(|(chip, range)| **chip != host.gather_chip && !range.is_empty())
            .map(|(chip, range)| (*chip, host.gather_chip, shards[range.index].bytes()))
            .collect();
        let mut gathered = start;
        for (from, to, bytes) in messages {
            match net.transfer(from, to, bytes, start) {
                Ok(t) => gathered = gathered.max(t.finish),
                // A dead row-sibling can leave the gather chip unroutable
                // even though both chips share a host; the shard then
                // streams over the chip's own PCIe lane instead of ICI.
                Err(e) if e.is_no_route() => {}
                Err(e) => return Err(e.into()),
            }
        }
        let host_bytes: u64 = host.shards.iter().map(|r| shards[r.index].bytes()).sum();
        let streamed = gathered + pcie.time(host_bytes);
        total_bytes += host_bytes;
        ici_seconds = ici_seconds.max(gathered - start);
        pcie_seconds = pcie_seconds.max(streamed - gathered);
        finish = finish.max(streamed);
        if let Some(sink) = net.trace_sink() {
            sink.record_span(
                SpanEvent::new(
                    Track::Host { host: host.host.0 },
                    SpanCategory::Checkpoint,
                    "ckpt-save-host",
                    start,
                    streamed,
                )
                .with_arg("bytes", host_bytes as f64)
                .with_arg("shards", host.shards.len() as f64),
            );
        }
    }
    if let Some(sink) = net.trace_sink() {
        sink.record_span(
            SpanEvent::new(
                Track::Sim,
                SpanCategory::Checkpoint,
                "ckpt-save",
                start,
                finish,
            )
            .with_arg("step", bundle.step as f64)
            .with_arg("bytes", total_bytes as f64)
            .with_arg("shards", placement.num_shards as f64)
            .with_arg("hosts", placement.num_hosts() as f64),
        );
    }

    if let Some(telemetry) = net.telemetry() {
        telemetry.inc_counter(MetricId::new(Subsystem::Ckpt, "saves"), 1);
        telemetry.inc_counter(MetricId::new(Subsystem::Ckpt, "saved_bytes"), total_bytes);
        telemetry.observe(
            MetricId::new(Subsystem::Ckpt, "save_seconds"),
            finish - start,
        );
        telemetry.observe(
            MetricId::new(Subsystem::Ckpt, "save_ici_seconds"),
            ici_seconds,
        );
        telemetry.observe(
            MetricId::new(Subsystem::Ckpt, "save_pcie_seconds"),
            pcie_seconds,
        );
    }

    let hashes: Vec<u64> = shards.iter().map(ShardData::hash).collect();
    let manifest = Manifest::new(bundle.step, placement, bundle.slot_lens(), &hashes);
    Ok(SaveOutcome {
        checkpoint: Checkpoint { manifest, shards },
        finish,
        bytes: total_bytes,
        ici_seconds,
        pcie_seconds,
    })
}

/// Restores `ckpt` onto `target` — possibly a smaller survivor mesh —
/// verifying version and shard integrity first, then timing hosts
/// streaming shards up over PCIe, routed ICI transfers into the restore
/// root, and a ring broadcast to every live chip.
///
/// The returned bundle is re-assembled by pure concatenation, so the
/// state is bit-identical to what was saved no matter how the target
/// placement re-shards it.
///
/// # Errors
///
/// [`CkptError::UnsupportedVersion`], [`CkptError::ShardCorrupt`], and
/// [`CkptError::StateSizeMismatch`] on validation failures;
/// [`CkptError::Network`]/[`CkptError::Collective`] when the surviving
/// mesh cannot route the restore traffic.
pub fn restore_checkpoint(
    net: &mut Network,
    target: &ShardPlacement,
    ckpt: &Checkpoint,
    pcie: &PcieCost,
    start: SimTime,
) -> Result<RestoreOutcome, CkptError> {
    let manifest = &ckpt.manifest;
    if manifest.format_version != CKPT_FORMAT_VERSION {
        return Err(CkptError::UnsupportedVersion {
            found: manifest.format_version,
            supported: CKPT_FORMAT_VERSION,
        });
    }
    if manifest.elems != target.elems {
        return Err(CkptError::StateSizeMismatch {
            expected: target.elems,
            got: manifest.elems,
        });
    }
    for (entry, shard) in manifest.shards.iter().zip(&ckpt.shards) {
        let got = shard.hash();
        if got != entry.hash {
            return Err(CkptError::ShardCorrupt {
                shard: entry.shard,
                expected: entry.hash,
                got,
            });
        }
    }

    // Re-assemble the global bundle: shards are contiguous in shard
    // order, so this is pure concatenation.
    let mut weights = Vec::with_capacity(manifest.elems);
    for shard in &ckpt.shards {
        weights.extend_from_slice(shard.weights.data());
    }
    if weights.len() != manifest.elems {
        return Err(CkptError::StateSizeMismatch {
            expected: manifest.elems,
            got: weights.len(),
        });
    }
    let mut optim = Vec::with_capacity(manifest.optim_slots.len());
    for (i, (name, len)) in manifest.optim_slots.iter().enumerate() {
        let mut data = Vec::with_capacity(*len);
        for shard in &ckpt.shards {
            data.extend_from_slice(shard.optim[i].1.data());
        }
        optim.push((name.clone(), Tensor::from_slice(&data)));
    }
    let bundle = StateBundle {
        step: manifest.step,
        weights: Tensor::from_slice(&weights),
        optim,
    };

    // Timing: hosts stream their shards up over PCIe, routed transfers
    // carry them to the restore root, and a ring broadcast fans the
    // state out to every live chip of the target placement.
    net.reset();
    let live = target.chips();
    let root = live[0];
    let mut ingest_finish = start;
    let mut total_bytes = 0u64;
    let mut pcie_seconds = 0.0f64;
    let mut host_bytes: Vec<(u32, u64)> = Vec::new();
    for entry in &manifest.shards {
        let bytes = ckpt.shards[entry.shard].bytes();
        match host_bytes.iter_mut().find(|(h, _)| *h == entry.host) {
            Some((_, b)) => *b += bytes,
            None => host_bytes.push((entry.host, bytes)),
        }
    }
    for &(host, bytes) in &host_bytes {
        let up = pcie.time(bytes);
        let ready = start + up;
        // The host's shards surface at its first live chip on the target
        // mesh; a host whose chips all died hands its data straight to
        // the root (fetched over the datacenter network, ICI cost zero).
        let entry_chip = live
            .iter()
            .copied()
            .find(|c| HostId::of_chip(*c) == HostId(host))
            .unwrap_or(root);
        let routed = if entry_chip == root {
            ready
        } else {
            match net.transfer(entry_chip, root, bytes, ready) {
                Ok(t) => t.finish,
                // Entry chip cut off from the root on the degraded mesh:
                // the host's shards reach the root host over the
                // datacenter network instead (ICI cost zero, like the
                // all-chips-dead case).
                Err(e) if e.is_no_route() => ready,
                Err(e) => return Err(e.into()),
            }
        };
        total_bytes += bytes;
        pcie_seconds = pcie_seconds.max(up);
        ingest_finish = ingest_finish.max(routed);
        if let Some(sink) = net.trace_sink() {
            sink.record_span(
                SpanEvent::new(
                    Track::Host { host },
                    SpanCategory::Checkpoint,
                    "ckpt-restore-host",
                    start,
                    routed,
                )
                .with_arg("bytes", bytes as f64),
            );
        }
    }
    let finish = if live.len() >= 2 {
        let ring = Ring::new(live.clone(), false, 1);
        let payload = &bundle.weights;
        let out = ring::broadcast(net, &ring, 0, payload, Precision::F32, ingest_finish)?;
        out.time
    } else {
        ingest_finish
    };
    if let Some(sink) = net.trace_sink() {
        sink.record_span(
            SpanEvent::new(
                Track::Sim,
                SpanCategory::Checkpoint,
                "ckpt-restore",
                start,
                finish,
            )
            .with_arg("step", manifest.step as f64)
            .with_arg("bytes", total_bytes as f64)
            .with_arg("target_shards", target.num_shards as f64),
        );
    }
    if let Some(telemetry) = net.telemetry() {
        telemetry.inc_counter(MetricId::new(Subsystem::Ckpt, "restores"), 1);
        telemetry.inc_counter(
            MetricId::new(Subsystem::Ckpt, "restored_bytes"),
            total_bytes,
        );
        telemetry.observe(
            MetricId::new(Subsystem::Ckpt, "restore_seconds"),
            finish - start,
        );
        telemetry.observe(
            MetricId::new(Subsystem::Ckpt, "restore_pcie_seconds"),
            pcie_seconds,
        );
        telemetry.observe(
            MetricId::new(Subsystem::Ckpt, "restore_broadcast_seconds"),
            finish - ingest_finish,
        );
    }
    Ok(RestoreOutcome {
        bundle,
        finish,
        bytes: total_bytes,
        pcie_seconds,
        broadcast_seconds: finish - ingest_finish,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use multipod_optim::{Optimizer, SgdMomentum};
    use multipod_simnet::NetworkConfig;
    use multipod_tensor::{Shape, TensorRng};
    use multipod_topology::{Multipod, MultipodConfig};
    use multipod_trace::{Recorder, TraceEvent};

    fn network(mesh: MultipodConfig) -> Network {
        Network::new(Multipod::new(mesh), NetworkConfig::tpu_v3())
    }

    fn warm_bundle(elems: usize, shards: usize) -> (StateBundle, SgdMomentum) {
        let mut rng = TensorRng::seed(11);
        let w = rng.uniform(Shape::vector(elems), -1.0, 1.0);
        let g = rng.uniform(Shape::vector(elems), -1.0, 1.0);
        let mut opt = SgdMomentum::new(1.0, 0.9);
        let w_shards = w.split(0, shards).unwrap();
        let g_shards = g.split(0, shards).unwrap();
        for s in 0..shards {
            opt.prepare(StateKey { layer: 0, shard: s }, &w_shards[s], &g_shards[s])
                .unwrap();
        }
        let bundle = StateBundle::from_optimizer(3, &w, &opt, shards).unwrap();
        (bundle, opt)
    }

    #[test]
    fn save_then_restore_is_bit_identical_on_the_same_mesh() {
        let mut net = network(MultipodConfig::mesh(4, 4, true));
        let placement = ShardPlacement::plan(net.mesh(), &[], 64).unwrap();
        let (bundle, _) = warm_bundle(64, 16);
        let pcie = PcieCost::criteo();
        let saved = save_checkpoint(&mut net, &placement, &bundle, &pcie, SimTime::ZERO).unwrap();
        assert!(saved.finish > SimTime::ZERO);
        assert_eq!(saved.bytes, 4 * bundle.total_elems() as u64);
        let restored =
            restore_checkpoint(&mut net, &placement, &saved.checkpoint, &pcie, saved.finish)
                .unwrap();
        assert_eq!(restored.bundle, bundle, "round trip must be bit-identical");
        assert!(restored.finish > saved.finish);
    }

    #[test]
    fn restore_reshards_onto_a_survivor_mesh() {
        let mut net = network(MultipodConfig::mesh(4, 4, true));
        let full = ShardPlacement::plan(net.mesh(), &[], 64).unwrap();
        let (bundle, mut opt) = warm_bundle(64, 16);
        let pcie = PcieCost::criteo();
        let saved = save_checkpoint(&mut net, &full, &bundle, &pcie, SimTime::ZERO).unwrap();

        net.fail_chip(ChipId(5), saved.finish);
        let survivor = ShardPlacement::plan(net.mesh(), &[5], 64).unwrap();
        let restored =
            restore_checkpoint(&mut net, &survivor, &saved.checkpoint, &pcie, saved.finish)
                .unwrap();
        assert_eq!(restored.bundle, bundle);
        // The re-assembled slots drop back into an optimizer losslessly.
        restored.bundle.restore_optimizer(&mut opt, 16).unwrap();
        let re_export = StateBundle::from_optimizer(3, &bundle.weights, &opt, 16).unwrap();
        assert_eq!(re_export, bundle);
    }

    #[test]
    fn corruption_and_version_skew_are_rejected() {
        let mut net = network(MultipodConfig::mesh(2, 2, true));
        let placement = ShardPlacement::plan(net.mesh(), &[], 16).unwrap();
        let (bundle, _) = warm_bundle(16, 4);
        let pcie = PcieCost::criteo();
        let saved = save_checkpoint(&mut net, &placement, &bundle, &pcie, SimTime::ZERO).unwrap();

        let mut corrupt = saved.checkpoint.clone();
        corrupt.shards[2].weights.data_mut()[0] += 1.0;
        let err = restore_checkpoint(&mut net, &placement, &corrupt, &pcie, SimTime::ZERO);
        assert!(matches!(err, Err(CkptError::ShardCorrupt { shard: 2, .. })));

        let mut skewed = saved.checkpoint.clone();
        skewed.manifest.format_version = 99;
        let err = restore_checkpoint(&mut net, &placement, &skewed, &pcie, SimTime::ZERO);
        assert!(matches!(
            err,
            Err(CkptError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn save_and_restore_emit_checkpoint_spans() {
        let recorder = Recorder::shared();
        let mut net = network(MultipodConfig::mesh(4, 4, true));
        net.set_trace_sink(recorder.clone() as Arc<dyn multipod_trace::TraceSink>);
        let placement = ShardPlacement::plan(net.mesh(), &[], 64).unwrap();
        let (bundle, _) = warm_bundle(64, 16);
        let pcie = PcieCost::criteo();
        let saved = save_checkpoint(&mut net, &placement, &bundle, &pcie, SimTime::ZERO).unwrap();
        restore_checkpoint(&mut net, &placement, &saved.checkpoint, &pcie, saved.finish).unwrap();
        let spans: Vec<String> = recorder
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Span(s) if s.category == SpanCategory::Checkpoint => {
                    Some(s.name.to_string())
                }
                _ => None,
            })
            .collect();
        assert!(spans.iter().any(|n| n == "ckpt-save"));
        assert!(spans.iter().any(|n| n == "ckpt-save-host"));
        assert!(spans.iter().any(|n| n == "ckpt-restore"));
        assert!(spans.iter().any(|n| n == "ckpt-restore-host"));
    }

    #[test]
    fn save_and_restore_record_telemetry() {
        let telemetry = multipod_telemetry::Telemetry::shared();
        let mut net = network(MultipodConfig::mesh(4, 4, true));
        net.set_telemetry(telemetry.clone());
        let placement = ShardPlacement::plan(net.mesh(), &[], 64).unwrap();
        let (bundle, _) = warm_bundle(64, 16);
        let pcie = PcieCost::criteo();
        let saved = save_checkpoint(&mut net, &placement, &bundle, &pcie, SimTime::ZERO).unwrap();
        restore_checkpoint(&mut net, &placement, &saved.checkpoint, &pcie, saved.finish).unwrap();

        let snap = telemetry.snapshot();
        assert_eq!(snap.counter(&MetricId::new(Subsystem::Ckpt, "saves")), 1);
        assert_eq!(snap.counter(&MetricId::new(Subsystem::Ckpt, "restores")), 1);
        assert_eq!(
            snap.counter(&MetricId::new(Subsystem::Ckpt, "saved_bytes")),
            saved.bytes
        );
        let save_hist = snap
            .histogram(&MetricId::new(Subsystem::Ckpt, "save_seconds"))
            .expect("save time observed");
        assert_eq!(save_hist.count, 1);
        assert!(save_hist.sum > 0.0);
    }

    #[test]
    fn optimizer_shard_mismatch_is_a_typed_error() {
        let (bundle, opt) = warm_bundle(16, 4);
        drop(bundle);
        let w = Tensor::zeros(Shape::vector(16));
        let err = StateBundle::from_optimizer(0, &w, &opt, 8);
        assert!(matches!(
            err,
            Err(CkptError::OptimStateMismatch {
                expected_shards: 8,
                got_shards: 4,
                ..
            })
        ));
    }
}
