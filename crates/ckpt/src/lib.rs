//! Sharded checkpointing and elastic restart over the simulated
//! multipod.
//!
//! The paper's multipod runs hundreds of hosts for days; at that scale
//! the interesting checkpoint questions are *where the bytes flow* and
//! *what a recovery costs in step time*, not file formats. This crate
//! models both on the same simulated network as training:
//!
//! * [`ShardPlacement`] partitions the flattened model + optimizer
//!   state across live chips (mirroring weight-update sharding) and
//!   groups shards by host.
//! * [`save_checkpoint`] gathers shards over ICI to each host's gather
//!   chip and streams them to host memory over the input pipeline's
//!   PCIe cost model, producing a content-hashed, versioned
//!   [`Manifest`].
//! * [`restore_checkpoint`] validates integrity, re-assembles the
//!   global state bit-exactly, and re-shards it onto whatever placement
//!   the surviving mesh supports — the *elastic* half: a checkpoint
//!   written by 1024 chips restores onto 1023.
//! * [`run_rollback_campaign`] drives a fault campaign under
//!   [`RecoveryMode::Rollback`](multipod_core::trainer::RecoveryMode):
//!   on chip loss the trainer escalates, the campaign restores the last
//!   checkpoint onto the survivor mesh and replays the lost window.
//! * [`young_daly_interval`] turns measured checkpoint cost and
//!   campaign failure rates into the classic optimal-interval analysis.
//! * [`pipelined_save_step`] prices a save with the task-graph step
//!   model ([`multipod_core::overlap`]) instead of stopping the world:
//!   shard writes start as their weights finish updating and hide in
//!   the step's idle PCIe time.
//!
//! Everything is deterministic: identical runs produce byte-identical
//! checkpoints, manifests, and traces.

pub mod checkpoint;
pub mod error;
pub mod interval;
pub mod manifest;
pub mod pipelined;
pub mod placement;
pub mod rollback;

pub use checkpoint::{
    restore_checkpoint, save_checkpoint, Checkpoint, PcieCost, RestoreOutcome, SaveOutcome,
    ShardData, StateBundle,
};
pub use error::CkptError;
pub use interval::{interval_curve, overhead_fraction, young_daly_interval, IntervalPoint};
pub use manifest::{fnv1a, hash_tensor, Manifest, ShardEntry, CKPT_FORMAT_VERSION};
pub use pipelined::{checkpoint_overlap, pipelined_save_step, PipelinedSave};
pub use placement::{HostShards, ShardPlacement, ShardRange};
pub use rollback::{run_rollback_campaign, RollbackConfig, RollbackReport, RollbackStep};
