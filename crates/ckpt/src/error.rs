//! Typed checkpoint errors.

use std::fmt;

use multipod_collectives::CollectiveError;
use multipod_simnet::NetworkError;
use multipod_tensor::TensorError;
use multipod_topology::TopologyError;

/// Why a checkpoint operation failed.
#[derive(Clone, Debug, PartialEq)]
pub enum CkptError {
    /// No live chip is available to place shards on.
    EmptyPlacement,
    /// The state to checkpoint has no elements.
    EmptyState,
    /// The bundle's weight length disagrees with the placement or
    /// manifest.
    StateSizeMismatch {
        /// Elements the placement/manifest expects.
        expected: usize,
        /// Elements the caller supplied.
        got: usize,
    },
    /// The checkpoint was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the manifest.
        found: u32,
        /// Version this build supports
        /// ([`crate::manifest::CKPT_FORMAT_VERSION`]).
        supported: u32,
    },
    /// A shard's content hash disagrees with the manifest.
    ShardCorrupt {
        /// Shard index.
        shard: usize,
        /// Hash recorded in the manifest.
        expected: u64,
        /// Hash of the shard data actually present.
        got: u64,
    },
    /// Optimizer state could not be gathered into (or scattered out of)
    /// whole-slot tensors.
    OptimStateMismatch {
        /// Slot name (e.g. `"velocity"`, `"m"`).
        slot: String,
        /// Shards the trainer owns.
        expected_shards: usize,
        /// Shards the optimizer exported for this slot.
        got_shards: usize,
    },
    /// A collective used by the restore broadcast failed.
    Collective(CollectiveError),
    /// A routed transfer on the save/restore path failed.
    Network(NetworkError),
    /// A tensor reshape/split/concat on the (de)sharding path failed.
    Tensor(TensorError),
    /// The step model under a pipelined save failed.
    Step(multipod_core::StepError),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::EmptyPlacement => write!(f, "no live chips to place checkpoint shards on"),
            CkptError::EmptyState => write!(f, "cannot checkpoint an empty state"),
            CkptError::StateSizeMismatch { expected, got } => {
                write!(f, "state has {got} elements, expected {expected}")
            }
            CkptError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "checkpoint format version {found} unsupported (this build reads {supported})"
                )
            }
            CkptError::ShardCorrupt {
                shard,
                expected,
                got,
            } => write!(
                f,
                "shard {shard} corrupt: manifest hash {expected:#018x}, data hash {got:#018x}"
            ),
            CkptError::OptimStateMismatch {
                slot,
                expected_shards,
                got_shards,
            } => write!(
                f,
                "optimizer slot {slot:?} has {got_shards} shards, expected {expected_shards}"
            ),
            CkptError::Collective(e) => write!(f, "restore collective failed: {e}"),
            CkptError::Network(e) => write!(f, "checkpoint transfer failed: {e}"),
            CkptError::Tensor(e) => write!(f, "checkpoint tensor op failed: {e}"),
            CkptError::Step(e) => write!(f, "pipelined save step failed: {e}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Collective(e) => Some(e),
            CkptError::Network(e) => Some(e),
            CkptError::Tensor(e) => Some(e),
            CkptError::Step(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CollectiveError> for CkptError {
    fn from(e: CollectiveError) -> CkptError {
        CkptError::Collective(e)
    }
}

impl From<NetworkError> for CkptError {
    fn from(e: NetworkError) -> CkptError {
        CkptError::Network(e)
    }
}

impl From<TopologyError> for CkptError {
    fn from(e: TopologyError) -> CkptError {
        CkptError::Network(NetworkError::Route(e))
    }
}

impl From<TensorError> for CkptError {
    fn from(e: TensorError) -> CkptError {
        CkptError::Tensor(e)
    }
}

impl From<multipod_core::StepError> for CkptError {
    fn from(e: multipod_core::StepError) -> CkptError {
        CkptError::Step(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::CKPT_FORMAT_VERSION;

    #[test]
    fn displays_are_informative() {
        let msgs = [
            CkptError::EmptyPlacement.to_string(),
            CkptError::UnsupportedVersion {
                found: 9,
                supported: CKPT_FORMAT_VERSION,
            }
            .to_string(),
            CkptError::ShardCorrupt {
                shard: 3,
                expected: 1,
                got: 2,
            }
            .to_string(),
            CkptError::OptimStateMismatch {
                slot: "m".to_string(),
                expected_shards: 4,
                got_shards: 3,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
