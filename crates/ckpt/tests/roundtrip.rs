//! Property tests: checkpoint round trips are bit-identical and elastic
//! resharding tiles the state exactly.

use proptest::prelude::*;

use multipod_ckpt::{restore_checkpoint, save_checkpoint, PcieCost, ShardPlacement, StateBundle};
use multipod_collectives::Precision;
use multipod_optim::{Optimizer, SgdMomentum, StateKey};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::{ChipId, Multipod, MultipodConfig};

fn network(x: u32, y: u32) -> Network {
    Network::new(
        Multipod::new(MultipodConfig::mesh(x, y, true)),
        NetworkConfig::tpu_v3(),
    )
}

/// A state bundle with warmed momentum, optionally pre-quantized to bf16
/// values (what a bf16 training run would actually hold).
fn warm_bundle(elems: usize, shards: usize, seed: u64, bf16: bool) -> StateBundle {
    let mut rng = TensorRng::seed(seed);
    let mut w = rng.uniform(Shape::vector(elems), -1.0, 1.0);
    let mut g = rng.uniform(Shape::vector(elems), -1.0, 1.0);
    if bf16 {
        w = Precision::Bf16.quantize(&w);
        g = Precision::Bf16.quantize(&g);
    }
    let mut opt = SgdMomentum::new(1.0, 0.9);
    let w_shards = w.split(0, shards).unwrap();
    let g_shards = g.split(0, shards).unwrap();
    for s in 0..shards {
        opt.prepare(StateKey { layer: 0, shard: s }, &w_shards[s], &g_shards[s])
            .unwrap();
    }
    StateBundle::from_optimizer(1, &w, &opt, shards).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Save → restore on the same mesh is bit-identical for both f32 and
    /// bf16-valued state, on arbitrary mesh shapes and payload sizes.
    #[test]
    fn save_restore_roundtrip_is_bit_identical(
        x in 2u32..6, y in 2u32..5,
        per_shard in 1usize..9,
        seed in 0u64..1_000_000,
        bf16 in proptest::bool::ANY,
    ) {
        let mut net = network(x, y);
        let chips = net.mesh().num_chips();
        let elems = chips * per_shard;
        let placement = ShardPlacement::plan(net.mesh(), &[], elems).unwrap();
        let bundle = warm_bundle(elems, chips, seed, bf16);
        let pcie = PcieCost::criteo();
        let saved = save_checkpoint(&mut net, &placement, &bundle, &pcie, SimTime::ZERO).unwrap();
        prop_assert!(saved.finish > SimTime::ZERO);
        let restored =
            restore_checkpoint(&mut net, &placement, &saved.checkpoint, &pcie, saved.finish)
                .unwrap();
        prop_assert_eq!(&restored.bundle, &bundle);
        // Determinism: a second save of the same state produces the same
        // manifest, hashes included.
        let mut net2 = network(x, y);
        let again = save_checkpoint(&mut net2, &placement, &bundle, &pcie, SimTime::ZERO).unwrap();
        prop_assert_eq!(again.checkpoint.manifest, saved.checkpoint.manifest);
        prop_assert_eq!(again.finish, saved.finish);
    }

    /// A checkpoint saved on the full mesh restores bit-identically onto
    /// a survivor mesh with one chip dead, and drops back into an
    /// optimizer losslessly.
    #[test]
    fn restore_onto_survivor_mesh_preserves_state_bitwise(
        x in 2u32..6, y in 2u32..5,
        per_shard in 1usize..9,
        dead_sel in 0usize..1000,
        seed in 0u64..1_000_000,
        bf16 in proptest::bool::ANY,
    ) {
        let mut net = network(x, y);
        let chips = net.mesh().num_chips();
        let elems = chips * per_shard;
        let full = ShardPlacement::plan(net.mesh(), &[], elems).unwrap();
        let bundle = warm_bundle(elems, chips, seed, bf16);
        let pcie = PcieCost::criteo();
        let saved = save_checkpoint(&mut net, &full, &bundle, &pcie, SimTime::ZERO).unwrap();

        let dead = dead_sel % chips;
        net.fail_chip(ChipId(dead as u32), saved.finish);
        let survivor = ShardPlacement::plan(net.mesh(), &[dead], elems).unwrap();
        prop_assert_eq!(survivor.num_shards, chips - 1);
        let restored =
            restore_checkpoint(&mut net, &survivor, &saved.checkpoint, &pcie, saved.finish)
                .unwrap();
        prop_assert_eq!(&restored.bundle, &bundle);
        prop_assert!(restored.finish > saved.finish);

        // The restored slots import/export through an optimizer without
        // drift.
        let mut opt = SgdMomentum::new(1.0, 0.9);
        restored.bundle.restore_optimizer(&mut opt, chips).unwrap();
        let re_export = StateBundle::from_optimizer(1, &bundle.weights, &opt, chips).unwrap();
        prop_assert_eq!(re_export, bundle);
    }

    /// Re-sharding math: survivor placements tile the weight range and
    /// every optimizer slot exactly — contiguous, non-overlapping, and
    /// complete — for arbitrary dead subsets.
    #[test]
    fn reshard_ranges_partition_state_exactly(
        x in 2u32..7, y in 2u32..7,
        elems in 1usize..257,
        slot_len in 1usize..129,
        dead_a in 0usize..1000,
        dead_b in 0usize..1000,
        dead_c in 0usize..1000,
    ) {
        let mesh = Multipod::new(MultipodConfig::mesh(x, y, true));
        let chips = mesh.num_chips();
        let mut dead: Vec<usize> = [dead_a % chips, dead_b % chips, dead_c % chips].to_vec();
        dead.sort_unstable();
        dead.dedup();
        if dead.len() == chips {
            dead.pop();
        }
        let placement = ShardPlacement::plan(&mesh, &dead, elems).unwrap();
        prop_assert_eq!(placement.num_shards, chips - dead.len());

        let ranges = placement.ranges();
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, elems);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // Scaled ranges tile any slot length the same way.
        let scaled: Vec<_> = ranges
            .iter()
            .map(|r| r.scaled_to(slot_len, placement.num_shards))
            .collect();
        prop_assert_eq!(scaled[0].start, 0);
        prop_assert_eq!(scaled.last().unwrap().end, slot_len);
        for w in scaled.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // Slicing a concrete tensor by those ranges and concatenating
        // reproduces it bit-for-bit (the reshard identity restore relies
        // on).
        let mut rng = TensorRng::seed((elems + slot_len) as u64);
        let slot = rng.uniform(Shape::vector(slot_len), -1.0, 1.0);
        let mut rebuilt = Vec::with_capacity(slot_len);
        for r in &scaled {
            rebuilt.extend_from_slice(&slot.data()[r.start..r.end]);
        }
        prop_assert_eq!(Tensor::from_slice(&rebuilt), slot);
    }
}
