//! A small serde-serializable metrics registry: counters, gauges, and
//! fixed-bucket histograms, all keyed by name with deterministic (sorted)
//! iteration order.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Histogram bucket upper bounds, in seconds — decades from 1 µs to 10 s.
/// Values above the last bound land in a final overflow bucket.
pub const BUCKET_BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Streaming histogram with decade buckets plus count/sum/min/max.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Counts per bucket of [`BUCKET_BOUNDS`], plus one overflow bucket.
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![0; BUCKET_BOUNDS.len() + 1],
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        let bucket = BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[bucket] += 1;
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// Named counters, gauges, and histograms.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to a counter, creating it at zero.
    pub fn inc_counter(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one observation into a histogram, creating it on first use.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Sorted counter entries.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sorted gauge entries.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's value, histogram buckets add.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, &value) in &other.gauges {
            self.gauges.insert(name.clone(), value);
        }
        for (name, hist) in &other.histograms {
            let mine = self.histograms.entry(name.clone()).or_default();
            if mine.count == 0 {
                *mine = hist.clone();
            } else if hist.count > 0 {
                mine.count += hist.count;
                mine.sum += hist.sum;
                mine.min = mine.min.min(hist.min);
                mine.max = mine.max.max(hist.max);
                for (a, b) in mine.buckets.iter_mut().zip(&hist.buckets) {
                    *a += b;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.inc_counter("steps", 2);
        m.inc_counter("steps", 3);
        m.set_gauge("util", 0.5);
        assert_eq!(m.counter("steps"), 5);
        assert_eq!(m.gauge("util"), Some(0.5));
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        h.observe(5e-7); // ≤ 1µs bucket
        h.observe(5e-4); // ≤ 1ms bucket
        h.observe(100.0); // overflow
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 5e-7);
        assert_eq!(h.max, 100.0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[BUCKET_BOUNDS.len()], 1);
        assert!(h.mean().unwrap() > 33.0);
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc_counter("events", 1);
        b.inc_counter("events", 2);
        a.observe("lat", 1e-3);
        b.observe("lat", 1e-2);
        a.merge(&b);
        assert_eq!(a.counter("events"), 3);
        assert_eq!(a.histogram("lat").unwrap().count, 2);
    }

    #[test]
    fn registry_round_trips_through_serde() {
        let mut m = MetricsRegistry::new();
        m.inc_counter("c", 7);
        m.set_gauge("g", 1.25);
        m.observe("h", 3e-5);
        let value = serde_json::to_value(&m).unwrap();
        let back: MetricsRegistry = serde_json::from_value(&value).unwrap();
        assert_eq!(back, m);
    }
}
