//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in seconds.
///
/// `SimTime` is a thin newtype over `f64`; it is totally ordered (NaN is
/// rejected at construction) so it can key event queues.
///
/// ```
/// use multipod_trace::SimTime;
///
/// let t = SimTime::ZERO + 1.5e-3;
/// assert_eq!(t.seconds(), 1.5e-3);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Builds a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is NaN or negative.
    pub fn from_seconds(seconds: f64) -> SimTime {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimTime must be finite and non-negative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// The time in seconds.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The time in milliseconds.
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The time in microseconds.
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

// SimTime construction rejects NaN, so the order is total; total_cmp
// keeps that guarantee panic-free even if a NaN ever slipped through.
impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_seconds(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.9}s)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}µs", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_seconds(1.0);
        let b = SimTime::from_seconds(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + 0.5 + 0.25;
        assert_eq!(t.seconds(), 0.75);
        assert_eq!(t - SimTime::from_seconds(0.25), 0.5);
        assert_eq!(t.millis(), 750.0);
        assert_eq!(SimTime::from_seconds(2e-6).micros(), 2.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        SimTime::from_seconds(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan() {
        SimTime::from_seconds(f64::NAN);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_seconds(2.5).to_string(), "2.500s");
        assert_eq!(SimTime::from_seconds(2.5e-3).to_string(), "2.500ms");
        assert_eq!(SimTime::from_seconds(2.5e-6).to_string(), "2.500µs");
    }
}
