//! Trace sinks: where instrumentation hooks deliver events.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::event::{LinkClass, LinkTransferEvent, SpanCategory, SpanEvent, TraceEvent};
use crate::metrics::MetricsRegistry;

/// Receiver for trace events.
///
/// Instrumented code holds an `Option<Arc<dyn TraceSink>>` that defaults to
/// `None`, so the untraced hot path pays only a branch — no allocation, no
/// virtual call. [`NoopSink`] exists for call sites that want a sink object
/// unconditionally.
pub trait TraceSink: Send + Sync {
    /// Records one link-occupancy event.
    fn record_link(&self, event: LinkTransferEvent);

    /// Records one span.
    fn record_span(&self, event: SpanEvent);

    /// Whether events are actually kept; instrumentation may skip building
    /// expensive event payloads when `false`.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A sink that drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record_link(&self, _event: LinkTransferEvent) {}

    fn record_span(&self, _event: SpanEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Aggregated occupancy of one directed link.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkSummary {
    /// Source chip id.
    pub src: u32,
    /// Destination chip id.
    pub dst: u32,
    /// Link classification (of the first event seen on the link).
    pub class: LinkClass,
    /// Number of transfers that crossed the link.
    pub transfers: u64,
    /// Total payload bytes carried.
    pub bytes: u64,
    /// Total busy time, seconds.
    pub busy_seconds: f64,
}

impl LinkSummary {
    /// Busy fraction of the link over `horizon` seconds.
    pub fn utilization(&self, horizon: f64) -> f64 {
        if horizon > 0.0 {
            self.busy_seconds / horizon
        } else {
            0.0
        }
    }
}

/// Aggregated time of spans sharing a category and name.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanTotal {
    /// Span category.
    pub category: SpanCategory,
    /// Span name.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Total duration, seconds.
    pub total_seconds: f64,
    /// Total payload bytes attributed.
    pub bytes: u64,
}

/// A recording sink: appends events in arrival order (which the
/// single-threaded simulator makes deterministic) and aggregates them into
/// per-link and per-span summaries on demand.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<TraceEvent>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// An empty recorder behind an [`Arc`], ready to hand to instrumented
    /// components.
    pub fn shared() -> Arc<Recorder> {
        Arc::new(Recorder::new())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Discards all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// A copy of the events in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Latest event end time, seconds (0 when empty). This is the horizon
    /// used for utilization fractions.
    pub fn horizon_seconds(&self) -> f64 {
        self.events
            .lock()
            .iter()
            .map(|e| e.end().seconds())
            .fold(0.0, f64::max)
    }

    /// Per-directed-link aggregation, sorted by `(src, dst)`.
    pub fn link_summaries(&self) -> Vec<LinkSummary> {
        let events = self.events.lock();
        let mut by_link: std::collections::BTreeMap<(u32, u32), LinkSummary> =
            std::collections::BTreeMap::new();
        for event in events.iter() {
            if let TraceEvent::Link(e) = event {
                let entry = by_link
                    .entry((e.src, e.dst))
                    .or_insert_with(|| LinkSummary {
                        src: e.src,
                        dst: e.dst,
                        class: e.class,
                        transfers: 0,
                        bytes: 0,
                        busy_seconds: 0.0,
                    });
                entry.transfers += 1;
                entry.bytes += e.bytes;
                entry.busy_seconds += e.busy_seconds();
            }
        }
        by_link.into_values().collect()
    }

    /// Total payload bytes per directed link, keyed `(src, dst)`.
    pub fn link_bytes(&self) -> std::collections::BTreeMap<(u32, u32), u64> {
        self.link_summaries()
            .into_iter()
            .map(|s| ((s.src, s.dst), s.bytes))
            .collect()
    }

    /// Span aggregation by `(category, name)`, sorted the same way.
    pub fn span_totals(&self) -> Vec<SpanTotal> {
        let events = self.events.lock();
        let mut by_name: std::collections::BTreeMap<(&'static str, String), SpanTotal> =
            std::collections::BTreeMap::new();
        for event in events.iter() {
            if let TraceEvent::Span(s) = event {
                let entry = by_name
                    .entry((s.category.label(), s.name.clone()))
                    .or_insert_with(|| SpanTotal {
                        category: s.category,
                        name: s.name.clone(),
                        count: 0,
                        total_seconds: 0.0,
                        bytes: 0,
                    });
                entry.count += 1;
                entry.total_seconds += s.seconds();
                entry.bytes += s.bytes;
            }
        }
        by_name.into_values().collect()
    }

    /// Builds the canonical metrics view of everything recorded:
    ///
    /// * `link.{src}->{dst}.bytes` / `.busy_seconds` / `.utilization`
    ///   gauges per directed link, plus `link.class.{label}.bytes`
    ///   counters per link class;
    /// * `span.{category}.{name}.seconds` gauges and `.count` counters;
    /// * `trace.events` / `trace.horizon_seconds` totals;
    /// * a `link.busy_seconds` histogram over per-link busy time.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        let horizon = self.horizon_seconds();
        registry.set_gauge("trace.horizon_seconds", horizon);
        registry.inc_counter("trace.events", self.len() as u64);
        for link in self.link_summaries() {
            let key = format!("link.{}->{}", link.src, link.dst);
            registry.set_gauge(&format!("{key}.bytes"), link.bytes as f64);
            registry.set_gauge(&format!("{key}.busy_seconds"), link.busy_seconds);
            registry.set_gauge(&format!("{key}.utilization"), link.utilization(horizon));
            registry.inc_counter(
                &format!("link.class.{}.bytes", link.class.label()),
                link.bytes,
            );
            registry.observe("link.busy_seconds", link.busy_seconds);
        }
        for span in self.span_totals() {
            let key = format!("span.{}.{}", span.category.label(), span.name);
            registry.set_gauge(&format!("{key}.seconds"), span.total_seconds);
            registry.inc_counter(&format!("{key}.count"), span.count);
        }
        registry
    }
}

impl TraceSink for Recorder {
    fn record_link(&self, event: LinkTransferEvent) {
        self.events.lock().push(TraceEvent::Link(event));
    }

    fn record_span(&self, event: SpanEvent) {
        self.events.lock().push(TraceEvent::Span(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;
    use crate::SimTime;

    fn link(src: u32, dst: u32, bytes: u64, start: f64, end: f64) -> LinkTransferEvent {
        LinkTransferEvent {
            src,
            dst,
            class: LinkClass::MeshY,
            bytes,
            start: SimTime::from_seconds(start),
            end: SimTime::from_seconds(end),
        }
    }

    #[test]
    fn noop_discards() {
        let sink = NoopSink;
        sink.record_link(link(0, 1, 10, 0.0, 1.0));
        assert!(!sink.is_enabled());
    }

    #[test]
    fn recorder_aggregates_links() {
        let r = Recorder::new();
        r.record_link(link(0, 1, 100, 0.0, 0.5));
        r.record_link(link(0, 1, 50, 0.5, 0.75));
        r.record_link(link(1, 2, 10, 0.0, 2.0));
        let summaries = r.link_summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].bytes, 150);
        assert_eq!(summaries[0].transfers, 2);
        assert!((summaries[0].busy_seconds - 0.75).abs() < 1e-12);
        assert!((summaries[0].utilization(r.horizon_seconds()) - 0.375).abs() < 1e-12);
        assert_eq!(r.link_bytes()[&(1, 2)], 10);
    }

    #[test]
    fn recorder_aggregates_spans() {
        let r = Recorder::new();
        for step in 0..3 {
            r.record_span(SpanEvent::new(
                Track::Sim,
                SpanCategory::Step,
                "train-step",
                SimTime::from_seconds(step as f64),
                SimTime::from_seconds(step as f64 + 0.5),
            ));
        }
        let totals = r.span_totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].count, 3);
        assert!((totals[0].total_seconds - 1.5).abs() < 1e-12);
        let metrics = r.metrics();
        assert_eq!(metrics.counter("span.step.train-step.count"), 3);
        assert!((metrics.gauge("span.step.train-step.seconds").unwrap() - 1.5).abs() < 1e-12);
    }
}
