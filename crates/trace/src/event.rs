//! Typed trace events, all stamped with [`SimTime`].

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// What kind of physical link a transfer occupied.
///
/// This is the trace's own classification — coarser than the topology
/// crate's link taxonomy and augmented with the mesh dimension, because
/// per-dimension utilization is the quantity the paper reasons about
/// (Y carries the dense gradient rings, X the strided cross-pod rings).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Intra-pod link along the X dimension.
    MeshX,
    /// Intra-pod link along the Y dimension.
    MeshY,
    /// Torus wrap-around link (Y edges).
    WrapY,
    /// Optical cross-pod link.
    CrossPod,
    /// Classification unavailable (e.g. synthetic events in tests).
    Unknown,
}

impl LinkClass {
    /// Short human-readable label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            LinkClass::MeshX => "mesh-x",
            LinkClass::MeshY => "mesh-y",
            LinkClass::WrapY => "wrap-y",
            LinkClass::CrossPod => "cross-pod",
            LinkClass::Unknown => "unknown",
        }
    }
}

/// Where an event renders in the exported trace (Chrome process/thread).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Track {
    /// Whole-simulation track (training steps, end-to-end phases).
    Sim,
    /// A pod-wide schedule track.
    Pod {
        /// Pod index.
        pod: u32,
    },
    /// One chip's work.
    Chip {
        /// Pod the chip belongs to.
        pod: u32,
        /// Global chip id.
        chip: u32,
    },
    /// One directed link of the interconnect.
    Link {
        /// Source chip id.
        src: u32,
        /// Destination chip id.
        dst: u32,
    },
    /// One input-pipeline host.
    Host {
        /// Host index.
        host: u32,
    },
}

/// Category of a [`SpanEvent`]; becomes the Chrome `cat` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpanCategory {
    /// A whole collective (all-reduce, broadcast, …).
    Collective,
    /// One phase inside a collective (reduce-scatter Y, all-gather X, …).
    CollectivePhase,
    /// One training step.
    Step,
    /// A phase inside a step (forward/backward, gradient sum, …).
    StepPhase,
    /// Sharded weight-update / optimizer work.
    Optimizer,
    /// Host input-pipeline stage.
    Input,
    /// A fault-campaign event: link failure/heal, chip loss, replica
    /// drop, step retry, straggler window. Zero-duration spans mark the
    /// instant a fault transition happened; windows (e.g. stragglers)
    /// carry their full extent.
    Fault,
    /// Checkpoint traffic: sharded state save (ICI gather + PCIe
    /// streaming), restore, and rollback-recovery windows.
    Checkpoint,
    /// Pod-scheduler events: a job's queue wait, its run on a slice,
    /// preemption (save + requeue), and elastic resume.
    Sched,
    /// Online-serving events: a request batch's accumulation window and
    /// its lookup / all-to-all / dense phases, plus RL actor rounds and
    /// learner parameter broadcasts.
    Serve,
}

impl SpanCategory {
    /// Short label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            SpanCategory::Collective => "collective",
            SpanCategory::CollectivePhase => "collective-phase",
            SpanCategory::Step => "step",
            SpanCategory::StepPhase => "step-phase",
            SpanCategory::Optimizer => "optimizer",
            SpanCategory::Input => "input",
            SpanCategory::Fault => "fault",
            SpanCategory::Checkpoint => "checkpoint",
            SpanCategory::Sched => "sched",
            SpanCategory::Serve => "serve",
        }
    }
}

/// One message's occupancy of one directed link.
///
/// Under the cut-through model a message holds every link of its route for
/// the same serialization window, so the instrumentation emits one event
/// per traversed link: `start` is when the first byte enters the link and
/// `end` when the link drains (`busy_until`). Summing `end - start` per
/// link gives exactly the busy time the contention model charges.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkTransferEvent {
    /// Source chip of the directed link.
    pub src: u32,
    /// Destination chip of the directed link.
    pub dst: u32,
    /// Link classification.
    pub class: LinkClass,
    /// Payload bytes carried.
    pub bytes: u64,
    /// First byte on the link.
    pub start: SimTime,
    /// Link released.
    pub end: SimTime,
}

impl LinkTransferEvent {
    /// Busy time this transfer charged to the link, seconds.
    pub fn busy_seconds(&self) -> f64 {
        self.end - self.start
    }
}

/// A named interval on some track: collective phases, step phases,
/// optimizer shard work, input-pipeline stages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Track the span renders on.
    pub track: Track,
    /// Category (Chrome `cat`).
    pub category: SpanCategory,
    /// Span name (Chrome `name`).
    pub name: String,
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
    /// Payload bytes attributed to the span (0 when not meaningful).
    pub bytes: u64,
    /// Extra numeric attributes (e.g. `alpha_seconds`, `beta_seconds`),
    /// kept ordered for deterministic export.
    pub args: Vec<(String, f64)>,
}

impl SpanEvent {
    /// Builds a span with no payload or extra attributes.
    pub fn new(
        track: Track,
        category: SpanCategory,
        name: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) -> SpanEvent {
        SpanEvent {
            track,
            category,
            name: name.into(),
            start,
            end,
            bytes: 0,
            args: Vec::new(),
        }
    }

    /// Attaches a payload size.
    pub fn with_bytes(mut self, bytes: u64) -> SpanEvent {
        self.bytes = bytes;
        self
    }

    /// Attaches one numeric attribute.
    pub fn with_arg(mut self, key: impl Into<String>, value: f64) -> SpanEvent {
        self.args.push((key.into(), value));
        self
    }

    /// Span duration, seconds.
    pub fn seconds(&self) -> f64 {
        self.end - self.start
    }
}

/// Any recorded event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Link occupancy.
    Link(LinkTransferEvent),
    /// Named interval.
    Span(SpanEvent),
}

impl TraceEvent {
    /// Event start time.
    pub fn start(&self) -> SimTime {
        match self {
            TraceEvent::Link(e) => e.start,
            TraceEvent::Span(e) => e.start,
        }
    }

    /// Event end time.
    pub fn end(&self) -> SimTime {
        match self {
            TraceEvent::Link(e) => e.end,
            TraceEvent::Span(e) => e.end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_builder_accumulates() {
        let s = SpanEvent::new(
            Track::Sim,
            SpanCategory::Step,
            "step-0",
            SimTime::ZERO,
            SimTime::from_seconds(0.25),
        )
        .with_bytes(1024)
        .with_arg("comm_seconds", 0.1);
        assert_eq!(s.seconds(), 0.25);
        assert_eq!(s.bytes, 1024);
        assert_eq!(s.args, vec![("comm_seconds".to_string(), 0.1)]);
    }

    #[test]
    fn events_round_trip_through_serde() {
        let ev = TraceEvent::Link(LinkTransferEvent {
            src: 3,
            dst: 4,
            class: LinkClass::MeshY,
            bytes: 4096,
            start: SimTime::from_seconds(1e-3),
            end: SimTime::from_seconds(2e-3),
        });
        let json = serde_json::to_string(&serde_json::to_value(&ev).unwrap()).unwrap();
        let back: TraceEvent =
            serde_json::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, ev);
    }
}
