//! Chrome trace-event JSON export (loadable in Perfetto / `chrome://tracing`).
//!
//! Every recorded event becomes a complete ("X") event with microsecond
//! `ts`/`dur`. Processes and threads follow the convention from the issue:
//! each pod is a process whose threads are chips; the interconnect is a
//! "network" process whose threads are directed links; input hosts get
//! their own process. Metadata ("M") events name them all. Output is fully
//! deterministic: events are sorted by time/track and all maps iterate in
//! fixed order, so the same simulation always produces byte-identical
//! JSON.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use serde_json::{json, Value};

use crate::event::{TraceEvent, Track};
use crate::metrics::MetricsRegistry;
use crate::sink::Recorder;

/// Process id of the whole-simulation track.
const SIM_PID: u64 = 1;
/// Process id of the interconnect.
const NETWORK_PID: u64 = 2;
/// Process id of the input hosts.
const HOST_PID: u64 = 3;
/// First pod process id (pod `p` gets `POD_PID_BASE + p`).
const POD_PID_BASE: u64 = 10;
/// Directed link `src → dst` gets thread id `src * LINK_TID_STRIDE + dst`.
const LINK_TID_STRIDE: u64 = 1 << 20;

fn track_ids(track: &Track) -> (u64, u64) {
    match *track {
        Track::Sim => (SIM_PID, 1),
        Track::Pod { pod } => (POD_PID_BASE + pod as u64, 0),
        Track::Chip { pod, chip } => (POD_PID_BASE + pod as u64, 1 + chip as u64),
        Track::Link { src, dst } => (NETWORK_PID, src as u64 * LINK_TID_STRIDE + dst as u64),
        Track::Host { host } => (HOST_PID, 1 + host as u64),
    }
}

fn track_names(track: &Track) -> (String, String) {
    match *track {
        Track::Sim => ("simulation".to_string(), "timeline".to_string()),
        Track::Pod { pod } => (format!("pod{pod}"), "schedule".to_string()),
        Track::Chip { pod, chip } => (format!("pod{pod}"), format!("chip{chip}")),
        Track::Link { src, dst } => ("network".to_string(), format!("link {src}->{dst}")),
        Track::Host { host } => ("input-hosts".to_string(), format!("host{host}")),
    }
}

/// Converts events into the Chrome trace-event object
/// `{"displayTimeUnit": "ms", "traceEvents": [...]}`.
///
/// # Errors
///
/// Propagates any serialization failure (e.g. a span argument that cannot
/// be represented) instead of aborting the run.
pub fn chrome_trace(events: &[TraceEvent]) -> Result<Value, serde_json::Error> {
    chrome_trace_with_metrics(events, None)
}

/// Like [`chrome_trace`], with an optional metrics summary embedded under
/// the (viewer-ignored) top-level `otherData` key.
///
/// # Errors
///
/// See [`chrome_trace`].
pub fn chrome_trace_with_metrics(
    events: &[TraceEvent],
    metrics: Option<&MetricsRegistry>,
) -> Result<Value, serde_json::Error> {
    struct Row {
        ts: f64,
        dur: f64,
        pid: u64,
        tid: u64,
        value: Value,
    }

    let mut names: BTreeMap<(u64, u64), (String, String)> = BTreeMap::new();
    let mut rows: Vec<Row> = Vec::with_capacity(events.len());
    for event in events {
        let ts = event.start().micros();
        let dur = (event.end() - event.start()) * 1e6;
        let (track, value) = match event {
            TraceEvent::Link(e) => {
                let track = Track::Link {
                    src: e.src,
                    dst: e.dst,
                };
                let (pid, tid) = track_ids(&track);
                let v = json!({
                    "name": e.class.label(),
                    "cat": "link",
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": pid,
                    "tid": tid,
                    "args": json!({
                        "src": e.src,
                        "dst": e.dst,
                        "bytes": e.bytes
                    })
                });
                (track, v)
            }
            TraceEvent::Span(s) => {
                let (pid, tid) = track_ids(&s.track);
                let mut args: Vec<(String, Value)> = Vec::with_capacity(1 + s.args.len());
                if s.bytes > 0 {
                    args.push(("bytes".to_string(), serde_json::to_value(&s.bytes)?));
                }
                for (key, val) in &s.args {
                    args.push((key.clone(), serde_json::to_value(val)?));
                }
                let v = json!({
                    "name": s.name.as_str(),
                    "cat": s.category.label(),
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": pid,
                    "tid": tid,
                    "args": Value::Map(args)
                });
                (s.track, v)
            }
        };
        let (pid, tid) = track_ids(&track);
        names
            .entry((pid, tid))
            .or_insert_with(|| track_names(&track));
        rows.push(Row {
            ts,
            dur,
            pid,
            tid,
            value,
        });
    }

    // `total_cmp` gives a total order even for pathological (NaN) values,
    // so the deterministic sort cannot panic.
    rows.sort_by(|a, b| {
        a.ts.total_cmp(&b.ts)
            .then(a.pid.cmp(&b.pid))
            .then(a.tid.cmp(&b.tid))
            .then(a.dur.total_cmp(&b.dur))
    });

    let mut trace_events: Vec<Value> = Vec::with_capacity(rows.len() + 2 * names.len());
    for (&(pid, tid), (process, thread)) in &names {
        trace_events.push(json!({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": json!({"name": process.as_str()})
        }));
        trace_events.push(json!({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": json!({"name": thread.as_str()})
        }));
    }
    trace_events.extend(rows.into_iter().map(|r| r.value));

    let mut top: Vec<(String, Value)> = vec![
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ("traceEvents".to_string(), Value::Seq(trace_events)),
    ];
    if let Some(metrics) = metrics {
        top.push(("otherData".to_string(), serde_json::to_value(metrics)?));
    }
    Ok(Value::Map(top))
}

/// Writes a JSON value to `path` (compact, deterministic formatting).
pub fn write_json(path: impl AsRef<Path>, value: &Value) -> std::io::Result<()> {
    let text = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0))?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(text.as_bytes())?;
    file.write_all(b"\n")
}

impl Recorder {
    /// This recorder's events as a Chrome trace with the metrics summary
    /// embedded under `otherData`.
    ///
    /// # Errors
    ///
    /// See [`chrome_trace`].
    pub fn chrome_trace(&self) -> Result<Value, serde_json::Error> {
        chrome_trace_with_metrics(&self.events(), Some(&self.metrics()))
    }

    /// Writes [`Recorder::chrome_trace`] to `path`; serialization failures
    /// surface as [`std::io::ErrorKind::InvalidData`].
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let trace = self
            .chrome_trace()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0))?;
        write_json(path, &trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LinkClass, LinkTransferEvent, SpanCategory, SpanEvent};
    use crate::sink::TraceSink;
    use crate::SimTime;

    fn sample_recorder() -> Recorder {
        let r = Recorder::new();
        r.record_link(LinkTransferEvent {
            src: 0,
            dst: 1,
            class: LinkClass::MeshY,
            bytes: 2048,
            start: SimTime::from_seconds(1e-6),
            end: SimTime::from_seconds(3e-6),
        });
        r.record_span(
            SpanEvent::new(
                Track::Chip { pod: 0, chip: 1 },
                SpanCategory::CollectivePhase,
                "reduce-scatter-y",
                SimTime::ZERO,
                SimTime::from_seconds(5e-6),
            )
            .with_bytes(2048)
            .with_arg("alpha_seconds", 1e-6),
        );
        r
    }

    fn events_of(trace: &Value) -> &Vec<Value> {
        match trace.get("traceEvents") {
            Some(Value::Seq(items)) => items,
            other => panic!("traceEvents missing or wrong type: {other:?}"),
        }
    }

    #[test]
    fn emits_metadata_then_sorted_events() {
        let r = sample_recorder();
        let trace = r.chrome_trace().unwrap();
        let events = events_of(&trace);
        // 2 tracks × (process_name + thread_name) + 2 real events.
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].get("ph").unwrap(), &Value::Str("M".to_string()));
        let phases: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph") == Some(&Value::Str("X".to_string())))
            .collect();
        assert_eq!(phases.len(), 2);
        // Span starts at t=0, link at 1µs: sorted by ts.
        assert_eq!(
            phases[0].get("name").unwrap(),
            &Value::Str("reduce-scatter-y".to_string())
        );
        assert_eq!(
            phases[1].get("name").unwrap(),
            &Value::Str("mesh-y".to_string())
        );
        // dur is in microseconds.
        let dur = phases[1].get("dur").unwrap().as_f64().unwrap();
        assert!((dur - 2.0).abs() < 1e-9, "dur {dur} should be ~2µs");
        assert!(trace.get("otherData").is_some());
    }

    #[test]
    fn export_is_byte_identical_across_runs() {
        let a = serde_json::to_string(&sample_recorder().chrome_trace().unwrap()).unwrap();
        let b = serde_json::to_string(&sample_recorder().chrome_trace().unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let r = sample_recorder();
        let text = serde_json::to_string(&r.chrome_trace().unwrap()).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back, r.chrome_trace().unwrap());
    }
}
