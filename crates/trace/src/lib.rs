//! Sim-time observability for the multipod simulator.
//!
//! The simulator's timing answers ("a 2-D all-reduce on 4096 chips takes
//! X ms") come out of thousands of individually-timed link transfers and
//! schedule phases. This crate makes that structure inspectable without
//! perturbing it:
//!
//! * [`SimTime`] — simulated seconds, the clock every event is stamped
//!   with (re-exported by `multipod-simnet`; this crate is the bottom of
//!   the stack so even the network can emit events).
//! * [`TraceSink`] — the hook instrumented components call. The default is
//!   no sink at all (an `Option` left `None`), so untraced runs pay only a
//!   branch; [`NoopSink`] exists when an object is required, and
//!   [`Recorder`] appends every event in deterministic order.
//! * [`MetricsRegistry`] — serde-serializable counters, gauges, and
//!   histograms; [`Recorder::metrics`] aggregates per-link bytes and busy
//!   time into utilization plus per-span time totals.
//! * [`chrome_trace`] — Chrome trace-event JSON (Perfetto-loadable), with
//!   pods as processes, chips and directed links as threads, and
//!   byte-identical output for identical simulations.
//!
//! ```
//! use std::sync::Arc;
//! use multipod_trace::{
//!     LinkClass, LinkTransferEvent, Recorder, SimTime, TraceSink,
//! };
//!
//! let recorder = Recorder::shared();
//! let sink: Arc<dyn TraceSink> = recorder.clone();
//! sink.record_link(LinkTransferEvent {
//!     src: 0,
//!     dst: 1,
//!     class: LinkClass::MeshY,
//!     bytes: 1 << 20,
//!     start: SimTime::ZERO,
//!     end: SimTime::from_seconds(15e-6),
//! });
//! let links = recorder.link_summaries();
//! assert_eq!(links[0].bytes, 1 << 20);
//! let trace = recorder.chrome_trace().unwrap();
//! assert!(trace.get("traceEvents").is_some());
//! ```

mod chrome;
mod event;
mod metrics;
mod sink;
mod time;

pub use chrome::{chrome_trace, chrome_trace_with_metrics, write_json};
pub use event::{LinkClass, LinkTransferEvent, SpanCategory, SpanEvent, TraceEvent, Track};
pub use metrics::{Histogram, MetricsRegistry, BUCKET_BOUNDS};
pub use sink::{LinkSummary, NoopSink, Recorder, SpanTotal, TraceSink};
pub use time::SimTime;
